#!/usr/bin/env python
"""Semantic diff of two campaign result stores (checkpoint parity gate).

Checkpointed fault injection must be *bit-identical* to full
re-simulation: a campaign run with ``--checkpoint-interval N`` and one
run with ``--no-checkpoints`` must produce the same golden payloads,
the same fault plans and pruning verdicts, the same per-fault outcome
rows, and the same reduced cells. This script compares two JSONL
stores record by record under exactly that contract:

* golden / plan / shard records must match by fingerprint with
  payloads equal after stripping wall-time fields (``wall_time_s`` and
  ``*_time_s`` are machine-load measurements, not results);
* cell records carry the checkpoint setting in their fingerprint by
  design, so they are matched by campaign identity — (gpu, workload,
  scale, scheduler, samples, seed, fault_model) — and compared on
  every non-time field.

By default the stores must also *append* their shared non-cell records
in the same relative order — the right check for twins produced by
deterministic (serial/inline) runs. ``--ignore-order`` compares purely
as canonical fingerprint-keyed sets: concurrent twins (process pools,
the campaign service's lease scheduling) complete jobs in racy order,
which is execution scheduling, not results.

Exit status 0 means the stores agree; 1 lists the differences.

Usage::

    python scripts/diff_stores.py ckpt-on.jsonl ckpt-off.jsonl
    python scripts/diff_stores.py --ignore-order pool.jsonl dist.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_TIME_SUFFIX = "_time_s"


def strip_times(value):
    """Recursively drop wall-time measurement fields."""
    if isinstance(value, dict):
        return {
            key: strip_times(item)
            for key, item in value.items()
            if not key.endswith(_TIME_SUFFIX)
        }
    if isinstance(value, list):
        return [strip_times(item) for item in value]
    return value


def load(path: Path) -> dict:
    """fingerprint -> record in append order, skipping torn lines.

    Byte-mode per-line decode, so a final line torn inside a
    multi-byte UTF-8 sequence is skipped like any other torn line
    (the store's own load tolerance). Insertion order of the dict is
    the append order, which the default (ordered) comparison uses.
    """
    records = {}
    for line in path.read_bytes().split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8"))
            records[record["fp"]] = record
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError):
            continue
    return records


def cell_key(payload: dict) -> tuple:
    return (payload["gpu"], payload["workload"], payload["scale"],
            payload["scheduler"], payload["samples"], payload["seed"],
            payload.get("fault_model", "transient"))


def diff(left_path: Path, right_path: Path, *,
         ignore_order: bool = False) -> int:
    left, right = load(left_path), load(right_path)
    problems = []

    if not ignore_order:
        shared = set(left) & set(right)
        left_seq = [fp for fp in left if fp in shared]
        right_seq = [fp for fp in right if fp in shared]
        if left_seq != right_seq:
            first = next(i for i, (a, b)
                         in enumerate(zip(left_seq, right_seq)) if a != b)
            problems.append(
                f"append order differs at shared record {first} "
                f"({left_seq[first][:12]}… vs {right_seq[first][:12]}…); "
                f"concurrent runs may legitimately reorder — "
                f"use --ignore-order to compare as keyed sets")

    def split(records):
        sim = {fp: r for fp, r in records.items() if r["kind"] != "cell"}
        cells = {cell_key(r["payload"]): r["payload"]
                 for r in records.values() if r["kind"] == "cell"}
        return sim, cells

    left_sim, left_cells = split(left)
    right_sim, right_cells = split(right)

    for fp in sorted(set(left_sim) | set(right_sim)):
        a, b = left_sim.get(fp), right_sim.get(fp)
        if a is None or b is None:
            missing = left_path.name if a is None else right_path.name
            present = b if a is None else a
            problems.append(
                f"{present['kind']} {fp[:12]}… missing from {missing}")
        elif strip_times(a["payload"]) != strip_times(b["payload"]):
            problems.append(f"{a['kind']} {fp[:12]}… payloads differ")

    for key in sorted(set(left_cells) | set(right_cells)):
        a, b = left_cells.get(key), right_cells.get(key)
        if a is None or b is None:
            missing = left_path.name if a is None else right_path.name
            problems.append(f"cell {key} missing from {missing}")
        elif strip_times(a) != strip_times(b):
            problems.append(f"cell {key} payloads differ")

    counts = (f"{len(left_sim)} sim records + {len(left_cells)} cells vs "
              f"{len(right_sim)} + {len(right_cells)}")
    if problems:
        print(f"stores DIFFER ({counts}):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    mode = "append order ignored" if ignore_order else "append order checked"
    print(f"stores agree ({counts}; wall-time fields ignored, {mode})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("left", type=Path, help="first JSONL store")
    parser.add_argument("right", type=Path, help="second JSONL store")
    parser.add_argument(
        "--ignore-order", action="store_true",
        help="compare as canonical fingerprint-keyed sets, ignoring "
             "append order (for concurrent twins: process pools and "
             "the campaign service reorder completions)")
    args = parser.parse_args(argv)
    return diff(args.left, args.right, ignore_order=args.ignore_order)


if __name__ == "__main__":
    sys.exit(main())
