#!/usr/bin/env python
"""Gate the bench-smoke CI job on the parallel-engine speedup.

Reads a pytest-benchmark JSON export (``--benchmark-json``) produced by
``benchmarks/bench_matrix_parallel.py``, prints one trend line per
benchmark (the datapoints the bench trajectory is built from), and
exits non-zero if the pooled matrix run was slower than the serial one
— the engine's parallelism must never be a pessimisation, even at CI's
tiny scale.

Usage::

    python scripts/check_bench.py BENCH_ci.json [--min-speedup 1.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check(path: Path, min_speedup: float) -> int:
    data = json.loads(path.read_text())
    benchmarks = data.get("benchmarks", [])
    if not benchmarks:
        print(f"error: no benchmarks recorded in {path}", file=sys.stderr)
        return 2
    failures = 0
    for bench in benchmarks:
        info = bench.get("extra_info", {})
        name = bench.get("name", "?")
        serial = info.get("serial_s")
        parallel = info.get("parallel_s")
        if serial is None or parallel is None:
            # Not a serial-vs-parallel bench; report the mean and move on.
            mean = bench.get("stats", {}).get("mean", float("nan"))
            print(f"{name}: mean {mean:.3f}s (no speedup gate)")
            continue
        speedup = serial / parallel if parallel else float("inf")
        workers = info.get("workers", "?")
        verdict = "ok" if speedup >= min_speedup else "SLOWER THAN SERIAL"
        print(f"{name}: workers=1 {serial:.2f}s  workers={workers} "
              f"{parallel:.2f}s  speedup x{speedup:.2f}  [{verdict}]")
        if speedup < min_speedup:
            failures += 1
    if failures:
        print(f"error: {failures} benchmark(s) below the x{min_speedup} "
              "speedup gate", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", type=Path,
                        help="pytest-benchmark JSON export")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail if serial/parallel falls below this "
                             "(default: 1.0 — parallel must not lose)")
    args = parser.parse_args(argv)
    return check(args.json_path, args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())
