#!/usr/bin/env python
"""Gate the bench-smoke CI job on the engine's speedups.

Reads a pytest-benchmark JSON export (``--benchmark-json``), prints
one trend line per benchmark (the datapoints the bench trajectory is
built from), and exits non-zero when a speedup gate fails. Two gate
shapes are understood, keyed by ``extra_info``:

* ``serial_s`` / ``parallel_s`` — the process-pool matrix benchmark:
  parallelism must never be a pessimisation (default floor 1.0);
* ``baseline_s`` / ``accelerated_s`` — an optimisation benchmark (the
  checkpoint suffix-only FI speedup): must beat the per-benchmark
  ``min_speedup`` recorded alongside (1.5x for checkpointing);
* ``fastpath_baseline_s`` / ``fastpath_accelerated_s`` — the whole
  acceleration stack (vector backend + checkpoints + suffix memo) vs
  the pure-python reference: the ``fastpath_speedup`` key must beat
  ``min_speedup`` (3x on the smoke matrix). The memo hit rate and
  backend recorded alongside are printed as trend datapoints only.

Fleet keys (``dist_wall_s`` / ``dist_inj_per_s`` from the
campaign-service benchmark) are printed as trend datapoints but never
gated — at smoke scale the coordinator's HTTP round-trips dominate,
so a floor would gate the wire protocol, not the engine.

Profiling keys (``profile_disabled_s`` / ``profile_enabled_s`` /
``profile_phases``) are printed as trend datapoints but never gated —
the profiling layer is observability-only and its overhead budget is
reviewed from the bench history, not enforced here.

Usage::

    python scripts/check_bench.py BENCH_ci.json [--min-speedup 1.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _print_profile_info(name: str, info: dict) -> None:
    """Trend-only profiling datapoints (never gated, just printed)."""
    if "profile_disabled_s" in info and "profile_enabled_s" in info:
        pct = info.get("profile_overhead_pct", float("nan"))
        print(f"{name}: profile hook off {info['profile_disabled_s']:.3f}s"
              f"  on {info['profile_enabled_s']:.3f}s  (+{pct:.1f}%)"
              f"  [trend only]")
    phases = info.get("profile_phases")
    if isinstance(phases, dict) and phases:
        shares = info.get("profile_phase_shares_pct", {})
        split = "  ".join(
            f"{phase} {seconds:.3f}s ({shares.get(phase, 0):.1f}%)"
            for phase, seconds in sorted(phases.items()))
        print(f"{name}: phase split {split}  [trend only]")


def check(path: Path, min_speedup: float) -> int:
    data = json.loads(path.read_text())
    benchmarks = data.get("benchmarks", [])
    if not benchmarks:
        print(f"error: no benchmarks recorded in {path}", file=sys.stderr)
        return 2
    failures = 0
    for bench in benchmarks:
        info = bench.get("extra_info", {})
        name = bench.get("name", "?")
        if "fastpath_baseline_s" in info and "fastpath_accelerated_s" in info:
            slow, fast = (info["fastpath_baseline_s"],
                          info["fastpath_accelerated_s"])
            floor = info.get("min_speedup", 3.0)
            label = (f"reference {slow:.2f}s  "
                     f"{info.get('backend', 'vector')}+memo")
            hits = info.get("memo_hits", 0)
            misses = info.get("memo_misses", 0)
            probes = hits + misses
            if probes:
                print(f"{name}: memo {hits}/{probes} hits "
                      f"({100.0 * hits / probes:.0f}%)  [trend only]")
        elif "serial_s" in info and "parallel_s" in info:
            slow, fast = info["serial_s"], info["parallel_s"]
            floor = info.get("min_speedup", min_speedup)
            label = f"workers=1 {slow:.2f}s  workers={info.get('workers', '?')}"
        elif "baseline_s" in info and "accelerated_s" in info:
            slow, fast = info["baseline_s"], info["accelerated_s"]
            floor = info.get("min_speedup", min_speedup)
            label = f"baseline {slow:.2f}s  accelerated"
        elif "dist_inj_per_s" in info:
            # Campaign-service fleet throughput: trend datapoints only
            # (at smoke scale the HTTP round-trips dominate, so a gate
            # here would measure framing overhead, not the engine).
            walls = info.get("dist_wall_s", {})
            split = "  ".join(
                f"workers={count} {walls.get(count, float('nan')):.1f}s "
                f"({rate:.1f} inj/s)"
                for count, rate in sorted(
                    info["dist_inj_per_s"].items(),
                    key=lambda item: int(item[0])))
            print(f"{name}: fleet {split}  [trend only]")
            continue
        else:
            # Not a speedup bench; report the mean and move on.
            mean = bench.get("stats", {}).get("mean", float("nan"))
            print(f"{name}: mean {mean:.3f}s (no speedup gate)")
            _print_profile_info(name, info)
            continue
        speedup = slow / fast if fast else float("inf")
        verdict = "ok" if speedup >= floor else f"BELOW x{floor} GATE"
        print(f"{name}: {label} {fast:.2f}s  speedup x{speedup:.2f}  "
              f"[{verdict}]")
        if speedup < floor:
            failures += 1
    if failures:
        print(f"error: {failures} benchmark(s) below their speedup gate",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", type=Path,
                        help="pytest-benchmark JSON export")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail if serial/parallel falls below this "
                             "(default: 1.0 — parallel must not lose)")
    args = parser.parse_args(argv)
    return check(args.json_path, args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())
