"""Stdlib statement-coverage measurement for the repro package.

CI measures coverage with pytest-cov; this script approximates the
same statement coverage with only the standard library (``trace``),
for environments without coverage tooling — it is how the
``--cov-fail-under`` floor in the coverage CI job was pinned.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args...]

Tracing costs roughly 5-8x the bare suite; on slow machines split the
measurement into chunks and merge::

    python scripts/measure_coverage.py --dump /tmp/a.pkl tests/test_a*.py
    python scripts/measure_coverage.py --dump /tmp/b.pkl tests/test_[b-z]*.py
    python scripts/measure_coverage.py --merge /tmp/a.pkl /tmp/b.pkl
"""

from __future__ import annotations

import os
import pickle
import sys
import sysconfig
import trace
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


class _PathIgnore:
    """Filename-keyed replacement for ``trace._Ignore``.

    The stdlib ``_Ignore`` caches its per-module verdict by *bare
    module name*, so once any ignored-directory module named e.g.
    ``report`` or ``runner`` or ``__init__`` is seen (scipy ships a
    ``report.py``, pytest a ``runner.py``, every package an
    ``__init__.py``), all same-named files in ``src/repro`` are
    silently dropped from the measurement — deflating the total by
    several points. Keying the cache by filename keeps the
    performance win of skipping the stdlib without the collisions.
    """

    def __init__(self, dirs):
        self._dirs = tuple(os.path.normpath(d) + os.sep for d in dirs)
        self._cache: dict = {}

    def names(self, filename, modulename) -> int:
        verdict = self._cache.get(filename)
        if verdict is None:
            verdict = self._cache[filename] = int(
                filename is None
                or filename.startswith(self._dirs))
        return verdict


def report(hit_by_file: dict) -> int:
    total_exec = total_hit = 0
    rows = []
    for path in sorted(SRC.rglob("*.py")):
        filename = str(path)
        executable = set(trace._find_executable_linenos(filename))
        hit = hit_by_file.get(filename, set()) & executable
        total_exec += len(executable)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(executable) if executable else 100.0
        rows.append((pct, len(hit), len(executable),
                     path.relative_to(SRC)))
    for pct, hit, executable, rel in rows:
        print(f"{pct:6.1f}%  {hit:5d}/{executable:<5d}  {rel}")
    overall = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"\nTOTAL {overall:.2f}% ({total_hit}/{total_exec} statements)")
    return 0


def main(argv: list[str]) -> int:
    # `python -m pytest` puts the invocation directory on sys.path (the
    # tests import `tests.conftest`); running via this script does not.
    if str(ROOT) not in sys.path:
        sys.path.insert(0, str(ROOT))

    if argv and argv[0] == "--merge":
        merged: dict[str, set] = {}
        for path in argv[1:]:
            with open(path, "rb") as handle:
                for filename, lines in pickle.load(handle).items():
                    merged.setdefault(filename, set()).update(lines)
        return report(merged)

    dump_path = None
    if argv and argv[0] == "--dump":
        dump_path, argv = argv[1], argv[2:]

    ignore_dirs = sorted({
        sysconfig.get_paths()[key]
        for key in ("stdlib", "platstdlib", "purelib", "platlib")
    })
    tracer = trace.Trace(count=1, trace=0, ignoredirs=ignore_dirs)
    tracer.ignore = _PathIgnore(ignore_dirs)  # see _PathIgnore

    import pytest
    rc = tracer.runfunc(pytest.main, argv or ["-q", "-p", "no:cacheprovider"])

    counts = tracer.results().counts
    hit_by_file: dict[str, set] = {}
    for (filename, lineno), _ in counts.items():
        hit_by_file.setdefault(filename, set()).add(lineno)
    if dump_path:
        with open(dump_path, "wb") as handle:
            pickle.dump(hit_by_file, handle)
    report(hit_by_file)
    if rc:
        # A failing/erroring suite under-measures coverage; never let a
        # floor be pinned from such a run without noticing.
        print(f"\nWARNING: pytest exited {rc}; coverage is unreliable",
              file=sys.stderr)
    return int(rc)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
