"""Run the complete evaluation matrix once and emit every figure.

Fig. 1, Fig. 2 and Fig. 3 share the same (GPU x benchmark) cells, so a
single matrix run with both datapath structures regenerates them; a
second matrix run (sharing the golden jobs through the same store)
adds the control-structure AVF report. This is what EXPERIMENTS.md
records. The campaign runs on the job-graph engine
with a persistent result store in the output directory: a run killed
half-way resumes from its finished jobs on the next invocation, and a
re-run of a complete campaign executes nothing. Usage::

    python scripts/run_full_experiments.py [samples] [scale] [outdir] [workers]
"""

from __future__ import annotations

import json
import sys
import time

from repro.arch.scaling import list_scaled_gpus
from repro.arch.structures import CONTROL_STRUCTURES
from repro.engine import CampaignStats, run_campaign
from repro.reliability.report import (
    format_ace_vs_fi,
    format_avf_figure,
    format_control_avf,
    format_epf_figure,
    write_cells_csv,
)
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE


def main() -> int:
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    outdir = sys.argv[3] if len(sys.argv) > 3 else "results"
    workers = int(sys.argv[4]) if len(sys.argv) > 4 else 1

    from pathlib import Path
    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)

    start = time.time()

    def progress(cell):
        print(
            f"[{time.time() - start:7.1f}s] {cell.gpu:<26} {cell.workload:<12} "
            f"cycles={cell.cycles:<8} rf_fi={cell.avf_fi(REGISTER_FILE):.3f} "
            f"rf_ace={cell.avf_ace(REGISTER_FILE):.3f} "
            f"lm_fi={cell.avf_fi(LOCAL_MEMORY):.3f} "
            f"epf={cell.epf.epf:.2e}",
            flush=True,
        )

    stats = CampaignStats()
    result = run_campaign(
        gpus=list_scaled_gpus(),
        scale=scale,
        samples=samples,
        seed=1,
        structures=(REGISTER_FILE, LOCAL_MEMORY),
        workers=workers,
        store=out / "store.jsonl",
        progress=progress,
        stats=stats,
        # Suffix-only FI from golden-run snapshots (bit-identical; see
        # README "Campaign acceleration").
        checkpoint_interval="auto",
    )
    cells = result.cells
    print(stats.summary(), flush=True)

    write_cells_csv(cells, out / "cells.csv")
    fig1 = format_avf_figure(
        cells, REGISTER_FILE,
        "Fig. 1 - Register File AVF (fault injection vs ACE analysis)",
    )
    fig2 = format_avf_figure(
        [c for c in cells if c.uses_local_memory], LOCAL_MEMORY,
        "Fig. 2 - Local Memory AVF (fault injection vs ACE analysis)",
    )
    fig3 = format_epf_figure(cells)
    ace = format_ace_vs_fi(cells)

    # Control-structure AVF: a second matrix over the same store (the
    # golden jobs are shared by fingerprint, so only plan/shard/cell
    # jobs for the control sites execute).
    control_result = run_campaign(
        gpus=list_scaled_gpus(),
        scale=scale,
        samples=samples,
        seed=1,
        structures=CONTROL_STRUCTURES,
        workers=workers,
        store=out / "store.jsonl",
        progress=progress,
        stats=stats,
        checkpoint_interval="auto",
    )
    write_cells_csv(control_result.cells, out / "cells_control.csv")
    control = format_control_avf(control_result.cells, CONTROL_STRUCTURES)

    for name, text in (("fig1.txt", fig1), ("fig2.txt", fig2),
                       ("fig3.txt", fig3), ("ace_vs_fi.txt", ace),
                       ("control_avf.txt", control)):
        (out / name).write_text(text + "\n")
        print("\n" + text, flush=True)

    meta = {
        "samples": samples,
        "scale": scale,
        "seed": 1,
        "workers": workers,
        "wall_time_s": round(time.time() - start, 1),
        "cells": len(cells),
        "jobs_total": stats.total,
        "jobs_cached": stats.cached,
        "jobs_executed": stats.executed,
    }
    (out / "meta.json").write_text(json.dumps(meta, indent=2))
    print(f"\ndone in {meta['wall_time_s']}s -> {out}/", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
