"""Run the complete evaluation matrix once and emit every figure.

The campaigns are the two checked-in spec files —
``examples/specs/full_datapath.toml`` (Fig. 1/2/3 share its cells)
and ``examples/specs/full_control.toml`` (the control-structure AVF
report) — so the full-paper reproduction is exactly reproducible from
versioned artifacts; the CLI arguments below only *override* the
specs' samples/scale for resized runs. Both campaigns run on the
job-graph engine against one persistent result store in the output
directory: golden runs are shared by fingerprint, a run killed
half-way resumes from its finished jobs on the next invocation, and a
re-run of a complete campaign executes nothing. This is what
EXPERIMENTS.md records. Usage::

    python scripts/run_full_experiments.py [samples] [scale] [outdir] [workers]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.arch.structures import LOCAL_MEMORY, REGISTER_FILE
from repro.engine import CampaignStats, run_campaign
from repro.reliability.report import (
    format_ace_vs_fi,
    format_avf_figure,
    format_control_avf,
    format_epf_figure,
    write_cells_csv,
)
from repro.spec import CampaignSpec

SPEC_DIR = Path(__file__).resolve().parent.parent / "examples" / "specs"
DATAPATH_SPEC = SPEC_DIR / "full_datapath.toml"
CONTROL_SPEC = SPEC_DIR / "full_control.toml"


def main() -> int:
    outdir = sys.argv[3] if len(sys.argv) > 3 else "results"
    workers = int(sys.argv[4]) if len(sys.argv) > 4 else 1

    overrides = {}
    if len(sys.argv) > 1:
        overrides["samples"] = int(sys.argv[1])
    if len(sys.argv) > 2:
        overrides["scale"] = sys.argv[2]
    spec = CampaignSpec.from_file(DATAPATH_SPEC).replace(**overrides)
    control_spec = CampaignSpec.from_file(CONTROL_SPEC).replace(**overrides)

    out = Path(outdir)
    out.mkdir(parents=True, exist_ok=True)

    start = time.time()

    def progress(cell):
        print(
            f"[{time.time() - start:7.1f}s] {cell.gpu:<26} {cell.workload:<12} "
            f"cycles={cell.cycles:<8} rf_fi={cell.avf_fi(REGISTER_FILE):.3f} "
            f"rf_ace={cell.avf_ace(REGISTER_FILE):.3f} "
            f"lm_fi={cell.avf_fi(LOCAL_MEMORY):.3f} "
            f"epf={cell.epf.epf:.2e}",
            flush=True,
        )

    stats = CampaignStats()
    result = run_campaign(
        spec,
        workers=workers,
        store=out / "store.jsonl",
        progress=progress,
        stats=stats,
    )
    cells = result.cells
    print(stats.summary(), flush=True)

    write_cells_csv(cells, out / "cells.csv")
    fig1 = format_avf_figure(
        cells, REGISTER_FILE,
        "Fig. 1 - Register File AVF (fault injection vs ACE analysis)",
    )
    fig2 = format_avf_figure(
        [c for c in cells if c.uses_local_memory], LOCAL_MEMORY,
        "Fig. 2 - Local Memory AVF (fault injection vs ACE analysis)",
    )
    fig3 = format_epf_figure(cells)
    ace = format_ace_vs_fi(cells)

    # Control-structure AVF: the companion spec over the same store
    # (the golden jobs are shared by fingerprint, so only plan/shard/
    # cell jobs for the control sites execute).
    def control_progress(cell):
        print(
            f"[{time.time() - start:7.1f}s] {cell.gpu:<26} "
            f"{cell.workload:<12} cycles={cell.cycles:<8} "
            f"[control structures]",
            flush=True,
        )

    control_result = run_campaign(
        control_spec,
        workers=workers,
        store=out / "store.jsonl",
        progress=control_progress,
        stats=stats,
    )
    write_cells_csv(control_result.cells, out / "cells_control.csv")
    control = format_control_avf(
        control_result.cells, control_spec.resolved_structures())

    for name, text in (("fig1.txt", fig1), ("fig2.txt", fig2),
                       ("fig3.txt", fig3), ("ace_vs_fi.txt", ace),
                       ("control_avf.txt", control)):
        (out / name).write_text(text + "\n")
        print("\n" + text, flush=True)

    meta = {
        "specs": [str(DATAPATH_SPEC), str(CONTROL_SPEC)],
        "samples": spec.resolved_samples(),
        "scale": spec.resolved_scale(),
        "seed": spec.seed,
        "workers": workers,
        "wall_time_s": round(time.time() - start, 1),
        "cells": len(cells),
        "jobs_total": stats.total,
        "jobs_cached": stats.cached,
        "jobs_executed": stats.executed,
    }
    (out / "meta.json").write_text(json.dumps(meta, indent=2))
    print(f"\ndone in {meta['wall_time_s']}s -> {out}/", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
