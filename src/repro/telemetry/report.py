"""Rendering for ``repro-experiments profile STORE``.

Consumes the ``cell_profile`` / ``campaign_profile`` events a profiled
campaign appends to the telemetry stream (see
:mod:`repro.telemetry.profile` for how they are collected) and renders
the phase-time breakdown, the per-ISA opcode-class dispatch mix, and a
"top cost centers" list per (workload x fault model x structures)
group. Pure functions over already-loaded event dicts, so tests and
notebooks can drive them without a CLI.
"""

from __future__ import annotations

from .profile import PHASES, merge_profiles

#: cell_profile fields that identify a report group, in display order.
GROUP_KEYS = ("workload", "fault_model", "structures")


def _group_label(event: dict) -> str:
    parts = []
    for key in GROUP_KEYS:
        value = event.get(key)
        if isinstance(value, (list, tuple)):
            value = "+".join(str(v) for v in value)
        parts.append(str(value) if value is not None else "?")
    return " x ".join(parts)


def aggregate_profiles(events) -> dict:
    """Fold a telemetry event stream into profile aggregates.

    Returns ``{"total": merged-profile-or-None, "groups": {label:
    merged-profile}, "cells": n, "campaigns": n}`` where each merged
    profile is in ``ProfileCollector.as_dict()`` format. ``groups``
    come from ``cell_profile`` events; ``total`` prefers the driver's
    ``campaign_profile`` summaries (summing across campaigns in a
    sweep) and falls back to summing the cells when a run was
    interrupted before the summary was written.
    """
    total = None
    groups: dict = {}
    cell_sum = None
    cells = 0
    campaigns = 0
    for event in events:
        kind = event.get("event")
        if kind == "cell_profile":
            cells += 1
            profile = event.get("profile")
            label = _group_label(event)
            groups[label] = merge_profiles(groups.get(label), profile)
            cell_sum = merge_profiles(cell_sum, profile)
        elif kind == "campaign_profile":
            campaigns += 1
            total = merge_profiles(total, event.get("profile"))
    if total is None:
        total = cell_sum
    return {"total": total, "groups": groups, "cells": cells,
            "campaigns": campaigns}


def _phase_rows(profile: dict):
    """(name, seconds, share, calls) rows for known-then-extra phases."""
    phases = profile.get("phases", {})
    calls = profile.get("phase_calls", {})
    ordered = [name for name in PHASES if name in phases]
    ordered += sorted(set(phases) - set(PHASES))
    total = sum(phases.values()) or 1.0
    return [(name, phases[name], phases[name] / total,
             calls.get(name, 0)) for name in ordered]


def _format_phase_table(profile: dict, indent: str = "  ") -> list:
    lines = []
    rows = _phase_rows(profile)
    if not rows:
        return [indent + "(no phase timings recorded)"]
    width = max(len(name) for name, *_ in rows)
    for name, seconds, share, calls in rows:
        lines.append(
            f"{indent}{name:<{width}}  {seconds:>9.3f}s  {share:>6.1%}"
            f"  ({calls} calls)")
    total = sum(seconds for _, seconds, _, _ in rows)
    lines.append(f"{indent}{'total':<{width}}  {total:>9.3f}s  {1:>6.1%}")
    return lines


def _format_dispatch_table(profile: dict, indent: str = "  ") -> list:
    dispatch = profile.get("dispatch", {})
    if not dispatch:
        return [indent + "(no dispatch counts recorded)"]
    classes = sorted({cls for per_isa in dispatch.values()
                      for cls in per_isa})
    lines = []
    header = f"{indent}{'isa':<6}" + "".join(
        f"{cls:>9}" for cls in classes) + f"{'total':>11}"
    lines.append(header)
    for isa in sorted(dispatch):
        per_isa = dispatch[isa]
        row = f"{indent}{isa:<6}" + "".join(
            f"{per_isa.get(cls, 0):>9}" for cls in classes)
        lines.append(row + f"{sum(per_isa.values()):>11}")
    return lines


def _format_counters(profile: dict, indent: str = "  ") -> list:
    counters = profile.get("counters", {})
    ordered = [k for k in ("warp_issues", "memory_ops", "checkpoint_hit",
                           "checkpoint_miss", "digest_checks",
                           "memo_hits", "memo_misses", "memo_collisions")
               if k in counters]
    ordered += sorted(k for k in counters if k not in ordered)
    if not ordered:
        return [indent + "(no counters recorded)"]
    width = max(len(k) for k in ordered)
    return [f"{indent}{k:<{width}}  {counters[k]}" for k in ordered]


def top_cost_centers(groups: dict, limit: int = 8) -> list:
    """Largest (group, phase) exclusive-seconds pairs across the run."""
    centers = []
    for label, profile in groups.items():
        for name, seconds in profile.get("phases", {}).items():
            centers.append((seconds, label, name))
    centers.sort(key=lambda c: (-c[0], c[1], c[2]))
    return centers[:limit]


def format_profile(store_path, aggregates: dict, *,
                   work_s: float | None = None) -> str:
    """Render the ``profile STORE`` report panel.

    ``work_s`` is the campaign's own accounting of cell work
    (golden_time_s + fi_time_s summed over profiled cells); when
    given, a coverage line reports how much of it the phase timers
    attribute.
    """
    lines = [f"profile: {store_path}"]
    total = aggregates.get("total")
    cells = aggregates.get("cells", 0)
    if total is None:
        lines.append("  no profile events recorded")
        lines.append("  (re-run the campaign with --profile, or set"
                     " profile = true in the spec)")
        return "\n".join(lines)
    campaigns = aggregates.get("campaigns", 0)
    lines.append(f"  profiled cells: {cells}"
                 f"  campaign summaries: {campaigns}")
    lines.append("")
    lines.append("phase breakdown (exclusive wall time)")
    lines.extend(_format_phase_table(total))
    attributed = sum(total.get("phases", {}).values())
    if work_s is not None and work_s > 0:
        lines.append(f"  coverage: {attributed:.3f}s attributed of"
                     f" {work_s:.3f}s cell work"
                     f" ({attributed / work_s:.1%})")
    lines.append("")
    lines.append("opcode-class dispatch mix")
    lines.extend(_format_dispatch_table(total))
    lines.append("")
    lines.append("counters")
    lines.extend(_format_counters(total))
    groups = aggregates.get("groups", {})
    if groups:
        lines.append("")
        lines.append("per (workload x fault model x structures)")
        for label in sorted(groups):
            lines.append(f"  {label}")
            lines.extend(_format_phase_table(groups[label], indent="    "))
        centers = top_cost_centers(groups)
        if centers:
            lines.append("")
            lines.append("top cost centers")
            for seconds, label, name in centers:
                lines.append(f"  {seconds:>9.3f}s  {label} :: {name}")
    return "\n".join(lines)
