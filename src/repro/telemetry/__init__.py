"""``repro.telemetry`` — the engine observability layer.

Structured telemetry for campaign execution: the scheduler, the
in-process golden cache and the matrix driver emit schema-versioned
events (job start/finish/cached, queue depth, worker occupancy, cache
hit/miss, per-cell throughput) into a :class:`TelemetryHub` fanning
out to pluggable sinks — an in-memory tape for tests, a JSONL file
written next to the result store, or a streaming callback.

Telemetry is strictly observability-only: result stores produced with
it on and off are bit-identical, no job fingerprint includes the
telemetry setting, and a failing sink is dropped-from rather than
propagated. ``repro-experiments status STORE`` renders the recorded
stream (:mod:`repro.telemetry.status`).
"""

from repro.telemetry.sink import (
    TELEMETRY_SCHEMA_VERSION,
    CallbackTelemetrySink,
    JsonlTelemetrySink,
    MemoryTelemetrySink,
    TelemetryHub,
    TelemetrySink,
    load_telemetry,
    resolve_telemetry,
    telemetry_path_for_store,
)
from repro.telemetry.status import (
    CampaignStatus,
    aggregate_events,
    format_status,
)

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "CallbackTelemetrySink",
    "CampaignStatus",
    "JsonlTelemetrySink",
    "MemoryTelemetrySink",
    "TelemetryHub",
    "TelemetrySink",
    "aggregate_events",
    "format_status",
    "load_telemetry",
    "resolve_telemetry",
    "telemetry_path_for_store",
]
