"""``repro.telemetry`` — the engine observability layer.

Structured telemetry for campaign execution: the scheduler, the
in-process golden cache and the matrix driver emit schema-versioned
events (job start/finish/cached, queue depth, worker occupancy, cache
hit/miss, per-cell throughput) into a :class:`TelemetryHub` fanning
out to pluggable sinks — an in-memory tape for tests, a JSONL file
written next to the result store, or a streaming callback.

On top of the bus sits the hot-path profiling layer
(:mod:`repro.telemetry.profile`): per-phase wall-time attribution and
simulator dispatch counters collected inside cells, emitted as
``cell_profile``/``campaign_profile`` events and rendered by
``repro-experiments profile STORE`` (:mod:`repro.telemetry.report`).
:class:`TelemetryTail` (:mod:`repro.telemetry.follow`) live-tails a
growing JSONL stream for ``status --follow``.

Telemetry and profiling are strictly observability-only: result stores
produced with them on and off are bit-identical, no job fingerprint
includes either setting, and a failing sink is dropped-from rather
than propagated. ``repro-experiments status STORE`` renders the
recorded stream (:mod:`repro.telemetry.status`).
"""

from repro.telemetry.follow import TelemetryTail
from repro.telemetry.profile import PHASES, ProfileCollector, merge_profiles
from repro.telemetry.report import (
    aggregate_profiles,
    format_profile,
    top_cost_centers,
)
from repro.telemetry.sink import (
    TELEMETRY_SCHEMA_VERSION,
    CallbackTelemetrySink,
    JsonlTelemetrySink,
    MemoryTelemetrySink,
    TelemetryHub,
    TelemetrySink,
    load_telemetry,
    load_telemetry_events,
    resolve_telemetry,
    telemetry_path_for_store,
)
from repro.telemetry.status import (
    CampaignStatus,
    aggregate_events,
    format_status,
)

__all__ = [
    "PHASES",
    "TELEMETRY_SCHEMA_VERSION",
    "CallbackTelemetrySink",
    "CampaignStatus",
    "JsonlTelemetrySink",
    "MemoryTelemetrySink",
    "ProfileCollector",
    "TelemetryHub",
    "TelemetrySink",
    "TelemetryTail",
    "aggregate_events",
    "aggregate_profiles",
    "format_profile",
    "format_status",
    "load_telemetry",
    "load_telemetry_events",
    "merge_profiles",
    "resolve_telemetry",
    "telemetry_path_for_store",
    "top_cost_centers",
]
