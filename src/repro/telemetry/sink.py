"""Engine telemetry: sinks and the fan-out hub.

The campaign engine (scheduler, golden cache, matrix driver) emits a
stream of structured *telemetry events* describing how a campaign is
executing — job starts/finishes, cache hits, queue depth, worker
occupancy, per-cell throughput. Events are plain JSON-safe dicts with
a fixed envelope::

    {"v": 1, "seq": 17, "ts": 1754650000.123, "event": "job_finish", ...}

``v`` is the telemetry schema version, ``seq`` a per-hub monotonically
increasing sequence number, ``ts`` wall-clock unix time. Everything
after the envelope is event-specific (see :mod:`repro.telemetry.status`
for the consumer's view of each event type).

Telemetry is **strictly observability-only**: nothing in the engine
reads an event back, sinks never see job payloads by reference (only
scalar summaries), and result stores produced with telemetry on and
off are bit-identical — ``scripts/diff_stores.py`` gates exactly that
in CI. A sink that raises is dropped-from, never propagated: a full
disk must not kill a multi-hour campaign.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.errors import ConfigError

#: Version of the telemetry event schema (the ``v`` envelope field).
#: Bump when an event type changes incompatibly; readers should skip
#: events with a newer major version than they understand.
TELEMETRY_SCHEMA_VERSION = 1


class TelemetrySink:
    """Interface for consumers of engine telemetry events.

    ``emit`` receives one complete event dict (envelope + fields) per
    call, in emission order. Sinks must treat events as read-only —
    the hub hands every sink the same dict. ``close`` flushes and
    releases any resources; emitting after close is undefined.
    """

    def emit(self, event: dict) -> None:
        """Consume one telemetry event."""

    def close(self) -> None:
        """Flush and release resources (default: nothing to do)."""


class MemoryTelemetrySink(TelemetrySink):
    """Keep every event in a list (tests, in-process dashboards)."""

    def __init__(self):
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def of_type(self, event_type: str) -> list[dict]:
        """The recorded events of one type, in emission order."""
        return [e for e in self.events if e.get("event") == event_type]


class CallbackTelemetrySink(TelemetrySink):
    """Stream every event to a callable (live monitors, bridges)."""

    def __init__(self, callback):
        if not callable(callback):
            raise ConfigError(
                f"CallbackTelemetrySink needs a callable, got "
                f"{type(callback).__name__}")
        self.callback = callback

    def emit(self, event: dict) -> None:
        self.callback(event)


class JsonlTelemetrySink(TelemetrySink):
    """Append one JSON line per event to a file.

    The file is opened lazily on the first event and **appended** to,
    so several campaigns against one result store accumulate into one
    durable activity log (the `repro-experiments status` data source).
    Lines are flushed per event — a reader tailing the file sees
    events promptly — but not fsynced: telemetry is an observability
    stream, not a result of record, and must stay cheap.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None

    def emit(self, event: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(event) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TelemetryHub(TelemetrySink):
    """Stamp events with the envelope and fan them out to sinks.

    The hub is what instrumented code holds: ``hub.record("job_start",
    kind="shard", ...)`` builds the enveloped event and hands it to
    every sink in registration order. Sink exceptions are swallowed
    and counted in ``dropped`` — observability must never change a
    campaign's outcome, so a failing sink cannot propagate into the
    scheduler.

    A hub is itself a :class:`TelemetrySink` (``emit`` re-stamps the
    envelope around an already-built event's fields), so hubs nest.
    """

    def __init__(self, *sinks: TelemetrySink):
        self.sinks: list[TelemetrySink] = [s for s in sinks if s is not None]
        self.seq = 0
        self.dropped = 0

    def add_sink(self, sink: TelemetrySink) -> None:
        self.sinks.append(sink)

    def record(self, event_type: str, **fields) -> dict:
        """Emit one event; returns the enveloped dict (for tests)."""
        event = {
            "v": TELEMETRY_SCHEMA_VERSION,
            "seq": self.seq,
            "ts": time.time(),
            "event": event_type,
            **fields,
        }
        self.seq += 1
        for sink in self.sinks:
            try:
                sink.emit(event)
            except Exception:
                self.dropped += 1
        return event

    def emit(self, event: dict) -> None:
        fields = {k: v for k, v in event.items()
                  if k not in ("v", "seq", "ts")}
        self.record(fields.pop("event", "unknown"), **fields)

    def close(self) -> None:
        for sink in self.sinks:
            try:
                sink.close()
            except Exception:
                self.dropped += 1


def telemetry_path_for_store(store_path: str | Path) -> Path:
    """The canonical telemetry file for a result store.

    ``results/store.jsonl`` -> ``results/store.telemetry.jsonl`` —
    written next to the store so the activity log travels with the
    results it describes, and so ``repro-experiments status STORE``
    finds it without extra flags.
    """
    store_path = Path(store_path)
    return store_path.with_name(store_path.stem + ".telemetry.jsonl")


def load_telemetry_events(path: str | Path) -> tuple[list[dict], int]:
    """``(events, skipped)`` of one telemetry JSONL file, in file order.

    Torn trailing lines (a campaign killed — or still writing — mid-
    line) are skipped, not raised, including a line torn inside a
    multi-byte UTF-8 sequence: the file is read as bytes and each line
    decoded independently, so one bad line never poisons the rest.
    ``skipped`` counts the non-empty lines that failed to parse into a
    telemetry event, letting callers surface an in-flight write.
    """
    path = Path(path)
    events = []
    skipped = 0
    for line in path.read_bytes().split(b"\n"):
        if not line.strip():
            continue
        try:
            event = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            skipped += 1
            continue
        if isinstance(event, dict) and "event" in event:
            events.append(event)
        else:
            skipped += 1
    return events, skipped


def load_telemetry(path: str | Path) -> list[dict]:
    """Events of one telemetry JSONL file, in file order.

    Torn trailing lines (a campaign killed mid-write) are skipped, the
    same tolerance the result store applies to its own JSONL; use
    :func:`load_telemetry_events` to also learn how many lines were
    skipped.
    """
    return load_telemetry_events(path)[0]


def resolve_telemetry(setting, store) -> tuple[TelemetryHub | None, bool]:
    """Build the hub for one campaign's telemetry setting.

    ``setting`` is the :class:`~repro.spec.CampaignSpec` ``telemetry``
    field or an entry point's ``telemetry=`` argument:

    * ``None`` / ``False`` — telemetry off: ``(None, False)``;
    * ``True`` — JSONL sink next to the persistent result store
      (requires ``store`` to have a path);
    * a path — JSONL sink at that path;
    * a :class:`TelemetrySink` — wrapped in a fresh hub;
    * a :class:`TelemetryHub` — used as-is (caller keeps ownership).

    Returns ``(hub, owned)``; the campaign closes the hub at the end
    iff ``owned`` (a caller-provided hub/sink may outlive the run —
    sweeps share one hub across children).
    """
    if setting is None or setting is False:
        return None, False
    if isinstance(setting, TelemetryHub):
        return setting, False
    if isinstance(setting, TelemetrySink):
        return TelemetryHub(setting), True
    if setting is True:
        store_path = getattr(store, "path", None)
        if store_path is None:
            raise ConfigError(
                "telemetry=True writes the event log next to the result "
                "store, but this campaign has no persistent store; give "
                "a store (--resume STORE) or an explicit telemetry path")
        return TelemetryHub(
            JsonlTelemetrySink(telemetry_path_for_store(store_path))), True
    if isinstance(setting, (str, Path)):
        return TelemetryHub(JsonlTelemetrySink(setting)), True
    raise ConfigError(
        f"telemetry must be True/False, a path, a TelemetrySink or a "
        f"TelemetryHub, got {type(setting).__name__}")
