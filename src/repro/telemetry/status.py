"""The `repro-experiments status STORE` view: aggregate + render.

Consumes the engine's telemetry event stream (see
:mod:`repro.telemetry.sink` for the envelope and the emitters in
:mod:`repro.engine.scheduler` / :mod:`repro.engine.matrix` for the
event types) together with the result store's record counts, and
renders one text panel describing a running or finished campaign:

* per-kind job counts, cached vs executed, and the golden-cache hit
  rate — is the resume/cache machinery actually saving work?
* worker occupancy — time-weighted busy fraction of the process pool,
  from per-job wall times (in-worker time when the payload reports
  it, so pool queue wait does not inflate the number);
* injection throughput (samples/sec from the FI shards' wall time)
  and, for an in-progress campaign, an ETA extrapolated from the
  cell completion rate so far.

Everything here is a pure function of (events, store counts) — the
CLI wrapper in :mod:`repro.experiments.runner` only does file I/O —
so tests render against a checked-in fixture store byte for byte.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class CampaignStatus:
    """Aggregated view of one telemetry event stream."""

    events: int = 0
    #: campaign_begin / campaign_end pairs seen (a sweep has many).
    campaigns_begun: int = 0
    campaigns_ended: int = 0
    #: latest campaign identity.
    name: str | None = None
    spec: str | None = None
    workers: int = 1
    began_ts: float | None = None
    last_ts: float | None = None
    #: kind -> {"cached": n, "executed": n, "started": n} from events.
    jobs: dict = field(default_factory=dict)
    golden_cache_hits: int = 0
    golden_cache_misses: int = 0
    #: total in-worker seconds across executed jobs (occupancy basis).
    busy_s: float = 0.0
    cells_total: int = 0
    cells_done: int = 0
    injections: int = 0
    resimulated: int = 0
    fi_time_s: float = 0.0
    max_queue_depth: int = 0
    sweep_campaigns: int = 0
    #: fast-path configuration from campaign_begin (None on streams
    #: recorded before these fields existed — render as unknown, never
    #: crash on their absence).
    backend: str | None = None
    suffix_memo: bool | None = None
    #: suffix-memo counters folded from profile events (all zero when
    #: the campaign was not profiled or predates the memo).
    memo_hits: int = 0
    memo_misses: int = 0
    memo_collisions: int = 0
    #: campaign-service fleet counters (all zero on local campaigns):
    #: distinct registered worker ids and the lease/push traffic the
    #: coordinator's state machine processed.
    fleet_workers: set = field(default_factory=set)
    leases_granted: int = 0
    leases_expired: int = 0
    pushes_ok: int = 0
    pushes_duplicate: int = 0
    pushes_rejected: int = 0

    # ------------------------------------------------------------------
    @property
    def in_progress(self) -> bool:
        return self.campaigns_begun > self.campaigns_ended

    @property
    def elapsed_s(self) -> float:
        if self.began_ts is None or self.last_ts is None:
            return 0.0
        return max(0.0, self.last_ts - self.began_ts)

    @property
    def jobs_cached(self) -> int:
        return sum(b["cached"] for b in self.jobs.values())

    @property
    def jobs_executed(self) -> int:
        return sum(b["executed"] for b in self.jobs.values())

    @property
    def utilization(self) -> float | None:
        """Time-weighted busy fraction of the worker pool [0, 1]."""
        if self.elapsed_s <= 0 or self.workers < 1:
            return None
        return min(1.0, self.busy_s / (self.workers * self.elapsed_s))

    @property
    def samples_per_s(self) -> float | None:
        """Injection throughput from the FI shards' wall time."""
        if self.fi_time_s <= 0:
            return None
        return self.resimulated / self.fi_time_s

    @property
    def eta_s(self) -> float | None:
        """Remaining wall time, extrapolated from cell throughput."""
        if not self.in_progress or self.cells_done <= 0:
            return None
        remaining = max(0, self.cells_total - self.cells_done)
        return remaining * self.elapsed_s / self.cells_done


def aggregate_events(events: list[dict]) -> CampaignStatus:
    """Fold a telemetry event stream into one :class:`CampaignStatus`."""
    status = CampaignStatus()
    # Memo counters: prefer the driver's campaign_profile summaries
    # (authoritative totals), fall back to summing cell_profile events
    # when a run was interrupted before the summary was written.
    memo_keys = ("memo_hits", "memo_misses", "memo_collisions")
    cell_memo = dict.fromkeys(memo_keys, 0)
    campaign_memo = dict.fromkeys(memo_keys, 0)
    saw_campaign_profile = False
    for event in events:
        status.events += 1
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if status.began_ts is None:
                status.began_ts = float(ts)
            status.last_ts = float(ts)
        kind = event.get("kind")
        bucket = None
        if kind is not None:
            bucket = status.jobs.setdefault(
                kind, {"cached": 0, "executed": 0, "started": 0})
        etype = event.get("event")
        if etype == "campaign_begin":
            status.campaigns_begun += 1
            status.name = event.get("name") or status.name
            status.spec = event.get("spec") or status.spec
            status.workers = max(status.workers, int(event.get("workers", 1)))
            status.cells_total += int(event.get("cells", 0))
            backend = event.get("backend")
            if isinstance(backend, str) and backend:
                status.backend = backend
            suffix_memo = event.get("suffix_memo")
            if isinstance(suffix_memo, bool):
                status.suffix_memo = suffix_memo
        elif etype == "campaign_end":
            status.campaigns_ended += 1
        elif etype == "sweep_begin":
            status.sweep_campaigns += int(event.get("campaigns", 0))
            status.name = event.get("name") or status.name
        elif etype == "job_start" and bucket is not None:
            bucket["started"] += 1
            status.max_queue_depth = max(
                status.max_queue_depth, int(event.get("queue_depth", 0)))
        elif etype == "job_finish" and bucket is not None:
            bucket["executed"] += 1
            busy = event.get("work_s")
            if busy is None:
                busy = event.get("wall_s", 0.0)
            status.busy_s += float(busy)
        elif etype == "job_cached" and bucket is not None:
            bucket["cached"] += 1
        elif etype == "golden_cache":
            if event.get("hit"):
                status.golden_cache_hits += 1
            else:
                status.golden_cache_misses += 1
        elif etype == "cell_finish":
            status.cells_done += 1
            status.injections += int(event.get("injections", 0))
            status.resimulated += int(event.get("resimulated", 0))
            status.fi_time_s += float(event.get("fi_time_s", 0.0))
        elif etype == "worker_register":
            status.fleet_workers.add(event.get("worker"))
        elif etype == "lease_grant":
            status.leases_granted += 1
            status.fleet_workers.add(event.get("worker"))
        elif etype == "lease_expire":
            status.leases_expired += 1
        elif etype == "job_push":
            if not event.get("ok"):
                status.pushes_rejected += 1
            elif event.get("duplicate"):
                status.pushes_duplicate += 1
            else:
                status.pushes_ok += 1
        elif etype in ("cell_profile", "campaign_profile"):
            profile = event.get("profile")
            counters = (profile.get("counters")
                        if isinstance(profile, dict) else None)
            sink = cell_memo
            if etype == "campaign_profile":
                saw_campaign_profile = True
                sink = campaign_memo
            if isinstance(counters, dict):
                for key in memo_keys:
                    value = counters.get(key, 0)
                    if isinstance(value, (int, float)):
                        sink[key] += int(value)
    chosen = campaign_memo if saw_campaign_profile else cell_memo
    status.memo_hits = chosen["memo_hits"]
    status.memo_misses = chosen["memo_misses"]
    status.memo_collisions = chosen["memo_collisions"]
    return status


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def _duration(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _rate(part: int, whole: int) -> str:
    if whole <= 0:
        return "n/a"
    return f"{100.0 * part / whole:.0f}%"


def format_status(store_path, store_counts: dict, status: CampaignStatus,
                  telemetry_path=None, now: float | None = None) -> str:
    """The status panel for one (store, telemetry stream) pair.

    ``store_counts`` is ``ResultStore.counts_by_kind()``; ``status``
    the aggregated telemetry (``aggregate_events([])`` when no
    telemetry was recorded). ``now`` pins the clock for tests.
    """
    title = f"Campaign status — {store_path}"
    lines = [title, "=" * len(title), ""]

    store_total = sum(store_counts.values())
    per_kind = ", ".join(
        f"{kind}={store_counts[kind]}"
        for kind in ("golden", "plan", "shard", "cell")
        if kind in store_counts)
    extra = ", ".join(f"{k}={n}" for k, n in sorted(store_counts.items())
                      if k not in ("golden", "plan", "shard", "cell"))
    detail = ", ".join(part for part in (per_kind, extra) if part)
    lines.append(f"store: {store_total} finished job records"
                 + (f" ({detail})" if detail else ""))

    if status.events == 0:
        lines.append("telemetry: none recorded"
                     + (f" (no file at {telemetry_path})"
                        if telemetry_path else ""))
        lines.append("")
        lines.append("Run the campaign with telemetry enabled "
                     "(--telemetry, or telemetry=true in the spec) to get "
                     "job timing, cache hit rates, worker occupancy and "
                     "throughput here.")
        return "\n".join(lines)

    label = status.name or "(unnamed campaign)"
    if status.sweep_campaigns:
        label += f" [sweep of {status.sweep_campaigns} campaigns]"
    lines.append(f"campaign: {label}")
    if status.spec:
        lines.append(f"spec: {status.spec}")

    if status.in_progress:
        state = "IN PROGRESS"
        now = time.time() if now is None else now
        if status.last_ts is not None:
            state += f" (last event {_duration(max(0.0, now - status.last_ts))} ago)"
    else:
        state = f"completed in {_duration(status.elapsed_s)}"
    lines.append(f"state: {state}")
    lines.append("")

    total = status.jobs_cached + status.jobs_executed
    lines.append(
        f"jobs: {total} — {status.jobs_cached} cached "
        f"({_rate(status.jobs_cached, total)} cache hit rate), "
        f"{status.jobs_executed} executed")
    for kind in ("golden", "plan", "shard", "cell"):
        bucket = status.jobs.get(kind)
        if bucket is None:
            continue
        lines.append(
            f"  {kind:<8} {bucket['cached'] + bucket['executed']:>6} "
            f"({bucket['cached']} cached, {bucket['executed']} executed)")
    for kind, bucket in sorted(status.jobs.items()):
        if kind in ("golden", "plan", "shard", "cell"):
            continue
        lines.append(
            f"  {kind:<8} {bucket['cached'] + bucket['executed']:>6} "
            f"({bucket['cached']} cached, {bucket['executed']} executed)")

    probes = status.golden_cache_hits + status.golden_cache_misses
    if probes:
        lines.append(
            f"golden cache: {status.golden_cache_hits}/{probes} in-process "
            f"hits ({_rate(status.golden_cache_hits, probes)})")
    lines.append("")

    util = status.utilization
    occupancy = (f"{util * 100:.0f}% mean occupancy"
                 if util is not None else "occupancy n/a")
    lines.append(f"workers: {status.workers} ({occupancy}, "
                 f"peak queue depth {status.max_queue_depth})")

    cells = f"cells: {status.cells_done}/{status.cells_total} done"
    rate = status.samples_per_s
    if rate is not None:
        cells += (f"; throughput {rate:.1f} samples/s "
                  f"({status.resimulated} of {status.injections} "
                  f"injections re-simulated)")
    lines.append(cells)

    if status.backend is not None or status.suffix_memo is not None:
        memo_state = ("n/a" if status.suffix_memo is None
                      else "on" if status.suffix_memo else "off")
        fast = (f"fast path: backend={status.backend or 'n/a'}, "
                f"suffix memo {memo_state}")
        probes = status.memo_hits + status.memo_misses
        if probes:
            fast += (f" — {status.memo_hits}/{probes} memo hits "
                     f"({_rate(status.memo_hits, probes)})")
            if status.memo_collisions:
                fast += f", {status.memo_collisions} digest collisions"
        lines.append(fast)
    if status.fleet_workers or status.leases_granted:
        fleet = (f"fleet: {len(status.fleet_workers)} worker(s) — "
                 f"{status.leases_granted} leases granted, "
                 f"{status.leases_expired} expired; pushes: "
                 f"{status.pushes_ok} ok, {status.pushes_duplicate} "
                 f"duplicate, {status.pushes_rejected} rejected")
        lines.append(fleet)
    if status.in_progress:
        eta = status.eta_s
        lines.append(f"ETA: ~{_duration(eta)} at the current cell rate"
                     if eta is not None else
                     "ETA: n/a (no cell finished yet)")
    return "\n".join(lines)
