"""Hot-path profiling: where cell wall time and dispatch actually go.

The telemetry bus (:mod:`repro.telemetry.sink`) observes the *engine*
— jobs, queues, caches — but is blind inside a cell. This module adds
the attribution layer underneath it: a :class:`ProfileCollector` of
monotonic **phase timers** (golden simulation, liveness pruning,
snapshot capture, restore, suffix simulation, convergence digests,
cell reduction) and **counters** (per-ISA opcode-class dispatch,
memory ops, warp issues, checkpoint hits, early-exit reasons per
outcome class), feeding the ``cell_profile`` / ``campaign_profile``
telemetry events and the ``repro-experiments profile STORE`` report.

Design constraints, in order:

* **Near-zero overhead when disabled.** The instrumented hot paths
  (one hook per warp-instruction in ``sim/sass_core.py`` /
  ``si_core.py``) read one module global and branch; with profiling
  off that is the entire cost. Coarser-grained code uses
  :func:`phase`, which returns a shared no-op context manager when no
  collector is active.
* **Strictly observability-only.** Profiling joins no job
  fingerprint; collected data travels between workers and the driver
  under the ephemeral ``_profile`` payload key, which the result
  store and the in-process golden cache strip — so stores produced
  with profiling on and off are bit-identical (the same CI-gated
  guarantee as the telemetry setting itself).
* **Phase times are exclusive.** Phases nest (a digest check happens
  inside a suffix simulation, a snapshot capture inside a golden
  run); entering a nested phase suspends the parent's clock, so the
  per-phase seconds partition the instrumented wall time and the
  report's shares sum to ~100% of cell work.

Activation is per-thread-of-work, not global configuration: a job
body builds a local collector and runs under
``with collecting(collector): ...``; the module-global :data:`ACTIVE`
is what the hot paths consult.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

#: Canonical phase names, in report order. ``golden`` also covers the
#: golden-prefix re-runs pooled shard workers use to rebuild snapshot
#: sets (the same simulation, re-derived).
PHASES = (
    "golden",
    "prune",
    "snapshot_capture",
    "restore",
    "suffix_sim",
    "digest",
    "reduce",
)

#: The collector the instrumented hot paths consult. ``None`` means
#: profiling is off and every hook short-circuits after one global
#: read. Set via :func:`collecting`, never assigned directly.
ACTIVE = None


class _NullPhase:
    """Shared no-op context manager for :func:`phase` with profiling off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()


class _PhaseScope:
    """Context manager binding one :meth:`ProfileCollector.enter` call."""

    __slots__ = ("_collector", "_name")

    def __init__(self, collector, name):
        self._collector = collector
        self._name = name

    def __enter__(self):
        self._collector.enter(self._name)
        return self

    def __exit__(self, *exc):
        self._collector.exit()
        return False


class ProfileCollector:
    """Accumulates phase timings and counters for one unit of work.

    One collector per job body (golden / plan / shard) or reduction;
    the driver merges them per cell and per campaign. All state is
    plain data so ``as_dict()`` is JSON-safe and cheap.
    """

    __slots__ = ("phases", "phase_calls", "dispatch_counts", "counters",
                 "_stack")

    def __init__(self):
        #: phase name -> exclusive seconds (nested phases suspend it).
        self.phases: dict = {}
        #: phase name -> number of times entered.
        self.phase_calls: dict = {}
        #: isa name -> {latency_class: dispatched instruction count}.
        self.dispatch_counts: dict = {}
        #: flat event counters (memory_ops, warp_issues,
        #: checkpoint_hit/miss, digest_checks, ``exit:<reason>`` ...).
        self.counters: dict = {}
        # [name, slice_start] frames; top frame's clock is running.
        self._stack: list = []

    # ------------------------------------------------------------------
    # Phase timers (exclusive-time stack accounting)
    # ------------------------------------------------------------------
    def enter(self, name: str) -> None:
        """Start ``name``, suspending the enclosing phase's clock."""
        now = perf_counter()
        stack = self._stack
        if stack:
            top = stack[-1]
            self.phases[top[0]] = (
                self.phases.get(top[0], 0.0) + now - top[1])
        stack.append([name, now])
        self.phase_calls[name] = self.phase_calls.get(name, 0) + 1

    def exit(self) -> None:
        """End the current phase, resuming the enclosing one's clock."""
        now = perf_counter()
        name, start = self._stack.pop()
        self.phases[name] = self.phases.get(name, 0.0) + now - start
        if self._stack:
            self._stack[-1][1] = now

    def phase(self, name: str) -> _PhaseScope:
        """``with collector.phase("suffix_sim"): ...`` timing scope."""
        return _PhaseScope(self, name)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def dispatch(self, isa: str, latency_class: str, is_memory: bool) -> None:
        """One warp-instruction dispatch (the simulator hot-path hook)."""
        per_isa = self.dispatch_counts.get(isa)
        if per_isa is None:
            per_isa = self.dispatch_counts[isa] = {}
        per_isa[latency_class] = per_isa.get(latency_class, 0) + 1
        counters = self.counters
        counters["warp_issues"] = counters.get("warp_issues", 0) + 1
        if is_memory:
            counters["memory_ops"] = counters.get("memory_ops", 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # ------------------------------------------------------------------
    # Serialization + merging
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-safe snapshot (the ``_profile`` payload format)."""
        return {
            "phases": dict(self.phases),
            "phase_calls": dict(self.phase_calls),
            "dispatch": {isa: dict(classes)
                         for isa, classes in self.dispatch_counts.items()},
            "counters": dict(self.counters),
        }


def merge_profiles(into: dict | None, data: dict | None) -> dict | None:
    """Fold one ``as_dict()``-format profile into another (sums).

    Either side may be ``None`` (a cached dep carries no profile —
    profiling reports *executed* work only); the merge never mutates
    ``data``.
    """
    if data is None:
        return into
    if into is None:
        into = {"phases": {}, "phase_calls": {}, "dispatch": {},
                "counters": {}}
    for key in ("phases", "phase_calls", "counters"):
        bucket = into.setdefault(key, {})
        for name, value in data.get(key, {}).items():
            bucket[name] = bucket.get(name, 0) + value
    dispatch = into.setdefault("dispatch", {})
    for isa, classes in data.get("dispatch", {}).items():
        per_isa = dispatch.setdefault(isa, {})
        for cls, value in classes.items():
            per_isa[cls] = per_isa.get(cls, 0) + value
    return into


# ----------------------------------------------------------------------
# Module-level hooks (what instrumented code calls)
# ----------------------------------------------------------------------

@contextmanager
def collecting(collector: ProfileCollector):
    """Activate ``collector`` for the duration of the block.

    Nesting restores the previous collector on exit, so an inline
    campaign's driver-side reduction can profile while a worker-style
    body is active elsewhere on the stack.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = collector
    try:
        yield collector
    finally:
        ACTIVE = previous


def phase(name: str):
    """Timing scope against the active collector; no-op when inactive.

    For per-fault / per-capture granularity, not per-instruction —
    the disabled path still allocates nothing, but the enabled path
    takes two clock reads per scope.
    """
    collector = ACTIVE
    if collector is None:
        return _NULL_PHASE
    return collector.phase(name)


def count(name: str, n: int = 1) -> None:
    """Bump a flat counter on the active collector; no-op when inactive."""
    collector = ACTIVE
    if collector is not None:
        collector.count(name, n)
