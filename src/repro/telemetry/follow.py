"""Live-tailing of a telemetry JSONL stream for ``status --follow``.

A campaign's JsonlTelemetrySink appends one JSON object per line and
flushes per event, but a reader polling the file can still observe a
*partially written* final line (and, on resume with a fresh store, a
file that shrinks). :class:`TelemetryTail` owns that tolerance: it
remembers a byte offset, reads only what is new, buffers an
incomplete trailing line until its newline arrives, decodes each line
independently (a torn multi-byte UTF-8 sequence or half-written JSON
object is skipped and counted, never raised), and resets cleanly if
the file is truncated or not yet created.
"""

from __future__ import annotations

import json
from pathlib import Path


class TelemetryTail:
    """Incremental reader over an append-only telemetry JSONL file."""

    def __init__(self, path):
        self.path = Path(path)
        #: byte offset of the next unread byte in the file.
        self.offset = 0
        #: complete-but-undecodable or non-event lines seen so far.
        self.skipped = 0
        # Bytes of a trailing line whose newline has not arrived yet.
        self._partial = b""

    def poll(self) -> list:
        """Return telemetry events appended since the last poll.

        Safe to call before the file exists (returns ``[]``) and
        across truncation (restarts from the top). Only lines
        terminated by a newline are decoded; an in-flight final line
        waits in the buffer for the next poll.
        """
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self.offset:
            # Truncated (e.g. the store was rebuilt): start over.
            self.offset = 0
            self._partial = b""
        if size == self.offset:
            return []
        with self.path.open("rb") as handle:
            handle.seek(self.offset)
            chunk = handle.read()
        self.offset += len(chunk)
        data = self._partial + chunk
        lines = data.split(b"\n")
        self._partial = lines.pop()
        events = []
        for line in lines:
            if not line.strip():
                continue
            try:
                event = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                self.skipped += 1
                continue
            if isinstance(event, dict) and "event" in event:
                events.append(event)
            else:
                self.skipped += 1
        return events
