"""Fig. 2 — local/shared memory AVF by FI and ACE, with occupancy.

The paper's Fig. 2 covers only the seven benchmarks that allocate
local memory (backprop, dwtHaar1D, histogram, matrixMul, reduction,
scan, transpose); gaussian, kmeans and vectoradd use none and are
absent, exactly as here. Expected finding: ACE is very close to FI
for this structure (unlike the register file).
"""

from __future__ import annotations

from repro.arch.structures import LOCAL_MEMORY
from repro.kernels.registry import KERNEL_NAMES, get_workload
from repro.reliability.campaign import CellResult, run_matrix
from repro.reliability.report import format_avf_figure, write_cells_csv
from repro.spec import coerce_spec


def local_memory_workloads(scale: str = "small") -> list:
    """The Fig. 2 benchmark subset (local-memory users)."""
    return [
        name for name in KERNEL_NAMES
        if get_workload(name, scale).uses_local_memory
    ]


def run_fig2(spec=None, *, out_csv: str | None = None, progress=None,
             workers: int = 1, store=None, stats=None,
             **legacy) -> tuple[list[CellResult], str]:
    """Run the Fig. 2 campaign; returns (cells, formatted report).

    Spec fields left unset take this figure's defaults:
    ``structures=(local_memory,)`` and the local-memory benchmark
    subset. An explicit ``structures`` retargets the campaign; the
    report is then anchored on the first structure given. The legacy
    kwarg form builds the spec internally with a
    :class:`DeprecationWarning`.
    """
    spec = coerce_spec(spec, legacy, who="run_fig2")
    if spec.structures is None:
        spec = spec.replace(structures=(LOCAL_MEMORY,))
    if spec.workloads is None:
        spec = spec.replace(
            workloads=tuple(local_memory_workloads(spec.resolved_scale())))
    cells = run_matrix(spec, progress=progress, workers=workers,
                       store=store, stats=stats)
    report = format_avf_figure(
        cells, spec.structures[0],
        "Fig. 2 - Local Memory AVF (fault injection vs ACE analysis)"
        if spec.structures == (LOCAL_MEMORY,)
        else f"Fig. 2 campaign retargeted at {spec.structures[0]}",
    )
    if out_csv:
        write_cells_csv(cells, out_csv)
    return cells, report
