"""Fig. 2 — local/shared memory AVF by FI and ACE, with occupancy.

The paper's Fig. 2 covers only the seven benchmarks that allocate
local memory (backprop, dwtHaar1D, histogram, matrixMul, reduction,
scan, transpose); gaussian, kmeans and vectoradd use none and are
absent, exactly as here. Expected finding: ACE is very close to FI
for this structure (unlike the register file).
"""

from __future__ import annotations

from repro.arch.scaling import list_scaled_gpus
from repro.kernels.registry import KERNEL_NAMES, get_workload
from repro.reliability.campaign import CellResult, run_matrix
from repro.reliability.report import format_avf_figure, write_cells_csv
from repro.sim.faults import LOCAL_MEMORY


def local_memory_workloads(scale: str = "small") -> list:
    """The Fig. 2 benchmark subset (local-memory users)."""
    return [
        name for name in KERNEL_NAMES
        if get_workload(name, scale).uses_local_memory
    ]


def run_fig2(samples: int | None = None, scale: str | None = None,
             gpus: list | None = None, workloads: list | None = None,
             seed: int = 0, out_csv: str | None = None,
             progress=None, workers: int = 1, store=None,
             shard_size: int | None = None,
             stats=None, fault_model=None,
             checkpoint_interval=None,
             structures: tuple | None = None) -> tuple[list[CellResult], str]:
    """Run the Fig. 2 campaign; returns (cells, formatted report).

    ``structures`` (the CLI ``--structures`` override) retargets the
    campaign; the report is then anchored on the first structure given.
    """
    structures = tuple(structures) if structures else (LOCAL_MEMORY,)
    if workloads is None:
        workloads = local_memory_workloads(scale or "small")
    cells = run_matrix(
        gpus=gpus if gpus is not None else list_scaled_gpus(),
        workloads=workloads,
        scale=scale,
        samples=samples,
        seed=seed,
        structures=structures,
        progress=progress,
        workers=workers,
        store=store,
        shard_size=shard_size,
        stats=stats,
        fault_model=fault_model,
        checkpoint_interval=checkpoint_interval,
    )
    report = format_avf_figure(
        cells, structures[0],
        "Fig. 2 - Local Memory AVF (fault injection vs ACE analysis)"
        if structures == (LOCAL_MEMORY,)
        else f"Fig. 2 campaign retargeted at {structures[0]}",
    )
    if out_csv:
        write_cells_csv(cells, out_csv)
    return cells, report
