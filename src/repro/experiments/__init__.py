"""Experiment harnesses regenerating every figure of the paper.

* :mod:`repro.experiments.fig1_regfile_avf` — Fig. 1 (register file AVF)
* :mod:`repro.experiments.fig2_localmem_avf` — Fig. 2 (local memory AVF)
* :mod:`repro.experiments.fig3_epf` — Fig. 3 (executions per failure)

CLI: ``python -m repro.experiments <fig1|fig2|fig3|all> [options]`` or
the installed ``repro-experiments`` entry point.
"""

from repro.experiments.fig1_regfile_avf import run_fig1
from repro.experiments.fig2_localmem_avf import run_fig2
from repro.experiments.fig3_epf import run_fig3

__all__ = ["run_fig1", "run_fig2", "run_fig3"]
