"""Experiment harnesses regenerating every figure of the paper.

* :mod:`repro.experiments.fig1_regfile_avf` — Fig. 1 (register file AVF)
* :mod:`repro.experiments.fig2_localmem_avf` — Fig. 2 (local memory AVF)
* :mod:`repro.experiments.fig3_epf` — Fig. 3 (executions per failure)
* :mod:`repro.experiments.fig_model_compare` — beyond the paper:
  per-GPU AVF by fault model (transient / stuck_at / mbu)

Every harness consumes one declarative
:class:`repro.spec.CampaignSpec` (``run_fig1(spec, workers=...,
store=...)``); the pre-spec kwarg call pattern still works as a
deprecated shim.

CLI: ``python -m repro.experiments
<fig1|fig2|fig3|control_avf|model_compare|all> [options]`` or the
installed ``repro-experiments`` entry point, plus the spec-file
subcommands ``run SPEC [--set key=value]`` and ``sweep SPEC --axis
key=v1,v2`` (one checked-in TOML/JSON artifact, executed or expanded
into an axis-product of campaigns on a shared store). Campaigns run
on the job-graph execution engine (:mod:`repro.engine`); the most
useful flags:

* ``--samples N`` / ``--scale tiny|small|default`` — campaign size
  (paper scale: 2000 samples, default inputs);
* ``--gpus`` / ``--workloads`` — matrix subset (``--list-gpus`` and
  ``--list-workloads`` enumerate the choices);
* ``--workers N`` — process-pool size; whole (GPU, benchmark) cells
  run concurrently, results identical for any value;
* ``--resume STORE`` — persistent JSONL result store: interrupted
  campaigns resume without re-executing finished jobs, repeated
  invocations are incremental, and the three figures share golden
  runs;
* ``--shard-size N`` — live fault plans per FI-shard job;
* ``--seed`` / ``--out CSV`` — RNG seed and CSV export;
* ``--fault-model MODEL`` — campaign fault model (``transient``,
  ``stuck_at``, ``mbu``; ``--list-fault-models`` enumerates them).

Each run ends with a campaign summary: jobs total / cached / executed.
"""

from repro.experiments.fig1_regfile_avf import run_fig1
from repro.experiments.fig2_localmem_avf import run_fig2
from repro.experiments.fig3_epf import run_fig3
from repro.experiments.fig_model_compare import run_model_compare

__all__ = ["run_fig1", "run_fig2", "run_fig3", "run_model_compare"]
