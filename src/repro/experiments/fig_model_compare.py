"""Fault-model comparison — per-GPU AVF by fault model.

Beyond the paper: runs the same (GPU x benchmark) matrix once per
registered fault model (transient single-bit flips, permanent stuck-at
defects, adjacent multi-bit upsets) and tabulates the per-GPU average
AVF-FI side by side, for both target structures. The follow-on
literature (Guerrero-Balaguera et al. on permanent faults; Cui et al.
on H100/A100 multi-bit errors) predicts stuck-at AVFs above and MBU
AVFs near the transient baseline — this harness measures that on the
paper's chips.

All models share the golden runs (golden fingerprints ignore the fault
model), so the marginal cost of each extra model is its plan + shard
jobs only.
"""

from __future__ import annotations

from repro.arch.scaling import list_scaled_gpus
from repro.faultmodels.registry import fault_model_name, list_fault_models
from repro.kernels.registry import KERNEL_NAMES
from repro.reliability.campaign import CellResult, run_matrix
from repro.reliability.report import format_model_compare, write_cells_csv
from repro.sim.faults import STRUCTURES


def run_model_compare(samples: int | None = None, scale: str | None = None,
                      gpus: list | None = None, workloads: list | None = None,
                      seed: int = 0, out_csv: str | None = None,
                      progress=None, workers: int = 1, store=None,
                      shard_size: int | None = None, stats=None,
                      fault_model=None,
                      fault_models: list | None = None,
                      checkpoint_interval=None,
                      structures: tuple | None = None,
                      ) -> tuple[list[CellResult], str]:
    """Run the matrix once per fault model; returns (cells, report).

    ``fault_models`` selects the model subset (default: every
    registered model); ``fault_model`` — the shared single-model knob
    the CLI passes to every harness — restricts the comparison to that
    one model when given.
    """
    if fault_models is None:
        fault_models = ([fault_model_name(fault_model)] if fault_model
                        else list_fault_models())
    cells_by_model: dict[str, list[CellResult]] = {}
    all_cells: list[CellResult] = []
    for name in fault_models:
        cells = run_matrix(
            gpus=gpus if gpus is not None else list_scaled_gpus(),
            workloads=(workloads if workloads is not None
                       else list(KERNEL_NAMES)),
            scale=scale,
            samples=samples,
            seed=seed,
            structures=tuple(structures) if structures else STRUCTURES,
            progress=progress,
            workers=workers,
            store=store,
            shard_size=shard_size,
            stats=stats,
            fault_model=name,
            checkpoint_interval=checkpoint_interval,
        )
        cells_by_model[name] = cells
        all_cells.extend(cells)
    report = format_model_compare(cells_by_model)
    if out_csv:
        write_cells_csv(all_cells, out_csv)
    return all_cells, report
