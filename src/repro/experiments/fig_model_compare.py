"""Fault-model comparison — per-GPU AVF by fault model.

Beyond the paper: runs the same (GPU x benchmark) matrix once per
registered fault model (transient single-bit flips, permanent stuck-at
defects, adjacent multi-bit upsets) and tabulates the per-GPU average
AVF-FI side by side, for both target structures. The follow-on
literature (Guerrero-Balaguera et al. on permanent faults; Cui et al.
on H100/A100 multi-bit errors) predicts stuck-at AVFs above and MBU
AVFs near the transient baseline — this harness measures that on the
paper's chips.

All models share the golden runs (golden fingerprints ignore the fault
model), so the marginal cost of each extra model is its plan + shard
jobs only. This is the degenerate one-axis sweep; arbitrary axis
products are :meth:`repro.spec.CampaignSpec.sweep`.
"""

from __future__ import annotations

from repro.faultmodels.registry import list_fault_models
from repro.reliability.campaign import CellResult, run_matrix
from repro.reliability.report import format_model_compare, write_cells_csv
from repro.spec import coerce_spec


def run_model_compare(spec=None, *, fault_models: list | None = None,
                      out_csv: str | None = None, progress=None,
                      workers: int = 1, store=None, stats=None,
                      **legacy) -> tuple[list[CellResult], str]:
    """Run the matrix once per fault model; returns (cells, report).

    ``fault_models`` selects the model subset; by default every
    registered model is compared (the spec's own ``fault_model`` field
    is overridden per matrix run). The legacy kwarg form builds the
    spec internally with a :class:`DeprecationWarning` — its
    ``fault_model=`` kwarg restricts the comparison to that one model,
    exactly as before.
    """
    if fault_models is None and legacy.get("fault_model") is not None:
        fault_models = [legacy["fault_model"]]
    spec = coerce_spec(spec, legacy, who="run_model_compare")
    if fault_models is None:
        fault_models = list_fault_models()
    cells_by_model: dict[str, list[CellResult]] = {}
    all_cells: list[CellResult] = []
    for name in fault_models:
        model_spec = spec.replace(fault_model=name)
        cells = run_matrix(model_spec, progress=progress, workers=workers,
                           store=store, stats=stats)
        cells_by_model[model_spec.fault_model] = cells
        all_cells.extend(cells)
    report = format_model_compare(cells_by_model)
    if out_csv:
        write_cells_csv(all_cells, out_csv)
    return all_cells, report
