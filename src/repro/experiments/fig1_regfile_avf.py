"""Fig. 1 — register-file AVF by FI and ACE, with occupancy.

Paper: 4 GPUs x 10 benchmarks + per-GPU average; AVF-FI and AVF-ACE
bars with the occupancy line. Expected findings this harness must
show: strong per-benchmark and per-GPU variation, AVF tracking
occupancy, and ACE overestimating FI on the register file.
"""

from __future__ import annotations

from repro.arch.structures import REGISTER_FILE
from repro.reliability.campaign import CellResult, run_matrix
from repro.reliability.report import format_avf_figure, write_cells_csv
from repro.spec import coerce_spec


def run_fig1(spec=None, *, out_csv: str | None = None, progress=None,
             workers: int = 1, store=None, stats=None,
             **legacy) -> tuple[list[CellResult], str]:
    """Run the Fig. 1 campaign; returns (cells, formatted report).

    ``spec`` is a :class:`repro.spec.CampaignSpec`; fields left unset
    take this figure's defaults (all scaled chips, the full suite,
    ``structures=(register_file,)``). An explicit ``structures``
    retargets the campaign; the report is then anchored on the first
    structure given. The legacy kwarg form builds the spec internally
    with a :class:`DeprecationWarning`.
    """
    spec = coerce_spec(spec, legacy, who="run_fig1")
    if spec.structures is None:
        spec = spec.replace(structures=(REGISTER_FILE,))
    cells = run_matrix(spec, progress=progress, workers=workers,
                       store=store, stats=stats)
    report = format_avf_figure(
        cells, spec.structures[0],
        "Fig. 1 - Register File AVF (fault injection vs ACE analysis)"
        if spec.structures == (REGISTER_FILE,)
        else f"Fig. 1 campaign retargeted at {spec.structures[0]}",
    )
    if out_csv:
        write_cells_csv(cells, out_csv)
    return cells, report
