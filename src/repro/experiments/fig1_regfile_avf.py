"""Fig. 1 — register-file AVF by FI and ACE, with occupancy.

Paper: 4 GPUs x 10 benchmarks + per-GPU average; AVF-FI and AVF-ACE
bars with the occupancy line. Expected findings this harness must
show: strong per-benchmark and per-GPU variation, AVF tracking
occupancy, and ACE overestimating FI on the register file.
"""

from __future__ import annotations

from repro.arch.scaling import list_scaled_gpus
from repro.kernels.registry import KERNEL_NAMES
from repro.reliability.campaign import CellResult, run_matrix
from repro.reliability.report import format_avf_figure, write_cells_csv
from repro.sim.faults import REGISTER_FILE


def run_fig1(samples: int | None = None, scale: str | None = None,
             gpus: list | None = None, workloads: list | None = None,
             seed: int = 0, out_csv: str | None = None,
             progress=None, workers: int = 1, store=None,
             shard_size: int | None = None,
             stats=None, fault_model=None,
             checkpoint_interval=None,
             structures: tuple | None = None) -> tuple[list[CellResult], str]:
    """Run the Fig. 1 campaign; returns (cells, formatted report).

    ``structures`` (the CLI ``--structures`` override) retargets the
    campaign; the report is then anchored on the first structure given.
    """
    structures = tuple(structures) if structures else (REGISTER_FILE,)
    cells = run_matrix(
        gpus=gpus if gpus is not None else list_scaled_gpus(),
        workloads=workloads if workloads is not None else list(KERNEL_NAMES),
        scale=scale,
        samples=samples,
        seed=seed,
        structures=structures,
        progress=progress,
        workers=workers,
        store=store,
        shard_size=shard_size,
        stats=stats,
        fault_model=fault_model,
        checkpoint_interval=checkpoint_interval,
    )
    report = format_avf_figure(
        cells, structures[0],
        "Fig. 1 - Register File AVF (fault injection vs ACE analysis)"
        if structures == (REGISTER_FILE,)
        else f"Fig. 1 campaign retargeted at {structures[0]}",
    )
    if out_csv:
        write_cells_csv(cells, out_csv)
    return cells, report
