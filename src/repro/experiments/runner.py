"""Command-line entry point for the experiment harnesses.

Examples::

    repro-experiments fig1 --samples 200 --scale small --out results/fig1.csv
    repro-experiments fig3 --gpus gtx480 hd7970 --workloads matrixMul kmeans
    python -m repro.experiments all --samples 100
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.arch.scaling import get_scaled_gpu, list_scaled_gpus
from repro.experiments.fig1_regfile_avf import run_fig1
from repro.experiments.fig2_localmem_avf import run_fig2
from repro.experiments.fig3_epf import run_fig3
from repro.kernels.registry import KERNEL_NAMES

_EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
}


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Vallero et al., ISPASS 2017.",
    )
    parser.add_argument(
        "experiment", choices=sorted(_EXPERIMENTS) + ["all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--samples", type=int, default=None,
        help="fault injections per structure (paper: 2000; default: "
             "REPRO_FI_SAMPLES or 150)",
    )
    parser.add_argument(
        "--scale", choices=("tiny", "small", "default"), default=None,
        help="workload input scale (default: REPRO_SCALE or small)",
    )
    parser.add_argument(
        "--gpus", nargs="+", default=None, metavar="GPU",
        help="chip subset by name/alias (default: all four, scaled)",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None, metavar="BENCH",
        choices=list(KERNEL_NAMES), help="benchmark subset",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for fault re-simulations (default: serial; "
             "results are identical for any value)",
    )
    parser.add_argument(
        "--out", default=None, metavar="CSV",
        help="also write the cells to this CSV path (figure name is "
             "appended when running 'all')",
    )
    return parser.parse_args(argv)


def _progress(cell):
    print(
        f"  [{time.strftime('%H:%M:%S')}] {cell.gpu:<26} {cell.workload:<12} "
        f"cycles={cell.cycles:<9} fi={cell.fi_time_s:6.1f}s",
        file=sys.stderr,
        flush=True,
    )


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    gpus = None
    if args.gpus is not None:
        gpus = [get_scaled_gpu(name) for name in args.gpus]
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        out_csv = args.out
        if out_csv and args.experiment == "all":
            out_csv = out_csv.replace(".csv", f"_{name}.csv")
        print(f"== running {name} ==", file=sys.stderr, flush=True)
        _, report = _EXPERIMENTS[name](
            samples=args.samples,
            scale=args.scale,
            gpus=gpus,
            workloads=args.workloads,
            seed=args.seed,
            out_csv=out_csv,
            progress=_progress,
            workers=args.workers,
        )
        print(report)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
