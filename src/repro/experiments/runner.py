"""Command-line entry point for the experiment harnesses.

Campaigns run on the job-graph execution engine: golden runs are shared
between figures, ``--workers`` runs whole (GPU, benchmark) cells
concurrently, and ``--resume STORE`` persists every finished job so a
killed campaign picks up where it left off and identical re-invocations
execute nothing. A summary line (jobs total / cached / executed) is
printed after each run.

The fault model is a first-class campaign axis: ``--fault-model``
selects transient bit flips (the paper's model, default), permanent
stuck-at defects, or multi-bit upsets for any experiment, and the
``model_compare`` experiment tabulates per-GPU AVF across all models.

Campaigns checkpoint by default: golden runs capture full-machine
snapshots so every live fault simulates only its suffix, with the
early-exit convergence check classifying quiesced transients MASKED
immediately (:mod:`repro.checkpoint`). ``--checkpoint-interval N``
tunes the capture stride, ``--no-checkpoints`` restores the
simulate-from-cycle-zero behaviour; results are bit-identical either
way.

The fault-site taxonomy is a campaign axis too: ``--structures``
retargets any experiment at a subset of the structure registry
(datapath: register_file, local_memory; control: simt_stack,
predicate_file, scheduler_state), and the ``control_avf`` experiment
reports per-GPU control-structure AVF alongside Fig. 1/2.

Examples::

    repro-experiments fig1 --samples 200 --scale small --out results/fig1.csv
    repro-experiments fig3 --gpus gtx480 hd7970 --workloads matrixMul kmeans
    repro-experiments fig1 --fault-model stuck_at --samples 200
    repro-experiments model_compare --workers 8 --resume results/store.jsonl
    repro-experiments all --workers 8 --resume results/store.jsonl
    repro-experiments fig1 --checkpoint-interval 500
    repro-experiments fig1 --no-checkpoints
    repro-experiments control_avf --samples 100
    repro-experiments control_avf --structures simt_stack,predicate_file
    repro-experiments --list-gpus
    repro-experiments --list-fault-models
    repro-experiments --list-structures
    python -m repro.experiments all --samples 100
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.arch.presets import GPU_ALIASES, GPU_PRESETS
from repro.arch.scaling import get_scaled_gpu
from repro.arch.structures import STRUCTURE_REGISTRY, structure_info
from repro.engine import CampaignStats, ResultStore
from repro.errors import ConfigError
from repro.experiments.fig1_regfile_avf import run_fig1
from repro.experiments.fig2_localmem_avf import run_fig2
from repro.experiments.fig3_epf import run_fig3
from repro.experiments.fig_control_avf import run_control_avf
from repro.experiments.fig_model_compare import run_model_compare
from repro.faultmodels.registry import FAULT_MODELS, list_fault_models
from repro.kernels.registry import KERNEL_NAMES, get_workload

_EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "control_avf": run_control_avf,
    "model_compare": run_model_compare,
}

#: ``all`` reproduces the paper's figures (model_compare is opt-in).
_FIGURES = ("fig1", "fig2", "fig3")


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Vallero et al., ISPASS 2017.",
    )
    parser.add_argument(
        "experiment", choices=sorted(_EXPERIMENTS) + ["all"], nargs="?",
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--list-gpus", action="store_true",
        help="list the known chips (and their CLI aliases) and exit",
    )
    parser.add_argument(
        "--list-workloads", action="store_true",
        help="list the benchmark suite and exit",
    )
    parser.add_argument(
        "--list-fault-models", action="store_true",
        help="list the registered fault models and exit",
    )
    parser.add_argument(
        "--list-structures", action="store_true",
        help="list the fault-site structure registry (geometry, exposing "
             "ISAs) and exit",
    )
    parser.add_argument(
        "--structures", nargs="+", default=None, metavar="STRUCT",
        help="retarget the campaign at these structures (space- or "
             f"comma-separated; registry: {', '.join(STRUCTURE_REGISTRY)}; "
             "default: each experiment's own set)",
    )
    parser.add_argument(
        "--fault-model", choices=list_fault_models(), default=None,
        metavar="MODEL",
        help="fault model for the campaign: "
             f"{', '.join(list_fault_models())} (default: transient, "
             "the paper's single-bit-flip model)",
    )
    parser.add_argument(
        "--samples", type=int, default=None,
        help="fault injections per structure (paper: 2000; default: "
             "REPRO_FI_SAMPLES or 150)",
    )
    parser.add_argument(
        "--scale", choices=("tiny", "small", "default"), default=None,
        help="workload input scale (default: REPRO_SCALE or small)",
    )
    parser.add_argument(
        "--gpus", nargs="+", default=None, metavar="GPU",
        help="chip subset by name/alias (default: all four, scaled)",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None, metavar="BENCH",
        choices=list(KERNEL_NAMES), help="benchmark subset",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size; cells run concurrently across the pool "
             "(default: serial; results are identical for any value)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="STORE",
        help="persistent result store (JSONL): finished jobs are loaded "
             "instead of re-executed, new ones are appended — interrupted "
             "campaigns resume, repeated ones are incremental",
    )
    parser.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="live fault plans per FI-shard job (default: 24; any value "
             "gives identical results)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="CYCLES",
        help="golden-run snapshot stride in cycles for suffix-only fault "
             "injection (default: auto — self-tuning doubling schedule; "
             "any value gives identical results)",
    )
    parser.add_argument(
        "--no-checkpoints", action="store_true",
        help="disable golden-run snapshots: re-simulate every live fault "
             "from cycle zero (bit-identical, slower)",
    )
    parser.add_argument(
        "--out", default=None, metavar="CSV",
        help="also write the cells to this CSV path (figure name is "
             "appended when running 'all')",
    )
    return parser.parse_args(argv)


def _validate_args(args) -> None:
    """Range-check numeric CLI arguments with friendly messages.

    argparse only guarantees the values parse as integers; without
    this, a zero or negative value surfaces as a deep traceback from
    numpy or the process pool instead of a usable error.
    """
    checks = (
        ("--samples", args.samples, 1),
        ("--seed", args.seed, 0),
        ("--workers", args.workers, 1),
        ("--shard-size", args.shard_size, 1),
        ("--checkpoint-interval", args.checkpoint_interval, 1),
    )
    for flag, value, minimum in checks:
        if value is not None and value < minimum:
            raise ConfigError(
                f"{flag} must be >= {minimum}, got {value}"
            )
    if args.no_checkpoints and args.checkpoint_interval is not None:
        raise ConfigError(
            "--no-checkpoints and --checkpoint-interval are mutually "
            "exclusive"
        )


def _parse_structures(values) -> tuple | None:
    """Normalize --structures (accepts commas) against the registry.

    Every name is validated through the registry, so a typo yields a
    friendly error naming the valid choices instead of a traceback
    from deep inside the sampler.
    """
    if values is None:
        return None
    names = [name for value in values for name in value.split(",") if name]
    if not names:
        raise ConfigError(
            f"--structures needs at least one of: "
            f"{', '.join(STRUCTURE_REGISTRY)}"
        )
    for name in names:
        structure_info(name)  # raises ConfigError with the valid choices
    return tuple(dict.fromkeys(names))  # dedupe, keep order


def _checkpoint_interval(args):
    """The campaign's checkpoint setting: None (off), 'auto', or cycles."""
    if args.no_checkpoints:
        return None
    if args.checkpoint_interval is not None:
        return args.checkpoint_interval
    return "auto"


def _progress(cell):
    print(
        f"  [{time.strftime('%H:%M:%S')}] {cell.gpu:<26} {cell.workload:<12} "
        f"cycles={cell.cycles:<9} fi={cell.fi_time_s:6.1f}s",
        file=sys.stderr,
        flush=True,
    )


def _list_gpus() -> None:
    for name, config in GPU_PRESETS.items():
        aliases = sorted(a for a, full in GPU_ALIASES.items() if full == name)
        print(f"{name:<18} aliases: {', '.join(aliases):<28} "
              f"{config.describe()}")


def _list_workloads() -> None:
    for name in KERNEL_NAMES:
        workload = get_workload(name, "small")
        lmem = "local-memory" if workload.uses_local_memory else "no local mem"
        print(f"{name:<12} [{lmem}]  {workload.description}")


def _list_fault_models() -> None:
    for name, model in FAULT_MODELS.items():
        kind = "permanent" if model.persistent else "transient"
        print(f"{name:<10} [{kind}]  {model.description}")


def _list_structures() -> None:
    for name, info in STRUCTURE_REGISTRY.items():
        kind = "control " if info.control else "datapath"
        isas = "+".join(info.isas)
        print(f"{name:<16} [{kind}] isa: {isas:<8} {info.description}")


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    if args.list_gpus:
        _list_gpus()
        return 0
    if args.list_workloads:
        _list_workloads()
        return 0
    if args.list_fault_models:
        _list_fault_models()
        return 0
    if args.list_structures:
        _list_structures()
        return 0
    if args.experiment is None:
        print("error: an experiment "
              f"({'|'.join(sorted(_EXPERIMENTS))}|all) is required unless "
              "--list-gpus/--list-workloads/--list-fault-models/"
              "--list-structures is given",
              file=sys.stderr)
        return 2
    try:
        _validate_args(args)
        structures = _parse_structures(args.structures)
        gpus = None
        if args.gpus is not None:
            gpus = [get_scaled_gpu(name) for name in args.gpus]
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    names = list(_FIGURES) if args.experiment == "all" else [args.experiment]
    store = ResultStore(args.resume) if args.resume else None
    try:
        for name in names:
            out_csv = args.out
            if out_csv and args.experiment == "all":
                out_csv = out_csv.replace(".csv", f"_{name}.csv")
            print(f"== running {name} ==", file=sys.stderr, flush=True)
            stats = CampaignStats()
            _, report = _EXPERIMENTS[name](
                samples=args.samples,
                scale=args.scale,
                gpus=gpus,
                workloads=args.workloads,
                seed=args.seed,
                out_csv=out_csv,
                progress=_progress,
                workers=args.workers,
                store=store,
                shard_size=args.shard_size,
                stats=stats,
                fault_model=args.fault_model,
                checkpoint_interval=_checkpoint_interval(args),
                structures=structures,
            )
            print(report)
            print()
            print(stats.summary(), file=sys.stderr, flush=True)
    finally:
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
