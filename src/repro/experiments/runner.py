"""Command-line entry point for the experiment harnesses.

Campaigns are configured by one declarative
:class:`repro.spec.CampaignSpec` object, and the CLI is a thin layer
over it: the figure subcommands (``fig1`` .. ``model_compare``) build
a spec from their flags, while the two spec-first subcommands run
checked-in campaign artifacts directly:

* ``repro-experiments run path/to/spec.toml`` — execute a TOML/JSON
  spec file. ``--set key=value`` overrides individual spec fields;
  unknown keys and invalid values are registry-validated errors
  naming the valid choices.
* ``repro-experiments sweep path/to/spec.toml --axis key=v1,v2 ...``
  — expand the spec by an axis product (``--axis`` repeats; integer
  axes accept ``0..4`` ranges, set-valued axes join names with
  ``+``), run every child campaign against one shared result store
  and golden cache, and print a per-axis summary table.

Campaigns run on the job-graph execution engine: golden runs are
shared between figures, ``--workers`` runs whole (GPU, benchmark)
cells concurrently, and ``--resume STORE`` persists every finished
job so a killed campaign picks up where it left off and identical
re-invocations execute nothing. A summary line (jobs total / cached /
executed) is printed after each run. Spec fields map onto the same
job fingerprints as the pre-spec kwarg era, so old stores resume with
zero jobs executed.

The fault model is a first-class campaign axis: ``--fault-model``
selects transient bit flips (the paper's model, default), permanent
stuck-at defects, or multi-bit upsets for any experiment, and the
``model_compare`` experiment tabulates per-GPU AVF across all models.

Campaigns checkpoint by default: golden runs capture full-machine
snapshots so every live fault simulates only its suffix, with the
early-exit convergence check classifying quiesced transients MASKED
immediately (:mod:`repro.checkpoint`). ``--checkpoint-interval N``
tunes the capture stride, ``--no-checkpoints`` restores the
simulate-from-cycle-zero behaviour; results are bit-identical either
way.

The fault-site taxonomy is a campaign axis too: ``--structures``
retargets any experiment at a subset of the structure registry
(datapath: register_file, local_memory; control: simt_stack,
predicate_file, scheduler_state), and the ``control_avf`` experiment
reports per-GPU control-structure AVF alongside Fig. 1/2.

Examples::

    repro-experiments fig1 --samples 200 --scale small --out results/fig1.csv
    repro-experiments fig3 --gpus gtx480 hd7970 --workloads matrixMul kmeans
    repro-experiments fig1 --fault-model stuck_at --samples 200
    repro-experiments model_compare --workers 8 --resume results/store.jsonl
    repro-experiments all --workers 8 --resume results/store.jsonl
    repro-experiments run examples/specs/smoke_fig1.toml
    repro-experiments run campaign.toml --set samples=500 --set scale=small
    repro-experiments sweep campaign.toml --axis fault_model=transient,stuck_at \
        --axis seed=0..2 --resume results/sweep.jsonl
    repro-experiments control_avf --structures simt_stack,predicate_file
    repro-experiments --list-gpus
    repro-experiments --list-fault-models
    repro-experiments --list-structures
    python -m repro.experiments all --samples 100
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.arch.presets import GPU_ALIASES, GPU_PRESETS
from repro.arch.structures import STRUCTURE_REGISTRY, structure_info
from repro.engine import CampaignStats, ResultStore
from repro.errors import ConfigError
from repro.experiments.fig1_regfile_avf import run_fig1
from repro.experiments.fig2_localmem_avf import run_fig2
from repro.experiments.fig3_epf import run_fig3
from repro.experiments.fig_control_avf import run_control_avf
from repro.experiments.fig_model_compare import run_model_compare
from repro.faultmodels.registry import FAULT_MODELS, list_fault_models
from repro.kernels.registry import KERNEL_NAMES, get_workload
from repro.reliability.report import format_avf_figure, write_cells_csv
from repro.spec import (
    INT_FIELDS,
    SPEC_FIELDS,
    TUPLE_FIELDS,
    CampaignSpec,
    check_spec_keys,
    run_sweep,
)

_EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "control_avf": run_control_avf,
    "model_compare": run_model_compare,
}

#: ``all`` reproduces the paper's figures (model_compare is opt-in).
_FIGURES = ("fig1", "fig2", "fig3")

#: Spec-first subcommands, dispatched before the figure parser.
_SPEC_COMMANDS = ("run", "sweep")


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Vallero et al., ISPASS 2017 "
                    "(see also the spec-file subcommands: "
                    "'run SPEC' and 'sweep SPEC --axis key=v1,v2').",
    )
    parser.add_argument(
        "experiment", choices=sorted(_EXPERIMENTS) + ["all"], nargs="?",
        help="which figure to regenerate (or use the 'run'/'sweep' "
             "spec-file subcommands)",
    )
    parser.add_argument(
        "--list-gpus", action="store_true",
        help="list the known chips (and their CLI aliases) and exit",
    )
    parser.add_argument(
        "--list-workloads", action="store_true",
        help="list the benchmark suite and exit",
    )
    parser.add_argument(
        "--list-fault-models", action="store_true",
        help="list the registered fault models and exit",
    )
    parser.add_argument(
        "--list-structures", action="store_true",
        help="list the fault-site structure registry (geometry, exposing "
             "ISAs) and exit",
    )
    parser.add_argument(
        "--structures", nargs="+", default=None, metavar="STRUCT",
        help="retarget the campaign at these structures (space- or "
             f"comma-separated; registry: {', '.join(STRUCTURE_REGISTRY)}; "
             "default: each experiment's own set)",
    )
    parser.add_argument(
        "--fault-model", choices=list_fault_models(), default=None,
        metavar="MODEL",
        help="fault model for the campaign: "
             f"{', '.join(list_fault_models())} (default: transient, "
             "the paper's single-bit-flip model)",
    )
    parser.add_argument(
        "--samples", type=int, default=None,
        help="fault injections per structure (paper: 2000; default: "
             "REPRO_FI_SAMPLES or 150)",
    )
    parser.add_argument(
        "--scale", choices=("tiny", "small", "default"), default=None,
        help="workload input scale (default: REPRO_SCALE or small)",
    )
    parser.add_argument(
        "--gpus", nargs="+", default=None, metavar="GPU",
        help="chip subset by name/alias (default: all four, scaled)",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=None, metavar="BENCH",
        choices=list(KERNEL_NAMES), help="benchmark subset",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size; cells run concurrently across the pool "
             "(default: serial; results are identical for any value)",
    )
    parser.add_argument(
        "--resume", default=None, metavar="STORE",
        help="persistent result store (JSONL): finished jobs are loaded "
             "instead of re-executed, new ones are appended — interrupted "
             "campaigns resume, repeated ones are incremental",
    )
    parser.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="live fault plans per FI-shard job (default: 24; any value "
             "gives identical results)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="CYCLES",
        help="golden-run snapshot stride in cycles for suffix-only fault "
             "injection (default: auto — self-tuning doubling schedule; "
             "any value gives identical results)",
    )
    parser.add_argument(
        "--no-checkpoints", action="store_true",
        help="disable golden-run snapshots: re-simulate every live fault "
             "from cycle zero (bit-identical, slower)",
    )
    parser.add_argument(
        "--out", default=None, metavar="CSV",
        help="also write the cells to this CSV path (figure name is "
             "appended when running 'all')",
    )
    return parser.parse_args(argv)


def _validate_args(args) -> None:
    """Range-check numeric CLI arguments with friendly messages.

    argparse only guarantees the values parse as integers; without
    this, a zero or negative value surfaces as a deep traceback from
    numpy or the process pool instead of a usable error.
    """
    checks = (
        ("--samples", args.samples, 1),
        ("--seed", args.seed, 0),
        ("--workers", args.workers, 1),
        ("--shard-size", args.shard_size, 1),
        ("--checkpoint-interval", args.checkpoint_interval, 1),
    )
    for flag, value, minimum in checks:
        if value is not None and value < minimum:
            raise ConfigError(
                f"{flag} must be >= {minimum}, got {value}"
            )
    if args.no_checkpoints and args.checkpoint_interval is not None:
        raise ConfigError(
            "--no-checkpoints and --checkpoint-interval are mutually "
            "exclusive"
        )


def _parse_structures(values) -> tuple | None:
    """Normalize --structures (accepts commas) against the registry.

    Every name is validated through the registry, so a typo yields a
    friendly error naming the valid choices instead of a traceback
    from deep inside the sampler.
    """
    if values is None:
        return None
    names = [name for value in values for name in value.split(",") if name]
    if not names:
        raise ConfigError(
            f"--structures needs at least one of: "
            f"{', '.join(STRUCTURE_REGISTRY)}"
        )
    for name in names:
        structure_info(name)  # raises ConfigError with the valid choices
    return tuple(dict.fromkeys(names))  # dedupe, keep order


def _checkpoint_interval(args):
    """The campaign's checkpoint setting: None (off), 'auto', or cycles."""
    if args.no_checkpoints:
        return None
    if args.checkpoint_interval is not None:
        return args.checkpoint_interval
    return "auto"


def _spec_from_args(args) -> CampaignSpec:
    """The figure subcommands' CampaignSpec (None fields = defaults)."""
    return CampaignSpec(
        gpus=tuple(args.gpus) if args.gpus is not None else None,
        workloads=tuple(args.workloads) if args.workloads is not None
        else None,
        scale=args.scale,
        samples=args.samples,
        seed=args.seed,
        structures=_parse_structures(args.structures),
        fault_model=args.fault_model or "transient",
        checkpoint_interval=_checkpoint_interval(args),
        shard_size=args.shard_size,
    )


def _progress(cell):
    print(
        f"  [{time.strftime('%H:%M:%S')}] {cell.gpu:<26} {cell.workload:<12} "
        f"cycles={cell.cycles:<9} fi={cell.fi_time_s:6.1f}s",
        file=sys.stderr,
        flush=True,
    )


def _list_gpus() -> None:
    for name, config in GPU_PRESETS.items():
        aliases = sorted(a for a, full in GPU_ALIASES.items() if full == name)
        print(f"{name:<18} aliases: {', '.join(aliases):<28} "
              f"{config.describe()}")


def _list_workloads() -> None:
    for name in KERNEL_NAMES:
        workload = get_workload(name, "small")
        lmem = "local-memory" if workload.uses_local_memory else "no local mem"
        print(f"{name:<12} [{lmem}]  {workload.description}")


def _list_fault_models() -> None:
    for name, model in FAULT_MODELS.items():
        kind = "permanent" if model.persistent else "transient"
        print(f"{name:<10} [{kind}]  {model.description}")


def _list_structures() -> None:
    for name, info in STRUCTURE_REGISTRY.items():
        kind = "control " if info.control else "datapath"
        isas = "+".join(info.isas)
        print(f"{name:<16} [{kind}] isa: {isas:<8} {info.description}")


# ----------------------------------------------------------------------
# Spec-field value parsing (the `run --set` / `sweep --axis` surface)
# ----------------------------------------------------------------------

# Field typing comes from the spec package (declared once, next to
# the dataclass) so a new campaign axis needs no CLI edit.
_LIST_FIELDS = TUPLE_FIELDS
_INT_FIELDS = INT_FIELDS


def _check_set_key(key: str, *, flag: str) -> None:
    check_spec_keys([key], context=f"{flag} {key}=...")


def _split_assignment(text: str, *, flag: str) -> tuple[str, str]:
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise ConfigError(
            f"{flag} expects key=value, got {text!r}")
    return key.strip(), value.strip()


def _scalar_value(key: str, text: str):
    """One spec-field value from CLI text (typed per field)."""
    if key in _INT_FIELDS:
        try:
            return int(text)
        except ValueError:
            raise ConfigError(
                f"spec field {key!r}: expected an integer, got {text!r}"
            ) from None
    if key == "raw_fit_per_bit":
        try:
            return float(text)
        except ValueError:
            raise ConfigError(
                f"spec field {key!r}: expected a number, got {text!r}"
            ) from None
    if key == "checkpoint_interval":
        if text in ("none", "off"):
            return None
        if text == "auto":
            return "auto"
        try:
            return int(text)
        except ValueError:
            raise ConfigError(
                f"spec field {key!r}: expected 'auto', 'none' or a cycle "
                f"count, got {text!r}") from None
    return text


def _set_value(key: str, text: str):
    """The value of one ``--set key=value`` override."""
    if key in _LIST_FIELDS:
        names = tuple(name for name in text.split(",") if name)
        if not names:
            raise ConfigError(
                f"spec field {key!r}: expected a comma-separated name list, "
                f"got {text!r}")
        return names
    return _scalar_value(key, text)


def _apply_sets(spec: CampaignSpec, sets: list | None,
                *, flag: str = "--set") -> CampaignSpec:
    for text in sets or ():
        key, value = _split_assignment(text, flag=flag)
        _check_set_key(key, flag=flag)
        spec = spec.replace(**{key: _set_value(key, value)})
    return spec


def _axis_points(key: str, text: str) -> list:
    """The value list of one ``--axis key=v1,v2`` sweep axis.

    Integer axes accept inclusive ``a..b`` ranges; set-valued axes
    (gpus, workloads, structures) join the names of one axis point
    with ``+`` (e.g. ``structures=register_file+local_memory,simt_stack``
    is two points: the datapath pair, then the SIMT stack alone).
    """
    points: list = []
    for part in text.split(","):
        if not part:
            continue
        if key in _INT_FIELDS and ".." in part:
            lo, _, hi = part.partition("..")
            try:
                lo, hi = int(lo), int(hi)
            except ValueError:
                raise ConfigError(
                    f"sweep axis {key!r}: bad range {part!r} "
                    f"(expected a..b)") from None
            if hi < lo:
                raise ConfigError(
                    f"sweep axis {key!r}: empty range {part!r}")
            points.extend(range(lo, hi + 1))
        elif key in _LIST_FIELDS:
            points.append(tuple(name for name in part.split("+") if name))
        else:
            points.append(_scalar_value(key, part))
    if not points:
        raise ConfigError(f"sweep axis {key!r} has no values")
    return points


# ----------------------------------------------------------------------
# `run` subcommand: execute one spec file
# ----------------------------------------------------------------------

def _parse_run_args(argv):
    parser = argparse.ArgumentParser(
        prog="repro-experiments run",
        description="Execute a TOML/JSON campaign spec file.",
    )
    parser.add_argument("spec", help="path to the .toml/.json spec file")
    parser.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help="override one spec field (repeatable); unknown keys are "
             f"errors — valid: {', '.join(SPEC_FIELDS)}",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--resume", default=None, metavar="STORE",
        help="persistent result store (JSONL), as for the figure commands",
    )
    parser.add_argument(
        "--out", default=None, metavar="CSV",
        help="also write the cells to this CSV path",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-cell progress lines",
    )
    return parser.parse_args(argv)


def _main_run(argv) -> int:
    args = _parse_run_args(argv)
    try:
        if args.workers < 1:
            raise ConfigError(f"--workers must be >= 1, got {args.workers}")
        spec = CampaignSpec.from_file(args.spec)
        spec = _apply_sets(spec, getattr(args, "set"))
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    from repro.engine.matrix import run_campaign
    title = spec.name or args.spec
    print(f"== running spec {title} ==", file=sys.stderr, flush=True)
    print(f"   {spec.describe()}", file=sys.stderr, flush=True)
    stats = CampaignStats()
    result = run_campaign(
        spec, store=args.resume, workers=args.workers,
        progress=None if args.quiet else _progress, stats=stats)
    anchor = spec.resolved_structures()[0]
    # Cells whose chip does not expose the anchor structure never
    # sampled it; keep them out of the table instead of rendering a
    # fabricated 0.000 (the exposure rule is ISA-dependent).
    sampled = [cell for cell in result.cells if anchor in cell.fi]
    print(format_avf_figure(
        sampled, anchor, f"Campaign {title} — {anchor} AVF"))
    skipped = len(result.cells) - len(sampled)
    if skipped:
        print(f"({skipped} cells omitted from the table: their chips do "
              f"not expose {anchor})", file=sys.stderr)
    if args.out:
        write_cells_csv(result.cells, args.out)
    print(stats.summary(), file=sys.stderr, flush=True)
    return 0


# ----------------------------------------------------------------------
# `sweep` subcommand: spec file x axis product
# ----------------------------------------------------------------------

def _parse_sweep_args(argv):
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep",
        description="Expand a spec file by an axis product and run every "
                    "child campaign against one shared store.",
    )
    parser.add_argument("spec", help="path to the .toml/.json base spec")
    parser.add_argument(
        "--axis", action="append", default=None, metavar="KEY=V1,V2",
        required=False,
        help="one sweep axis (repeatable, required at least once); "
             "integer axes accept a..b ranges, set-valued axes join "
             "names with '+'",
    )
    parser.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help="override one base-spec field before expansion (repeatable)",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--resume", default=None, metavar="STORE",
        help="shared persistent result store (JSONL) for every child",
    )
    parser.add_argument(
        "--out", default=None, metavar="CSV",
        help="also write every child's cells to this CSV path",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-cell progress lines",
    )
    return parser.parse_args(argv)


def _main_sweep(argv) -> int:
    args = _parse_sweep_args(argv)
    try:
        if args.workers < 1:
            raise ConfigError(f"--workers must be >= 1, got {args.workers}")
        if not args.axis:
            raise ConfigError(
                "sweep needs at least one --axis key=v1,v2 "
                f"(valid keys: {', '.join(f for f in SPEC_FIELDS if f != 'name')})")
        spec = CampaignSpec.from_file(args.spec)
        spec = _apply_sets(spec, getattr(args, "set"))
        axes: dict = {}
        for text in args.axis:
            key, value = _split_assignment(text, flag="--axis")
            _check_set_key(key, flag="--axis")
            if key in axes:
                raise ConfigError(
                    f"duplicate sweep axis {key!r}; give each --axis "
                    f"once and comma-separate its values")
            axes[key] = _axis_points(key, value)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    title = spec.name or args.spec
    total = 1
    for values in axes.values():
        total *= len(values)
    print(f"== sweeping spec {title}: {total} campaigns ==",
          file=sys.stderr, flush=True)
    stats = CampaignStats()
    result = run_sweep(
        spec, axes, store=args.resume, workers=args.workers,
        progress=None if args.quiet else _progress, stats=stats)
    print(result.summary())
    if args.out:
        write_cells_csv(result.cells, args.out)
    print(stats.summary(), file=sys.stderr, flush=True)
    return 0


def main(argv=None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        if argv and argv[0] == "run":
            return _main_run(argv[1:])
        if argv and argv[0] == "sweep":
            return _main_sweep(argv[1:])
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    args = _parse_args(argv)
    if args.list_gpus:
        _list_gpus()
        return 0
    if args.list_workloads:
        _list_workloads()
        return 0
    if args.list_fault_models:
        _list_fault_models()
        return 0
    if args.list_structures:
        _list_structures()
        return 0
    if args.experiment is None:
        print("error: an experiment "
              f"({'|'.join(sorted(_EXPERIMENTS))}|all) or a spec subcommand "
              "(run|sweep) is required unless "
              "--list-gpus/--list-workloads/--list-fault-models/"
              "--list-structures is given",
              file=sys.stderr)
        return 2
    try:
        _validate_args(args)
        spec = _spec_from_args(args)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    names = list(_FIGURES) if args.experiment == "all" else [args.experiment]
    store = ResultStore(args.resume) if args.resume else None
    try:
        for name in names:
            out_csv = args.out
            if out_csv and args.experiment == "all":
                out_csv = out_csv.replace(".csv", f"_{name}.csv")
            print(f"== running {name} ==", file=sys.stderr, flush=True)
            stats = CampaignStats()
            extra = {}
            if name == "model_compare":
                # Preserve the pre-spec contract: a named model
                # restricts the comparison, no flag compares them all.
                extra["fault_models"] = (
                    [args.fault_model] if args.fault_model else None)
            _, report = _EXPERIMENTS[name](
                spec,
                out_csv=out_csv,
                progress=_progress,
                workers=args.workers,
                store=store,
                stats=stats,
                **extra,
            )
            print(report)
            print()
            print(stats.summary(), file=sys.stderr, flush=True)
    finally:
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
