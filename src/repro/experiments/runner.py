"""Command-line entry point for the experiment harnesses.

Campaigns are configured by one declarative
:class:`repro.spec.CampaignSpec` object, and the CLI is a thin layer
of argparse *subcommands* over it, sharing one set of option groups:

* the figure subcommands (``fig1`` ``fig2`` ``fig3`` ``control``
  ``models`` ``all``) build a spec from their campaign flags and run
  the matching harness. ``control_avf`` / ``model_compare`` are the
  pre-subparser names and still dispatch (with a
  :class:`DeprecationWarning`);
* ``run path/to/spec.toml`` executes a TOML/JSON spec file.
  ``--set key=value`` overrides individual spec fields; unknown keys
  and invalid values are registry-validated errors naming the valid
  choices;
* ``sweep path/to/spec.toml --axis key=v1,v2 ...`` expands the spec
  by an axis product (``--axis`` repeats; integer axes accept
  ``0..4`` ranges, set-valued axes join names with ``+``), runs every
  child campaign against one shared result store and golden cache,
  and prints a per-axis summary table;
* ``status STORE`` renders the campaign monitor for a result store —
  per-kind job counts, cache hit rates, worker occupancy, injection
  throughput and (for an in-progress campaign) an ETA — from the
  telemetry stream recorded next to the store
  (:mod:`repro.telemetry`). ``--follow`` live-tails the stream,
  refreshing the panel as a running campaign appends events
  (``--once`` renders a single refresh and exits, for scripts);
* ``profile STORE`` renders the hot-path profiling report — per-phase
  wall-time breakdown, per-ISA opcode-class dispatch mix, counters and
  top cost centers — from the ``cell_profile``/``campaign_profile``
  events a campaign run with ``--profile`` (or ``profile = true`` in
  the spec) records (:mod:`repro.telemetry.profile`);
* ``serve SPEC... --store S`` runs the distributed campaign
  coordinator (:mod:`repro.engine.service`): it expands the specs into
  the ordinary job graph and leases ready jobs over JSON-HTTP to
  ``worker URL`` processes, which execute them with the standard
  engine worker functions and push results back; ``submit URL SPEC``
  queues more campaigns onto a live coordinator. Distributed stores
  are bit-identical to local ones, and a worker killed mid-campaign is
  recovered by lease expiry.

Campaigns run on the job-graph execution engine: golden runs are
shared between figures, ``--workers`` runs whole (GPU, benchmark)
cells concurrently, and ``--resume STORE`` persists every finished
job so a killed campaign picks up where it left off and identical
re-invocations execute nothing. A summary line (jobs total / cached /
executed) is printed after each run. Spec fields map onto the same
job fingerprints as the pre-spec kwarg era, so old stores resume with
zero jobs executed.

``run`` and ``sweep`` take ``--telemetry [PATH]`` / ``--no-telemetry``
to record (or suppress) the engine's observability event stream —
JSONL next to the ``--resume`` store by default, at ``PATH`` when
given, overriding the spec's own ``telemetry`` field either way.
Telemetry never changes results: stores are bit-identical with it on
or off.

The fault model is a first-class campaign axis: ``--fault-model``
selects transient bit flips (the paper's model, default), permanent
stuck-at defects, or multi-bit upsets for any experiment, and the
``models`` experiment tabulates per-GPU AVF across all models.

Campaigns checkpoint by default: golden runs capture full-machine
snapshots so every live fault simulates only its suffix, with the
early-exit convergence check classifying quiesced transients MASKED
immediately (:mod:`repro.checkpoint`). ``--checkpoint-interval N``
tunes the capture stride, ``--no-checkpoints`` restores the
simulate-from-cycle-zero behaviour; results are bit-identical either
way.

The fault-site taxonomy is a campaign axis too: ``--structures``
retargets any experiment at a subset of the structure registry
(datapath: register_file, local_memory; control: simt_stack,
predicate_file, scheduler_state), and the ``control`` experiment
reports per-GPU control-structure AVF alongside Fig. 1/2.

Examples::

    repro-experiments fig1 --samples 200 --scale small --out results/fig1.csv
    repro-experiments fig3 --gpus gtx480 hd7970 --workloads matrixMul kmeans
    repro-experiments fig1 --fault-model stuck_at --samples 200
    repro-experiments models --workers 8 --resume results/store.jsonl
    repro-experiments all --workers 8 --resume results/store.jsonl
    repro-experiments run examples/specs/smoke_fig1.toml
    repro-experiments run campaign.toml --set samples=500 --set scale=small
    repro-experiments run campaign.toml --resume results/store.jsonl --telemetry
    repro-experiments sweep campaign.toml --axis fault_model=transient,stuck_at \
        --axis seed=0..2 --resume results/sweep.jsonl
    repro-experiments status results/store.jsonl
    repro-experiments serve campaign.toml --store results/shared.jsonl --port 8642
    repro-experiments worker http://127.0.0.1:8642
    repro-experiments submit --url http://127.0.0.1:8642 another.toml
    repro-experiments control --structures simt_stack,predicate_file
    repro-experiments --list-gpus
    repro-experiments --list-fault-models
    repro-experiments --list-structures
    python -m repro.experiments all --samples 100
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import warnings
from pathlib import Path

from repro.arch.presets import GPU_ALIASES, GPU_PRESETS
from repro.arch.structures import STRUCTURE_REGISTRY, structure_info
from repro.engine import CampaignStats, ResultStore
from repro.errors import ConfigError
from repro.experiments.fig1_regfile_avf import run_fig1
from repro.experiments.fig2_localmem_avf import run_fig2
from repro.experiments.fig3_epf import run_fig3
from repro.experiments.fig_control_avf import run_control_avf
from repro.experiments.fig_model_compare import run_model_compare
from repro.faultmodels.registry import FAULT_MODELS, list_fault_models
from repro.kernels.registry import KERNEL_NAMES, get_workload
from repro.reliability.report import format_avf_figure, write_cells_csv
from repro.spec import (
    INT_FIELDS,
    SPEC_FIELDS,
    TUPLE_FIELDS,
    CampaignSpec,
    check_spec_keys,
    run_sweep,
)

_EXPERIMENTS = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "control": run_control_avf,
    "models": run_model_compare,
}

#: ``all`` reproduces the paper's figures (models is opt-in).
_FIGURES = ("fig1", "fig2", "fig3")

#: Pre-subparser experiment names, kept dispatching with a warning.
_LEGACY_NAMES = {"control_avf": "control", "model_compare": "models"}


# ----------------------------------------------------------------------
# Shared option groups (argparse parent parsers)
# ----------------------------------------------------------------------

def _campaign_parent() -> argparse.ArgumentParser:
    """The figure subcommands' campaign-axis flags (spec fields)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("campaign axes")
    group.add_argument(
        "--structures", nargs="+", default=None, metavar="STRUCT",
        help="retarget the campaign at these structures (space- or "
             f"comma-separated; registry: {', '.join(STRUCTURE_REGISTRY)}; "
             "default: each experiment's own set)",
    )
    group.add_argument(
        "--fault-model", choices=list_fault_models(), default=None,
        metavar="MODEL",
        help="fault model for the campaign: "
             f"{', '.join(list_fault_models())} (default: transient, "
             "the paper's single-bit-flip model)",
    )
    group.add_argument(
        "--samples", type=int, default=None,
        help="fault injections per structure (paper: 2000; default: "
             "REPRO_FI_SAMPLES or 150)",
    )
    group.add_argument(
        "--scale", choices=("tiny", "small", "default"), default=None,
        help="workload input scale (default: REPRO_SCALE or small)",
    )
    group.add_argument(
        "--gpus", nargs="+", default=None, metavar="GPU",
        help="chip subset by name/alias (default: all four, scaled)",
    )
    group.add_argument(
        "--workloads", nargs="+", default=None, metavar="BENCH",
        choices=list(KERNEL_NAMES), help="benchmark subset",
    )
    group.add_argument("--seed", type=int, default=0)
    group.add_argument(
        "--shard-size", type=int, default=None, metavar="N",
        help="live fault plans per FI-shard job (default: 24; any value "
             "gives identical results)",
    )
    group.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="CYCLES",
        help="golden-run snapshot stride in cycles for suffix-only fault "
             "injection (default: auto — self-tuning doubling schedule; "
             "any value gives identical results)",
    )
    group.add_argument(
        "--no-checkpoints", action="store_true",
        help="disable golden-run snapshots: re-simulate every live fault "
             "from cycle zero (bit-identical, slower)",
    )
    group.add_argument(
        "--backend", choices=("vector", "python"), default=None,
        help="interpreter backend for every chip: 'vector' (numpy "
             "whole-warp fast path, the default) or 'python' (per-lane "
             "reference); bit-identical results either way",
    )
    group.add_argument(
        "--suffix-memo", action="store_true", default=None,
        help="share classified quiescent states across the campaign's "
             "injections (cross-sample suffix memoization; needs "
             "checkpoints; on by default; bit-identical results)",
    )
    group.add_argument(
        "--no-suffix-memo", action="store_true",
        help="disable cross-sample suffix memoization (bit-identical, "
             "slower)",
    )
    return parent


def _exec_parent() -> argparse.ArgumentParser:
    """Execution-resource flags shared by every campaign subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution")
    group.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size; cells run concurrently across the pool "
             "(default: serial; results are identical for any value)",
    )
    group.add_argument(
        "--resume", default=None, metavar="STORE",
        help="persistent result store (JSONL): finished jobs are loaded "
             "instead of re-executed, new ones are appended — interrupted "
             "campaigns resume, repeated ones are incremental",
    )
    group.add_argument(
        "--out", default=None, metavar="CSV",
        help="also write the cells to this CSV path (figure name is "
             "appended when running 'all')",
    )
    group.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-cell progress lines",
    )
    return parent


def _telemetry_parent() -> argparse.ArgumentParser:
    """The ``run``/``sweep`` telemetry flags (observability stream)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("telemetry")
    group.add_argument(
        "--telemetry", nargs="?", const=True, default=None, metavar="PATH",
        help="record the engine telemetry event stream as JSONL — next to "
             "the --resume store when PATH is omitted; overrides the "
             "spec's own 'telemetry' field. Observability-only: results "
             "are bit-identical with or without it",
    )
    group.add_argument(
        "--no-telemetry", action="store_true",
        help="force telemetry off even when the spec file enables it",
    )
    group.add_argument(
        "--profile", action="store_true", default=None,
        help="collect the hot-path profile (per-phase timers, dispatch "
             "counters) into the telemetry stream, for 'profile STORE'; "
             "overrides the spec's own 'profile' field. Observability-"
             "only: results are bit-identical with or without it",
    )
    group.add_argument(
        "--no-profile", action="store_true",
        help="force profiling off even when the spec file enables it",
    )
    return parent


def _add_list_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--list-gpus", action="store_true",
        help="list the known chips (and their CLI aliases) and exit",
    )
    parser.add_argument(
        "--list-workloads", action="store_true",
        help="list the benchmark suite and exit",
    )
    parser.add_argument(
        "--list-fault-models", action="store_true",
        help="list the registered fault models and exit",
    )
    parser.add_argument(
        "--list-structures", action="store_true",
        help="list the fault-site structure registry (geometry, exposing "
             "ISAs) and exit",
    )


def _build_parser() -> argparse.ArgumentParser:
    campaign = _campaign_parent()
    execution = _exec_parent()
    telemetry = _telemetry_parent()
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of Vallero et al., ISPASS 2017 "
                    "— plus the spec-file subcommands 'run SPEC' / "
                    "'sweep SPEC --axis key=v1,v2' and the campaign "
                    "monitor 'status STORE'.",
    )
    _add_list_flags(parser)
    sub = parser.add_subparsers(dest="command", metavar="COMMAND")

    figure_help = {
        "fig1": "register-file AVF (paper Fig. 1)",
        "fig2": "local-memory AVF (paper Fig. 2)",
        "fig3": "executions-per-failure (paper Fig. 3)",
        "control": "control-structure AVF (beyond the paper; "
                   "was 'control_avf')",
        "models": "per-GPU AVF across every fault model "
                  "(was 'model_compare')",
        "all": "fig1 + fig2 + fig3 in one campaign",
    }
    for name in (*_EXPERIMENTS, "all"):
        sub.add_parser(
            name, parents=[campaign, execution], help=figure_help[name],
            description=f"Run the {figure_help[name]} experiment.")

    run_parser = sub.add_parser(
        "run", parents=[execution, telemetry],
        help="execute a TOML/JSON campaign spec file",
        description="Execute a TOML/JSON campaign spec file.")
    run_parser.add_argument("spec", help="path to the .toml/.json spec file")
    run_parser.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help="override one spec field (repeatable); unknown keys are "
             f"errors — valid: {', '.join(SPEC_FIELDS)}",
    )

    sweep_parser = sub.add_parser(
        "sweep", parents=[execution, telemetry],
        help="expand a spec file by an axis product and run every child",
        description="Expand a spec file by an axis product and run every "
                    "child campaign against one shared store.")
    sweep_parser.add_argument("spec", help="path to the .toml/.json base spec")
    sweep_parser.add_argument(
        "--axis", action="append", default=None, metavar="KEY=V1,V2",
        help="one sweep axis (repeatable, required at least once); "
             "integer axes accept a..b ranges, set-valued axes join "
             "names with '+'",
    )
    sweep_parser.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help="override one base-spec field before expansion (repeatable)",
    )

    status_parser = sub.add_parser(
        "status",
        help="render the campaign monitor for a result store",
        description="Render the campaign monitor for a result store: "
                    "per-kind job counts, cache hit rates, worker "
                    "occupancy, throughput and ETA, from the telemetry "
                    "stream recorded next to the store.")
    status_parser.add_argument(
        "store", help="path to the result store (JSONL)")
    status_parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="telemetry JSONL to read (default: the store's "
             ".telemetry.jsonl sibling)",
    )
    status_parser.add_argument(
        "--follow", action="store_true",
        help="live-tail the telemetry stream: re-render the panel as a "
             "running campaign appends events, exit when it completes "
             "(tolerant of a partially written last line)",
    )
    status_parser.add_argument(
        "--once", action="store_true",
        help="with --follow: render one refresh and exit (scripts/CI)",
    )
    status_parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="--follow poll interval (default: 2.0)",
    )

    serve_parser = sub.add_parser(
        "serve", parents=[telemetry],
        help="run the campaign coordinator: lease jobs to HTTP workers",
        description="Run the campaign-service coordinator: expand the "
                    "given spec files into the job graph and lease ready "
                    "jobs to registered workers over JSON-HTTP, appending "
                    "validated results to one shared store. Stores are "
                    "bit-identical to a local process-pool run.")
    serve_parser.add_argument(
        "specs", nargs="+", metavar="SPEC",
        help="TOML/JSON campaign spec file(s) to serve, in order")
    serve_parser.add_argument(
        "--store", required=True, metavar="STORE",
        help="shared persistent result store (JSONL); finished jobs are "
             "loaded instead of re-leased, so pre-service stores resume "
             "with zero jobs executed")
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1; use 0.0.0.0 for a "
             "multi-host fleet)")
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="bind port (default: 0 = pick a free one; the chosen URL "
             "is printed on startup)")
    serve_parser.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="seconds a leased job may go without a worker heartbeat "
             "before it is re-queued (default: the spec's lease_ttl_s, "
             "or 30)")
    serve_parser.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help="override one spec field on every served spec (repeatable)")
    serve_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-cell progress lines")

    worker_parser = sub.add_parser(
        "worker",
        help="run one campaign-service worker against a coordinator",
        description="Run one campaign worker: register with the "
                    "coordinator, lease ready jobs, execute them with the "
                    "standard engine worker functions, push the payloads "
                    "back, and exit when the coordinator finishes.")
    worker_parser.add_argument(
        "url", help="coordinator URL, e.g. http://127.0.0.1:8642")
    worker_parser.add_argument(
        "--id", default=None, metavar="NAME",
        help="worker id reported to the coordinator "
             "(default: hostname-pid)")
    worker_parser.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="idle poll interval when no job is ready (default: 0.2)")
    worker_parser.add_argument(
        "--give-up", type=float, default=30.0, metavar="SECONDS",
        help="seconds to retry an unreachable coordinator before "
             "exiting (default: 30)")
    worker_parser.add_argument(
        "--segment-store", default=None, metavar="STORE",
        help="local JSONL segment store: every computed payload is "
             "appended before the push and replayed on the next start, "
             "so a worker killed mid-push loses nothing (the "
             "coordinator merges duplicates idempotently)")
    worker_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-job progress lines")

    submit_parser = sub.add_parser(
        "submit",
        help="queue more campaign specs onto a running coordinator",
        description="POST one or more spec files to a running "
                    "coordinator's /v1/submit endpoint; they are run "
                    "after the campaigns already queued.")
    submit_parser.add_argument(
        "specs", nargs="+", metavar="SPEC",
        help="TOML/JSON campaign spec file(s) to queue")
    submit_parser.add_argument(
        "--url", default=None,
        help="coordinator URL (default: the first spec's own "
             "'coordinator' field)")
    submit_parser.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help="override one spec field on every submitted spec "
             "(repeatable)")

    profile_parser = sub.add_parser(
        "profile",
        help="render the hot-path profiling report for a result store",
        description="Render the hot-path profiling report for a result "
                    "store: per-phase wall-time breakdown, per-ISA "
                    "opcode-class dispatch mix, counters and top cost "
                    "centers, from the cell_profile/campaign_profile "
                    "events a campaign run with --profile recorded.")
    profile_parser.add_argument(
        "store", help="path to the result store (JSONL)")
    profile_parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="telemetry JSONL to read (default: the store's "
             ".telemetry.jsonl sibling)",
    )
    return parser


def _rewrite_legacy(argv: list) -> list:
    """Map pre-subparser experiment names onto the current commands.

    The first non-flag token is the subcommand (every root flag is a
    ``--list-*`` switch taking no value), so rewriting it is exact.
    """
    for index, token in enumerate(argv):
        if token.startswith("-"):
            continue
        replacement = _LEGACY_NAMES.get(token)
        if replacement is not None:
            warnings.warn(
                f"the {token!r} experiment name is deprecated; use "
                f"{replacement!r}", DeprecationWarning, stacklevel=3)
            argv = list(argv)
            argv[index] = replacement
        break
    return argv


def _validate_args(args) -> None:
    """Range-check numeric CLI arguments with friendly messages.

    argparse only guarantees the values parse as integers; without
    this, a zero or negative value surfaces as a deep traceback from
    numpy or the process pool instead of a usable error.
    """
    checks = (
        ("--samples", args.samples, 1),
        ("--seed", args.seed, 0),
        ("--shard-size", args.shard_size, 1),
        ("--checkpoint-interval", args.checkpoint_interval, 1),
    )
    for flag, value, minimum in checks:
        if value is not None and value < minimum:
            raise ConfigError(
                f"{flag} must be >= {minimum}, got {value}"
            )
    if args.no_checkpoints and args.checkpoint_interval is not None:
        raise ConfigError(
            "--no-checkpoints and --checkpoint-interval are mutually "
            "exclusive"
        )


def _parse_structures(values) -> tuple | None:
    """Normalize --structures (accepts commas) against the registry.

    Every name is validated through the registry, so a typo yields a
    friendly error naming the valid choices instead of a traceback
    from deep inside the sampler.
    """
    if values is None:
        return None
    names = [name for value in values for name in value.split(",") if name]
    if not names:
        raise ConfigError(
            f"--structures needs at least one of: "
            f"{', '.join(STRUCTURE_REGISTRY)}"
        )
    for name in names:
        structure_info(name)  # raises ConfigError with the valid choices
    return tuple(dict.fromkeys(names))  # dedupe, keep order


def _checkpoint_interval(args):
    """The campaign's checkpoint setting: None (off), 'auto', or cycles."""
    if args.no_checkpoints:
        return None
    if args.checkpoint_interval is not None:
        return args.checkpoint_interval
    return "auto"


def _suffix_memo_arg(args):
    """The spec's ``suffix_memo`` value from the CLI flag pair."""
    if getattr(args, "no_suffix_memo", False):
        if getattr(args, "suffix_memo", None):
            raise ConfigError(
                "--suffix-memo and --no-suffix-memo are mutually exclusive")
        return False
    return getattr(args, "suffix_memo", None)


def _spec_from_args(args) -> CampaignSpec:
    """The figure subcommands' CampaignSpec (None fields = defaults)."""
    return CampaignSpec(
        gpus=tuple(args.gpus) if args.gpus is not None else None,
        workloads=tuple(args.workloads) if args.workloads is not None
        else None,
        scale=args.scale,
        samples=args.samples,
        seed=args.seed,
        structures=_parse_structures(args.structures),
        fault_model=args.fault_model or "transient",
        checkpoint_interval=_checkpoint_interval(args),
        shard_size=args.shard_size,
        backend=getattr(args, "backend", None),
        suffix_memo=_suffix_memo_arg(args),
    )


def _telemetry_arg(args):
    """The run/sweep telemetry setting from the flag pair.

    ``None`` defers to the spec's own ``telemetry`` field; ``False``
    forces it off; ``True``/a path come from ``--telemetry [PATH]``.
    """
    if args.no_telemetry:
        if args.telemetry is not None:
            raise ConfigError(
                "--telemetry and --no-telemetry are mutually exclusive")
        return False
    return args.telemetry


def _profile_arg(args):
    """The run/sweep profile setting from the flag pair.

    ``None`` defers to the spec's own ``profile`` field; ``False``
    forces it off; ``True`` comes from ``--profile``.
    """
    if args.no_profile:
        if args.profile:
            raise ConfigError(
                "--profile and --no-profile are mutually exclusive")
        return False
    return args.profile


def _progress(cell):
    print(
        f"  [{time.strftime('%H:%M:%S')}] {cell.gpu:<26} {cell.workload:<12} "
        f"cycles={cell.cycles:<9} fi={cell.fi_time_s:6.1f}s",
        file=sys.stderr,
        flush=True,
    )


def _list_gpus() -> None:
    for name, config in GPU_PRESETS.items():
        aliases = sorted(a for a, full in GPU_ALIASES.items() if full == name)
        print(f"{name:<18} aliases: {', '.join(aliases):<28} "
              f"{config.describe()}")


def _list_workloads() -> None:
    for name in KERNEL_NAMES:
        workload = get_workload(name, "small")
        lmem = "local-memory" if workload.uses_local_memory else "no local mem"
        print(f"{name:<12} [{lmem}]  {workload.description}")


def _list_fault_models() -> None:
    for name, model in FAULT_MODELS.items():
        kind = "permanent" if model.persistent else "transient"
        print(f"{name:<10} [{kind}]  {model.description}")


def _list_structures() -> None:
    for name, info in STRUCTURE_REGISTRY.items():
        kind = "control " if info.control else "datapath"
        isas = "+".join(info.isas)
        print(f"{name:<16} [{kind}] isa: {isas:<8} {info.description}")


# ----------------------------------------------------------------------
# Spec-field value parsing (the `run --set` / `sweep --axis` surface)
# ----------------------------------------------------------------------

# Field typing comes from the spec package (declared once, next to
# the dataclass) so a new campaign axis needs no CLI edit.
_LIST_FIELDS = TUPLE_FIELDS
_INT_FIELDS = INT_FIELDS


def _check_set_key(key: str, *, flag: str) -> None:
    check_spec_keys([key], context=f"{flag} {key}=...")


def _split_assignment(text: str, *, flag: str) -> tuple[str, str]:
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise ConfigError(
            f"{flag} expects key=value, got {text!r}")
    return key.strip(), value.strip()


def _scalar_value(key: str, text: str):
    """One spec-field value from CLI text (typed per field)."""
    if key in _INT_FIELDS:
        try:
            return int(text)
        except ValueError:
            raise ConfigError(
                f"spec field {key!r}: expected an integer, got {text!r}"
            ) from None
    if key in ("raw_fit_per_bit", "lease_ttl_s"):
        try:
            return float(text)
        except ValueError:
            raise ConfigError(
                f"spec field {key!r}: expected a number, got {text!r}"
            ) from None
    if key == "checkpoint_interval":
        if text in ("none", "off"):
            return None
        if text == "auto":
            return "auto"
        try:
            return int(text)
        except ValueError:
            raise ConfigError(
                f"spec field {key!r}: expected 'auto', 'none' or a cycle "
                f"count, got {text!r}") from None
    if key == "telemetry":
        low = text.lower()
        if low in ("true", "on", "1", "yes"):
            return True
        if low in ("false", "off", "0", "no", "none"):
            return False
        return text  # a JSONL path
    if key in ("profile", "suffix_memo"):
        low = text.lower()
        if low in ("true", "on", "1", "yes"):
            return True
        if low in ("false", "off", "0", "no", "none"):
            return False
        raise ConfigError(
            f"spec field {key!r}: expected true/false, got {text!r}")
    return text


def _set_value(key: str, text: str):
    """The value of one ``--set key=value`` override."""
    if key in _LIST_FIELDS:
        names = tuple(name for name in text.split(",") if name)
        if not names:
            raise ConfigError(
                f"spec field {key!r}: expected a comma-separated name list, "
                f"got {text!r}")
        return names
    return _scalar_value(key, text)


def _apply_sets(spec: CampaignSpec, sets: list | None,
                *, flag: str = "--set") -> CampaignSpec:
    for text in sets or ():
        key, value = _split_assignment(text, flag=flag)
        _check_set_key(key, flag=flag)
        spec = spec.replace(**{key: _set_value(key, value)})
    return spec


def _axis_points(key: str, text: str) -> list:
    """The value list of one ``--axis key=v1,v2`` sweep axis.

    Integer axes accept inclusive ``a..b`` ranges; set-valued axes
    (gpus, workloads, structures) join the names of one axis point
    with ``+`` (e.g. ``structures=register_file+local_memory,simt_stack``
    is two points: the datapath pair, then the SIMT stack alone).
    """
    points: list = []
    for part in text.split(","):
        if not part:
            continue
        if key in _INT_FIELDS and ".." in part:
            lo, _, hi = part.partition("..")
            try:
                lo, hi = int(lo), int(hi)
            except ValueError:
                raise ConfigError(
                    f"sweep axis {key!r}: bad range {part!r} "
                    f"(expected a..b)") from None
            if hi < lo:
                raise ConfigError(
                    f"sweep axis {key!r}: empty range {part!r}")
            points.extend(range(lo, hi + 1))
        elif key in _LIST_FIELDS:
            points.append(tuple(name for name in part.split("+") if name))
        else:
            points.append(_scalar_value(key, part))
    if not points:
        raise ConfigError(f"sweep axis {key!r} has no values")
    return points


# ----------------------------------------------------------------------
# Subcommand bodies
# ----------------------------------------------------------------------

def _main_figures(args) -> int:
    """The fig1/fig2/fig3/control/models/all experiment harnesses."""
    _validate_args(args)
    spec = _spec_from_args(args)
    names = list(_FIGURES) if args.command == "all" else [args.command]
    store = ResultStore(args.resume) if args.resume else None
    try:
        for name in names:
            out_csv = args.out
            if out_csv and args.command == "all":
                out_csv = out_csv.replace(".csv", f"_{name}.csv")
            print(f"== running {name} ==", file=sys.stderr, flush=True)
            stats = CampaignStats()
            extra = {}
            if name == "models":
                # Preserve the pre-spec contract: a named model
                # restricts the comparison, no flag compares them all.
                extra["fault_models"] = (
                    [args.fault_model] if args.fault_model else None)
            _, report = _EXPERIMENTS[name](
                spec,
                out_csv=out_csv,
                progress=None if args.quiet else _progress,
                workers=args.workers,
                store=store,
                stats=stats,
                **extra,
            )
            print(report)
            print()
            print(stats.summary(), file=sys.stderr, flush=True)
    finally:
        if store is not None:
            store.close()
    return 0


def _main_run(args) -> int:
    """``run SPEC``: execute one spec file."""
    spec = CampaignSpec.from_file(args.spec)
    spec = _apply_sets(spec, getattr(args, "set"))
    telemetry = _telemetry_arg(args)
    from repro.engine.matrix import run_campaign
    title = spec.name or args.spec
    print(f"== running spec {title} ==", file=sys.stderr, flush=True)
    print(f"   {spec.describe()}", file=sys.stderr, flush=True)
    stats = CampaignStats()
    result = run_campaign(
        spec, store=args.resume, workers=args.workers,
        progress=None if args.quiet else _progress, stats=stats,
        telemetry=telemetry, profile=_profile_arg(args))
    anchor = spec.resolved_structures()[0]
    # Cells whose chip does not expose the anchor structure never
    # sampled it; keep them out of the table instead of rendering a
    # fabricated 0.000 (the exposure rule is ISA-dependent).
    sampled = [cell for cell in result.cells if anchor in cell.fi]
    print(format_avf_figure(
        sampled, anchor, f"Campaign {title} — {anchor} AVF"))
    skipped = len(result.cells) - len(sampled)
    if skipped:
        print(f"({skipped} cells omitted from the table: their chips do "
              f"not expose {anchor})", file=sys.stderr)
    if args.out:
        write_cells_csv(result.cells, args.out)
    print(stats.summary(), file=sys.stderr, flush=True)
    return 0


def _main_sweep(args) -> int:
    """``sweep SPEC --axis ...``: spec file x axis product."""
    if not args.axis:
        raise ConfigError(
            "sweep needs at least one --axis key=v1,v2 "
            f"(valid keys: {', '.join(f for f in SPEC_FIELDS if f != 'name')})")
    spec = CampaignSpec.from_file(args.spec)
    spec = _apply_sets(spec, getattr(args, "set"))
    telemetry = _telemetry_arg(args)
    axes: dict = {}
    for text in args.axis:
        key, value = _split_assignment(text, flag="--axis")
        _check_set_key(key, flag="--axis")
        if key in axes:
            raise ConfigError(
                f"duplicate sweep axis {key!r}; give each --axis "
                f"once and comma-separate its values")
        axes[key] = _axis_points(key, value)
    title = spec.name or args.spec
    total = 1
    for values in axes.values():
        total *= len(values)
    print(f"== sweeping spec {title}: {total} campaigns ==",
          file=sys.stderr, flush=True)
    stats = CampaignStats()
    result = run_sweep(
        spec, axes, store=args.resume, workers=args.workers,
        progress=None if args.quiet else _progress, stats=stats,
        telemetry=telemetry, profile=_profile_arg(args))
    print(result.summary())
    if args.out:
        write_cells_csv(result.cells, args.out)
    print(stats.summary(), file=sys.stderr, flush=True)
    return 0


def _store_counts(store_path: Path) -> dict:
    store = ResultStore(store_path)
    try:
        return store.counts_by_kind()
    finally:
        store.close()


def _main_status(args) -> int:
    """``status STORE``: the campaign monitor panel."""
    from repro.telemetry import (
        aggregate_events,
        format_status,
        load_telemetry_events,
        telemetry_path_for_store,
    )
    store_path = Path(args.store)
    if not store_path.exists():
        raise ConfigError(
            f"result store not found: {store_path} (give the JSONL file a "
            f"campaign wrote via --resume)")
    telemetry_path = (Path(args.telemetry) if args.telemetry
                      else telemetry_path_for_store(store_path))
    if args.follow or args.once:
        return _follow_status(store_path, telemetry_path,
                              interval=args.interval, once=args.once)
    counts = _store_counts(store_path)
    events, skipped = (load_telemetry_events(telemetry_path)
                       if telemetry_path.exists() else ([], 0))
    print(format_status(store_path, counts, aggregate_events(events),
                        telemetry_path=telemetry_path))
    if skipped:
        print(f"({skipped} partial/unparseable telemetry lines skipped — "
              f"a campaign may still be writing)", file=sys.stderr)
    return 0


def _follow_status(store_path: Path, telemetry_path: Path, *,
                   interval: float, once: bool) -> int:
    """``status --follow``: live-tail the telemetry stream.

    Polls the JSONL for appended events (tolerating the partially
    written last line of an in-flight campaign), re-renders the panel
    when something new arrived, and exits once the stream shows every
    begun campaign completed — or immediately after one render with
    ``--once``.
    """
    from repro.telemetry import TelemetryTail, aggregate_events, format_status
    tail = TelemetryTail(telemetry_path)
    events: list = []
    first = True
    try:
        while True:
            fresh = tail.poll()
            events.extend(fresh)
            if first or fresh:
                status = aggregate_events(events)
                if not first:
                    print()
                print(format_status(store_path, _store_counts(store_path),
                                    status, telemetry_path=telemetry_path),
                      flush=True)
                if tail.skipped:
                    print(f"({tail.skipped} partial/unparseable telemetry "
                          f"lines skipped)", file=sys.stderr, flush=True)
                if once:
                    return 0
                if status.campaigns_begun and not status.in_progress:
                    return 0
                first = False
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _main_serve(args) -> int:
    """``serve SPEC...``: the campaign-service coordinator."""
    from repro.engine.service import CampaignService
    specs = []
    for path in args.specs:
        spec = CampaignSpec.from_file(path)
        specs.append(_apply_sets(spec, getattr(args, "set")))
    store = ResultStore(args.store)

    def on_campaign(spec, result):
        title = spec.name or spec.describe()
        print(f"== served campaign {title} ==", file=sys.stderr,
              flush=True)
        print(result.stats.summary(), file=sys.stderr, flush=True)

    try:
        service = CampaignService(
            store, specs, host=args.host, port=args.port,
            lease_ttl_s=args.lease_ttl, telemetry=_telemetry_arg(args),
            profile=_profile_arg(args),
            progress=None if args.quiet else _progress)
        print(f"coordinator listening on {service.url} "
              f"({len(specs)} campaign(s) queued)", flush=True)
        stats = service.run(on_campaign=on_campaign)
        print(stats.summary(), file=sys.stderr, flush=True)
    finally:
        store.close()
    return 0


def _main_worker(args) -> int:
    """``worker URL``: one campaign-service fleet member."""
    from repro.engine.service import CampaignWorker, CoordinatorUnreachable
    segment = ResultStore(args.segment_store) if args.segment_store \
        else None
    worker = CampaignWorker(
        args.url, worker_id=args.id, poll_s=args.poll,
        give_up_s=args.give_up, segment_store=segment, quiet=args.quiet)
    try:
        counters = worker.run()
    except CoordinatorUnreachable as error:
        raise ConfigError(str(error)) from None
    finally:
        if segment is not None:
            segment.close()
    print(f"worker {worker.worker_id}: "
          + ", ".join(f"{k}={v}" for k, v in sorted(counters.items())),
          file=sys.stderr, flush=True)
    return 0


def _main_submit(args) -> int:
    """``submit SPEC...``: queue specs onto a running coordinator."""
    from repro.engine.service import CoordinatorClient, protocol
    specs = []
    for path in args.specs:
        spec = CampaignSpec.from_file(path)
        specs.append((path, _apply_sets(spec, getattr(args, "set"))))
    url = args.url or next(
        (spec.coordinator for _, spec in specs
         if spec.coordinator is not None), None)
    if url is None:
        raise ConfigError(
            "submit needs a coordinator: give --url, or set the "
            "'coordinator' field in a spec file")
    client = CoordinatorClient(url)
    for path, spec in specs:
        response = client.post(protocol.SUBMIT_PATH,
                               {"spec": spec.to_dict()})
        if not response.get("ok"):
            raise ConfigError(
                f"coordinator rejected {path}: "
                f"{response.get('error', 'unknown error')}")
        print(f"queued {response.get('queued', path)} on {url}")
    return 0


def _main_profile(args) -> int:
    """``profile STORE``: the hot-path profiling report."""
    from repro.telemetry import (
        aggregate_profiles,
        format_profile,
        load_telemetry_events,
        telemetry_path_for_store,
    )
    store_path = Path(args.store)
    if not store_path.exists():
        raise ConfigError(
            f"result store not found: {store_path} (give the JSONL file a "
            f"campaign wrote via --resume)")
    telemetry_path = (Path(args.telemetry) if args.telemetry
                      else telemetry_path_for_store(store_path))
    if not telemetry_path.exists():
        raise ConfigError(
            f"no telemetry stream at {telemetry_path}; re-run the campaign "
            f"with --profile (or set profile = true in the spec) to record "
            f"one")
    events, skipped = load_telemetry_events(telemetry_path)
    work = [e.get("work_s") for e in events
            if e.get("event") == "campaign_profile"]
    work_s = sum(w for w in work if w) or None
    print(format_profile(store_path, aggregate_profiles(events),
                         work_s=work_s))
    if skipped:
        print(f"({skipped} partial/unparseable telemetry lines skipped — "
              f"a campaign may still be writing)", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    argv = _rewrite_legacy(
        list(argv) if argv is not None else sys.argv[1:])
    args = _build_parser().parse_args(argv)
    if args.list_gpus:
        _list_gpus()
        return 0
    if args.list_workloads:
        _list_workloads()
        return 0
    if args.list_fault_models:
        _list_fault_models()
        return 0
    if args.list_structures:
        _list_structures()
        return 0
    if args.command is None:
        print("error: an experiment "
              f"({'|'.join((*sorted(_EXPERIMENTS), 'all'))}) or a "
              "subcommand (run|sweep|status|profile|serve|worker|submit) "
              "is required unless "
              "--list-gpus/--list-workloads/--list-fault-models/"
              "--list-structures is given",
              file=sys.stderr)
        return 2
    try:
        if getattr(args, "workers", 1) < 1:
            raise ConfigError(
                f"--workers must be >= 1, got {args.workers}")
        if args.command == "run":
            return _main_run(args)
        if args.command == "sweep":
            return _main_sweep(args)
        if args.command == "status":
            return _main_status(args)
        if args.command == "profile":
            return _main_profile(args)
        if args.command == "serve":
            return _main_serve(args)
        if args.command == "worker":
            return _main_worker(args)
        if args.command == "submit":
            return _main_submit(args)
        return _main_figures(args)
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went to a pager/head that quit; not an error. Point
        # stdout at devnull so the interpreter's shutdown flush does
        # not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
