"""Control-structure AVF — per-GPU AVF of the non-datapath fault sites.

Beyond the paper: the same statistical fault-injection methodology,
aimed at the control/parallelism-management state the follow-on
literature singles out (Guerrero-Balaguera et al. 2023; dos Santos et
al., NSREC 2021) — the SIMT reconvergence stack, the predicate/status
registers (SASS P0..P6; SI SCC/VCC/EXEC), and the warp scheduler's
ready/barrier bookkeeping. Reported per (benchmark, GPU) with per-GPU
averages, next to Fig. 1/2's datapath numbers.

Structure exposure is ISA-dependent: ``simt_stack`` exists only on the
SASS chips (SI manages divergence through EXEC masks), so the AMD chip
reports ``n/a`` there and real numbers for the other two.
"""

from __future__ import annotations

from repro.arch.structures import CONTROL_STRUCTURES
from repro.reliability.campaign import CellResult, run_matrix
from repro.reliability.report import format_control_avf, write_cells_csv
from repro.spec import coerce_spec


def run_control_avf(spec=None, *, out_csv: str | None = None, progress=None,
                    workers: int = 1, store=None, stats=None,
                    **legacy) -> tuple[list[CellResult], str]:
    """Run the control-structure campaign; returns (cells, report).

    An unset ``structures`` defaults to all three control structures;
    an explicit one (the CLI's ``--structures`` flag) restricts the
    target set. The legacy kwarg form builds the spec internally with
    a :class:`DeprecationWarning`.
    """
    spec = coerce_spec(spec, legacy, who="run_control_avf")
    if spec.structures is None:
        spec = spec.replace(structures=CONTROL_STRUCTURES)
    cells = run_matrix(spec, progress=progress, workers=workers,
                       store=store, stats=stats)
    report = format_control_avf(cells, spec.structures)
    if out_csv:
        write_cells_csv(cells, out_csv)
    return cells, report
