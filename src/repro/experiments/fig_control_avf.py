"""Control-structure AVF — per-GPU AVF of the non-datapath fault sites.

Beyond the paper: the same statistical fault-injection methodology,
aimed at the control/parallelism-management state the follow-on
literature singles out (Guerrero-Balaguera et al. 2023; dos Santos et
al., NSREC 2021) — the SIMT reconvergence stack, the predicate/status
registers (SASS P0..P6; SI SCC/VCC/EXEC), and the warp scheduler's
ready/barrier bookkeeping. Reported per (benchmark, GPU) with per-GPU
averages, next to Fig. 1/2's datapath numbers.

Structure exposure is ISA-dependent: ``simt_stack`` exists only on the
SASS chips (SI manages divergence through EXEC masks), so the AMD chip
reports ``n/a`` there and real numbers for the other two.
"""

from __future__ import annotations

from repro.arch.scaling import list_scaled_gpus
from repro.arch.structures import CONTROL_STRUCTURES
from repro.kernels.registry import KERNEL_NAMES
from repro.reliability.campaign import CellResult, run_matrix
from repro.reliability.report import format_control_avf, write_cells_csv


def run_control_avf(samples: int | None = None, scale: str | None = None,
                    gpus: list | None = None, workloads: list | None = None,
                    seed: int = 0, out_csv: str | None = None,
                    progress=None, workers: int = 1, store=None,
                    shard_size: int | None = None,
                    stats=None, fault_model=None,
                    checkpoint_interval=None,
                    structures: tuple | None = None,
                    ) -> tuple[list[CellResult], str]:
    """Run the control-structure campaign; returns (cells, report).

    ``structures`` (default: all three control structures) restricts
    the target set — the CLI's ``--structures`` flag lands here.
    """
    structures = tuple(structures) if structures else CONTROL_STRUCTURES
    cells = run_matrix(
        gpus=gpus if gpus is not None else list_scaled_gpus(),
        workloads=workloads if workloads is not None else list(KERNEL_NAMES),
        scale=scale,
        samples=samples,
        seed=seed,
        structures=structures,
        progress=progress,
        workers=workers,
        store=store,
        shard_size=shard_size,
        stats=stats,
        fault_model=fault_model,
        checkpoint_interval=checkpoint_interval,
    )
    report = format_control_avf(cells, structures)
    if out_csv:
        write_cells_csv(cells, out_csv)
    return cells, report
