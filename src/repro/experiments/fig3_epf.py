"""Fig. 3 — Executions Per Failure (EPF) for all 4 GPUs x 10 benchmarks.

EPF = EIT / FIT_GPU combines the chip's performance (cycle count and
clock) with its reliability (per-structure AVF-FI weighted by
structure size and raw soft-error rate). The paper plots it on a log
axis spanning roughly 10^12..10^16; relative ordering across chips and
benchmarks is the reproduction target.
"""

from __future__ import annotations

from repro.arch.scaling import list_scaled_gpus
from repro.kernels.registry import KERNEL_NAMES
from repro.reliability.campaign import CellResult, run_matrix
from repro.reliability.report import format_epf_figure, write_cells_csv
from repro.sim.faults import STRUCTURES


def run_fig3(samples: int | None = None, scale: str | None = None,
             gpus: list | None = None, workloads: list | None = None,
             seed: int = 0, out_csv: str | None = None,
             progress=None, workers: int = 1, store=None,
             shard_size: int | None = None,
             stats=None, fault_model=None,
             checkpoint_interval=None,
             structures: tuple | None = None) -> tuple[list[CellResult], str]:
    """Run the Fig. 3 campaign; returns (cells, formatted report).

    ``structures`` (the CLI ``--structures`` override) widens or
    narrows the structure set whose FIT contributions the EPF sums —
    adding control structures folds their AVF into FIT_GPU.
    """
    cells = run_matrix(
        gpus=gpus if gpus is not None else list_scaled_gpus(),
        workloads=workloads if workloads is not None else list(KERNEL_NAMES),
        scale=scale,
        samples=samples,
        seed=seed,
        structures=tuple(structures) if structures else STRUCTURES,
        progress=progress,
        workers=workers,
        store=store,
        shard_size=shard_size,
        stats=stats,
        fault_model=fault_model,
        checkpoint_interval=checkpoint_interval,
    )
    report = format_epf_figure(cells)
    if out_csv:
        write_cells_csv(cells, out_csv)
    return cells, report
