"""Fig. 3 — Executions Per Failure (EPF) for all 4 GPUs x 10 benchmarks.

EPF = EIT / FIT_GPU combines the chip's performance (cycle count and
clock) with its reliability (per-structure AVF-FI weighted by
structure size and raw soft-error rate). The paper plots it on a log
axis spanning roughly 10^12..10^16; relative ordering across chips and
benchmarks is the reproduction target.
"""

from __future__ import annotations

from repro.reliability.campaign import CellResult, run_matrix
from repro.reliability.report import format_epf_figure, write_cells_csv
from repro.spec import coerce_spec


def run_fig3(spec=None, *, out_csv: str | None = None, progress=None,
             workers: int = 1, store=None, stats=None,
             **legacy) -> tuple[list[CellResult], str]:
    """Run the Fig. 3 campaign; returns (cells, formatted report).

    The spec's ``structures`` (default: the datapath pair) widens or
    narrows the structure set whose FIT contributions the EPF sums —
    adding control structures folds their AVF into FIT_GPU. The legacy
    kwarg form builds the spec internally with a
    :class:`DeprecationWarning`.
    """
    spec = coerce_spec(spec, legacy, who="run_fig3")
    cells = run_matrix(spec, progress=progress, workers=workers,
                       store=store, stats=stats)
    report = format_epf_figure(cells)
    if out_csv:
        write_cells_csv(cells, out_csv)
    return cells, report
