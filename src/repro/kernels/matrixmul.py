"""matrixMul: tiled dense matrix multiply (CUDA SDK / APP SDK).

C = A x B with 16x16 shared-memory tiles — the classic local-memory
workload: both tiles stay live between the two barriers, so local
memory AVF tracks occupancy closely (the paper's Fig. 2 behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import common
from repro.kernels.workload import BufferSpec, Workload
from repro.sim.launch import LaunchConfig, pack_params

TILE = 16

SASS = """
.kernel matrixMul
.regs 16
.smem 2048
    S2R R0, SR_TID_X
    S2R R1, SR_TID_Y
    S2R R2, SR_CTAID_X
    S2R R3, SR_CTAID_Y
    MOV R4, c[0]               # N
    SHL R5, R3, 4
    IADD R5, R5, R1            # row = by*16 + ty
    SHL R6, R2, 4
    IADD R6, R6, R0            # col = bx*16 + tx
    MOV R7, RZ                 # acc = 0.0f
    MOV R8, RZ                 # tile counter t
    SHR.U32 R15, R4, 4         # numTiles = N / 16
    # As[ty][tx] byte index, reused every tile
    SHL R13, R1, 4
    IADD R13, R13, R0
    SHL R13, R13, 2
tile_loop:
    SHL R9, R8, 4              # t*16
    IADD R10, R9, R0           # aCol = t*16 + tx
    IMAD R11, R5, R4, R10      # row*N + aCol
    SHL R11, R11, 2
    IADD R11, R11, c[1]
    LDG R12, [R11]
    STS [R13], R12             # As[ty][tx]
    IADD R10, R9, R1           # bRow = t*16 + ty
    IMAD R11, R10, R4, R6      # bRow*N + col
    SHL R11, R11, 2
    IADD R11, R11, c[2]
    LDG R12, [R11]
    STS [R13+1024], R12        # Bs[ty][tx]
    BAR.SYNC
    MOV R9, RZ                 # k = 0
inner:
    SHL R10, R1, 4
    IADD R10, R10, R9
    SHL R10, R10, 2
    LDS R11, [R10]             # As[ty][k]
    SHL R12, R9, 4
    IADD R12, R12, R0
    SHL R12, R12, 2
    LDS R14, [R12+1024]        # Bs[k][tx]
    FFMA R7, R11, R14, R7
    IADD R9, R9, 1
    ISETP.LT P0, R9, 16
@P0 BRA inner
    BAR.SYNC
    IADD R8, R8, 1
    ISETP.LT P0, R8, R15
@P0 BRA tile_loop
    IMAD R9, R5, R4, R6        # row*N + col
    SHL R9, R9, 2
    IADD R9, R9, c[3]
    STG [R9], R7
    EXIT
"""

SI = """
.kernel matrixMul
.vregs 14
.sregs 14
.lds 2048
    s_load_dword s6, param[0]      # N
    s_lshr_b32 s7, s6, 4           # numTiles
    s_mov_b32 s10, 0               # t
    s_lshl_b32 s8, s1, 4
    v_mov_b32 v2, s8
    v_add_i32 v2, v2, v1           # row = wg_y*16 + ty
    s_lshl_b32 s8, s0, 4
    v_mov_b32 v3, s8
    v_add_i32 v3, v3, v0           # col = wg_x*16 + tx
    v_mov_b32 v4, 0                # acc
    v_lshlrev_b32 v5, 4, v1
    v_add_i32 v5, v5, v0
    v_lshlrev_b32 v5, 2, v5        # tile byte index (ty*16+tx)*4
tile_loop:
    s_lshl_b32 s8, s10, 4          # t*16
    v_mov_b32 v6, s8
    v_add_i32 v7, v6, v0           # aCol
    v_mad_i32 v8, v2, s6, v7       # row*N + aCol
    v_lshlrev_b32 v8, 2, v8
    s_load_dword s9, param[1]
    v_add_i32 v8, v8, s9
    global_load_dword v9, v8
    ds_write_b32 v5, v9            # As[ty][tx]
    v_add_i32 v7, v6, v1           # bRow
    v_mad_i32 v8, v7, s6, v3       # bRow*N + col
    v_lshlrev_b32 v8, 2, v8
    s_load_dword s9, param[2]
    v_add_i32 v8, v8, s9
    global_load_dword v9, v8
    ds_write_b32 v5, v9, 1024      # Bs[ty][tx]
    s_barrier
    s_mov_b32 s11, 0               # k
inner:
    v_lshlrev_b32 v10, 4, v1
    v_add_i32 v10, v10, s11
    v_lshlrev_b32 v10, 2, v10
    ds_read_b32 v11, v10           # As[ty][k]
    s_lshl_b32 s12, s11, 4
    v_mov_b32 v12, s12
    v_add_i32 v12, v12, v0
    v_lshlrev_b32 v12, 2, v12
    ds_read_b32 v13, v12, 1024     # Bs[k][tx]
    v_mac_f32 v4, v11, v13
    s_add_i32 s11, s11, 1
    s_cmp_lt_i32 s11, 16
    s_cbranch_scc1 inner
    s_barrier
    s_add_i32 s10, s10, 1
    s_cmp_lt_i32 s10, s7
    s_cbranch_scc1 tile_loop
    v_mad_i32 v8, v2, s6, v3
    v_lshlrev_b32 v8, 2, v8
    s_load_dword s9, param[3]
    v_add_i32 v8, v8, s9
    global_store_dword v8, v4
    s_endpgm
"""

_SIZES = {"tiny": 16, "small": 32, "default": 64}


def build(scale: str = "default") -> Workload:
    n = _SIZES[scale]
    rng = common.rng_for("matrixMul")
    a = common.uniform_f32(rng, (n, n))
    b = common.uniform_f32(rng, (n, n))

    def make_launches(isa: str, bases: dict) -> list:
        params = pack_params(n, bases["a"], bases["b"], bases["c"])
        return [
            LaunchConfig(
                program=programs[isa],
                grid=(n // TILE, n // TILE),
                block=(TILE, TILE),
                params=params,
            )
        ]

    def reference() -> dict:
        # Mirror the kernel's float32 FMA accumulation order (k-major).
        acc = np.zeros((n, n), dtype=np.float32)
        for k in range(n):
            acc += a[:, k:k + 1] * b[k:k + 1, :]
        return {"c": acc}

    programs = common.assemble_pair(SASS, SI)
    return Workload(
        name="matrixMul",
        programs=programs,
        buffers=[
            BufferSpec("a", data=a),
            BufferSpec("b", data=b),
            BufferSpec("c", nbytes=n * n * 4),
        ],
        make_launches=make_launches,
        output_buffers=["c"],
        reference=reference,
        output_dtypes={"c": "f32"},
        rtol=1e-3,
        description=f"tiled {n}x{n} float matmul, 16x16 shared tiles",
        uses_local_memory=True,
    )
