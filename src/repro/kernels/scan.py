"""scan: per-block Hillis-Steele inclusive prefix sum (CUDA SDK "scan_naive").

Double-buffered in shared memory: each of the log2(128) rounds toggles
the ping/pong halves, so local memory stays fully live across the whole
kernel — high local-memory AVF relative to occupancy.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import common
from repro.kernels.workload import BufferSpec, Workload
from repro.sim.launch import LaunchConfig, pack_params

BLOCK = 128

SASS = """
.kernel scan
.regs 18
.smem 1024
    S2R R0, SR_TID_X
    S2R R1, SR_CTAID_X
    SHL R2, R1, 7
    IADD R2, R2, R0            # gid
    SHL R3, R2, 2
    IADD R3, R3, c[1]
    LDG R4, [R3]               # in[gid]
    SHL R5, R0, 2              # tid*4
    STS [R5], R4               # ping[tid]
    BAR.SYNC
    MOV R6, RZ                 # pin base bytes (ping = 0)
    MOV32I R7, 1               # offset
scan_loop:
    MOV32I R8, 512
    ISUB R8, R8, R6            # pout base = toggle(pin)
    IADD R9, R6, R5            # &pin[tid]
    LDS R10, [R9]
    ISETP.GE P0, R0, R7
    SHL R11, R7, 2
    ISUB R12, R9, R11          # &pin[tid - offset]
@P0 LDS R13, [R12]
@P0 IADD R10, R10, R13
    IADD R14, R8, R5
    STS [R14], R10             # pout[tid]
    BAR.SYNC
    MOV R6, R8                 # pin = pout
    SHL R7, R7, 1
    ISETP.LT P1, R7, 128
@P1 BRA scan_loop
    IADD R15, R6, R5
    LDS R16, [R15]
    SHL R17, R2, 2
    IADD R17, R17, c[2]
    STG [R17], R16             # out[gid]
    EXIT
"""

SI = """
.kernel scan
.vregs 10
.sregs 14
.lds 1024
    s_mul_i32 s7, s0, 128
    v_mov_b32 v2, s7
    v_add_i32 v2, v2, v0          # gid
    v_lshlrev_b32 v3, 2, v2
    s_load_dword s6, param[1]
    v_add_i32 v3, v3, s6
    global_load_dword v4, v3      # in[gid]
    v_lshlrev_b32 v5, 2, v0       # tid*4
    ds_write_b32 v5, v4           # ping[tid]
    s_barrier
    s_mov_b32 s8, 0               # pin base bytes
    s_mov_b32 s9, 1               # offset
scan_loop:
    s_sub_i32 s12, 512, s8        # pout base
    v_add_i32 v6, v5, s8          # &pin[tid]
    ds_read_b32 v7, v6
    v_cmp_ge_i32 vcc, v0, s9
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz scan_skip
    s_lshl_b32 s13, s9, 2
    v_mov_b32 v8, s13
    v_sub_i32 v8, v6, v8          # &pin[tid - offset]
    ds_read_b32 v9, v8
    v_add_i32 v7, v7, v9
scan_skip:
    s_mov_b64 exec, s[10:11]
    v_add_i32 v6, v5, s12
    ds_write_b32 v6, v7           # pout[tid]
    s_barrier
    s_mov_b32 s8, s12             # pin = pout
    s_lshl_b32 s9, s9, 1
    s_cmp_lt_i32 s9, 128
    s_cbranch_scc1 scan_loop
    v_add_i32 v6, v5, s8
    ds_read_b32 v7, v6
    v_lshlrev_b32 v8, 2, v2
    s_load_dword s6, param[2]
    v_add_i32 v8, v8, s6
    global_store_dword v8, v7     # out[gid]
    s_endpgm
"""

_SIZES = {"tiny": 512, "small": 2048, "default": 4096}


def build(scale: str = "default") -> Workload:
    n = _SIZES[scale]
    blocks = n // BLOCK
    rng = common.rng_for("scan")
    data = common.uniform_i32(rng, n, low=-50, high=50)

    def make_launches(isa: str, bases: dict) -> list:
        params = pack_params(n, bases["in"], bases["out"])
        return [
            LaunchConfig(
                program=programs[isa],
                grid=(blocks,),
                block=(BLOCK,),
                params=params,
            )
        ]

    def reference() -> dict:
        segments = data.reshape(blocks, BLOCK).astype(np.int64)
        scanned = segments.cumsum(axis=1)
        return {"out": (scanned.reshape(-1) & 0xFFFFFFFF).astype(np.uint32)}

    programs = common.assemble_pair(SASS, SI)
    return Workload(
        name="scan",
        programs=programs,
        buffers=[
            BufferSpec("in", data=data),
            BufferSpec("out", nbytes=n * 4),
        ],
        make_launches=make_launches,
        output_buffers=["out"],
        reference=reference,
        output_dtypes={"out": "u32"},
        description=f"per-block int32 inclusive scan, N={n}",
        uses_local_memory=True,
    )
