"""Workload model: buffers + launches + numpy reference, per benchmark.

A :class:`Workload` is the host-side program of one benchmark: it
declares the device buffers (with initial contents), produces the
launch sequence for a given ISA (kernels may launch several times, e.g.
gaussian's per-column Fan1/Fan2 iterations), names the output buffers,
and provides a pure-numpy reference against which the simulator's
functional correctness is validated.

Fault-injection outcome classification never uses the numpy reference:
it compares faulty outputs bit-exactly against the *fault-free
simulation* of the same chip (the paper's SDC definition). The numpy
reference only guards the kernels themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.sim.gpu import Gpu
from repro.sim.launch import LaunchConfig


@dataclass
class BufferSpec:
    """One device buffer and its initial contents."""

    name: str
    data: np.ndarray | None = None   # None -> zero-initialised
    nbytes: int = 0                  # used when data is None

    def __post_init__(self):
        if self.data is None and self.nbytes <= 0:
            raise ConfigError(f"buffer {self.name!r} needs data or nbytes")

    @property
    def size_bytes(self) -> int:
        return self.data.size * 4 if self.data is not None else self.nbytes


@dataclass
class Workload:
    """One benchmark instance (inputs fixed by the scale + seed)."""

    name: str
    #: isa -> assembled Program(s); every benchmark provides "sass" and "si"
    programs: dict
    buffers: list
    #: (isa, bases: dict name->byte base) -> list[LaunchConfig]
    make_launches: Callable
    #: names of buffers compared as outputs
    output_buffers: list
    #: numpy reference for the output buffers: () -> dict name -> ndarray
    reference: Callable
    #: per-buffer dtype for reference comparison ("f32" | "i32" | "u32")
    output_dtypes: dict = field(default_factory=dict)
    #: relative tolerance for float reference comparison
    rtol: float = 1e-4
    #: free-form description (shown by reports)
    description: str = ""
    #: True when the kernel allocates local/shared memory (Fig. 2 membership)
    uses_local_memory: bool = False
    #: input scale this instance was built at (set by the registry;
    #: parallel FI workers use (name, scale) to rebuild the workload)
    scale: str = "default"

    def program(self, isa: str):
        """Primary program for an ISA (first kernel for multi-kernel suites)."""
        try:
            entry = self.programs[isa]
        except KeyError:
            raise ConfigError(
                f"workload {self.name!r} has no {isa!r} implementation"
            ) from None
        return entry[0] if isinstance(entry, list) else entry

    def all_programs(self, isa: str) -> list:
        """Every kernel of this workload for an ISA."""
        entry = self.programs[isa]
        return list(entry) if isinstance(entry, list) else [entry]


@dataclass
class RunResult:
    """Outcome of running a workload on one simulated GPU."""

    workload: str
    gpu: str
    cycles: int                      # total chip cycles across all launches
    launch_cycles: list
    outputs: dict                    # buffer name -> u32 ndarray

    @property
    def num_launches(self) -> int:
        return len(self.launch_cycles)


def run_workload(gpu: Gpu, workload: Workload, monitor=None) -> RunResult:
    """Allocate buffers, run every launch, snapshot the outputs.

    ``monitor`` (optional) observes the run for the checkpoint
    subsystem: ``monitor.begin_launch(gpu, index, launch_cycles)``
    before each launch and ``monitor.after_step(gpu)`` between core
    steps. Monitors never perturb the simulation.
    """
    bases: dict[str, int] = {}
    for spec in workload.buffers:
        if spec.data is not None:
            buffer = gpu.mem.alloc_from(spec.name, spec.data)
        else:
            buffer = gpu.mem.alloc(spec.name, spec.nbytes)
        bases[spec.name] = buffer.base
    launch_cycles = []
    for index, launch in enumerate(workload.make_launches(gpu.config.isa, bases)):
        if monitor is not None:
            monitor.begin_launch(gpu, index, launch_cycles)
        launch_cycles.append(gpu.launch(launch, monitor=monitor))
    cycles = gpu.finish()
    outputs = gpu.mem.snapshot(workload.output_buffers)
    return RunResult(
        workload=workload.name,
        gpu=gpu.config.name,
        cycles=cycles,
        launch_cycles=launch_cycles,
        outputs=outputs,
    )


def verify_against_reference(workload: Workload, outputs: dict) -> list[str]:
    """Compare simulated outputs against the numpy reference.

    Returns a list of human-readable mismatch descriptions (empty =
    pass). Float buffers compare with ``workload.rtol``; integer buffers
    compare exactly.
    """
    expected = workload.reference()
    problems: list[str] = []
    for name in workload.output_buffers:
        want = expected[name].reshape(-1)
        got_words = outputs[name][: want.size]
        dtype = workload.output_dtypes.get(name, "f32")
        if dtype == "f32":
            got = got_words.view(np.float32)
            close = np.isclose(
                got, want.astype(np.float32), rtol=workload.rtol, atol=1e-5
            )
            if not close.all():
                bad = int(np.argmin(close))
                problems.append(
                    f"{name}[{bad}]: got {got[bad]!r}, want {float(want.reshape(-1)[bad])!r}"
                )
        else:
            view = np.int32 if dtype == "i32" else np.uint32
            got = got_words.view(view)
            want_cast = want.reshape(-1).astype(view)
            if not np.array_equal(got, want_cast):
                bad = int(np.argmax(got != want_cast))
                problems.append(
                    f"{name}[{bad}]: got {int(got[bad])}, want {int(want_cast[bad])}"
                )
    return problems
