"""backprop: neural-network layer-forward partial sums (Rodinia
"bpnn_layerforward_CUDA").

Grid of (1, in_n/16) blocks of 16x16 threads: tx indexes the 16 hidden
units, ty a 16-row chunk of input units. Each block stages its input
slice and weight tile in shared memory, multiplies, tree-reduces over
ty and emits one partial sum per (chunk, hidden unit); the host (here:
the numpy reference) sums partials and applies the sigmoid.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import common
from repro.kernels.workload import BufferSpec, Workload
from repro.sim.launch import LaunchConfig, pack_params

HID = 16
CHUNK = 16

SASS = """
.kernel backprop
.regs 20
.smem 1088
    S2R R0, SR_TID_X           # tx: hidden unit
    S2R R1, SR_TID_Y           # ty: input row within chunk
    S2R R2, SR_CTAID_Y         # by: input chunk
    SHL R3, R2, 4
    IADD R3, R3, R1            # idx: global input row
    ISETP.NE P0, R0, RZ
    SHL R4, R3, 2
    IADD R4, R4, c[0]
@!P0 LDG R5, [R4]              # input[idx], one lane per row
    SHL R6, R1, 2
@!P0 STS [R6], R5              # input_node[ty]
    SHL R7, R3, 4
    IADD R7, R7, R0            # idx*16 + tx
    SHL R8, R7, 2
    IADD R8, R8, c[1]
    LDG R9, [R8]               # w[idx][tx]
    SHL R10, R1, 4
    IADD R10, R10, R0
    SHL R10, R10, 2
    IADD R10, R10, 64          # weight_matrix[ty][tx] (after 64B inputs)
    STS [R10], R9
    BAR.SYNC
    LDS R11, [R6]              # input_node[ty]
    LDS R12, [R10]
    FMUL R12, R12, R11
    STS [R10], R12             # wm[ty][tx] *= input
    BAR.SYNC
    MOV32I R13, 8              # s
bp_loop:
    ISETP.LT P1, R1, R13
    SHL R14, R13, 6            # s * 16 regs * 4 bytes
    IADD R14, R14, R10
@P1 LDS R15, [R14]             # wm[ty+s][tx]
@P1 LDS R16, [R10]
@P1 FADD R16, R16, R15
@P1 STS [R10], R16
    BAR.SYNC
    SHR.U32 R13, R13, 1
    ISETP.GT P2, R13, RZ
@P2 BRA bp_loop
    ISETP.NE P3, R1, RZ
@P3 EXIT
    SHL R17, R0, 2
    IADD R17, R17, 64          # wm[0][tx]
    LDS R18, [R17]
    SHL R19, R2, 4
    IADD R19, R19, R0
    SHL R19, R19, 2
    IADD R19, R19, c[2]
    STG [R19], R18             # partial[by*16 + tx]
    EXIT
"""

SI = """
.kernel backprop
.vregs 14
.sregs 14
.lds 1088
    s_lshl_b32 s7, s1, 4       # by*16
    v_mov_b32 v2, s7
    v_add_i32 v2, v2, v1       # idx = by*16 + ty
    v_lshlrev_b32 v3, 2, v1    # input_node[ty] byte index
    v_cmp_eq_i32 vcc, v0, 0
    s_and_saveexec_b64 s[8:9], vcc
    s_cbranch_execz in_done
    v_lshlrev_b32 v4, 2, v2
    s_load_dword s6, param[0]
    v_add_i32 v4, v4, s6
    global_load_dword v5, v4       # input[idx]
    ds_write_b32 v3, v5            # input_node[ty]
in_done:
    s_mov_b64 exec, s[8:9]
    v_lshlrev_b32 v6, 4, v2
    v_add_i32 v6, v6, v0           # idx*16 + tx
    v_lshlrev_b32 v6, 2, v6
    s_load_dword s6, param[1]
    v_add_i32 v6, v6, s6
    global_load_dword v7, v6       # w[idx][tx]
    v_lshlrev_b32 v8, 4, v1
    v_add_i32 v8, v8, v0
    v_lshlrev_b32 v8, 2, v8
    v_add_i32 v8, v8, 64           # weight_matrix[ty][tx]
    ds_write_b32 v8, v7
    s_barrier
    ds_read_b32 v9, v3             # input_node[ty]
    ds_read_b32 v10, v8
    v_mul_f32 v10, v10, v9
    ds_write_b32 v8, v10
    s_barrier
    s_mov_b32 s10, 8               # s
bp_loop:
    v_cmp_lt_i32 vcc, v1, s10
    s_and_saveexec_b64 s[8:9], vcc
    s_cbranch_execz bp_skip
    s_lshl_b32 s11, s10, 6
    v_add_i32 v11, v8, s11         # wm[ty+s][tx]
    ds_read_b32 v12, v11
    ds_read_b32 v10, v8
    v_add_f32 v10, v10, v12
    ds_write_b32 v8, v10
bp_skip:
    s_mov_b64 exec, s[8:9]
    s_barrier
    s_lshr_b32 s10, s10, 1
    s_cmp_gt_i32 s10, 0
    s_cbranch_scc1 bp_loop
    v_cmp_eq_i32 vcc, v1, 0
    s_and_saveexec_b64 s[8:9], vcc
    s_cbranch_execz done
    v_lshlrev_b32 v11, 2, v0
    v_add_i32 v11, v11, 64         # wm[0][tx]
    ds_read_b32 v12, v11
    s_lshl_b32 s11, s1, 4
    v_mov_b32 v13, s11
    v_add_i32 v13, v13, v0
    v_lshlrev_b32 v13, 2, v13
    s_load_dword s6, param[2]
    v_add_i32 v13, v13, s6
    global_store_dword v13, v12    # partial[by*16 + tx]
done:
    s_endpgm
"""

_IN_SIZES = {"tiny": 64, "small": 256, "default": 512}


def build(scale: str = "default") -> Workload:
    in_n = _IN_SIZES[scale]
    chunks = in_n // CHUNK
    rng = common.rng_for("backprop")
    inputs = common.uniform_f32(rng, in_n)
    weights = common.uniform_f32(rng, (in_n, HID))

    def make_launches(isa: str, bases: dict) -> list:
        params = pack_params(bases["input"], bases["weights"], bases["partial"])
        return [
            LaunchConfig(
                program=programs[isa],
                grid=(1, chunks),
                block=(HID, CHUNK),
                params=params,
            )
        ]

    def reference() -> dict:
        # Mirror the kernel's tree-reduction order in float32:
        # partial[chunk][tx] = tree-sum over ty of w[idx][tx]*input[idx].
        products = weights * inputs[:, None]           # f32 (in_n, HID)
        tiles = products.reshape(chunks, CHUNK, HID)
        stride = CHUNK // 2
        acc = tiles.copy()
        while stride:
            acc[:, :stride, :] += acc[:, stride:2 * stride, :]
            stride //= 2
        return {"partial": acc[:, 0, :].reshape(-1)}

    programs = common.assemble_pair(SASS, SI)
    return Workload(
        name="backprop",
        programs=programs,
        buffers=[
            BufferSpec("input", data=inputs),
            BufferSpec("weights", data=weights),
            BufferSpec("partial", nbytes=chunks * HID * 4),
        ],
        make_launches=make_launches,
        output_buffers=["partial"],
        reference=reference,
        output_dtypes={"partial": "f32"},
        description=(
            f"layer-forward partial sums, {in_n} inputs x {HID} hidden units"
        ),
        uses_local_memory=True,
    )
