"""The cross-vendor benchmark suite (10 kernels x 2 ISAs)."""

from repro.kernels.registry import KERNEL_NAMES, get_workload, list_workloads
from repro.kernels.workload import (
    BufferSpec,
    RunResult,
    Workload,
    run_workload,
    verify_against_reference,
)

__all__ = [
    "KERNEL_NAMES",
    "get_workload",
    "list_workloads",
    "Workload",
    "BufferSpec",
    "RunResult",
    "run_workload",
    "verify_against_reference",
]
