"""Benchmark registry.

The ten benchmarks of the paper (7 from the CUDA SDK / AMD APP SDK
overlap, 3 from Rodinia), in the left-to-right order of the figures.
Every benchmark exists in both ISAs; ``scale`` selects input sizes
("tiny" for unit tests, "small" for CI campaigns, "default" for
paper-style runs).
"""

from __future__ import annotations

import importlib
from functools import lru_cache

from repro.errors import ConfigError
from repro.kernels.workload import Workload

#: Figure order from the paper.
KERNEL_NAMES = (
    "backprop",
    "dwtHaar1D",
    "gaussian",
    "histogram",
    "kmeans",
    "matrixMul",
    "reduction",
    "scan",
    "transpose",
    "vectoradd",
)

_MODULES = {
    "backprop": "repro.kernels.backprop",
    "dwtHaar1D": "repro.kernels.dwt_haar1d",
    "gaussian": "repro.kernels.gaussian",
    "histogram": "repro.kernels.histogram",
    "kmeans": "repro.kernels.kmeans",
    "matrixMul": "repro.kernels.matrixmul",
    "reduction": "repro.kernels.reduction",
    "scan": "repro.kernels.scan",
    "transpose": "repro.kernels.transpose",
    "vectoradd": "repro.kernels.vectoradd",
}

SCALES = ("tiny", "small", "default")


@lru_cache(maxsize=None)
def get_workload(name: str, scale: str = "default") -> Workload:
    """Build (and cache) one benchmark instance.

    Workloads are deterministic in (name, scale), so caching is safe
    and keeps repeated campaign cells cheap.
    """
    if name not in _MODULES:
        raise ConfigError(
            f"unknown benchmark {name!r}; known: {', '.join(KERNEL_NAMES)}"
        )
    if scale not in SCALES:
        raise ConfigError(f"unknown scale {scale!r}; known: {', '.join(SCALES)}")
    module = importlib.import_module(_MODULES[name])
    workload = module.build(scale)
    workload.scale = scale
    return workload


def list_workloads(scale: str = "default") -> list[Workload]:
    """All ten benchmarks in figure order."""
    return [get_workload(name, scale) for name in KERNEL_NAMES]
