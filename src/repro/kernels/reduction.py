"""reduction: per-block shared-memory tree sum (CUDA SDK "reduce").

Each 128-thread block loads two int32 elements, then halving-stride
tree reduction in shared memory; thread 0 writes the block partial.
The strided phase predicates off growing fractions of each warp —
classic logical masking that fault injection sees but conservative ACE
analysis does not (a driver of the paper's register-file ACE-vs-FI
gap).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import common
from repro.kernels.workload import BufferSpec, Workload
from repro.sim.launch import LaunchConfig, pack_params

BLOCK = 128
ELEMS_PER_BLOCK = 2 * BLOCK

SASS = """
.kernel reduction
.regs 14
.smem 512
    S2R R0, SR_TID_X
    S2R R1, SR_CTAID_X
    SHL R3, R1, 8
    IADD R3, R3, R0           # i = bid*256 + tid
    SHL R4, R3, 2
    IADD R4, R4, c[1]
    LDG R5, [R4]              # in[i]
    LDG R6, [R4+512]          # in[i + 128]
    IADD R5, R5, R6
    SHL R7, R0, 2
    STS [R7], R5              # sdata[tid]
    BAR.SYNC
    MOV32I R8, 64             # s
red_loop:
    ISETP.LT P0, R0, R8
    SHL R9, R8, 2
    IADD R9, R9, R7           # &sdata[tid + s]
@P0 LDS R10, [R9]
@P0 LDS R11, [R7]
@P0 IADD R11, R11, R10
@P0 STS [R7], R11
    BAR.SYNC
    SHR.U32 R8, R8, 1
    ISETP.GT P1, R8, RZ
@P1 BRA red_loop
    ISETP.NE P0, R0, RZ
@P0 EXIT
    LDS R12, [RZ]             # sdata[0]
    SHL R13, R1, 2
    IADD R13, R13, c[2]
    STG [R13], R12            # partial[bid]
    EXIT
"""

SI = """
.kernel reduction
.vregs 8
.sregs 14
.lds 512
    s_mul_i32 s7, s0, 256
    v_mov_b32 v2, s7
    v_add_i32 v2, v2, v0          # i = wg*256 + tid
    v_lshlrev_b32 v3, 2, v2
    s_load_dword s6, param[1]
    v_add_i32 v3, v3, s6
    global_load_dword v4, v3      # in[i]
    global_load_dword v5, v3, 512 # in[i+128]
    v_add_i32 v4, v4, v5
    v_lshlrev_b32 v6, 2, v0       # &sdata[tid]
    ds_write_b32 v6, v4
    s_barrier
    s_mov_b32 s8, 64              # s
red_loop:
    v_cmp_lt_i32 vcc, v0, s8
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz red_skip
    s_lshl_b32 s9, s8, 2
    v_add_i32 v7, v6, s9          # &sdata[tid+s]
    ds_read_b32 v5, v7
    ds_read_b32 v4, v6
    v_add_i32 v4, v4, v5
    ds_write_b32 v6, v4
red_skip:
    s_mov_b64 exec, s[10:11]
    s_barrier
    s_lshr_b32 s8, s8, 1
    s_cmp_gt_i32 s8, 0
    s_cbranch_scc1 red_loop
    v_cmp_eq_i32 vcc, v0, 0
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz done
    v_mov_b32 v7, 0
    ds_read_b32 v5, v7            # sdata[0]
    s_lshl_b32 s9, s0, 2
    s_load_dword s6, param[2]
    s_add_i32 s9, s9, s6
    v_mov_b32 v7, s9
    global_store_dword v7, v5     # partial[wg]
done:
    s_endpgm
"""

_SIZES = {"tiny": 1024, "small": 4096, "default": 8192}


def build(scale: str = "default") -> Workload:
    n = _SIZES[scale]
    blocks = n // ELEMS_PER_BLOCK
    rng = common.rng_for("reduction")
    data = common.uniform_i32(rng, n, low=-1000, high=1000)

    def make_launches(isa: str, bases: dict) -> list:
        params = pack_params(n, bases["in"], bases["partial"])
        return [
            LaunchConfig(
                program=programs[isa],
                grid=(blocks,),
                block=(BLOCK,),
                params=params,
            )
        ]

    def reference() -> dict:
        partial = data.reshape(blocks, ELEMS_PER_BLOCK).sum(axis=1, dtype=np.int64)
        return {"partial": (partial & 0xFFFFFFFF).astype(np.uint32)}

    programs = common.assemble_pair(SASS, SI)
    return Workload(
        name="reduction",
        programs=programs,
        buffers=[
            BufferSpec("in", data=data),
            BufferSpec("partial", nbytes=blocks * 4),
        ],
        make_launches=make_launches,
        output_buffers=["partial"],
        reference=reference,
        output_dtypes={"partial": "u32"},
        description=f"int32 block tree reduction, N={n}, {blocks} partials",
        uses_local_memory=True,
    )
