"""histogram: 64-bin histogram with per-block shared sub-histograms
(CUDA SDK "histogram64").

Each block builds a private 64-bin histogram in shared memory with
shared atomics, then the first 64 threads merge it into the global
bins with global atomics. Bin extraction masks the value to 6 bits —
upper-bit flips in loaded data are logically masked (another FI-vs-ACE
divergence source).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import common
from repro.kernels.workload import BufferSpec, Workload
from repro.sim.launch import LaunchConfig, pack_params

BLOCK = 128
BINS = 64

SASS = """
.kernel histogram
.regs 10
.smem 256
    S2R R0, SR_TID_X
    S2R R1, SR_CTAID_X
    ISETP.LT P0, R0, 64
    SHL R2, R0, 2
@P0 STS [R2], RZ               # zero my shared bin
    BAR.SYNC
    SHL R3, R1, 7
    IADD R3, R3, R0            # gid
    ISETP.GE P1, R3, c[0]
@P1 BRA merge
    SHL R4, R3, 2
    IADD R4, R4, c[1]
    LDG R5, [R4]               # data[gid]
    SHR.U32 R6, R5, 2
    AND R6, R6, 63             # bin = (x >> 2) & 63
    SHL R6, R6, 2
    MOV32I R7, 1
    ATOMS.ADD RZ, [R6], R7     # shared bin += 1
merge:
    BAR.SYNC
    ISETP.GE P2, R0, 64
@P2 EXIT
    LDS R8, [R2]               # my shared bin count
    SHL R9, R0, 2
    IADD R9, R9, c[2]
    ATOM.ADD RZ, [R9], R8      # global bins += partial
    EXIT
"""

SI = """
.kernel histogram
.vregs 8
.sregs 14
.lds 256
    v_lshlrev_b32 v2, 2, v0       # tid*4
    v_cmp_lt_i32 vcc, v0, 64
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz zero_done
    v_mov_b32 v3, 0
    ds_write_b32 v2, v3           # zero my shared bin
zero_done:
    s_mov_b64 exec, s[10:11]
    s_barrier
    s_mul_i32 s7, s0, 128
    v_mov_b32 v4, s7
    v_add_i32 v4, v4, v0          # gid
    s_load_dword s6, param[0]
    v_cmp_lt_i32 vcc, v4, s6
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz merge
    v_lshlrev_b32 v5, 2, v4
    s_load_dword s8, param[1]
    v_add_i32 v5, v5, s8
    global_load_dword v6, v5      # data[gid]
    v_lshrrev_b32 v6, 2, v6
    v_and_b32 v6, v6, 63          # bin
    v_lshlrev_b32 v6, 2, v6
    v_mov_b32 v7, 1
    ds_add_u32 v6, v7             # shared bin += 1
merge:
    s_mov_b64 exec, s[10:11]
    s_barrier
    v_cmp_lt_i32 vcc, v0, 64
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz done
    ds_read_b32 v5, v2            # my shared bin count
    s_load_dword s8, param[2]
    v_lshlrev_b32 v6, 2, v0
    v_add_i32 v6, v6, s8
    global_atomic_add v7, v6, v5  # global bins += partial
done:
    s_endpgm
"""

_SIZES = {"tiny": 1024, "small": 4096, "default": 8192}


def build(scale: str = "default") -> Workload:
    n = _SIZES[scale]
    rng = common.rng_for("histogram")
    data = rng.integers(0, 256, size=n).astype(np.uint32)

    def make_launches(isa: str, bases: dict) -> list:
        params = pack_params(n, bases["data"], bases["bins"])
        return [
            LaunchConfig(
                program=programs[isa],
                grid=(n // BLOCK,),
                block=(BLOCK,),
                params=params,
            )
        ]

    def reference() -> dict:
        bins = np.bincount((data >> 2) & 63, minlength=BINS)
        return {"bins": bins.astype(np.uint32)}

    programs = common.assemble_pair(SASS, SI)
    return Workload(
        name="histogram",
        programs=programs,
        buffers=[
            BufferSpec("data", data=data),
            BufferSpec("bins", nbytes=BINS * 4),
        ],
        make_launches=make_launches,
        output_buffers=["bins"],
        reference=reference,
        output_dtypes={"bins": "u32"},
        description=f"64-bin histogram of {n} values, shared-atomic sub-histograms",
        uses_local_memory=True,
    )
