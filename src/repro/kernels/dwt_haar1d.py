"""dwtHaar1D: one level of the 1D Haar discrete wavelet transform
(CUDA SDK "dwtHaar1D").

Each 128-thread block stages 256 input samples in shared memory, then
each thread emits one approximation and one detail coefficient:

    approx[i] = (x[2i] + x[2i+1]) / sqrt(2)
    detail[i] = (x[2i] - x[2i+1]) / sqrt(2)
"""

from __future__ import annotations

import numpy as np

from repro.kernels import common
from repro.kernels.workload import BufferSpec, Workload
from repro.sim.launch import LaunchConfig, pack_params

BLOCK = 128
INV_SQRT2 = float(np.float32(1.0) / np.sqrt(np.float32(2.0)))

SASS = f"""
.kernel dwtHaar1D
.regs 17
.smem 1024
    S2R R0, SR_TID_X
    S2R R1, SR_CTAID_X
    SHL R2, R1, 8              # block input base = bid*256
    IADD R3, R2, R0            # base + tid
    SHL R4, R3, 2
    IADD R4, R4, c[1]
    LDG R5, [R4]               # in[base + tid]
    SHL R6, R0, 2
    STS [R6], R5               # smem[tid]
    LDG R7, [R4+512]           # in[base + tid + 128]
    STS [R6+512], R7           # smem[tid + 128]
    BAR.SYNC
    SHL R8, R0, 3              # 2*tid*4
    LDS R9, [R8]               # a = smem[2*tid]
    LDS R10, [R8+4]            # b = smem[2*tid+1]
    FADD R11, R9, R10
    FMUL R11, R11, {INV_SQRT2!r}
    FMUL R12, R10, -1.0
    FADD R12, R9, R12
    FMUL R12, R12, {INV_SQRT2!r}
    SHL R13, R1, 7
    IADD R13, R13, R0          # gid = bid*128 + tid
    SHL R14, R13, 2
    IADD R15, R14, c[2]
    STG [R15], R11             # approx[gid]
    IADD R16, R14, c[3]
    STG [R16], R12             # detail[gid]
    EXIT
"""

SI = f"""
.kernel dwtHaar1D
.vregs 14
.sregs 12
.lds 1024
    s_mul_i32 s7, s0, 256      # block input base
    v_mov_b32 v2, s7
    v_add_i32 v2, v2, v0       # base + tid
    v_lshlrev_b32 v3, 2, v2
    s_load_dword s6, param[1]
    v_add_i32 v3, v3, s6
    global_load_dword v4, v3       # in[base + tid]
    v_lshlrev_b32 v5, 2, v0
    ds_write_b32 v5, v4            # smem[tid]
    global_load_dword v6, v3, 512  # in[base + tid + 128]
    ds_write_b32 v5, v6, 512       # smem[tid + 128]
    s_barrier
    v_lshlrev_b32 v7, 3, v0        # 2*tid*4
    ds_read_b32 v8, v7             # a
    ds_read_b32 v9, v7, 4          # b
    v_add_f32 v10, v8, v9
    v_mul_f32 v10, v10, {INV_SQRT2!r}
    v_sub_f32 v11, v8, v9
    v_mul_f32 v11, v11, {INV_SQRT2!r}
    s_mul_i32 s8, s0, 128
    v_mov_b32 v12, s8
    v_add_i32 v12, v12, v0         # gid
    v_lshlrev_b32 v12, 2, v12
    s_load_dword s9, param[2]
    v_add_i32 v13, v12, s9
    global_store_dword v13, v10    # approx[gid]
    s_load_dword s9, param[3]
    v_add_i32 v13, v12, s9
    global_store_dword v13, v11    # detail[gid]
    s_endpgm
"""

_SIZES = {"tiny": 512, "small": 4096, "default": 8192}


def build(scale: str = "default") -> Workload:
    n = _SIZES[scale]
    half = n // 2
    rng = common.rng_for("dwtHaar1D")
    signal = common.uniform_f32(rng, n)

    def make_launches(isa: str, bases: dict) -> list:
        params = pack_params(n, bases["in"], bases["approx"], bases["detail"])
        return [
            LaunchConfig(
                program=programs[isa],
                grid=(half // BLOCK,),
                block=(BLOCK,),
                params=params,
            )
        ]

    def reference() -> dict:
        pairs = signal.reshape(half, 2)
        inv = np.float32(INV_SQRT2)
        approx = ((pairs[:, 0] + pairs[:, 1]) * inv).astype(np.float32)
        detail = ((pairs[:, 0] - pairs[:, 1]) * inv).astype(np.float32)
        return {"approx": approx, "detail": detail}

    programs = common.assemble_pair(SASS, SI)
    return Workload(
        name="dwtHaar1D",
        programs=programs,
        buffers=[
            BufferSpec("in", data=signal),
            BufferSpec("approx", nbytes=half * 4),
            BufferSpec("detail", nbytes=half * 4),
        ],
        make_launches=make_launches,
        output_buffers=["approx", "detail"],
        reference=reference,
        output_dtypes={"approx": "f32", "detail": "f32"},
        description=f"one-level Haar DWT of {n} samples",
        uses_local_memory=True,
    )
