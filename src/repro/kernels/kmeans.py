"""kmeans: nearest-centroid assignment (Rodinia "kmeans" kernel_point).

Each thread scans K centroids in D=4 dimensions, tracking the minimum
squared distance with predicated moves. The min-tracking registers are
overwritten on improvement and the comparison only uses ordering —
rich logical masking, so register-file AVF-FI sits well below AVF-ACE
here (the paper's headline register-file finding). No local memory:
kmeans is absent from the paper's Fig. 2, as here.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import common
from repro.kernels.workload import BufferSpec, Workload
from repro.sim.launch import LaunchConfig, pack_params

BLOCK = 128
DIMS = 4

SASS = """
.kernel kmeans
.regs 15
.smem 0
    S2R R0, SR_TID_X
    S2R R1, SR_CTAID_X
    S2R R2, SR_NTID_X
    IMAD R3, R1, R2, R0          # i
    ISETP.GE P0, R3, c[0]
@P0 EXIT
    SHL R4, R3, 4                # i * D * 4 (D = 4)
    IADD R4, R4, c[1]            # &points[i][0]
    MOV32I R5, 0x7f7fffff        # best = FLT_MAX
    MOV R6, RZ                   # best_k
    MOV R7, RZ                   # k
    MOV R8, c[2]                 # centroid cursor
kloop:
    MOV R9, RZ                   # dist = 0.0f
    LDG R10, [R4]
    LDG R11, [R8]
    FMUL R13, R11, -1.0
    FADD R12, R10, R13
    FFMA R9, R12, R12, R9
    LDG R10, [R4+4]
    LDG R11, [R8+4]
    FMUL R13, R11, -1.0
    FADD R12, R10, R13
    FFMA R9, R12, R12, R9
    LDG R10, [R4+8]
    LDG R11, [R8+8]
    FMUL R13, R11, -1.0
    FADD R12, R10, R13
    FFMA R9, R12, R12, R9
    LDG R10, [R4+12]
    LDG R11, [R8+12]
    FMUL R13, R11, -1.0
    FADD R12, R10, R13
    FFMA R9, R12, R12, R9
    FSETP.LT P1, R9, R5
@P1 MOV R5, R9
@P1 MOV R6, R7
    IADD R7, R7, 1
    IADD R8, R8, 16
    ISETP.LT P2, R7, c[3]
@P2 BRA kloop
    SHL R14, R3, 2
    IADD R14, R14, c[4]
    STG [R14], R6                # assign[i]
    EXIT
"""

SI = """
.kernel kmeans
.vregs 14
.sregs 14
.lds 0
    s_mul_i32 s7, s0, s2
    v_mov_b32 v2, s7
    v_add_i32 v2, v2, v0           # i
    s_load_dword s6, param[0]
    v_cmp_lt_i32 vcc, v2, s6
    s_and_saveexec_b64 s[8:9], vcc
    s_cbranch_execz done
    v_lshlrev_b32 v3, 4, v2        # i * 16
    s_load_dword s10, param[1]
    v_add_i32 v3, v3, s10          # &points[i][0]
    v_mov_b32 v4, 0x7f7fffff       # best
    v_mov_b32 v5, 0                # best_k
    s_mov_b32 s11, 0               # k
    s_load_dword s12, param[2]     # centroid cursor
kloop:
    v_mov_b32 v6, 0                # dist
    global_load_dword v7, v3
    v_mov_b32 v8, s12
    global_load_dword v9, v8
    v_sub_f32 v10, v7, v9
    v_mac_f32 v6, v10, v10
    global_load_dword v7, v3, 4
    global_load_dword v9, v8, 4
    v_sub_f32 v10, v7, v9
    v_mac_f32 v6, v10, v10
    global_load_dword v7, v3, 8
    global_load_dword v9, v8, 8
    v_sub_f32 v10, v7, v9
    v_mac_f32 v6, v10, v10
    global_load_dword v7, v3, 12
    global_load_dword v9, v8, 12
    v_sub_f32 v10, v7, v9
    v_mac_f32 v6, v10, v10
    v_cmp_lt_f32 vcc, v6, v4
    v_cndmask_b32 v4, v4, v6, vcc  # best = min
    v_mov_b32 v11, s11
    v_cndmask_b32 v5, v5, v11, vcc # best_k
    s_add_i32 s11, s11, 1
    s_add_i32 s12, s12, 16
    s_load_dword s13, param[3]
    s_cmp_lt_i32 s11, s13
    s_cbranch_scc1 kloop
    v_lshlrev_b32 v12, 2, v2
    s_load_dword s10, param[4]
    v_add_i32 v12, v12, s10
    global_store_dword v12, v5     # assign[i]
done:
    s_endpgm
"""

_SIZES = {"tiny": 512, "small": 2048, "default": 4096}
_CLUSTERS = {"tiny": 4, "small": 8, "default": 8}


def build(scale: str = "default") -> Workload:
    n = _SIZES[scale]
    k = _CLUSTERS[scale]
    rng = common.rng_for("kmeans")
    points = common.uniform_f32(rng, (n, DIMS), low=0.0, high=10.0)
    centroids = common.uniform_f32(rng, (k, DIMS), low=0.0, high=10.0)

    def make_launches(isa: str, bases: dict) -> list:
        params = pack_params(
            n, bases["points"], bases["centroids"], k, bases["assign"]
        )
        return [
            LaunchConfig(
                program=programs[isa],
                grid=(common.blocks_for(n, BLOCK),),
                block=(BLOCK,),
                params=params,
            )
        ]

    def reference() -> dict:
        # Mirror the kernel's float32 dimension-major accumulation so
        # tie-breaking near equidistant centroids matches bit-for-bit.
        dists = np.zeros((n, k), dtype=np.float32)
        for dim in range(DIMS):
            diff = points[:, dim:dim + 1] - centroids[None, :, dim]
            dists += diff * diff
        return {"assign": dists.argmin(axis=1).astype(np.uint32)}

    programs = common.assemble_pair(SASS, SI)
    return Workload(
        name="kmeans",
        programs=programs,
        buffers=[
            BufferSpec("points", data=points),
            BufferSpec("centroids", data=centroids),
            BufferSpec("assign", nbytes=n * 4),
        ],
        make_launches=make_launches,
        output_buffers=["assign"],
        reference=reference,
        output_dtypes={"assign": "u32"},
        description=f"nearest-centroid assignment, N={n}, K={k}, D={DIMS}",
        uses_local_memory=False,
    )
