"""gaussian: Gaussian elimination (Rodinia "gaussian", Fan1/Fan2 kernels).

The only multi-launch benchmark: for every pivot column t the host
launches Fan1 (compute the column of multipliers m[i][t]) then Fan2
(rank-1 update of the remaining augmented matrix). With N=16 that is
30 dependent launches — exercising launch serialisation, and (as in
the paper) no local memory, so gaussian appears in Fig. 1/3 only.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import common
from repro.kernels.workload import BufferSpec, Workload
from repro.sim.launch import LaunchConfig, pack_params

FAN1_SASS = """
.kernel gaussian_fan1
.regs 16
.smem 0
    S2R R0, SR_TID_X
    S2R R1, SR_CTAID_X
    S2R R2, SR_NTID_X
    IMAD R3, R1, R2, R0        # gid
    MOV R4, c[0]               # N
    MOV R5, c[1]               # t
    ISUB R6, R4, R5
    ISUB R6, R6, 1             # count = N - 1 - t
    ISETP.GE P0, R3, R6
@P0 EXIT
    IADD R7, R3, R5
    IADD R7, R7, 1             # i = t + 1 + gid
    IADD R8, R4, 1             # C = N + 1 (augmented columns)
    IMAD R9, R7, R8, R5        # i*C + t
    SHL R9, R9, 2
    IADD R9, R9, c[2]
    LDG R10, [R9]              # a[i][t]
    IMAD R11, R5, R8, R5       # t*C + t
    SHL R11, R11, 2
    IADD R11, R11, c[2]
    LDG R12, [R11]             # a[t][t]
    MUFU.RCP R13, R12
    FMUL R14, R10, R13         # m = a[i][t] / a[t][t]
    IMAD R15, R7, R4, R5       # i*N + t
    SHL R15, R15, 2
    IADD R15, R15, c[3]
    STG [R15], R14             # m[i][t]
    EXIT
"""

FAN2_SASS = """
.kernel gaussian_fan2
.regs 22
.smem 0
    S2R R0, SR_TID_X
    S2R R1, SR_TID_Y
    S2R R2, SR_CTAID_X
    S2R R3, SR_CTAID_Y
    S2R R4, SR_NTID_X
    S2R R5, SR_NTID_Y
    IMAD R6, R2, R4, R0        # jj (column offset)
    IMAD R7, R3, R5, R1        # ii (row offset)
    MOV R8, c[0]               # N
    MOV R9, c[1]               # t
    IADD R10, R8, 1            # C
    ISUB R11, R10, R9          # C - t columns to update
    ISETP.GE P0, R6, R11
@P0 EXIT
    ISUB R12, R8, R9
    ISUB R12, R12, 1           # N - 1 - t rows to update
    ISETP.GE P1, R7, R12
@P1 EXIT
    IADD R13, R7, R9
    IADD R13, R13, 1           # i = t + 1 + ii
    IADD R14, R6, R9           # j = t + jj
    IMAD R15, R13, R8, R9      # i*N + t
    SHL R15, R15, 2
    IADD R15, R15, c[3]
    LDG R16, [R15]             # m[i][t]
    IMAD R17, R9, R10, R14     # t*C + j
    SHL R17, R17, 2
    IADD R17, R17, c[2]
    LDG R18, [R17]             # a[t][j]
    IMAD R19, R13, R10, R14    # i*C + j
    SHL R19, R19, 2
    IADD R19, R19, c[2]
    LDG R20, [R19]             # a[i][j]
    FMUL R21, R16, R18
    FMUL R21, R21, -1.0
    FADD R20, R20, R21         # a[i][j] -= m[i][t] * a[t][j]
    STG [R19], R20
    EXIT
"""

FAN1_SI = """
.kernel gaussian_fan1
.vregs 12
.sregs 16
.lds 0
    s_mul_i32 s7, s0, s2
    v_mov_b32 v2, s7
    v_add_i32 v2, v2, v0           # gid
    s_load_dword s6, param[0]      # N
    s_load_dword s8, param[1]      # t
    s_sub_i32 s9, s6, s8
    s_sub_i32 s9, s9, 1            # count
    v_cmp_lt_i32 vcc, v2, s9
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz done
    s_add_i32 s12, s8, 1
    v_add_i32 v3, v2, s12          # i
    s_add_i32 s13, s6, 1           # C
    v_mad_i32 v4, v3, s13, s8      # i*C + t
    v_lshlrev_b32 v4, 2, v4
    s_load_dword s14, param[2]
    v_add_i32 v4, v4, s14
    global_load_dword v5, v4       # a[i][t]
    s_mul_i32 s15, s8, s13
    s_add_i32 s15, s15, s8         # t*C + t
    s_lshl_b32 s15, s15, 2
    s_add_i32 s15, s15, s14
    v_mov_b32 v6, s15
    global_load_dword v7, v6       # a[t][t]
    v_rcp_f32 v8, v7
    v_mul_f32 v9, v5, v8           # m
    v_mad_i32 v10, v3, s6, s8      # i*N + t
    v_lshlrev_b32 v10, 2, v10
    s_load_dword s14, param[3]
    v_add_i32 v10, v10, s14
    global_store_dword v10, v9     # m[i][t]
done:
    s_endpgm
"""

FAN2_SI = """
.kernel gaussian_fan2
.vregs 16
.sregs 18
.lds 0
    s_mul_i32 s7, s0, s2
    v_mov_b32 v2, s7
    v_add_i32 v2, v2, v0           # jj
    s_mul_i32 s7, s1, s3
    v_mov_b32 v3, s7
    v_add_i32 v3, v3, v1           # ii
    s_load_dword s6, param[0]      # N
    s_load_dword s8, param[1]      # t
    s_add_i32 s9, s6, 1            # C
    s_sub_i32 s10, s9, s8          # columns
    v_cmp_lt_i32 vcc, v2, s10
    s_and_saveexec_b64 s[12:13], vcc
    s_cbranch_execz done
    s_sub_i32 s11, s6, s8
    s_sub_i32 s11, s11, 1          # rows
    v_cmp_lt_i32 vcc, v3, s11
    s_and_saveexec_b64 s[14:15], vcc
    s_cbranch_execz inner_done
    s_add_i32 s16, s8, 1
    v_add_i32 v4, v3, s16          # i
    v_add_i32 v5, v2, s8           # j
    v_mad_i32 v6, v4, s6, s8       # i*N + t
    v_lshlrev_b32 v6, 2, v6
    s_load_dword s17, param[3]
    v_add_i32 v6, v6, s17
    global_load_dword v7, v6       # m[i][t]
    s_mul_i32 s17, s8, s9          # t*C
    v_mov_b32 v8, s17
    v_add_i32 v8, v8, v5
    v_lshlrev_b32 v8, 2, v8
    s_load_dword s17, param[2]
    v_add_i32 v8, v8, s17
    global_load_dword v9, v8       # a[t][j]
    v_mad_i32 v10, v4, s9, v5      # i*C + j
    v_lshlrev_b32 v10, 2, v10
    v_add_i32 v10, v10, s17
    global_load_dword v11, v10     # a[i][j]
    v_mul_f32 v12, v7, v9
    v_sub_f32 v11, v11, v12
    global_store_dword v10, v11
inner_done:
    s_mov_b64 exec, s[14:15]
done:
    s_mov_b64 exec, s[12:13]
    s_endpgm
"""

_SIZES = {"tiny": 8, "small": 12, "default": 16}
_FAN1_BLOCK = 64
_FAN2_BLOCK = (16, 4)


def _eliminate(aug: np.ndarray, n: int):
    """Float32 reference mirroring the kernels' arithmetic exactly."""
    a = aug.copy()
    m = np.zeros((n, n), dtype=np.float32)
    one = np.float32(1.0)
    for t in range(n - 1):
        rcp = one / a[t, t]
        m[t + 1:, t] = a[t + 1:, t] * rcp
        a[t + 1:, t:] = a[t + 1:, t:] - np.outer(m[t + 1:, t], a[t, t:])
    return a, m


def build(scale: str = "default") -> Workload:
    n = _SIZES[scale]
    cols = n + 1
    rng = common.rng_for("gaussian")
    aug = common.uniform_f32(rng, (n, cols), low=0.5, high=2.0)
    # Diagonal dominance keeps the elimination numerically tame.
    aug[np.arange(n), np.arange(n)] += np.float32(n)

    def make_launches(isa: str, bases: dict) -> list:
        fan1, fan2 = programs[isa]
        launches = []
        for t in range(n - 1):
            params = pack_params(n, t, bases["a"], bases["m"])
            rows = n - 1 - t
            launches.append(
                LaunchConfig(
                    program=fan1,
                    grid=(common.blocks_for(rows, _FAN1_BLOCK),),
                    block=(_FAN1_BLOCK,),
                    params=params,
                )
            )
            bx, by = _FAN2_BLOCK
            launches.append(
                LaunchConfig(
                    program=fan2,
                    grid=(
                        common.blocks_for(cols - t, bx),
                        common.blocks_for(rows, by),
                    ),
                    block=_FAN2_BLOCK,
                    params=params,
                )
            )
        return launches

    def reference() -> dict:
        a, m = _eliminate(aug, n)
        return {"a": a.reshape(-1), "m": m.reshape(-1)}

    from repro.isa.sass.parser import assemble_sass
    from repro.isa.si.parser import assemble_si

    programs = {
        "sass": [assemble_sass(FAN1_SASS), assemble_sass(FAN2_SASS)],
        "si": [assemble_si(FAN1_SI), assemble_si(FAN2_SI)],
    }
    return Workload(
        name="gaussian",
        programs=programs,
        buffers=[
            BufferSpec("a", data=aug),
            BufferSpec("m", nbytes=n * n * 4),
        ],
        make_launches=make_launches,
        output_buffers=["a", "m"],
        reference=reference,
        output_dtypes={"a": "f32", "m": "f32"},
        rtol=1e-3,
        description=f"Gaussian elimination of a {n}x{n} system, Fan1/Fan2 launches",
        uses_local_memory=False,
    )
