"""vectoradd: c[i] = a[i] + b[i] (CUDA SDK / AMD APP SDK "VectorAdd").

The simplest benchmark of the suite: one float per thread, no local
memory (so it appears in the paper's Fig. 1 / Fig. 3 but not Fig. 2),
minimal register footprint.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import common
from repro.kernels.workload import BufferSpec, Workload
from repro.sim.launch import LaunchConfig, pack_params

SASS = """
.kernel vectoradd
.regs 8
.smem 0
    S2R R0, SR_TID_X
    S2R R1, SR_CTAID_X
    S2R R2, SR_NTID_X
    IMAD R3, R1, R2, R0          # gid = ctaid * ntid + tid
    ISETP.GE P0, R3, c[0]        # gid >= N ?
@P0 EXIT
    SHL R4, R3, 2                # byte offset
    IADD R5, R4, c[1]
    LDG R6, [R5]                 # a[gid]
    IADD R5, R4, c[2]
    LDG R7, [R5]                 # b[gid]
    FADD R6, R6, R7
    IADD R5, R4, c[3]
    STG [R5], R6                 # c[gid]
    EXIT
"""

SI = """
.kernel vectoradd
.vregs 6
.sregs 12
.lds 0
    s_load_dword s6, param[0]    # N
    s_mul_i32 s10, s0, s2        # wg_id_x * wg_dim_x
    v_mov_b32 v1, s10
    v_add_i32 v1, v1, v0         # gid
    v_cmp_lt_i32 vcc, v1, s6
    s_and_saveexec_b64 s[8:9], vcc
    s_cbranch_execz done
    v_lshlrev_b32 v2, 2, v1      # byte offset
    s_load_dword s7, param[1]
    v_add_i32 v3, v2, s7
    global_load_dword v4, v3     # a[gid]
    s_load_dword s7, param[2]
    v_add_i32 v3, v2, s7
    global_load_dword v5, v3     # b[gid]
    v_add_f32 v4, v4, v5
    s_load_dword s7, param[3]
    v_add_i32 v3, v2, s7
    global_store_dword v3, v4    # c[gid]
done:
    s_endpgm
"""

_SIZES = {"tiny": 512, "small": 4096, "default": 16384}
_BLOCK = 128


def build(scale: str = "default") -> Workload:
    n = _SIZES[scale]
    rng = common.rng_for("vectoradd")
    a = common.uniform_f32(rng, n)
    b = common.uniform_f32(rng, n)

    def make_launches(isa: str, bases: dict) -> list:
        params = pack_params(n, bases["a"], bases["b"], bases["c"])
        program = programs[isa]
        return [
            LaunchConfig(
                program=program,
                grid=(common.blocks_for(n, _BLOCK),),
                block=(_BLOCK,),
                params=params,
            )
        ]

    def reference() -> dict:
        return {"c": a + b}

    programs = common.assemble_pair(SASS, SI)
    return Workload(
        name="vectoradd",
        programs=programs,
        buffers=[
            BufferSpec("a", data=a),
            BufferSpec("b", data=b),
            BufferSpec("c", nbytes=n * 4),
        ],
        make_launches=make_launches,
        output_buffers=["c"],
        reference=reference,
        output_dtypes={"c": "f32"},
        description=f"element-wise float vector add, N={n}",
        uses_local_memory=False,
    )
