"""transpose: tiled matrix transpose with padded shared tiles (CUDA SDK).

out[j][i] = in[i][j] staged through a 16x17 shared tile (the padding
column avoids bank conflicts on real hardware; we keep it for layout
fidelity — it also makes the local-memory occupancy non-power-of-two,
a useful test of the allocator).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import common
from repro.kernels.workload import BufferSpec, Workload
from repro.sim.launch import LaunchConfig, pack_params

TILE = 16
PITCH = 17

SASS = """
.kernel transpose
.regs 15
.smem 1088
    S2R R0, SR_TID_X
    S2R R1, SR_TID_Y
    S2R R2, SR_CTAID_X
    S2R R3, SR_CTAID_Y
    MOV R4, c[0]              # N
    SHL R5, R2, 4
    IADD R5, R5, R0           # x = bx*16 + tx
    SHL R6, R3, 4
    IADD R6, R6, R1           # y = by*16 + ty
    IMAD R7, R6, R4, R5       # y*N + x
    SHL R7, R7, 2
    IADD R7, R7, c[1]
    LDG R8, [R7]
    IMUL R9, R1, 17           # tile[ty][tx] (pitch 17)
    IADD R9, R9, R0
    SHL R9, R9, 2
    STS [R9], R8
    BAR.SYNC
    SHL R10, R3, 4
    IADD R10, R10, R0         # xOut = by*16 + tx
    SHL R11, R2, 4
    IADD R11, R11, R1         # yOut = bx*16 + ty
    IMAD R12, R11, R4, R10
    SHL R12, R12, 2
    IADD R12, R12, c[2]
    IMUL R13, R0, 17          # tile[tx][ty]
    IADD R13, R13, R1
    SHL R13, R13, 2
    LDS R14, [R13]
    STG [R12], R14
    EXIT
"""

SI = """
.kernel transpose
.vregs 12
.sregs 12
.lds 1088
    s_load_dword s6, param[0]     # N
    s_lshl_b32 s8, s0, 4
    v_mov_b32 v2, s8
    v_add_i32 v2, v2, v0          # x
    s_lshl_b32 s9, s1, 4
    v_mov_b32 v3, s9
    v_add_i32 v3, v3, v1          # y
    v_mad_i32 v4, v3, s6, v2      # y*N + x
    v_lshlrev_b32 v4, 2, v4
    s_load_dword s7, param[1]
    v_add_i32 v4, v4, s7
    global_load_dword v5, v4
    v_mul_lo_i32 v6, v1, 17       # tile[ty][tx]
    v_add_i32 v6, v6, v0
    v_lshlrev_b32 v6, 2, v6
    ds_write_b32 v6, v5
    s_barrier
    v_mov_b32 v7, s9
    v_add_i32 v7, v7, v0          # xOut = by*16 + tx
    v_mov_b32 v8, s8
    v_add_i32 v8, v8, v1          # yOut = bx*16 + ty
    v_mad_i32 v9, v8, s6, v7
    v_lshlrev_b32 v9, 2, v9
    s_load_dword s7, param[2]
    v_add_i32 v9, v9, s7
    v_mul_lo_i32 v10, v0, 17      # tile[tx][ty]
    v_add_i32 v10, v10, v1
    v_lshlrev_b32 v10, 2, v10
    ds_read_b32 v11, v10
    global_store_dword v9, v11
    s_endpgm
"""

_SIZES = {"tiny": 32, "small": 64, "default": 128}


def build(scale: str = "default") -> Workload:
    n = _SIZES[scale]
    rng = common.rng_for("transpose")
    a = common.uniform_f32(rng, (n, n))

    def make_launches(isa: str, bases: dict) -> list:
        params = pack_params(n, bases["in"], bases["out"])
        return [
            LaunchConfig(
                program=programs[isa],
                grid=(n // TILE, n // TILE),
                block=(TILE, TILE),
                params=params,
            )
        ]

    def reference() -> dict:
        return {"out": a.T.copy()}

    programs = common.assemble_pair(SASS, SI)
    # Shared tile uses the padded pitch (17 columns of the 16 rows).
    assert PITCH * TILE * 4 == 1088

    return Workload(
        name="transpose",
        programs=programs,
        buffers=[
            BufferSpec("in", data=a),
            BufferSpec("out", nbytes=n * n * 4),
        ],
        make_launches=make_launches,
        output_buffers=["out"],
        reference=reference,
        output_dtypes={"out": "f32"},
        description=f"tiled {n}x{n} transpose via padded 16x17 shared tile",
        uses_local_memory=True,
    )
