"""Shared helpers for benchmark kernel modules."""

from __future__ import annotations

import math
import zlib

import numpy as np

from repro.isa.sass.parser import assemble_sass
from repro.isa.si.parser import assemble_si

#: Workloads use fixed seeds so every (GPU, benchmark) cell sees the
#: same inputs — the paper's cross-vendor comparison requires identical
#: workloads everywhere.
SEED_BASE = 20170424  # ISPASS 2017 keynote date


def rng_for(name: str) -> np.random.Generator:
    """Deterministic per-benchmark RNG.

    Seeded with a stable hash: builtin ``hash()`` is randomized per
    process (PYTHONHASHSEED), which would give every Python process a
    different input set — fatal for resumable campaigns that compare
    re-simulated outputs against golden outputs recorded by an earlier
    process.
    """
    return np.random.default_rng(
        SEED_BASE + (zlib.crc32(name.encode("utf-8")) & 0xFFFF))


def uniform_f32(rng, n, low=-1.0, high=1.0) -> np.ndarray:
    return rng.uniform(low, high, size=n).astype(np.float32)


def uniform_i32(rng, n, low=0, high=100) -> np.ndarray:
    return rng.integers(low, high, size=n).astype(np.int32)


def blocks_for(total: int, per_block: int) -> int:
    return math.ceil(total / per_block)


def assemble_pair(sass_text: str, si_text: str) -> dict:
    """Assemble both ISA implementations of one kernel."""
    return {"sass": assemble_sass(sass_text), "si": assemble_si(si_text)}
