"""FIT / EIT / EPF — the paper's combined reliability-performance metric.

Definitions (paper section II):

* ``FIT_struct = raw_fit_per_bit x structure_bits x AVF_struct`` —
  failures in 10^9 device-hours contributed by one storage structure;
* ``FIT_GPU = sum of structure FITs`` (register file + local memory
  here, as in the study);
* ``EIT = executions in 10^9 hours = 3.6e12 s / t_exec`` where
  ``t_exec = cycles / shader_clock``;
* ``EPF = EIT / FIT_GPU`` — complete executions per failure.

The raw per-bit soft-error rate is a technology constant the paper
does not publish; the default 1 mFIT/bit is a standard terrestrial
SRAM figure and is configurable everywhere it is used.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.errors import ConfigError

#: Default raw soft-error rate: 1 milli-FIT per bit.
RAW_FIT_PER_BIT = 1e-3

#: Seconds in 10^9 hours.
_SECONDS_PER_GIGAHOUR = 1e9 * 3600.0


def execution_time_s(config: GpuConfig, cycles: int) -> float:
    """Wall-clock seconds of one benchmark execution on the chip."""
    if cycles < 0:
        raise ConfigError("cycles must be non-negative")
    return cycles / config.shader_clock_hz


def executions_in_time(config: GpuConfig, cycles: int) -> float:
    """EIT: benchmark executions completed in 10^9 device-hours."""
    t_exec = execution_time_s(config, cycles)
    if t_exec == 0:
        raise ConfigError("zero-cycle execution has no EIT")
    return _SECONDS_PER_GIGAHOUR / t_exec


def structure_fit(config: GpuConfig, structure: str, avf: float,
                  raw_fit_per_bit: float = RAW_FIT_PER_BIT) -> float:
    """FIT contributed by one structure at a measured AVF."""
    if not 0.0 <= avf <= 1.0:
        raise ConfigError(f"AVF {avf} outside [0, 1]")
    return raw_fit_per_bit * config.structure_bits(structure) * avf


@dataclass(frozen=True)
class EpfResult:
    """EPF with its ingredients, for reporting."""

    gpu: str
    workload: str
    cycles: int
    t_exec_s: float
    eit: float
    fit_by_structure: dict
    fit_gpu: float
    epf: float


def compute_epf(config: GpuConfig, workload_name: str, cycles: int,
                avf_by_structure: dict,
                raw_fit_per_bit: float = RAW_FIT_PER_BIT) -> EpfResult:
    """Combine a cycle count and per-structure AVFs into the EPF metric."""
    fit_by_structure = {
        structure: structure_fit(config, structure, avf, raw_fit_per_bit)
        for structure, avf in avf_by_structure.items()
    }
    fit_gpu = sum(fit_by_structure.values())
    eit = executions_in_time(config, cycles)
    epf = eit / fit_gpu if fit_gpu > 0 else float("inf")
    return EpfResult(
        gpu=config.name,
        workload=workload_name,
        cycles=cycles,
        t_exec_s=execution_time_s(config, cycles),
        eit=eit,
        fit_by_structure=fit_by_structure,
        fit_gpu=fit_gpu,
        epf=epf,
    )
