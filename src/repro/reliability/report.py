"""Report generation: the paper's figures as text tables, ASCII charts
and CSV files.

No plotting libraries are available offline, so "figures" are rendered
as aligned tables plus ASCII bar charts — the same rows/series the
paper plots, in the paper's ordering (benchmarks left to right, the
four chips grouped per benchmark, plus the per-GPU average group).
"""

from __future__ import annotations

import csv
import math
from pathlib import Path

from repro.arch.structures import LOCAL_MEMORY, REGISTER_FILE
from repro.reliability.campaign import CellResult, average_cell

#: Figure order of the chips.
GPU_ORDER = (
    "HD Radeon 7970",
    "Quadro FX 5600",
    "Quadro FX 5800",
    "GeForce GTX 480",
)


def _gpu_key(name: str) -> str:
    return name.replace(" (scaled)", "")


def _sorted_cells(cells: list[CellResult]) -> dict:
    """(workload -> gpu -> cell) in paper order."""
    table: dict = {}
    for cell in cells:
        table.setdefault(cell.workload, {})[_gpu_key(cell.gpu)] = cell
    return table


def _gpu_order(cells: list[CellResult]) -> list:
    """Paper chips in figure order, then any other chips as seen."""
    present = []
    for cell in cells:
        key = _gpu_key(cell.gpu)
        if key not in present:
            present.append(key)
    ordered = [gpu for gpu in GPU_ORDER if gpu in present]
    ordered.extend(gpu for gpu in present if gpu not in GPU_ORDER)
    return ordered


def bar(value: float, width: int = 30, maximum: float = 1.0) -> str:
    """Unit-interval ASCII bar."""
    if maximum <= 0:
        return ""
    filled = int(round(min(value / maximum, 1.0) * width))
    return "#" * filled + "." * (width - filled)


def format_avf_figure(cells: list[CellResult], structure: str,
                      title: str) -> str:
    """Fig. 1 / Fig. 2 style report: AVF-FI, AVF-ACE and occupancy."""
    grouped = _sorted_cells(cells)
    order = _gpu_order(cells)
    lines = [title, "=" * len(title), ""]
    header = (
        f"{'benchmark':<12} {'GPU':<16} {'AVF-FI':>8} {'AVF-ACE':>8} "
        f"{'Occup.':>8}  AVF-FI bar"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload, per_gpu in grouped.items():
        for gpu in order:
            cell = per_gpu.get(gpu)
            if cell is None:
                continue
            fi = cell.avf_fi(structure)
            ace = cell.avf_ace(structure)
            occ = cell.occupancy.get(structure, 0.0)
            lines.append(
                f"{workload:<12} {gpu:<16} {fi:8.3f} {ace:8.3f} "
                f"{occ:8.3f}  |{bar(fi)}|"
            )
        lines.append("")
    # Average group (the figures' right-most cluster). The datapath
    # structures keep the paper's averaging rules (local-memory
    # averages span only the local-memory benchmarks, via
    # average_cell); any other structure averages directly over the
    # cells that sampled it.
    lines.append(f"{'average':<12}")
    for gpu in order:
        mine = [c for c in cells if _gpu_key(c.gpu) == gpu]
        if not mine:
            continue
        if structure in (REGISTER_FILE, LOCAL_MEMORY):
            avg = average_cell(mine, mine[0].gpu)
            key = "regfile" if structure == REGISTER_FILE else "localmem"
            fi = avg[f"avf_fi_{key}"]
            ace = avg[f"avf_ace_{key}"]
            occ = avg[f"occ_{key}"]
        else:
            having = [c for c in mine if structure in c.fi]
            if not having:
                continue
            fi = sum(c.avf_fi(structure) for c in having) / len(having)
            ace = sum(c.avf_ace(structure) for c in having) / len(having)
            occ = sum(c.occupancy.get(structure, 0.0)
                      for c in having) / len(having)
        lines.append(
            f"{'':<12} {gpu:<16} {fi:8.3f} {ace:8.3f} {occ:8.3f}  |{bar(fi)}|"
        )
    lines.append("")
    margins = {cell.fi[structure].margin for cell in cells if structure in cell.fi}
    if margins:
        lines.append(
            f"(n = {cells[0].samples} injections/structure; 99% confidence "
            f"error margin = {max(margins) * 100:.2f}%)"
        )
    return "\n".join(lines)


def format_epf_figure(cells: list[CellResult], title: str = "Fig. 3 - Executions per Failure (EPF)") -> str:
    """Fig. 3 style report: EPF per (benchmark, GPU), log-scale bars."""
    grouped = _sorted_cells(cells)
    order = _gpu_order(cells)
    lines = [title, "=" * len(title), ""]
    header = f"{'benchmark':<12} {'GPU':<16} {'EPF':>12} {'FIT':>10} {'cycles':>10}  log10(EPF) 10..17"
    lines.append(header)
    lines.append("-" * len(header))
    lo, hi = 10.0, 17.0
    for workload, per_gpu in grouped.items():
        for gpu in order:
            cell = per_gpu.get(gpu)
            if cell is None or cell.epf is None:
                continue
            epf = cell.epf.epf
            log_epf = math.log10(epf) if math.isfinite(epf) and epf > 0 else lo
            frac = (min(max(log_epf, lo), hi) - lo) / (hi - lo)
            lines.append(
                f"{workload:<12} {gpu:<16} {epf:12.3e} {cell.epf.fit_gpu:10.1f} "
                f"{cell.cycles:10d}  |{bar(frac)}|"
            )
        lines.append("")
    return "\n".join(lines)


def format_model_compare(cells_by_model: dict) -> str:
    """Per-GPU average AVF-FI by fault model, for both structures.

    ``cells_by_model`` maps fault-model name -> the model's matrix
    cells. Register-file averages span every benchmark; local-memory
    averages span the local-memory subset (see :func:`average_cell`).
    """
    models = list(cells_by_model)
    title = "Fault-model comparison - per-GPU average AVF-FI"
    lines = [title, "=" * len(title), ""]
    header = f"{'structure':<14} {'GPU':<16} " + " ".join(
        f"{model:>10}" for model in models
    )
    lines.append(header)
    lines.append("-" * len(header))
    any_cells = next(iter(cells_by_model.values()))
    order = _gpu_order(any_cells)
    for key in ("regfile", "localmem"):
        for gpu in order:
            values = []
            for model in models:
                mine = [c for c in cells_by_model[model]
                        if _gpu_key(c.gpu) == gpu]
                if not mine:
                    values.append(float("nan"))
                    continue
                values.append(
                    average_cell(mine, mine[0].gpu)[f"avf_fi_{key}"])
            lines.append(
                f"{key:<14} {gpu:<16} "
                + " ".join(f"{v:10.4f}" for v in values)
            )
        lines.append("")
    samples = {cell.samples for cells in cells_by_model.values()
               for cell in cells}
    if samples:
        lines.append(
            f"(n = {max(samples)} injections/structure per model; "
            f"models: {', '.join(models)})"
        )
    return "\n".join(lines)


def format_control_avf(cells: list[CellResult], structures: tuple) -> str:
    """Control-structure AVF report: per (benchmark, GPU) and averages.

    Structures a chip's ISA does not expose (e.g. ``simt_stack`` on an
    EXEC-mask SI chip) render as ``n/a`` — the campaign never sampled
    them there.
    """
    grouped = _sorted_cells(cells)
    order = _gpu_order(cells)
    title = "Control-structure AVF (fault injection)"
    lines = [title, "=" * len(title), ""]
    header = f"{'benchmark':<12} {'GPU':<16} " + " ".join(
        f"{s:>16}" for s in structures
    )
    lines.append(header)
    lines.append("-" * len(header))

    def cell_columns(cell) -> str:
        return " ".join(
            f"{cell.avf_fi(s):16.3f}" if s in cell.fi else f"{'n/a':>16}"
            for s in structures
        )

    for workload, per_gpu in grouped.items():
        for gpu in order:
            cell = per_gpu.get(gpu)
            if cell is None:
                continue
            lines.append(f"{workload:<12} {gpu:<16} {cell_columns(cell)}")
        lines.append("")
    lines.append(f"{'average':<12}")
    for gpu in order:
        mine = [c for c in cells if _gpu_key(c.gpu) == gpu]
        if not mine:
            continue
        columns = []
        for structure in structures:
            having = [c for c in mine if structure in c.fi]
            if not having:
                columns.append(f"{'n/a':>16}")
                continue
            avg = sum(c.avf_fi(structure) for c in having) / len(having)
            columns.append(f"{avg:16.3f}")
        lines.append(f"{'':<12} {gpu:<16} " + " ".join(columns))
    lines.append("")
    samples = {cell.samples for cell in cells}
    if samples:
        lines.append(
            f"(n = {max(samples)} injections/structure; structures: "
            f"{', '.join(structures)})"
        )
    return "\n".join(lines)


def format_sweep_summary(result) -> str:
    """Per-axis summary table of one sweep (:mod:`repro.spec.sweep`).

    One row per child campaign (expansion order — the last axis varies
    fastest), keyed by its axis assignment, with the cell count and
    the mean AVF-FI over the child's cells for every structure the
    sweep touched. Structures a child never targeted (or its chips do
    not expose) render as ``n/a``.
    """
    structures: list = []
    for run in result.runs:
        for cell in run.cells:
            for structure in cell.fi:
                if structure not in structures:
                    structures.append(structure)
    title = (f"Sweep summary — {len(result.runs)} campaigns "
             f"(axes: {', '.join(result.axes)})")
    lines = [title, "=" * len(title), ""]
    label_width = max([len(run.label) for run in result.runs] + [len("campaign")])
    header = (f"{'campaign':<{label_width}} {'cells':>6} " + " ".join(
        f"{'avf:' + s:>20}" for s in structures))
    lines.append(header)
    lines.append("-" * len(header))
    for run in result.runs:
        columns = []
        for structure in structures:
            having = [c for c in run.cells if structure in c.fi]
            if not having:
                columns.append(f"{'n/a':>20}")
            else:
                avg = sum(c.avf_fi(structure) for c in having) / len(having)
                columns.append(f"{avg:20.4f}")
        lines.append(f"{run.label:<{label_width}} {len(run.cells):>6} "
                     + " ".join(columns))
    lines.append("")
    executed = sum(run.stats.executed for run in result.runs)
    cached = sum(run.stats.cached for run in result.runs)
    lines.append(
        f"(shared store/golden cache: {cached} jobs cached, "
        f"{executed} executed across the sweep)")
    return "\n".join(lines)


def format_ace_vs_fi(cells: list[CellResult]) -> str:
    """The ACE-overestimation summary the paper highlights in prose."""
    lines = [
        "ACE vs FI accuracy and analysis-time comparison",
        "===============================================",
        "",
        f"{'benchmark':<12} {'GPU':<16} {'struct':<10} "
        f"{'FI':>7} {'ACE':>7} {'ACE/FI':>7} {'FI time':>9} {'ACE time':>9}",
    ]
    for cell in cells:
        for structure in (REGISTER_FILE, LOCAL_MEMORY):
            if structure not in cell.fi:
                continue
            fi = cell.avf_fi(structure)
            ace = cell.avf_ace(structure)
            ratio = ace / fi if fi > 0 else float("inf")
            short = "regfile" if structure == REGISTER_FILE else "localmem"
            lines.append(
                f"{cell.workload:<12} {_gpu_key(cell.gpu):<16} {short:<10} "
                f"{fi:7.3f} {ace:7.3f} {ratio:7.2f} "
                f"{cell.fi_time_s:8.1f}s {cell.golden_time_s:8.1f}s"
            )
    return "\n".join(lines)


def write_cells_csv(cells: list[CellResult], path: str | Path) -> Path:
    """Dump every cell as one CSV row (flat schema from CellResult.row)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = [cell.row() for cell in cells]
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    return path
