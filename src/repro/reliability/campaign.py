"""Campaign orchestration: the (GPU x benchmark) evaluation matrix.

One *cell* is everything the paper measures for one chip running one
benchmark: AVF by fault injection and by ACE analysis for both target
structures, structure occupancies, the cycle count, and the EPF. The
figure harnesses (`repro.experiments`, `benchmarks/`) are thin loops
over cells.

Campaigns are configured by one :class:`repro.spec.CampaignSpec`
object — ``run_cell(spec)`` and ``run_matrix(spec)`` consume it
directly. The pre-spec kwarg call pattern
(``run_cell(config, "matrixMul", scale=..., samples=...)``) is kept
as a thin shim that builds a spec internally and emits a
:class:`DeprecationWarning`; results are bit-identical either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.arch.structures import LOCAL_MEMORY, REGISTER_FILE
from repro.errors import ConfigError
from repro.kernels.registry import get_workload
from repro.reliability.epf import EpfResult, compute_epf
from repro.reliability.fi import AvfEstimate, GoldenRun, run_fi_campaign, run_golden

# Re-exported for backward compatibility: these helpers lived here
# before the spec API centralized default resolution.
from repro.spec.defaults import (  # noqa: F401  (re-export)
    ENV_SAMPLES,
    ENV_SCALE,
    default_samples,
    default_scale,
)


@dataclass
class CellResult:
    """All reliability measurements for one (GPU, benchmark) pair."""

    gpu: str
    workload: str
    scale: str
    scheduler: str
    cycles: int
    num_launches: int
    fi: dict                     # structure -> AvfEstimate
    ace: dict                    # structure -> AVF_ACE float
    occupancy: dict              # structure -> occupancy float
    epf: EpfResult | None
    golden_time_s: float
    fi_time_s: float
    samples: int
    seed: int
    uses_local_memory: bool
    fault_model: str = "transient"

    def avf_fi(self, structure: str) -> float:
        return self.fi[structure].avf if structure in self.fi else 0.0

    def avf_ace(self, structure: str) -> float:
        return self.ace.get(structure, 0.0)

    def row(self) -> dict:
        """Flat dict for CSV export."""
        rf, lm = REGISTER_FILE, LOCAL_MEMORY
        return {
            "gpu": self.gpu,
            "workload": self.workload,
            "scale": self.scale,
            "scheduler": self.scheduler,
            "fault_model": self.fault_model,
            "cycles": self.cycles,
            "launches": self.num_launches,
            "samples": self.samples,
            "avf_fi_regfile": round(self.avf_fi(rf), 6),
            "avf_ace_regfile": round(self.avf_ace(rf), 6),
            "occ_regfile": round(self.occupancy.get(rf, 0.0), 6),
            "avf_fi_localmem": round(self.avf_fi(lm), 6),
            "avf_ace_localmem": round(self.avf_ace(lm), 6),
            "occ_localmem": round(self.occupancy.get(lm, 0.0), 6),
            "sdc_regfile": self.fi[rf].sdc if rf in self.fi else 0,
            "due_regfile": self.fi[rf].due if rf in self.fi else 0,
            "sdc_localmem": self.fi[lm].sdc if lm in self.fi else 0,
            "due_localmem": self.fi[lm].due if lm in self.fi else 0,
            "epf": self.epf.epf if self.epf else float("nan"),
            "fit_gpu": self.epf.fit_gpu if self.epf else float("nan"),
            "golden_time_s": round(self.golden_time_s, 3),
            "fi_time_s": round(self.fi_time_s, 3),
        }


def run_cell(spec=None, workload: str | None = None, *args,
             golden: GoldenRun | None = None,
             workers: int = 1, **legacy) -> CellResult:
    """Measure one (GPU, benchmark) cell end to end.

    Preferred form: ``run_cell(spec)`` where ``spec`` is a
    :class:`repro.spec.CampaignSpec` naming exactly one GPU and one
    workload. The legacy form ``run_cell(config, "matrixMul",
    scale=..., samples=..., ...)`` builds that spec internally and
    emits a :class:`DeprecationWarning`; results are identical.

    ``golden`` (a precomputed :class:`GoldenRun`) and ``workers`` are
    execution resources, not campaign parameters, so they stay
    explicit arguments. The spec's ``checkpoint_interval`` (None,
    ``"auto"``, or a cycle count) makes the golden run capture machine
    snapshots so live-fault re-simulations run suffix-only with
    early-exit convergence — same outcomes and cycle counts, less wall
    time (:mod:`repro.checkpoint`).
    """
    from repro.spec import coerce_spec
    if spec is None and isinstance(legacy.get("config"), GpuConfig):
        spec = legacy.pop("config")  # old keyword-style config=...
    if isinstance(spec, GpuConfig):
        # Legacy form, exactly as the old signature accepted it:
        # run_cell(config, workload_name[, scale[, samples[, seed...]]]),
        # with config= / workload_name= as keywords also allowed.
        if workload is None:
            workload = legacy.pop("workload_name", None)
        if workload is None:
            raise ConfigError(
                "run_cell(config, ...) needs a workload name as its "
                "second argument")
        positional = ("scale", "samples", "seed", "scheduler",
                      "structures", "ace_mode", "raw_fit_per_bit")
        if len(args) > len(positional):
            raise ConfigError(
                f"run_cell(config, workload, {', '.join(positional)}) "
                f"takes at most {2 + len(positional)} positional "
                f"arguments, got {2 + len(args)}")
        for key, value in zip(positional, args):
            if legacy.get(key) is not None:
                raise ConfigError(
                    f"run_cell() got multiple values for {key!r} "
                    f"(positional and keyword)")
            legacy[key] = value
        legacy["gpus"] = (spec,)
        legacy["workloads"] = (workload,)
        spec = None
    elif workload is not None or args:
        raise ConfigError(
            "run_cell(spec) takes no separate workload argument; name "
            "the workload in the spec")
    spec = coerce_spec(spec, legacy, who="run_cell")

    config, workload_name = spec.single()
    scale = spec.resolved_scale()
    samples = spec.resolved_samples()
    structures = spec.resolved_structures()
    model_name = spec.fault_model
    workload = get_workload(workload_name, scale)

    if golden is None:
        golden = run_golden(config, workload, scheduler=spec.scheduler,
                            ace_mode=spec.ace_mode,
                            checkpoint_interval=spec.checkpoint_interval)

    start = time.perf_counter()
    campaign = run_fi_campaign(
        config, workload, golden, samples=samples, seed=spec.seed,
        structures=structures, workers=workers, fault_model=model_name,
        suffix_memo=spec.resolved_suffix_memo(),
    )
    fi_time = time.perf_counter() - start

    ace = {s: golden.ace.avf(s) for s in structures}
    occupancy = {s: golden.occupancy.occupancy(s) for s in structures}

    avf_for_epf = {s: campaign.estimates[s].avf for s in structures}
    epf = compute_epf(config, workload_name, golden.cycles, avf_for_epf,
                      spec.raw_fit_per_bit)

    return CellResult(
        gpu=config.name,
        workload=workload_name,
        scale=scale,
        scheduler=spec.scheduler,
        cycles=golden.cycles,
        num_launches=len(golden.launch_cycles),
        fi=campaign.estimates,
        ace=ace,
        occupancy=occupancy,
        epf=epf,
        golden_time_s=golden.wall_time_s,
        fi_time_s=fi_time,
        samples=samples,
        seed=spec.seed,
        uses_local_memory=workload.uses_local_memory,
        fault_model=model_name,
    )


def run_matrix(spec=None, *, progress=None, workers: int = 1,
               store=None, stats=None, telemetry=None,
               **legacy) -> list[CellResult]:
    """Run the full (GPU x benchmark) matrix the figures are built from.

    Preferred form: ``run_matrix(spec)``; the legacy kwarg form builds
    the spec internally with a :class:`DeprecationWarning`.

    Delegates to the job-graph engine (:mod:`repro.engine.matrix`):
    ``workers > 1`` runs whole cells concurrently on a process pool,
    ``store`` (a path or :class:`repro.engine.ResultStore`) makes the
    campaign resumable and incremental, and ``stats`` (a
    :class:`repro.engine.CampaignStats`) collects the jobs
    total/cached/executed accounting. Results are bit-identical to the
    serial per-cell loop for every setting. ``telemetry`` is the
    engine observability stream (``None`` defers to the spec's
    ``telemetry`` field — see :func:`repro.engine.run_campaign`).
    """
    from repro.arch.presets import list_gpus
    from repro.engine.matrix import run_campaign
    from repro.spec import coerce_spec
    # coerce_spec preserves the kwarg era's full-size-preset default
    # for every spec-less call, including a bare run_matrix() (a bare
    # spec defaults to the scaled ones, like the CLI).
    spec = coerce_spec(spec, legacy, who="run_matrix",
                       legacy_defaults={"gpus": list_gpus})
    result = run_campaign(
        spec, store=store, workers=workers, progress=progress, stats=stats,
        telemetry=telemetry,
    )
    return result.cells


def average_cell(cells: list[CellResult], gpu: str) -> dict:
    """Per-GPU averages across benchmarks (the figures' 'average' group).

    Register-file metrics average over every benchmark; local-memory
    metrics average only over the benchmarks that allocate local memory
    (the paper's Fig. 2 subset) — benchmarks without local memory have
    a structurally-zero AVF that would otherwise dilute the average.
    """
    mine = [cell for cell in cells if cell.gpu == gpu]
    if not mine:
        raise ConfigError(f"no cells for GPU {gpu!r}")
    lmem = [cell for cell in mine if cell.uses_local_memory]

    def mean(cells_, getter):
        if not cells_:
            return 0.0
        return sum(getter(cell) for cell in cells_) / len(cells_)

    return {
        "gpu": gpu,
        "avf_fi_regfile": mean(mine, lambda c: c.avf_fi(REGISTER_FILE)),
        "avf_ace_regfile": mean(mine, lambda c: c.avf_ace(REGISTER_FILE)),
        "occ_regfile": mean(mine, lambda c: c.occupancy.get(REGISTER_FILE, 0.0)),
        "avf_fi_localmem": mean(lmem, lambda c: c.avf_fi(LOCAL_MEMORY)),
        "avf_ace_localmem": mean(lmem, lambda c: c.avf_ace(LOCAL_MEMORY)),
        "occ_localmem": mean(lmem, lambda c: c.occupancy.get(LOCAL_MEMORY, 0.0)),
    }
