"""Campaign orchestration: the (GPU x benchmark) evaluation matrix.

One *cell* is everything the paper measures for one chip running one
benchmark: AVF by fault injection and by ACE analysis for both target
structures, structure occupancies, the cycle count, and the EPF. The
figure harnesses (`repro.experiments`, `benchmarks/`) are thin loops
over cells.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.arch.config import GpuConfig
from repro.errors import ConfigError
from repro.kernels.registry import get_workload
from repro.reliability.epf import RAW_FIT_PER_BIT, EpfResult, compute_epf
from repro.reliability.fi import AvfEstimate, GoldenRun, run_fi_campaign, run_golden
from repro.reliability.liveness import AceMode
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE, STRUCTURES

#: Environment knobs so test/bench runs can be resized without code edits.
ENV_SAMPLES = "REPRO_FI_SAMPLES"
ENV_SCALE = "REPRO_SCALE"


def default_samples(fallback: int = 150) -> int:
    """FI samples per structure (env override REPRO_FI_SAMPLES)."""
    return int(os.environ.get(ENV_SAMPLES, fallback))


def default_scale(fallback: str = "small") -> str:
    """Workload scale (env override REPRO_SCALE)."""
    return os.environ.get(ENV_SCALE, fallback)


@dataclass
class CellResult:
    """All reliability measurements for one (GPU, benchmark) pair."""

    gpu: str
    workload: str
    scale: str
    scheduler: str
    cycles: int
    num_launches: int
    fi: dict                     # structure -> AvfEstimate
    ace: dict                    # structure -> AVF_ACE float
    occupancy: dict              # structure -> occupancy float
    epf: EpfResult | None
    golden_time_s: float
    fi_time_s: float
    samples: int
    seed: int
    uses_local_memory: bool
    fault_model: str = "transient"

    def avf_fi(self, structure: str) -> float:
        return self.fi[structure].avf if structure in self.fi else 0.0

    def avf_ace(self, structure: str) -> float:
        return self.ace.get(structure, 0.0)

    def row(self) -> dict:
        """Flat dict for CSV export."""
        rf, lm = REGISTER_FILE, LOCAL_MEMORY
        return {
            "gpu": self.gpu,
            "workload": self.workload,
            "scale": self.scale,
            "scheduler": self.scheduler,
            "fault_model": self.fault_model,
            "cycles": self.cycles,
            "launches": self.num_launches,
            "samples": self.samples,
            "avf_fi_regfile": round(self.avf_fi(rf), 6),
            "avf_ace_regfile": round(self.avf_ace(rf), 6),
            "occ_regfile": round(self.occupancy.get(rf, 0.0), 6),
            "avf_fi_localmem": round(self.avf_fi(lm), 6),
            "avf_ace_localmem": round(self.avf_ace(lm), 6),
            "occ_localmem": round(self.occupancy.get(lm, 0.0), 6),
            "sdc_regfile": self.fi[rf].sdc if rf in self.fi else 0,
            "due_regfile": self.fi[rf].due if rf in self.fi else 0,
            "sdc_localmem": self.fi[lm].sdc if lm in self.fi else 0,
            "due_localmem": self.fi[lm].due if lm in self.fi else 0,
            "epf": self.epf.epf if self.epf else float("nan"),
            "fit_gpu": self.epf.fit_gpu if self.epf else float("nan"),
            "golden_time_s": round(self.golden_time_s, 3),
            "fi_time_s": round(self.fi_time_s, 3),
        }


def run_cell(config: GpuConfig, workload_name: str,
             scale: str | None = None, samples: int | None = None,
             seed: int = 0, scheduler: str = "rr",
             structures: tuple = STRUCTURES,
             ace_mode: AceMode = AceMode.CONSERVATIVE,
             raw_fit_per_bit: float = RAW_FIT_PER_BIT,
             golden: GoldenRun | None = None,
             workers: int = 1,
             fault_model=None,
             checkpoint_interval=None) -> CellResult:
    """Measure one (GPU, benchmark) cell end to end.

    ``checkpoint_interval`` (None, ``"auto"``, or a cycle count) makes
    the golden run capture machine snapshots so live-fault
    re-simulations run suffix-only with early-exit convergence — same
    outcomes and cycle counts, less wall time (:mod:`repro.checkpoint`).
    """
    from repro.faultmodels.registry import fault_model_name
    scale = scale or default_scale()
    samples = samples if samples is not None else default_samples()
    model_name = fault_model_name(fault_model)
    workload = get_workload(workload_name, scale)

    if golden is None:
        golden = run_golden(config, workload, scheduler=scheduler,
                            ace_mode=ace_mode,
                            checkpoint_interval=checkpoint_interval)

    start = time.perf_counter()
    campaign = run_fi_campaign(
        config, workload, golden, samples=samples, seed=seed,
        structures=structures, workers=workers, fault_model=model_name,
    )
    fi_time = time.perf_counter() - start

    ace = {s: golden.ace.avf(s) for s in structures}
    occupancy = {s: golden.occupancy.occupancy(s) for s in structures}

    avf_for_epf = {s: campaign.estimates[s].avf for s in structures}
    epf = compute_epf(config, workload_name, golden.cycles, avf_for_epf,
                      raw_fit_per_bit)

    return CellResult(
        gpu=config.name,
        workload=workload_name,
        scale=scale,
        scheduler=scheduler,
        cycles=golden.cycles,
        num_launches=len(golden.launch_cycles),
        fi=campaign.estimates,
        ace=ace,
        occupancy=occupancy,
        epf=epf,
        golden_time_s=golden.wall_time_s,
        fi_time_s=fi_time,
        samples=samples,
        seed=seed,
        uses_local_memory=workload.uses_local_memory,
        fault_model=model_name,
    )


def run_matrix(gpus: list | None = None, workloads: list | None = None,
               scale: str | None = None, samples: int | None = None,
               seed: int = 0, scheduler: str = "rr",
               structures: tuple = STRUCTURES,
               progress=None, workers: int = 1,
               store=None, shard_size: int | None = None,
               stats=None, fault_model=None,
               checkpoint_interval=None) -> list[CellResult]:
    """Run the full (GPU x benchmark) matrix the figures are built from.

    Delegates to the job-graph engine (:mod:`repro.engine.matrix`):
    ``workers > 1`` runs whole cells concurrently on a process pool,
    ``store`` (a path or :class:`repro.engine.ResultStore`) makes the
    campaign resumable and incremental, and ``stats`` (a
    :class:`repro.engine.CampaignStats`) collects the jobs
    total/cached/executed accounting. ``fault_model`` selects the
    campaign's fault model (default transient; part of the job
    fingerprints, so models never collide in a store).
    ``checkpoint_interval`` (None, ``"auto"``, or a cycle count) turns
    on suffix-only fault injection from golden-run snapshots. Results
    are bit-identical to the serial per-cell loop for every setting.
    """
    from repro.engine.matrix import run_campaign
    result = run_campaign(
        gpus=gpus, workloads=workloads, scale=scale, samples=samples,
        seed=seed, scheduler=scheduler, structures=structures,
        shard_size=shard_size, workers=workers, store=store,
        progress=progress, stats=stats, fault_model=fault_model,
        checkpoint_interval=checkpoint_interval,
    )
    return result.cells


def average_cell(cells: list[CellResult], gpu: str) -> dict:
    """Per-GPU averages across benchmarks (the figures' 'average' group).

    Register-file metrics average over every benchmark; local-memory
    metrics average only over the benchmarks that allocate local memory
    (the paper's Fig. 2 subset) — benchmarks without local memory have
    a structurally-zero AVF that would otherwise dilute the average.
    """
    mine = [cell for cell in cells if cell.gpu == gpu]
    if not mine:
        raise ConfigError(f"no cells for GPU {gpu!r}")
    lmem = [cell for cell in mine if cell.uses_local_memory]

    def mean(cells_, getter):
        if not cells_:
            return 0.0
        return sum(getter(cell) for cell in cells_) / len(cells_)

    return {
        "gpu": gpu,
        "avf_fi_regfile": mean(mine, lambda c: c.avf_fi(REGISTER_FILE)),
        "avf_ace_regfile": mean(mine, lambda c: c.avf_ace(REGISTER_FILE)),
        "occ_regfile": mean(mine, lambda c: c.occupancy.get(REGISTER_FILE, 0.0)),
        "avf_fi_localmem": mean(lmem, lambda c: c.avf_fi(LOCAL_MEMORY)),
        "avf_ace_localmem": mean(lmem, lambda c: c.avf_ace(LOCAL_MEMORY)),
        "occ_localmem": mean(lmem, lambda c: c.occupancy.get(LOCAL_MEMORY, 0.0)),
    }
