"""Statistical fault sampling: error margins and sample sizing.

Implements the standard formula for statistical fault injection
(Leveugle et al., DATE 2009) used by the paper's footnote: "2,000 fault
injections per hardware structure ... statistically provides 2.88%
error margin for 99% confidence level". With the worst-case p = 0.5
and an effectively infinite fault population, the margin is

    e = z * sqrt(p (1 - p) / n)

and with a finite population N of (bit, cycle) pairs the
finite-population correction sqrt((N - n) / (N - 1)) applies.
"""

from __future__ import annotations

import math

from scipy import stats

from repro.errors import ConfigError


def z_score(confidence: float) -> float:
    """Two-sided normal quantile for a confidence level in (0, 1)."""
    if not 0 < confidence < 1:
        raise ConfigError(f"confidence {confidence} outside (0, 1)")
    return float(stats.norm.ppf((1 + confidence) / 2))


def margin_of_error(samples: int, population: int | None = None,
                    confidence: float = 0.99, p: float = 0.5) -> float:
    """Half-width of the AVF confidence interval for ``samples`` injections."""
    if samples <= 0:
        raise ConfigError("samples must be positive")
    z = z_score(confidence)
    margin = z * math.sqrt(p * (1 - p) / samples)
    if population is not None and population > 1:
        if samples > population:
            raise ConfigError("cannot sample more than the population")
        margin *= math.sqrt((population - samples) / (population - 1))
    return margin


def required_samples(margin: float, population: int | None = None,
                     confidence: float = 0.99, p: float = 0.5) -> int:
    """Injections needed for a target error margin (paper: 2.88% -> 2,000)."""
    if not 0 < margin < 1:
        raise ConfigError(f"margin {margin} outside (0, 1)")
    z = z_score(confidence)
    n_infinite = p * (1 - p) * (z / margin) ** 2
    if population is None:
        return math.ceil(n_infinite)
    n = population / (1 + (population - 1) * margin ** 2 / (z ** 2 * p * (1 - p)))
    return math.ceil(min(n, population))
