"""Aggregate analysis of campaign cells: the paper's findings as numbers.

The paper's section III makes four qualitative claims; this module
turns a list of campaign cells into the statistics that support (or
refute) each claim, so EXPERIMENTS.md and the verification tests can
assert them mechanically:

1. AVF varies strongly across benchmarks and across GPUs;
2. AVF correlates with structure occupancy;
3. ACE overestimates FI on the register file, but matches it on local
   memory;
4. EPF spans orders of magnitude and ranks chips differently than AVF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats

from repro.reliability.campaign import CellResult
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE


@dataclass(frozen=True)
class FindingsSummary:
    """Quantified versions of the paper's four findings."""

    #: max/min AVF-FI spread across benchmarks per GPU (claim 1)
    avf_spread_by_gpu: dict
    #: Pearson r of AVF-ACE vs occupancy per structure (claim 2)
    occupancy_correlation: dict
    #: mean ACE/FI ratio per structure over cells with AVF-FI > 0 (claim 3)
    mean_ace_fi_ratio: dict
    #: log10 spread of EPF across all cells (claim 4)
    epf_log10_range: tuple

    def claim_avf_varies(self, threshold: float = 3.0) -> bool:
        """Some GPU sees at least a ``threshold``-fold AVF spread."""
        return any(
            spread >= threshold
            for spread in self.avf_spread_by_gpu.values()
            if math.isfinite(spread)
        )

    def claim_avf_tracks_occupancy(self, threshold: float = 0.5) -> bool:
        return self.occupancy_correlation[REGISTER_FILE] >= threshold

    def claim_ace_overestimates_regfile(self, threshold: float = 1.1) -> bool:
        return self.mean_ace_fi_ratio[REGISTER_FILE] >= threshold

    def claim_ace_close_on_localmem(self, band: float = 0.75) -> bool:
        """Local-memory ACE/FI sits much closer to 1 than the register
        file's ratio (within ``band`` of 1 on a log scale relative to it)."""
        lm = self.mean_ace_fi_ratio[LOCAL_MEMORY]
        rf = self.mean_ace_fi_ratio[REGISTER_FILE]
        if not (math.isfinite(lm) and math.isfinite(rf)) or lm <= 0:
            return False
        return abs(math.log10(lm)) <= band * abs(math.log10(max(rf, 1.0001)))

    def claim_epf_spans_orders(self, decades: float = 1.5) -> bool:
        low, high = self.epf_log10_range
        return math.isfinite(low) and (high - low) >= decades


def ace_fi_ratios(cells: list, structure: str) -> list:
    """(gpu, workload, ACE/FI) for every cell with a non-zero FI AVF."""
    rows = []
    for cell in cells:
        if structure not in cell.fi:
            continue
        fi = cell.avf_fi(structure)
        if fi > 0:
            rows.append((cell.gpu, cell.workload, cell.avf_ace(structure) / fi))
    return rows


def avf_occupancy_correlation(cells: list, structure: str,
                              use_ace: bool = True) -> float:
    """Pearson correlation between AVF and occupancy across cells."""
    pairs = [
        (
            cell.avf_ace(structure) if use_ace else cell.avf_fi(structure),
            cell.occupancy.get(structure, 0.0),
        )
        for cell in cells
        if structure in (cell.ace if use_ace else cell.fi)
    ]
    if len(pairs) < 3:
        raise ValueError("need at least 3 cells for a correlation")
    avfs, occs = zip(*pairs)
    if max(avfs) == min(avfs) or max(occs) == min(occs):
        return 0.0
    r, _p = stats.pearsonr(avfs, occs)
    return float(r)


def summarize(cells: list) -> FindingsSummary:
    """Build the findings summary from a campaign's cells."""
    by_gpu: dict = {}
    for cell in cells:
        by_gpu.setdefault(cell.gpu, []).append(cell)

    spread = {}
    for gpu, mine in by_gpu.items():
        avfs = [c.avf_fi(REGISTER_FILE) for c in mine
                if REGISTER_FILE in c.fi and c.avf_fi(REGISTER_FILE) > 0]
        spread[gpu] = (max(avfs) / min(avfs)) if len(avfs) >= 2 else float("nan")

    correlation = {}
    for structure in (REGISTER_FILE, LOCAL_MEMORY):
        eligible = [c for c in cells if structure in c.ace]
        correlation[structure] = (
            avf_occupancy_correlation(eligible, structure)
            if len(eligible) >= 3 else float("nan")
        )

    ratios = {}
    for structure in (REGISTER_FILE, LOCAL_MEMORY):
        rows = ace_fi_ratios(cells, structure)
        values = [r for _, _, r in rows if math.isfinite(r)]
        ratios[structure] = (
            sum(values) / len(values) if values else float("nan")
        )

    epfs = [c.epf.epf for c in cells
            if c.epf and math.isfinite(c.epf.epf) and c.epf.epf > 0]
    if epfs:
        epf_range = (math.log10(min(epfs)), math.log10(max(epfs)))
    else:
        epf_range = (float("nan"), float("nan"))

    return FindingsSummary(
        avf_spread_by_gpu=spread,
        occupancy_correlation=correlation,
        mean_ace_fi_ratio=ratios,
        epf_log10_range=epf_range,
    )
