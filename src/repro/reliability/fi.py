"""Statistical fault-injection engine (the GUFI / SIFI analogue).

Campaign flow per (GPU, benchmark, structure):

1. One traced fault-free run (shared with ACE/occupancy analysis)
   fixes the cycle count and the golden outputs.
2. ``samples`` fault sites are drawn by the campaign's *fault model*
   (:mod:`repro.faultmodels`) uniformly over the whole-chip structure
   x execution duration — transient single-bit flips by default,
   stuck-at defects or multi-bit upsets on request. Structures span
   the full registry (:mod:`repro.arch.structures`): the paper's
   datapath arrays plus the control structures (SIMT stacks,
   predicate/status registers, scheduler state).
3. One more traced golden run resolves every sampled fault as
   provably-dead (classified MASKED without re-simulation) or
   potentially-live, honouring the model's liveness semantics
   (stuck-at faults survive write-backs; control sites resolve on
   hardware warp-slot occupancy).
4. Every live fault is re-simulated with the model's disturbance
   applied at its cycle; the run is classified MASKED / SDC (bit-exact
   output comparison against the golden outputs) / DUE (simulator
   fault or watchdog hang).

``AVF_FI = (SDC + DUE) / samples``.

When the golden run captured checkpoints (:mod:`repro.checkpoint`),
step 4 becomes *suffix-only*: each live fault restores the nearest
machine snapshot before its fault cycle and simulates only the suffix,
and transient-class faults additionally exit early — classified MASKED
the moment the machine's state digest matches the golden one at the
same capture label. Outcomes and cycle counts are bit-identical to
full re-simulation either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.arch.config import GpuConfig
from repro.errors import SimFault
from repro.faultmodels.registry import get_fault_model
from repro.kernels.workload import Workload, run_workload
from repro.reliability.liveness import (
    AceAccumulator,
    AceMode,
    FaultSiteResolver,
    OccupancyAccumulator,
)
from repro.reliability.outcomes import (
    FaultResult,
    Outcome,
    classify_outputs,
    count_corrupted_words,
)
from repro.reliability.sampling import margin_of_error
from repro.arch.structures import DATAPATH_STRUCTURES
from repro.sim.faults import FaultPlan
from repro.sim.gpu import Gpu, default_watchdog_for
from repro.sim.tracing import CompositeSink
from repro.telemetry import profile as _profile


@dataclass
class GoldenRun:
    """Traced fault-free execution of one workload on one chip."""

    config: GpuConfig
    workload_name: str
    scheduler: str
    cycles: int
    launch_cycles: list
    outputs: dict
    ace: AceAccumulator
    occupancy: OccupancyAccumulator
    wall_time_s: float
    #: Machine snapshots captured during the run (None: checkpointing
    #: off). When present, live-fault re-simulations run suffix-only.
    snapshots: object = None


def run_golden(config: GpuConfig, workload: Workload, scheduler: str = "rr",
               ace_mode: AceMode = AceMode.CONSERVATIVE,
               checkpoint_interval=None) -> GoldenRun:
    """Run fault-free with ACE + occupancy tracing attached.

    ``checkpoint_interval`` — None (off), ``"auto"``, or a cycle count —
    additionally captures periodic full-machine snapshots
    (:mod:`repro.checkpoint`) that downstream fault injections restore
    instead of re-simulating the fault-free prefix. Capture only
    observes: the traced results are identical with or without it.
    """
    monitor = None
    if checkpoint_interval is not None:
        from repro.checkpoint import CheckpointRecorder
        monitor = CheckpointRecorder(checkpoint_interval)
    ace = AceAccumulator(config, mode=ace_mode)
    occupancy = OccupancyAccumulator(config)
    gpu = Gpu(config, scheduler=scheduler, sink=CompositeSink(ace, occupancy))
    start = time.perf_counter()
    with _profile.phase("golden"):
        result = run_workload(gpu, workload, monitor=monitor)
    elapsed = time.perf_counter() - start
    return GoldenRun(
        config=config,
        workload_name=workload.name,
        scheduler=scheduler,
        cycles=result.cycles,
        launch_cycles=result.launch_cycles,
        outputs=result.outputs,
        ace=ace,
        occupancy=occupancy,
        wall_time_s=elapsed,
        snapshots=monitor.snapshots() if monitor is not None else None,
    )


@dataclass
class AvfEstimate:
    """Fault-injection AVF estimate for one structure."""

    structure: str
    samples: int
    masked: int
    sdc: int
    due: int
    pruned: int          # masked without re-simulation (dead sites)
    resimulated: int
    wall_time_s: float
    confidence: float = 0.99

    @property
    def failures(self) -> int:
        return self.sdc + self.due

    @property
    def avf(self) -> float:
        return self.failures / self.samples if self.samples else 0.0

    @property
    def sdc_rate(self) -> float:
        return self.sdc / self.samples if self.samples else 0.0

    @property
    def due_rate(self) -> float:
        return self.due / self.samples if self.samples else 0.0

    @property
    def margin(self) -> float:
        """Error margin at the configured confidence (paper footnote 4)."""
        return margin_of_error(self.samples, confidence=self.confidence)


@dataclass
class CampaignOutput:
    """Everything a fault-injection campaign produced."""

    estimates: dict            # structure -> AvfEstimate
    results: list = field(default_factory=list)  # list[FaultResult]
    #: Suffix-memo counters (hits/misses/collisions/entries) when the
    #: campaign ran memoized in-process; None otherwise (memo off, or
    #: pooled workers owning their own per-process tables).
    memo: dict | None = None


def _memo_commit(memo, result: FaultResult) -> FaultResult:
    """Memoize a finished run's digest trail under its outcome."""
    if memo is not None:
        from repro.checkpoint import MemoRecord
        memo.misses += 1
        _profile.count("memo_misses")
        memo.commit(MemoRecord(
            outcome=result.outcome.value,
            detail=result.detail,
            corrupted_words=result.corrupted_words,
            cycles=result.cycles,
            early_exit=result.early_exit,
        ))
    return result


def resimulate_plan(config: GpuConfig, workload: Workload, plan: FaultPlan,
                    golden_outputs: dict, golden_cycles: int,
                    scheduler: str, fault_model=None,
                    snapshots=None, memo=None) -> FaultResult:
    """Faulty run for one live fault site.

    The single deterministic re-simulation primitive shared by the
    serial path, the per-cell process pool, and the campaign engine's
    FI-shard jobs (:mod:`repro.engine.jobs`). ``fault_model`` selects
    the disturbance semantics (default: transient single-bit flip).

    ``snapshots`` (a :class:`repro.checkpoint.SnapshotSet` from the
    golden run) switches to suffix-only simulation with the early-exit
    convergence check; the classification and the recorded cycle count
    are bit-identical to the full re-simulation either way.

    ``memo`` (a :class:`repro.checkpoint.SuffixMemo`; needs
    ``snapshots``) adds cross-sample memoization: runs quiescing to a
    state some earlier run of the campaign already classified reuse
    that outcome instead of simulating the suffix — still bit-identical
    (full dual-digest state equality implies identical evolution).
    """
    watchdog = default_watchdog_for(golden_cycles)
    if snapshots is None:
        memo = None
    elif memo is not None:
        memo.begin_run()
    try:
        if snapshots is not None:
            from repro.checkpoint import (
                ConvergedToGolden,
                MemoHit,
                run_faulty_from_checkpoints,
            )
            try:
                with _profile.phase("suffix_sim"):
                    result = run_faulty_from_checkpoints(
                        config, workload, plan, scheduler, watchdog,
                        snapshots, fault_model=fault_model, memo=memo)
            except ConvergedToGolden:
                # Full-state digest matched golden: the rest of the run
                # is provably the golden run — MASKED, golden cycles.
                _profile.count("exit:masked_early")
                return _memo_commit(memo, FaultResult(
                    plan, Outcome.MASKED, True,
                    cycles=golden_cycles, early_exit=True))
            except MemoHit as hit:
                # An earlier injection already classified this exact
                # machine state: reuse its result, and memoize this
                # run's own pre-hit trail under the same outcome.
                _profile.count("memo_hits")
                _profile.count(f"exit:memo:{hit.record.outcome}")
                memo.commit(hit.record)
                record = hit.record
                return FaultResult(
                    plan, Outcome(record.outcome), True,
                    detail=record.detail,
                    corrupted_words=record.corrupted_words,
                    cycles=record.cycles, early_exit=record.early_exit)
        else:
            with _profile.phase("suffix_sim"):
                gpu = Gpu(config, scheduler=scheduler)
                gpu.set_faults([plan], fault_model=fault_model)
                gpu.set_watchdog(watchdog)
                result = run_workload(gpu, workload)
    except SimFault as fault:
        _profile.count(f"exit:due:{type(fault).__name__}")
        return _memo_commit(memo, FaultResult(
            plan, Outcome.DUE, True, detail=type(fault).__name__))
    outcome = classify_outputs(golden_outputs, result.outputs)
    corrupted = (
        count_corrupted_words(golden_outputs, result.outputs)
        if outcome is Outcome.SDC else 0
    )
    _profile.count("exit:sdc" if outcome is Outcome.SDC else "exit:masked_full")
    return _memo_commit(memo, FaultResult(
        plan, outcome, True, corrupted_words=corrupted,
        cycles=result.cycles))


def _resimulate(config: GpuConfig, workload: Workload, plan: FaultPlan,
                golden: GoldenRun, model_name: str,
                memo=None) -> FaultResult:
    return resimulate_plan(config, workload, plan, golden.outputs,
                           golden.cycles, golden.scheduler,
                           fault_model=model_name,
                           snapshots=golden.snapshots, memo=memo)


def _capture_key(config, workload, scheduler: str, interval) -> tuple:
    """Canonical capture identity for per-process caches."""
    import dataclasses
    import json
    params = dataclasses.asdict(config)
    params.pop("backend", None)  # execution resource, not identity
    return (json.dumps(params, sort_keys=True),
            workload.name, workload.scale, scheduler, interval)


def _worker_snapshots(config, workload, scheduler: str, interval):
    """Per-process snapshot set for the pooled serial path.

    Keyed by the full capture identity (the serial path has no job
    fingerprints); the shared per-process cache in
    :func:`repro.checkpoint.cached_snapshots` re-derives the golden
    run's set once and reuses it for every fault of that cell the
    worker simulates.
    """
    if interval is None:
        return None
    from repro.checkpoint import cached_snapshots
    key = ("capture-params",) + _capture_key(config, workload, scheduler,
                                             interval)
    return cached_snapshots(key, config, workload, scheduler, interval)


def _worker_memo(config, workload, scheduler: str, interval,
                 model_name: str):
    """Per-process suffix-memo table for the pooled serial path.

    The fault model joins the key (different disturbance semantics
    never share a table); each worker process accumulates and profits
    from its own table across all the faults it simulates.
    """
    from repro.checkpoint import cached_memo
    key = ("memo-params", model_name) + _capture_key(
        config, workload, scheduler, interval)
    return cached_memo(key)


def _resim_worker(args) -> tuple:
    """Process-pool worker: re-simulate one fault from plain data.

    Workloads hold closures (not picklable), so workers rebuild them
    from the registry by (name, scale) — deterministic by construction.
    Likewise snapshot sets: shipping one per fault would out-cost the
    suffix savings, so the golden's checkpoint interval travels
    instead and each worker captures the set once. The suffix memo is
    per-process for the same reason.
    """
    (config, workload_name, scale, scheduler, golden_outputs,
     golden_cycles, plan, model_name, checkpoint_interval,
     suffix_memo) = args
    from repro.kernels.registry import get_workload
    workload = get_workload(workload_name, scale)
    snapshots = _worker_snapshots(config, workload, scheduler,
                                  checkpoint_interval)
    memo = None
    if suffix_memo and snapshots is not None:
        memo = _worker_memo(config, workload, scheduler,
                            checkpoint_interval, model_name)
    result = resimulate_plan(config, workload, plan, golden_outputs,
                             golden_cycles, scheduler,
                             fault_model=model_name,
                             snapshots=snapshots, memo=memo)
    return (plan, result.outcome.value, result.detail,
            result.corrupted_words, result.cycles)


def _resimulate_batch(config: GpuConfig, workload: Workload,
                      plans: list, golden: GoldenRun,
                      workers: int, model_name: str,
                      memo=None) -> dict:
    """Re-simulate live faults, optionally across processes.

    Returns plan -> FaultResult. Results are independent of ``workers``
    — when the golden run carries snapshots, pooled workers re-derive
    the identical set once per process (pickling it per fault would
    out-cost the suffix savings), and scratch and suffix runs classify
    identically anyway. ``memo`` is the in-process suffix-memo table;
    pooled workers derive their own per-process tables instead.
    """
    if workers <= 1 or len(plans) < 2:
        return {plan: _resimulate(config, workload, plan, golden,
                                  model_name, memo=memo)
                for plan in plans}
    from repro.errors import ConfigError
    from repro.kernels.registry import KERNEL_NAMES
    if workload.name not in KERNEL_NAMES:
        raise ConfigError(
            "parallel campaigns need a registry workload "
            f"(got {workload.name!r}); use workers=1"
        )
    from concurrent.futures import ProcessPoolExecutor
    interval = golden.snapshots.interval if golden.snapshots is not None \
        else None
    jobs = [
        (config, workload.name, workload.scale, golden.scheduler,
         golden.outputs, golden.cycles, plan, model_name, interval,
         memo is not None)
        for plan in plans
    ]
    results: dict = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for plan, outcome_value, detail, corrupted, cycles in pool.map(
                _resim_worker, jobs, chunksize=4):
            results[plan] = FaultResult(
                plan, Outcome(outcome_value), True, detail=detail,
                corrupted_words=corrupted, cycles=cycles,
            )
    return results


def run_fi_campaign(config: GpuConfig, workload: Workload, golden: GoldenRun,
                    samples: int, seed: int = 0,
                    structures: tuple = DATAPATH_STRUCTURES,
                    keep_results: bool = False,
                    workers: int = 1,
                    fault_model=None,
                    suffix_memo: bool = True) -> CampaignOutput:
    """Run the statistical FI campaign for the given structures.

    ``workers > 1`` fans the fault re-simulations out over a process
    pool; results are bit-identical to the serial run (faults are
    independent and each re-simulation is deterministic).
    ``fault_model`` (name or :class:`~repro.faultmodels.FaultModel`)
    selects sampling/application/liveness semantics; the default
    transient model reproduces the paper's campaign bit for bit.

    ``suffix_memo`` (default on; needs a checkpointed golden run to
    take effect) shares classified quiescent states across the
    campaign's injections (:mod:`repro.checkpoint.memo`) — outcomes
    stay bit-identical, repeated suffixes are skipped.
    """
    model = get_fault_model(fault_model)
    rng = np.random.default_rng(seed)
    plans_by_structure = {
        structure: model.sample(config, structure, golden.cycles, samples, rng)
        for structure in structures
    }
    all_plans = [p for plans in plans_by_structure.values() for p in plans]

    # Pruning pass: one traced golden run resolving dead vs live sites.
    resolver = FaultSiteResolver(config, all_plans, fault_model=model)
    gpu = Gpu(config, scheduler=golden.scheduler, sink=resolver)
    run_workload(gpu, workload)

    live_plans = sorted(
        {p for p in all_plans if resolver.is_live(p)},
        key=lambda p: (p.structure, p.core, p.word, p.bit, p.cycle,
                       p.width, p.stuck_value),
    )
    memo = None
    if suffix_memo and golden.snapshots is not None:
        from repro.checkpoint import SuffixMemo
        memo = SuffixMemo()
    resim_start = time.perf_counter()
    resim_results = _resimulate_batch(config, workload, live_plans, golden,
                                      workers, model.name, memo=memo)
    resim_time = time.perf_counter() - resim_start
    total_live = max(1, len(live_plans))

    output = CampaignOutput(estimates={})
    if memo is not None and (workers <= 1 or len(live_plans) < 2):
        output.memo = memo.stats()
    for structure, plans in plans_by_structure.items():
        masked = sdc = due = pruned = resims = 0
        results: list[FaultResult] = []
        for plan in plans:
            if not resolver.is_live(plan):
                masked += 1
                pruned += 1
                result = FaultResult(plan, Outcome.MASKED, False, detail="dead-site")
            else:
                result = resim_results[plan]
                resims += 1
                if result.outcome is Outcome.MASKED:
                    masked += 1
                elif result.outcome is Outcome.SDC:
                    sdc += 1
                else:
                    due += 1
            if keep_results:
                results.append(result)
        output.estimates[structure] = AvfEstimate(
            structure=structure,
            samples=len(plans),
            masked=masked,
            sdc=sdc,
            due=due,
            pruned=pruned,
            resimulated=resims,
            # Batch re-simulation time apportioned by this structure's share.
            wall_time_s=resim_time * resims / total_live,
        )
        output.results.extend(results)
    return output
