"""Online trace consumers: ACE lifetimes, fault-site liveness, occupancy.

All three are :class:`repro.sim.tracing.TraceSink` implementations that
accumulate during a single fault-free ("golden") simulation — nothing
stores the raw event stream, so memory stays O(structure size).

* :class:`AceAccumulator` — Mukherjee-style ACE lifetime analysis. In
  the default CONSERVATIVE mode a register *row* (one architectural
  register x all warp lanes) counts as ACE for all 32 bits of all lanes
  from each write to its last read, ignoring lane masks — the classic
  conservative assumptions that make ACE overestimate the register
  file's AVF relative to fault injection (the paper's Fig. 1 finding).
  The LANE_MASKED mode refines per-lane (ablation). Local memory is
  analysed word-granular in both modes, which is why ACE tracks FI
  closely there (Fig. 2 finding).

* :class:`FaultSiteResolver` — exact dead-interval pruning for the
  fault-injection engine: a sampled (word, cycle) fault is *provably
  masked* iff no read of that word occurs at cycle' >= cycle before the
  next write (or end of execution). Faults resolved LIVE must be fully
  re-simulated; the pruning changes no outcome, only analysis time
  (GUFI does the same). The pruning is fault-model aware: for
  *persistent* models (stuck-at defects re-applied on every
  write-back) a write never kills the fault, so a site is only
  provably dead if the word is never read at or after the fault cycle.

* :class:`OccupancyAccumulator` — time-weighted fraction of each
  structure allocated to resident blocks (the red occupancy lines of
  Fig. 1/2).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.arch.config import GpuConfig
from repro.arch.structures import (
    CONTROL_STRUCTURES,
    control_words_per_warp,
    structure_info,
)
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE, FaultPlan
from repro.sim.tracing import TraceSink


class AceMode(enum.Enum):
    CONSERVATIVE = "conservative"
    LANE_MASKED = "lane_masked"


def _lane_bools(mask: int, width: int) -> np.ndarray:
    return (mask >> np.arange(width, dtype=np.uint64)).astype(np.uint64) & 1 != 0


class AceAccumulator(TraceSink):
    """ACE (lifetime) analysis over one golden run."""

    def __init__(self, config: GpuConfig, mode: AceMode = AceMode.CONSERVATIVE):
        self.config = config
        self.mode = mode
        self.warp_size = config.warp_size
        # conservative: (core,row) -> [seg_start, last_read]
        self._rows: dict = {}
        # lane-masked: (core,row) -> (seg_start[warp], last_read[warp])
        self._lane_rows: dict = {}
        self._reg_row_cycles = 0       # conservative: row-cycles
        self._reg_word_cycles = 0      # lane-masked: word-cycles
        self._lmem_start: dict = {}    # core -> int64[num_words]
        self._lmem_last: dict = {}
        self._lmem_word_cycles = 0
        self.total_cycles: int | None = None

    # ------------------------------------------------------------------
    def on_reg_access(self, cycle, core, row, mask, is_write):
        if self.mode is AceMode.CONSERVATIVE:
            key = (core, row)
            state = self._rows.get(key)
            if is_write:
                if state is not None and state[1] >= 0:
                    self._reg_row_cycles += state[1] - state[0]
                self._rows[key] = [cycle, -1]
            else:
                if state is None:
                    self._rows[key] = [cycle, cycle]
                else:
                    state[1] = cycle
            return
        # LANE_MASKED
        key = (core, row)
        state = self._lane_rows.get(key)
        if state is None:
            state = (
                np.full(self.warp_size, -1, dtype=np.int64),
                np.full(self.warp_size, -1, dtype=np.int64),
            )
            self._lane_rows[key] = state
        start, last = state
        lanes = _lane_bools(mask, self.warp_size)
        if is_write:
            closing = lanes & (last >= 0)
            if closing.any():
                self._reg_word_cycles += int((last[closing] - start[closing]).sum())
            start[lanes] = cycle
            last[lanes] = -1
        else:
            fresh = lanes & (start < 0)
            start[fresh] = cycle
            last[lanes] = cycle

    def on_lmem_access(self, cycle, core, words, is_write):
        start = self._lmem_start.get(core)
        if start is None:
            num_words = self.config.local_memory_bytes // 4
            start = np.full(num_words, -1, dtype=np.int64)
            self._lmem_start[core] = start
            self._lmem_last[core] = np.full(num_words, -1, dtype=np.int64)
        last = self._lmem_last[core]
        unique = np.unique(words)
        if is_write:
            closing = last[unique] >= 0
            if closing.any():
                hit = unique[closing]
                self._lmem_word_cycles += int((last[hit] - start[hit]).sum())
            start[unique] = cycle
            last[unique] = -1
        else:
            fresh = start[unique] < 0
            start[unique[fresh]] = cycle
            last[unique] = cycle

    def on_run_end(self, cycle):
        self.total_cycles = cycle
        for state in self._rows.values():
            if state[1] >= 0:
                self._reg_row_cycles += state[1] - state[0]
                state[1] = -1
        for start, last in self._lane_rows.values():
            open_ = last >= 0
            if open_.any():
                self._reg_word_cycles += int((last[open_] - start[open_]).sum())
                last[open_] = -1
        for core, start in self._lmem_start.items():
            last = self._lmem_last[core]
            open_ = last >= 0
            if open_.any():
                self._lmem_word_cycles += int((last[open_] - start[open_]).sum())
                last[open_] = -1

    # ------------------------------------------------------------------
    def avf(self, structure: str) -> float:
        """AVF_ACE of a structure (call after the run has ended)."""
        if self.total_cycles is None:
            raise RuntimeError("run has not ended; no total cycle count")
        if self.total_cycles == 0:
            return 0.0
        denominator = self.total_cycles * self.config.structure_bits(structure)
        if structure == REGISTER_FILE:
            if self.mode is AceMode.CONSERVATIVE:
                bit_cycles = self._reg_row_cycles * self.warp_size * 32
            else:
                bit_cycles = self._reg_word_cycles * 32
        elif structure == LOCAL_MEMORY:
            bit_cycles = self._lmem_word_cycles * 32
        elif structure in CONTROL_STRUCTURES:
            # No ACE lifetime model for control state: its AVF is
            # measured by fault injection only (fig_control_avf).
            return 0.0
        else:
            raise ValueError(f"unknown structure {structure!r}")
        return min(1.0, bit_cycles / denominator)


class FaultSiteResolver(TraceSink):
    """Classify sampled faults as provably-dead vs potentially-live.

    Datapath sites resolve on word reads/writes. Control-structure
    sites (SIMT stack, predicate file, scheduler state) resolve on
    *hardware warp-slot* occupancy: a slot's control storage can only
    influence execution while a warp occupies it, and slot allocation
    re-initialises (overwrites) it — so a site is provably dead iff its
    slot is never occupied at or after the fault cycle. That condition
    also covers persistent faults: a stuck-at defect in a slot no warp
    ever occupies again asserts itself against storage nothing reads.
    Sites in occupied slots stay LIVE conservatively (no per-field
    lifetime tracking) and are resolved by re-simulation.
    """

    LIVE = "live"
    DEAD = "dead"

    def __init__(self, config: GpuConfig, plans: list[FaultPlan],
                 fault_model=None):
        from repro.faultmodels.registry import get_fault_model
        self.config = config
        self.warp_size = config.warp_size
        # Persistent faults (stuck-at) survive write-backs: a write at
        # cycle' >= cycle no longer proves the site dead.
        self.persistent = get_fault_model(fault_model).persistent
        self._pending_reg: dict = {}   # (core,row) -> list[FaultPlan]
        self._pending_lmem: dict = {}  # (core,word) -> list[FaultPlan]
        self._pending_slot: dict = {}  # (core,slot) -> list[FaultPlan]
        self._lmem_index: dict = {}    # core -> sorted word array
        self.status: dict[FaultPlan, str] = {}
        for plan in plans:
            if plan.structure == REGISTER_FILE:
                key = (plan.core, plan.word // self.warp_size)
                self._pending_reg.setdefault(key, []).append(plan)
            elif structure_info(plan.structure).control:
                words = control_words_per_warp(config, plan.structure)
                key = (plan.core, plan.word // words)
                self._pending_slot.setdefault(key, []).append(plan)
            else:
                key = (plan.core, plan.word)
                self._pending_lmem.setdefault(key, []).append(plan)
        lmem_words: dict[int, list] = {}
        for core, word in self._pending_lmem:
            lmem_words.setdefault(core, []).append(word)
        self._lmem_index = {
            core: np.array(sorted(set(words)), dtype=np.int64)
            for core, words in lmem_words.items()
        }

    # ------------------------------------------------------------------
    def _resolve(self, pending: list, cycle: int, is_write: bool,
                 lane_test) -> None:
        for plan in pending[:]:
            if plan.cycle > cycle or not lane_test(plan):
                continue
            if is_write and self.persistent:
                # Stuck-at defects re-assert on write-back: the write
                # neither kills nor proves the fault — keep waiting for
                # a read (or end of run, which resolves it dead).
                continue
            self.status[plan] = self.DEAD if is_write else self.LIVE
            pending.remove(plan)

    def on_reg_access(self, cycle, core, row, mask, is_write):
        pending = self._pending_reg.get((core, row))
        if not pending:
            return
        self._resolve(
            pending, cycle, is_write,
            lambda plan: (mask >> (plan.word % self.warp_size)) & 1,
        )

    def on_lmem_access(self, cycle, core, words, is_write):
        index = self._lmem_index.get(core)
        if index is None or index.size == 0:
            return
        position = np.searchsorted(index, words)
        position[position >= index.size] = index.size - 1
        hits = np.unique(words[index[position] == words])
        for word in hits:
            pending = self._pending_lmem.get((core, int(word)))
            if pending:
                self._resolve(pending, cycle, is_write, lambda plan: True)

    def on_warp_slot_free(self, cycle, core, slot):
        """A slot freeing at ``cycle`` was occupied through the issue at
        ``cycle`` (faults apply before the retiring instruction
        executes), so every pending control site with fault cycle at or
        before it saw its slot occupied and must be re-simulated."""
        pending = self._pending_slot.get((core, slot))
        if not pending:
            return
        for plan in pending[:]:
            if plan.cycle <= cycle:
                self.status[plan] = self.LIVE
                pending.remove(plan)

    def on_run_end(self, cycle):
        for pending in self._pending_reg.values():
            for plan in pending:
                self.status.setdefault(plan, self.DEAD)
            pending.clear()
        for pending in self._pending_lmem.values():
            for plan in pending:
                self.status.setdefault(plan, self.DEAD)
            pending.clear()
        # Control sites still pending never saw their slot occupied at
        # or after the fault cycle (blocks all retire before run end),
        # so the disturbance provably lands in storage that is
        # re-initialised before any warp state depends on it.
        for pending in self._pending_slot.values():
            for plan in pending:
                self.status.setdefault(plan, self.DEAD)
            pending.clear()

    def is_live(self, plan: FaultPlan) -> bool:
        return self.status.get(plan, self.DEAD) == self.LIVE


class OccupancyAccumulator(TraceSink):
    """Time-weighted structure occupancy (the figures' red lines)."""

    def __init__(self, config: GpuConfig):
        self.config = config
        cores = config.num_cores
        self._last = np.zeros(cores, dtype=np.int64)
        self._cur_reg = np.zeros(cores, dtype=np.int64)    # words
        self._cur_lmem = np.zeros(cores, dtype=np.int64)   # bytes
        self._reg_integral = 0   # word-cycles
        self._lmem_integral = 0  # byte-cycles
        self.total_cycles: int | None = None

    def _advance(self, core: int, cycle: int) -> None:
        dt = cycle - self._last[core]
        if dt > 0:
            self._reg_integral += int(self._cur_reg[core]) * int(dt)
            self._lmem_integral += int(self._cur_lmem[core]) * int(dt)
            self._last[core] = cycle

    def on_block_alloc(self, cycle, core, reg_words, lmem_bytes):
        self._advance(core, cycle)
        self._cur_reg[core] += reg_words
        self._cur_lmem[core] += lmem_bytes

    def on_block_free(self, cycle, core, reg_words, lmem_bytes):
        self._advance(core, cycle)
        self._cur_reg[core] -= reg_words
        self._cur_lmem[core] -= lmem_bytes

    def on_run_end(self, cycle):
        self.total_cycles = cycle
        for core in range(self.config.num_cores):
            self._advance(core, cycle)

    def occupancy(self, structure: str) -> float:
        """Mean fraction of the whole-chip structure allocated over time."""
        if self.total_cycles is None:
            raise RuntimeError("run has not ended; no total cycle count")
        if self.total_cycles == 0:
            return 0.0
        if structure == REGISTER_FILE:
            used_bit_cycles = self._reg_integral * 32
        elif structure == LOCAL_MEMORY:
            used_bit_cycles = self._lmem_integral * 8
        elif structure in CONTROL_STRUCTURES:
            # Control-state occupancy is not block-resource based; it
            # is not modeled (reported as 0.0 in the figures).
            return 0.0
        else:
            raise ValueError(f"unknown structure {structure!r}")
        capacity = self.config.structure_bits(structure) * self.total_cycles
        return min(1.0, used_bit_cycles / capacity)
