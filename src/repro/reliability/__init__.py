"""Reliability analyses: fault injection, ACE analysis, AVF, occupancy, EPF."""

from repro.reliability.campaign import (
    CellResult,
    average_cell,
    default_samples,
    default_scale,
    run_cell,
    run_matrix,
)
from repro.reliability.epf import (
    RAW_FIT_PER_BIT,
    EpfResult,
    compute_epf,
    executions_in_time,
    structure_fit,
)
from repro.reliability.fi import (
    AvfEstimate,
    CampaignOutput,
    GoldenRun,
    run_fi_campaign,
    run_golden,
)
from repro.reliability.liveness import (
    AceAccumulator,
    AceMode,
    FaultSiteResolver,
    OccupancyAccumulator,
)
from repro.reliability.outcomes import FaultResult, Outcome, classify_outputs
from repro.reliability.sampling import margin_of_error, required_samples

__all__ = [
    "run_cell",
    "run_matrix",
    "average_cell",
    "CellResult",
    "default_samples",
    "default_scale",
    "run_golden",
    "run_fi_campaign",
    "GoldenRun",
    "AvfEstimate",
    "CampaignOutput",
    "AceAccumulator",
    "AceMode",
    "FaultSiteResolver",
    "OccupancyAccumulator",
    "Outcome",
    "FaultResult",
    "classify_outputs",
    "margin_of_error",
    "required_samples",
    "compute_epf",
    "EpfResult",
    "structure_fit",
    "executions_in_time",
    "RAW_FIT_PER_BIT",
]
