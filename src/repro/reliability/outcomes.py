"""Fault-injection outcome taxonomy.

The standard three-way classification used by GUFI/SIFI and the paper:

* **MASKED** — the program completed and every output buffer is
  bit-identical to the fault-free simulation;
* **SDC** — silent data corruption: completed, outputs differ;
* **DUE** — detected unrecoverable error: the simulated chip faulted
  (invalid memory access, barrier deadlock) or hung (watchdog).

``AVF = (SDC + DUE) / injections`` — a bit is vulnerable if flipping
it produces any failure, silent or detected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.sim.faults import FaultPlan


class Outcome(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    DUE = "due"

    @property
    def is_failure(self) -> bool:
        return self is not Outcome.MASKED


@dataclass(frozen=True)
class FaultResult:
    """One classified injection."""

    plan: FaultPlan
    outcome: Outcome
    #: True when a full re-simulation was needed (False: pruned as
    #: provably dead from the liveness trace — always MASKED).
    resimulated: bool
    detail: str = ""
    #: SDC severity: number of corrupted output words (0 unless SDC).
    corrupted_words: int = 0
    #: Total chip cycles of the faulty run (0 for DUE and pruned sites).
    #: Identical between checkpointed and full re-simulation.
    cycles: int = 0
    #: True when the convergence check classified this MASKED before
    #: output comparison (checkpointed campaigns only; the outcome and
    #: cycle count are unaffected).
    early_exit: bool = False


def classify_outputs(golden: dict, faulty: dict) -> Outcome:
    """MASKED/SDC by bit-exact comparison of output buffers."""
    for name, want in golden.items():
        if not np.array_equal(want, faulty[name]):
            return Outcome.SDC
    return Outcome.MASKED


def count_corrupted_words(golden: dict, faulty: dict) -> int:
    """SDC severity: corrupted 32-bit output words across all buffers."""
    total = 0
    for name, want in golden.items():
        total += int(np.count_nonzero(want != faulty[name]))
    return total
