"""Environment-backed campaign defaults.

These knobs let test and benchmark runs be resized without code edits;
they are the resolution targets for the ``None`` defaults of
:class:`repro.spec.CampaignSpec` (and of the legacy kwarg entry
points, which build a spec internally).

This module is deliberately import-free within the package so both
``repro.spec`` and ``repro.reliability.campaign`` (which re-exports
the helpers for backward compatibility) can load it without cycles.
"""

from __future__ import annotations

import os

#: Environment knobs so test/bench runs can be resized without code edits.
ENV_SAMPLES = "REPRO_FI_SAMPLES"
ENV_SCALE = "REPRO_SCALE"


def default_samples(fallback: int = 150) -> int:
    """FI samples per structure (env override REPRO_FI_SAMPLES)."""
    return int(os.environ.get(ENV_SAMPLES, fallback))


def default_scale(fallback: str = "small") -> str:
    """Workload scale (env override REPRO_SCALE)."""
    return os.environ.get(ENV_SCALE, fallback)
