"""Sweeps: one base spec x an axis product -> many child campaigns.

The "one spec, many axes" pattern the follow-on literature motivates
(Guerrero-Balaguera et al. cross fault models with control units; Cui
et al. compare chip generations) is a first-class operation here:
``spec.sweep(fault_model=[...], seed=range(3))`` expands the product
into child specs, and :func:`run_sweep` executes them against one
shared :class:`~repro.engine.store.ResultStore` and golden cache —
children that agree on (gpu, workload, scale, scheduler, ace_mode)
never re-run a golden simulation, so the marginal cost of an extra
axis value is its plan/shard/cell jobs only.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.spec.campaign import SPEC_FIELDS, CampaignSpec


def _axis_label(value) -> str:
    if isinstance(value, (list, tuple)):
        return "+".join(str(item) for item in value)
    return str(value)


def _axis_values(name: str, values) -> list:
    """Normalize one axis to a non-empty list of axis points."""
    if isinstance(values, str) or not hasattr(values, "__iter__"):
        values = [values]
    values = list(values)
    if not values:
        raise ConfigError(f"sweep axis {name!r} has no values")
    return values


def expand_sweep(base: CampaignSpec, axes: dict) -> list[CampaignSpec]:
    """Child specs for the product of per-field value lists.

    Axes are applied in the order given; the last axis varies fastest
    (row-major product). Every child is fully re-validated, and gets a
    ``name`` recording its axis assignment for the summary table.
    """
    if not axes:
        raise ConfigError(
            f"a sweep needs at least one axis; valid axes: "
            f"{', '.join(f for f in SPEC_FIELDS if f != 'name')}")
    for name in axes:
        if name not in SPEC_FIELDS or name == "name":
            raise ConfigError(
                f"unknown sweep axis {name!r}; valid axes: "
                f"{', '.join(f for f in SPEC_FIELDS if f != 'name')}")
    names = list(axes)
    value_lists = [_axis_values(name, axes[name]) for name in names]
    children = []
    for combo in itertools.product(*value_lists):
        label = ", ".join(
            f"{name}={_axis_label(value)}"
            for name, value in zip(names, combo))
        child = base.replace(**dict(zip(names, combo)))
        children.append(child.replace(
            name=f"{base.name}: {label}" if base.name else label))
    return children


@dataclass
class SweepRun:
    """One executed child campaign."""

    spec: CampaignSpec
    cells: list
    stats: object  # CampaignStats

    @property
    def label(self) -> str:
        return self.spec.name or self.spec.describe()


@dataclass
class SweepResult:
    """All child campaigns of one sweep, in expansion order."""

    base: CampaignSpec
    axes: dict
    runs: list[SweepRun] = field(default_factory=list)

    @property
    def cells(self) -> list:
        """Every cell of every child, expansion order."""
        return [cell for run in self.runs for cell in run.cells]

    def summary(self) -> str:
        """The per-axis summary table (see repro.reliability.report)."""
        from repro.reliability.report import format_sweep_summary
        return format_sweep_summary(self)


def run_sweep(base: CampaignSpec, axes: dict, *, store=None, workers: int = 1,
              progress=None, stats=None, telemetry=None,
              profile=None) -> SweepResult:
    """Expand ``base`` x ``axes`` and run every child campaign.

    All children share ``store`` (a :class:`ResultStore` or a path,
    opened once) and the engine's in-process golden cache; ``stats``
    (optional shared :class:`CampaignStats`) additionally accumulates
    the job accounting across the whole sweep. Each
    :class:`SweepRun` also carries its own per-child stats.

    ``telemetry`` (``None`` defers to the base spec's ``telemetry``
    field) is resolved *once* for the whole sweep — every child
    campaign emits into the same hub/JSONL stream, bracketed by
    ``sweep_begin`` / ``sweep_end`` events — so one `status` view
    covers the sweep end to end.

    ``profile`` (``None`` defers to the base spec's ``profile`` field)
    is likewise resolved once and applied to every child: each child
    campaign emits its ``cell_profile``/``campaign_profile`` events
    into the shared stream, so ``repro-experiments profile STORE``
    aggregates the whole sweep.
    """
    from repro.engine.matrix import run_campaign
    from repro.engine.scheduler import CampaignStats
    from repro.engine.store import ResultStore
    from repro.telemetry import resolve_telemetry

    specs = expand_sweep(base, axes)
    own_store = isinstance(store, (str, Path))
    if own_store:
        store = ResultStore(store)
    hub, own_hub = resolve_telemetry(
        base.telemetry if telemetry is None else telemetry, store)
    profile_on = bool(base.profile if profile is None else profile)
    if profile_on and hub is None:
        try:
            hub, own_hub = resolve_telemetry(True, store)
        except ConfigError:
            raise ConfigError(
                "profiling needs somewhere to emit its events: give the "
                "sweep a persistent store (the profile stream lands next "
                "to it) or an explicit telemetry destination"
            ) from None
    result = SweepResult(base=base, axes=dict(axes))
    if hub is not None:
        hub.record("sweep_begin", name=base.name,
                   campaigns=len(specs), axes=list(axes))
    try:
        for spec in specs:
            child_stats = CampaignStats()
            campaign = run_campaign(spec, store=store, workers=workers,
                                    progress=progress, stats=child_stats,
                                    telemetry=hub if hub is not None
                                    else False,
                                    profile=profile_on)
            if stats is not None:
                stats.merge(child_stats)
            result.runs.append(SweepRun(
                spec=spec, cells=campaign.cells, stats=child_stats))
        if hub is not None:
            hub.record("sweep_end", name=base.name, campaigns=len(specs))
    finally:
        if own_hub and hub is not None:
            hub.close()
        if own_store:
            store.close()
    return result
