"""The declarative campaign specification.

:class:`CampaignSpec` is the single configuration object every layer
of the reproduction consumes: ``run_cell(spec)``,
``run_campaign(spec, store=..., workers=...)``, the figure harnesses
and the ``repro-experiments run`` / ``sweep`` CLI all take one frozen,
validated, serializable spec instead of six-plus parallel kwarg lists.
Adding a campaign axis is one field here — not a signature change in
every layer.

Design rules:

* **Frozen + validated.** Construction runs every field through the
  relevant registry (chips, benchmarks, structures, fault models,
  schedulers), so a bad spec fails immediately with a
  :class:`~repro.errors.ConfigError` naming the offending field and
  the valid choices — never as a traceback from deep inside a worker.
* **What, not how.** The spec describes the campaign (which chips,
  which benchmarks, how many samples, which fault model...); execution
  resources — ``store``, ``workers``, ``progress`` — stay explicit
  arguments of the entry points, so one spec can run serially on a
  laptop or across a pool without edits.
* **Fingerprint-transparent.** Spec fields map one-to-one onto the
  engine's golden/plan/shard/cell fingerprint parameters, so a
  campaign expressed as a spec produces byte-identical job
  fingerprints to the legacy kwarg path, and pre-spec result stores
  resume with zero jobs executed.
* **``None`` means default.** Unset fields resolve at execution time
  (all chips, the full suite, env-default scale/samples, the paper's
  datapath structure pair), so harnesses can tell "user chose X" from
  "use my figure's default".

Serialization (``to_file``/``from_file`` for TOML and JSON) lives in
:mod:`repro.spec.files`; axis products (``spec.sweep(...)``) in
:mod:`repro.spec.sweep`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.arch.scaling import get_scaled_gpu, list_scaled_gpus
from repro.arch.structures import DATAPATH_STRUCTURES, structure_info
from repro.errors import ConfigError
from repro.kernels.registry import KERNEL_NAMES, SCALES
from repro.sim.scheduler import make_scheduler
from repro.spec.defaults import default_samples, default_scale

# Safe submodule imports: these modules never import repro.spec, and
# ``from package.submodule import name`` resolves even while the
# parent package's __init__ is still executing.
from repro.reliability.epf import RAW_FIT_PER_BIT
from repro.reliability.liveness import AceMode


def _field_error(field: str, message: str) -> ConfigError:
    return ConfigError(f"spec field {field!r}: {message}")


def _as_tuple(field: str, value) -> tuple:
    """Normalize a str / iterable field value to a tuple."""
    if isinstance(value, str):
        return (value,)
    try:
        return tuple(value)
    except TypeError:
        raise _field_error(
            field, f"expected a name or a list of names, got {value!r}"
        ) from None


def _check_int(field: str, value, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _field_error(field, f"expected an integer, got {value!r}")
    if value < minimum:
        raise _field_error(field, f"must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """One validated, serializable description of a campaign.

    Every field is a campaign *axis*; ``None`` (where allowed) means
    "resolve the default at execution time". Execution resources
    (result store, worker count, progress callbacks) are deliberately
    not part of the spec.
    """

    #: Chips: preset names/aliases (resolved through the scaled
    #: presets) or explicit :class:`GpuConfig` objects. None = all
    #: four paper chips, scaled.
    gpus: tuple | None = None
    #: Benchmark subset by name. None = the full ten-benchmark suite.
    workloads: tuple | None = None
    #: Workload input scale. None = REPRO_SCALE or "small".
    scale: str | None = None
    #: FI samples per structure. None = REPRO_FI_SAMPLES or 150.
    samples: int | None = None
    #: RNG seed for fault sampling.
    seed: int = 0
    #: Warp scheduling policy ("rr" or "gto").
    scheduler: str = "rr"
    #: Fault-site structure subset (registry names). None = the
    #: paper's datapath pair (register_file, local_memory).
    structures: tuple | None = None
    #: Fault model registry name (transient / stuck_at / mbu).
    fault_model: str = "transient"
    #: ACE liveness analysis mode.
    ace_mode: AceMode = AceMode.CONSERVATIVE
    #: Golden-run snapshot stride for suffix-only FI: None (off),
    #: "auto" (self-tuning), or a cycle count.
    checkpoint_interval: int | str | None = None
    #: Live fault plans per FI shard job. None = engine default.
    shard_size: int | None = None
    #: Raw soft-error FIT per storage bit (the EPF scale factor).
    raw_fit_per_bit: float = RAW_FIT_PER_BIT
    #: Engine telemetry: None/False = off, True = JSONL event stream
    #: next to the result store, a path = JSONL there. Strictly
    #: observability-only — never part of any job fingerprint, and the
    #: result store is bit-identical with it on or off.
    telemetry: bool | str | None = None
    #: Hot-path profiling (phase timers + dispatch counters feeding
    #: ``cell_profile``/``campaign_profile`` telemetry events and the
    #: ``profile STORE`` report): None/False = off, True = on. Same
    #: guarantee as ``telemetry``: never part of any job fingerprint,
    #: result stores bit-identical with it on or off.
    profile: bool | None = None
    #: Interpreter implementation for every resolved chip: "vector"
    #: (numpy whole-warp fast path) or "python" (per-lane reference).
    #: None = each chip's own default (vector). An execution resource:
    #: results are bit-identical either way (CI's ``fastpath-parity``
    #: job diffs the stores) and it joins no job fingerprint.
    backend: str | None = None
    #: Cross-sample suffix memoization (:mod:`repro.checkpoint.memo`):
    #: None = on (the default), False = off. Takes effect only with
    #: checkpointing enabled; derived state like checkpoints — results
    #: bit-identical on or off, never part of any job fingerprint.
    suffix_memo: bool | None = None
    #: Campaign-service coordinator URL (``http://host:port``) this
    #: spec is meant to run against — the default target of
    #: ``repro-experiments submit``. An execution resource like
    #: ``backend``: never part of any job fingerprint, and a
    #: distributed store is bit-identical to a local one.
    coordinator: str | None = None
    #: Campaign-service lease TTL in seconds: how long a leased job may
    #: go without a worker heartbeat before the coordinator re-queues
    #: it. None = the service default (30s). Fingerprint-transparent.
    lease_ttl_s: int | float | None = None
    #: Optional human-readable label (spec files, sweep tables). Not
    #: part of any job fingerprint.
    name: str | None = None

    # ------------------------------------------------------------------
    # Validation (every field, friendly errors)
    # ------------------------------------------------------------------

    def __post_init__(self):
        set_ = object.__setattr__
        if self.gpus is not None:
            gpus = _as_tuple("gpus", self.gpus)
            for gpu in gpus:
                if isinstance(gpu, GpuConfig):
                    continue
                if not isinstance(gpu, str):
                    raise _field_error(
                        "gpus",
                        f"expected a chip name or GpuConfig, got {gpu!r}")
                try:
                    get_scaled_gpu(gpu)
                except ConfigError as error:
                    raise _field_error("gpus", str(error)) from None
            set_(self, "gpus", gpus)
        if self.workloads is not None:
            workloads = _as_tuple("workloads", self.workloads)
            for workload in workloads:
                if workload not in KERNEL_NAMES:
                    raise _field_error(
                        "workloads",
                        f"unknown benchmark {workload!r}; "
                        f"known: {', '.join(KERNEL_NAMES)}")
            set_(self, "workloads", workloads)
        if self.scale is not None and self.scale not in SCALES:
            raise _field_error(
                "scale",
                f"unknown scale {self.scale!r}; known: {', '.join(SCALES)}")
        if self.samples is not None:
            _check_int("samples", self.samples, 1)
        _check_int("seed", self.seed, 0)
        try:
            make_scheduler(self.scheduler)
        except ConfigError as error:
            raise _field_error("scheduler", str(error)) from None
        if self.structures is not None:
            structures = _as_tuple("structures", self.structures)
            if not structures:
                raise _field_error(
                    "structures", "needs at least one structure name")
            for structure in structures:
                try:
                    structure_info(structure)
                except ConfigError as error:
                    raise _field_error("structures", str(error)) from None
            # Dedupe, keep first-mention order (matches the CLI flag).
            set_(self, "structures", tuple(dict.fromkeys(structures)))
        from repro.faultmodels.registry import fault_model_name
        try:
            set_(self, "fault_model", fault_model_name(self.fault_model))
        except ConfigError as error:
            raise _field_error("fault_model", str(error)) from None
        if not isinstance(self.ace_mode, AceMode):
            try:
                set_(self, "ace_mode", AceMode(self.ace_mode))
            except ValueError:
                raise _field_error(
                    "ace_mode",
                    f"unknown mode {self.ace_mode!r}; known: "
                    f"{', '.join(m.value for m in AceMode)}") from None
        if self.checkpoint_interval is not None \
                and self.checkpoint_interval != "auto":
            _check_int("checkpoint_interval", self.checkpoint_interval, 1)
        if self.shard_size is not None:
            _check_int("shard_size", self.shard_size, 1)
        if isinstance(self.raw_fit_per_bit, bool) \
                or not isinstance(self.raw_fit_per_bit, (int, float)):
            raise _field_error(
                "raw_fit_per_bit",
                f"expected a number, got {self.raw_fit_per_bit!r}")
        set_(self, "raw_fit_per_bit", float(self.raw_fit_per_bit))
        if self.raw_fit_per_bit <= 0:
            raise _field_error(
                "raw_fit_per_bit",
                f"must be > 0, got {self.raw_fit_per_bit}")
        if self.telemetry is not None and not isinstance(
                self.telemetry, bool):
            if not isinstance(self.telemetry, str):
                raise _field_error(
                    "telemetry",
                    f"expected true/false or a JSONL path, "
                    f"got {self.telemetry!r}")
            if not self.telemetry:
                raise _field_error(
                    "telemetry", "path must be a non-empty string")
        if self.profile is not None and not isinstance(self.profile, bool):
            raise _field_error(
                "profile",
                f"expected true/false, got {self.profile!r}")
        if self.backend is not None and self.backend not in (
                "vector", "python"):
            raise _field_error(
                "backend",
                f"unknown backend {self.backend!r} "
                f"(use 'vector' or 'python')")
        if self.suffix_memo is not None and not isinstance(
                self.suffix_memo, bool):
            raise _field_error(
                "suffix_memo",
                f"expected true/false, got {self.suffix_memo!r}")
        if self.coordinator is not None:
            if not isinstance(self.coordinator, str) \
                    or not self.coordinator.startswith(("http://",
                                                        "https://")):
                raise _field_error(
                    "coordinator",
                    f"expected a coordinator URL like http://host:port, "
                    f"got {self.coordinator!r}")
        if self.lease_ttl_s is not None:
            if isinstance(self.lease_ttl_s, bool) \
                    or not isinstance(self.lease_ttl_s, (int, float)):
                raise _field_error(
                    "lease_ttl_s",
                    f"expected a number of seconds, got "
                    f"{self.lease_ttl_s!r}")
            if self.lease_ttl_s <= 0:
                raise _field_error(
                    "lease_ttl_s",
                    f"must be > 0, got {self.lease_ttl_s}")
        if self.name is not None and not isinstance(self.name, str):
            raise _field_error(
                "name", f"expected a string, got {self.name!r}")

    # ------------------------------------------------------------------
    # Resolution (None -> concrete defaults, at execution time)
    # ------------------------------------------------------------------

    def resolved_gpus(self) -> list[GpuConfig]:
        """Chip configs: names through the scaled presets, configs as-is.

        A spec-level ``backend`` overrides every resolved chip's
        interpreter backend (fingerprint-transparent, so this never
        invalidates stored jobs).
        """
        if self.gpus is None:
            gpus = list_scaled_gpus()
        else:
            gpus = [get_scaled_gpu(gpu) if isinstance(gpu, str) else gpu
                    for gpu in self.gpus]
        if self.backend is not None:
            gpus = [dataclasses.replace(gpu, backend=self.backend)
                    for gpu in gpus]
        return gpus

    def resolved_workloads(self) -> list[str]:
        return list(self.workloads) if self.workloads is not None \
            else list(KERNEL_NAMES)

    def resolved_scale(self) -> str:
        return self.scale if self.scale is not None else default_scale()

    def resolved_samples(self) -> int:
        return self.samples if self.samples is not None else default_samples()

    def resolved_structures(self) -> tuple:
        return self.structures if self.structures is not None \
            else DATAPATH_STRUCTURES

    def resolved_suffix_memo(self) -> bool:
        return True if self.suffix_memo is None else self.suffix_memo

    def resolved_shard_size(self) -> int:
        if self.shard_size is not None:
            return self.shard_size
        from repro.engine.matrix import DEFAULT_SHARD_SIZE
        return DEFAULT_SHARD_SIZE

    def single(self) -> tuple[GpuConfig, str]:
        """The (config, workload) of a one-cell spec (``run_cell``)."""
        gpus = self.resolved_gpus()
        workloads = self.resolved_workloads()
        if len(gpus) != 1 or len(workloads) != 1:
            raise ConfigError(
                f"run_cell needs a spec naming exactly one GPU and one "
                f"workload, got {len(gpus)} GPUs x {len(workloads)} "
                f"workloads")
        return gpus[0], workloads[0]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def replace(self, **changes) -> CampaignSpec:
        """A new spec with ``changes`` applied (and re-validated)."""
        for key in changes:
            if key not in SPEC_FIELDS:
                raise ConfigError(
                    f"unknown spec key {key!r}; "
                    f"valid keys: {', '.join(SPEC_FIELDS)}")
        return dataclasses.replace(self, **changes)

    def sweep(self, **axes) -> list:
        """Child specs for the product of per-field value lists.

        See :func:`repro.spec.sweep.expand_sweep`.
        """
        from repro.spec.sweep import expand_sweep
        return expand_sweep(self, axes)

    # ------------------------------------------------------------------
    # Serialization (implemented in repro.spec.files)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data dict (None fields omitted); inverse of from_dict."""
        from repro.spec.files import spec_to_dict
        return spec_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> CampaignSpec:
        """Build + validate from plain data; unknown keys are errors."""
        from repro.spec.files import spec_from_dict
        return spec_from_dict(data)

    def to_file(self, path) -> None:
        """Write the spec as TOML or JSON (by file extension)."""
        from repro.spec.files import save_spec
        save_spec(self, path)

    @classmethod
    def from_file(cls, path) -> CampaignSpec:
        """Load + validate a TOML/JSON spec file."""
        from repro.spec.files import load_spec
        return load_spec(path)

    def describe(self) -> str:
        """One-line human summary (sweep tables, CLI banners)."""
        gpus = self.gpus if self.gpus is not None else "all"
        workloads = self.workloads if self.workloads is not None else "all"
        label = f"{self.name}: " if self.name else ""
        return (f"{label}gpus={gpus} workloads={workloads} "
                f"scale={self.resolved_scale()} "
                f"samples={self.resolved_samples()} seed={self.seed} "
                f"structures={','.join(self.resolved_structures())} "
                f"fault_model={self.fault_model}")


#: Spec field names in declaration order — the valid keys for spec
#: files, ``--set`` overrides and sweep axes.
SPEC_FIELDS: tuple = tuple(
    f.name for f in dataclasses.fields(CampaignSpec)
)

#: Fields holding name *sets* (a tuple value is one campaign's worth
#: of names) — drives both sweep-axis normalization and CLI parsing,
#: so a new tuple-typed field is declared here exactly once.
TUPLE_FIELDS: tuple = ("gpus", "workloads", "structures")

#: Integer-typed fields — drives CLI value parsing and ``a..b``
#: range expansion for sweep axes.
INT_FIELDS: tuple = ("samples", "seed", "shard_size")


def check_spec_keys(keys, *, context: str) -> None:
    """Raise :class:`ConfigError` for any key that is not a spec field."""
    for key in keys:
        if key not in SPEC_FIELDS:
            raise ConfigError(
                f"unknown spec key {key!r} in {context}; "
                f"valid keys: {', '.join(SPEC_FIELDS)}")


def coerce_spec(spec, legacy: dict, *, who: str,
                stacklevel: int = 3,
                legacy_defaults: dict | None = None) -> CampaignSpec:
    """The entry points' spec-or-legacy-kwargs adapter.

    ``spec`` given -> passed through (mixing it with legacy campaign
    kwargs is an error; explicit ``None`` values are ignored, since
    ``None`` meant "default" in every legacy signature). ``spec``
    absent -> a spec is built from the legacy kwargs with a
    :class:`DeprecationWarning`, preserving the pre-spec call pattern
    bit for bit.

    ``legacy_defaults`` maps field -> zero-arg factory for
    compatibility defaults that differ from the bare-spec resolution
    (e.g. the engine's full-size-preset gpus). They apply only on the
    spec-less path, for fields the caller left unset, after the
    warning decision — so a bare legacy call stays silent and the
    warning's migration hint names only what the user actually passed
    (plus a note when an injected default would change under a bare
    spec).
    """
    if spec is not None:
        if not isinstance(spec, CampaignSpec):
            hint = ""
            if isinstance(spec, (list, tuple)):
                hint = ("; the old positional form is not shimmed — pass "
                        "gpus=[...] as a keyword, or name the chips in "
                        "the spec")
            raise ConfigError(
                f"{who}() expects a CampaignSpec as its first argument, "
                f"got {type(spec).__name__}{hint}")
        extras = [key for key, value in legacy.items() if value is not None]
        if extras:
            raise ConfigError(
                f"{who}() got both a CampaignSpec and legacy campaign "
                f"kwargs ({', '.join(extras)}); put the values in the spec")
        return spec
    legacy = {key: value for key, value in legacy.items()
              if value is not None}
    check_spec_keys(legacy, context=f"{who}() keyword arguments")
    injected = []
    if legacy_defaults:
        for key, factory in legacy_defaults.items():
            if key not in legacy:
                legacy[key] = factory()
                injected.append(key)
    if set(legacy) - set(injected):
        example = ", ".join(f"{key}=..." for key in sorted(legacy)
                            if key not in injected)
        note = ""
        if injected:
            note = (f"; note: spec-less {who}() defaults differ from a "
                    f"bare CampaignSpec for {', '.join(injected)} — set "
                    f"them explicitly when migrating")
        warnings.warn(
            f"passing campaign kwargs to {who}() is deprecated; build a "
            f"repro.CampaignSpec and pass it instead "
            f"(e.g. {who}(CampaignSpec({example}))){note}",
            DeprecationWarning, stacklevel=stacklevel)
    return CampaignSpec(**legacy)
