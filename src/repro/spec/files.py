"""Spec files: TOML/JSON serialization of :class:`CampaignSpec`.

A spec file is a flat table of spec fields — the checked-in,
reviewable form of a campaign (``examples/specs/`` holds the ones the
full-paper reproduction runs). ``CampaignSpec.from_file`` /
``to_file`` dispatch here by extension:

* ``.toml`` — read with the stdlib ``tomllib``; written by the tiny
  emitter below (the environment has no TOML writer dependency).
  Chips must be referenced by preset name.
* ``.json`` — full fidelity: chips may also be *embedded* as complete
  ``GpuConfig`` tables (name -> latency model), so custom silicon is
  expressible in a checked-in artifact.

Unknown keys are configuration errors naming the offending key and
the valid choices — a typo in a spec file fails at load time, not as
a traceback from deep inside a worker. Round trips are exact:
``CampaignSpec.from_dict(spec.to_dict()) == spec``.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.arch.config import GpuConfig, LatencyModel
from repro.errors import ConfigError
from repro.spec.campaign import CampaignSpec, check_spec_keys


# ----------------------------------------------------------------------
# dict codec
# ----------------------------------------------------------------------

def _encode_gpu(gpu) -> str | dict:
    return dataclasses.asdict(gpu) if isinstance(gpu, GpuConfig) else gpu


def _decode_gpu(value):
    if isinstance(value, dict):
        try:
            params = dict(value)
            latency = params.pop("latency", None)
            if latency is not None:
                params["latency"] = LatencyModel(**latency)
            return GpuConfig(**params)
        except TypeError as error:
            raise ConfigError(
                f"spec field 'gpus': bad embedded GpuConfig table: {error}"
            ) from None
    return value


def spec_to_dict(spec: CampaignSpec) -> dict:
    """Plain-data form of a spec. ``None`` (default) fields are omitted."""
    data: dict = {}
    for field in dataclasses.fields(CampaignSpec):
        value = getattr(spec, field.name)
        if value is None:
            continue
        if field.name == "gpus":
            value = [_encode_gpu(gpu) for gpu in value]
        elif field.name == "ace_mode":
            value = value.value
        elif isinstance(value, tuple):
            value = list(value)
        data[field.name] = value
    return data


def spec_from_dict(data: dict) -> CampaignSpec:
    """Inverse of :func:`spec_to_dict`; unknown keys raise ConfigError."""
    if not isinstance(data, dict):
        raise ConfigError(
            f"a campaign spec must be a table/object of spec fields, "
            f"got {type(data).__name__}")
    check_spec_keys(data, context="spec data")
    kwargs = dict(data)
    if "gpus" in kwargs and not isinstance(kwargs["gpus"], str):
        gpus = kwargs["gpus"]
        if not isinstance(gpus, (list, tuple)):
            raise ConfigError(
                f"spec field 'gpus': expected a name or a list, "
                f"got {gpus!r}")
        kwargs["gpus"] = [_decode_gpu(gpu) for gpu in gpus]
    return CampaignSpec(**kwargs)


# ----------------------------------------------------------------------
# TOML emitter (flat tables of str/int/float/bool/list values)
# ----------------------------------------------------------------------

def _toml_scalar(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        # JSON string escaping is a valid TOML basic string.
        return json.dumps(value)
    raise ConfigError(
        f"cannot encode {value!r} as a TOML value; use a .json spec file "
        f"for embedded GpuConfig tables")


def _toml_value(value) -> str:
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(item) for item in value) + "]"
    return _toml_scalar(value)


def dumps_toml(data: dict) -> str:
    """Minimal TOML for a flat spec dict (keys are known-bare)."""
    lines = ["# repro campaign spec (repro-experiments run <this file>)"]
    lines += [f"{key} = {_toml_value(value)}"
              for key, value in data.items()]
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------

def load_spec(path) -> CampaignSpec:
    """Read + validate a ``.toml`` / ``.json`` spec file."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"spec file not found: {path}")
    suffix = path.suffix.lower()
    try:
        if suffix == ".toml":
            import tomllib
            with path.open("rb") as handle:
                data = tomllib.load(handle)
        elif suffix == ".json":
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
        else:
            raise ConfigError(
                f"unsupported spec file extension {suffix!r} for {path}; "
                f"use .toml or .json")
    except ConfigError:
        raise
    except Exception as error:  # tomllib/json parse errors
        raise ConfigError(f"cannot parse spec file {path}: {error}") from None
    try:
        return spec_from_dict(data)
    except ConfigError as error:
        raise ConfigError(f"{path}: {error}") from None


def save_spec(spec: CampaignSpec, path) -> None:
    """Write a spec as ``.toml`` / ``.json`` (by extension)."""
    path = Path(path)
    data = spec_to_dict(spec)
    suffix = path.suffix.lower()
    if suffix == ".toml":
        path.write_text(dumps_toml(data), encoding="utf-8")
    elif suffix == ".json":
        path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    else:
        raise ConfigError(
            f"unsupported spec file extension {suffix!r} for {path}; "
            f"use .toml or .json")
