"""``repro.spec`` — the declarative campaign API.

One typed, frozen, serializable :class:`CampaignSpec` object is the
single configuration surface for every layer of the reproduction:

* ``run_cell(spec)`` / ``run_matrix(spec)`` /
  ``run_campaign(spec, store=..., workers=...)``
* the figure harnesses (``repro.experiments``)
* spec files (``CampaignSpec.from_file`` / ``to_file``, TOML or JSON)
  and the ``repro-experiments run path/to/spec.toml`` CLI
* sweeps (``spec.sweep(fault_model=[...], seed=range(3))`` /
  :func:`run_sweep`) sharing one result store and golden cache

Spec fields map one-to-one onto the engine's job-fingerprint
parameters, so spec campaigns are byte-identical to the legacy kwarg
call pattern (now a deprecated shim) and pre-spec result stores
resume with zero jobs executed.
"""

from repro.spec.campaign import (
    INT_FIELDS,
    SPEC_FIELDS,
    TUPLE_FIELDS,
    CampaignSpec,
    check_spec_keys,
    coerce_spec,
)
from repro.spec.defaults import (
    ENV_SAMPLES,
    ENV_SCALE,
    default_samples,
    default_scale,
)
from repro.spec.files import load_spec, save_spec, spec_from_dict, spec_to_dict
from repro.spec.sweep import SweepResult, SweepRun, expand_sweep, run_sweep

__all__ = [
    "CampaignSpec",
    "INT_FIELDS",
    "SPEC_FIELDS",
    "TUPLE_FIELDS",
    "SweepResult",
    "SweepRun",
    "check_spec_keys",
    "coerce_spec",
    "default_samples",
    "default_scale",
    "ENV_SAMPLES",
    "ENV_SCALE",
    "expand_sweep",
    "load_spec",
    "save_spec",
    "spec_from_dict",
    "spec_to_dict",
    "run_sweep",
]
