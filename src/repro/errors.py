"""Exception taxonomy for the repro package.

Simulator-detected failure conditions double as reliability outcomes: a
:class:`SimFault` raised during a fault-injection run is classified as a
DUE (detected unrecoverable error) by the campaign engine, exactly as a
GPU exception / watchdog event would be on real hardware.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigError(ReproError):
    """An architecture or launch configuration is invalid."""


class AssemblyError(ReproError):
    """Kernel assembly text failed to parse.

    Carries the offending line number (1-based) when known.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LaunchError(ReproError):
    """A kernel launch was rejected (bad grid, unsatisfiable occupancy...)."""


class SimFault(ReproError):
    """Base class for faults detected *during* simulation.

    These terminate the simulated program and are mapped to the DUE
    outcome by the fault-injection engine.
    """


class MemoryFault(SimFault):
    """Access outside any allocated global-memory buffer."""

    def __init__(self, address: int, kind: str = "access"):
        self.address = address
        self.kind = kind
        super().__init__(f"invalid global memory {kind} at 0x{address:08x}")


class LocalMemoryFault(SimFault):
    """Access outside the core's local/shared memory aperture."""

    def __init__(self, address: int, limit: int):
        self.address = address
        self.limit = limit
        super().__init__(
            f"local memory access at 0x{address:x} outside 0..0x{limit:x}"
        )


class WatchdogTimeout(SimFault):
    """The simulated kernel exceeded its cycle budget (hang)."""

    def __init__(self, cycles: int, budget: int):
        self.cycles = cycles
        self.budget = budget
        super().__init__(f"watchdog: {cycles} cycles exceeded budget {budget}")


class BarrierDeadlock(SimFault):
    """Threads blocked at a barrier that can never be satisfied."""


class IllegalInstruction(SimFault):
    """Decode or execute hit an unsupported/undefined operation."""
