"""Bit-level helpers shared by the simulators and the reliability engine.

All architectural storage in the simulators is 32-bit words held in numpy
``uint32`` arrays; these helpers convert between Python/NumPy numeric views
and raw bit patterns, and flip individual bits, without ever losing bit
fidelity (important: a fault-injection framework must be bit-exact).
"""

from __future__ import annotations

import struct

import numpy as np

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF


def u32(value: int) -> int:
    """Wrap an arbitrary Python int to an unsigned 32-bit value."""
    return value & WORD_MASK


def to_signed(value: int) -> int:
    """Interpret a u32 bit pattern as a signed 32-bit integer."""
    value &= WORD_MASK
    return value - (1 << 32) if value & 0x80000000 else value


def from_signed(value: int) -> int:
    """Encode a (possibly negative) Python int as a u32 bit pattern."""
    return value & WORD_MASK


def float_to_bits(value: float) -> int:
    """IEEE-754 binary32 bit pattern of ``value`` (round-to-nearest)."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float(pattern: int) -> float:
    """The float32 value whose bit pattern is ``pattern``."""
    return struct.unpack("<f", struct.pack("<I", pattern & WORD_MASK))[0]


def flip_bit(word: int, bit: int) -> int:
    """Return ``word`` with bit index ``bit`` (0 = LSB) inverted."""
    if not 0 <= bit < WORD_BITS:
        raise ValueError(f"bit index {bit} outside 0..{WORD_BITS - 1}")
    return (word ^ (1 << bit)) & WORD_MASK


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    return bin(value).count("1")


def mask_lanes(n: int) -> int:
    """An n-lane all-active mask (lane 0 = LSB)."""
    if n < 0:
        raise ValueError("lane count must be non-negative")
    return (1 << n) - 1


def lanes_of(mask: int) -> list[int]:
    """Indices of set lanes in ascending order."""
    out = []
    index = 0
    while mask:
        if mask & 1:
            out.append(index)
        mask >>= 1
        index += 1
    return out


def f32(value: float) -> float:
    """Round a Python float to float32 precision (simulator ALU precision)."""
    return float(np.float32(value))


def words_to_bytes(words: np.ndarray) -> bytes:
    """Little-endian byte serialisation of a uint32 array."""
    return np.ascontiguousarray(words, dtype="<u4").tobytes()


def bytes_to_words(data: bytes) -> np.ndarray:
    """Inverse of :func:`words_to_bytes` (pads to a word multiple)."""
    if len(data) % 4:
        data = data + b"\x00" * (4 - len(data) % 4)
    return np.frombuffer(data, dtype="<u4").copy()
