"""Chip configuration model.

A :class:`GpuConfig` captures everything the simulators and the reliability
engine need to know about one GPU: how many cores (SMs / compute units) it
has, the size of the fault-targeted storage structures, the scheduling
limits that drive occupancy, the clock that turns cycles into time, and the
latency model that turns instructions into cycles.

The four concrete chips from the paper live in :mod:`repro.arch.presets`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class LatencyModel:
    """Per-class instruction latencies and issue costs, in core cycles.

    ``issue_cycles`` is the number of scheduler cycles one warp/wavefront
    instruction occupies the issue port (real G80 pumps a 32-thread warp
    through 8 SPs over 4 cycles; Fermi issues a warp per cycle per
    scheduler; GCN pumps a 64-lane wavefront through a 16-lane SIMD over
    4 cycles).
    """

    issue_cycles: int = 4
    alu: int = 8
    mul: int = 8
    sfu: int = 16
    shared: int = 24
    global_mem: int = 200
    branch: int = 4
    barrier: int = 2
    #: extra cycles charged per divergent global transaction beyond the first
    uncoalesced_penalty: int = 8

    def __post_init__(self):
        for name in (
            "issue_cycles", "alu", "mul", "sfu", "shared",
            "global_mem", "branch", "barrier", "uncoalesced_penalty",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"latency {name} must be >= 0")
        if self.issue_cycles == 0:
            raise ConfigError("issue_cycles must be >= 1")


@dataclass(frozen=True)
class GpuConfig:
    """Static description of one GPU chip.

    Sizes follow the vendor's own terminology: for NVIDIA chips a *core*
    is a streaming multiprocessor (SM) and ``registers_per_core`` counts
    32-bit registers in the SM's register file; for AMD a *core* is a
    compute unit (CU) and ``registers_per_core`` counts 32-bit *vector*
    register slots (VGPR entries x 64 lanes).
    """

    name: str
    vendor: str                      # "nvidia" | "amd"
    isa: str                         # "sass" | "si"
    microarchitecture: str
    num_cores: int                   # SMs or CUs
    warp_size: int                   # 32 (NVIDIA) or 64 (AMD wavefront)
    registers_per_core: int          # 32-bit words in the (vector) register file
    local_memory_bytes: int          # shared memory (NVIDIA) / LDS (AMD) per core
    max_threads_per_core: int
    max_blocks_per_core: int
    max_warps_per_core: int
    shader_clock_hz: float
    max_registers_per_thread: int = 64
    #: register allocation granularity per warp (hardware allocates in chunks)
    register_allocation_unit: int = 1
    #: local memory allocation granularity in bytes
    local_allocation_unit: int = 1
    #: number of independent warp schedulers per core
    num_schedulers: int = 1
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: interpreter implementation: "vector" batches all active lanes as
    #: numpy arrays under the SIMT mask; "python" is the per-lane
    #: reference implementation. Bit-identical results either way (a CI
    #: parity job diffs their stores), so the backend is an execution
    #: resource, not a campaign parameter — it joins no job fingerprint.
    backend: str = "vector"

    def __post_init__(self):
        if self.vendor not in ("nvidia", "amd"):
            raise ConfigError(f"unknown vendor {self.vendor!r}")
        if self.backend not in ("vector", "python"):
            raise ConfigError(
                f"unknown backend {self.backend!r} (use 'vector' or "
                f"'python')")
        if self.isa not in ("sass", "si"):
            raise ConfigError(f"unknown isa {self.isa!r}")
        if self.warp_size not in (32, 64):
            raise ConfigError("warp_size must be 32 or 64")
        for name in (
            "num_cores", "registers_per_core", "local_memory_bytes",
            "max_threads_per_core", "max_blocks_per_core",
            "max_warps_per_core", "max_registers_per_thread",
            "register_allocation_unit", "local_allocation_unit",
            "num_schedulers",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.shader_clock_hz <= 0:
            raise ConfigError("shader_clock_hz must be positive")
        if self.max_threads_per_core < self.warp_size:
            raise ConfigError("max_threads_per_core below one warp")

    # ------------------------------------------------------------------
    # Structure sizes (the fault-injection targets)
    # ------------------------------------------------------------------
    @property
    def register_file_bits_per_core(self) -> int:
        """Bits of vector register file per SM/CU."""
        return self.registers_per_core * 32

    @property
    def local_memory_bits_per_core(self) -> int:
        """Bits of shared/local memory per SM/CU."""
        return self.local_memory_bytes * 8

    @property
    def register_file_bits(self) -> int:
        """Whole-chip register file size in bits."""
        return self.register_file_bits_per_core * self.num_cores

    @property
    def local_memory_bits(self) -> int:
        """Whole-chip local/shared memory size in bits."""
        return self.local_memory_bits_per_core * self.num_cores

    def structure_bits(self, structure: str) -> int:
        """Whole-chip bit count of a named structure.

        ``structure`` is any name from
        :data:`repro.arch.structures.STRUCTURE_REGISTRY`; the chip must
        expose it (``simt_stack`` exists on SASS chips only).
        """
        from repro.arch.structures import words_per_core
        return words_per_core(self, structure) * 32 * self.num_cores

    def structure_words_per_core(self, structure: str) -> int:
        """32-bit words of a named structure per SM/CU (registry-based)."""
        from repro.arch.structures import words_per_core
        return words_per_core(self, structure)

    def exposes_structure(self, structure: str) -> bool:
        """True when this chip's ISA physically exposes the structure."""
        from repro.arch.structures import structure_exposed
        return structure_exposed(self, structure)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name} ({self.microarchitecture}, {self.vendor}): "
            f"{self.num_cores} cores x {self.registers_per_core} regs, "
            f"{self.local_memory_bytes // 1024} KiB local, "
            f"{self.shader_clock_hz / 1e6:.0f} MHz"
        )
