"""Chip configurations for the four GPUs compared in the paper."""

from repro.arch.config import GpuConfig, LatencyModel
from repro.arch.presets import (
    GEFORCE_GTX_480,
    GPU_ALIASES,
    GPU_PRESETS,
    HD_RADEON_7970,
    QUADRO_FX_5600,
    QUADRO_FX_5800,
    get_gpu,
    list_gpus,
)
from repro.arch.scaling import (
    SCALED_GPU_PRESETS,
    get_scaled_gpu,
    list_scaled_gpus,
    scaled_config,
)

__all__ = [
    "GpuConfig",
    "LatencyModel",
    "GPU_PRESETS",
    "GPU_ALIASES",
    "SCALED_GPU_PRESETS",
    "HD_RADEON_7970",
    "QUADRO_FX_5600",
    "QUADRO_FX_5800",
    "GEFORCE_GTX_480",
    "get_gpu",
    "list_gpus",
    "get_scaled_gpu",
    "list_scaled_gpus",
    "scaled_config",
]
