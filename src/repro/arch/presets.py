"""The four GPU chips compared in the paper.

Numbers come from the vendor datasheets / the configurations shipped with
GPGPU-Sim 3.2.2 (G80 = Quadro FX 5600, GT200 = Quadro FX 5800, Fermi =
GTX 480) and Multi2Sim 4.2 (Southern Islands = HD Radeon 7970):

* **Quadro FX 5600** (G80): 16 SMs, 8,192 x 32-bit registers and 16 KiB
  shared memory per SM, warp 32, <= 768 threads / 24 warps / 8 blocks per
  SM, shader clock 1.35 GHz, one scheduler pumping a warp over 4 cycles.
* **Quadro FX 5800** (GT200): 30 SMs, 16,384 registers, 16 KiB shared,
  <= 1,024 threads / 32 warps / 8 blocks per SM, 1.30 GHz.
* **GeForce GTX 480** (Fermi GF100): 15 SMs, 32,768 registers, 48 KiB
  shared, <= 1,536 threads / 48 warps / 8 blocks per SM, 1.40 GHz, two
  schedulers, faster memory path.
* **HD Radeon 7970** (Southern Islands, Tahiti): 32 CUs, 64 KiB vector
  register file per CU (256 VGPRs x 64 lanes x 4 B = 65,536 words) and
  64 KiB LDS per CU, wavefront 64, <= 2,560 work-items / 40 wavefronts /
  16 workgroups per CU, 925 MHz, 4 SIMD units of 16 lanes.
"""

from __future__ import annotations

from repro.arch.config import GpuConfig, LatencyModel
from repro.errors import ConfigError

QUADRO_FX_5600 = GpuConfig(
    name="Quadro FX 5600",
    vendor="nvidia",
    isa="sass",
    microarchitecture="G80",
    num_cores=16,
    warp_size=32,
    registers_per_core=8192,
    local_memory_bytes=16 * 1024,
    max_threads_per_core=768,
    max_blocks_per_core=8,
    max_warps_per_core=24,
    shader_clock_hz=1.35e9,
    register_allocation_unit=256,   # G80 allocates regs in 256-word chunks
    local_allocation_unit=512,
    num_schedulers=1,
    latency=LatencyModel(
        issue_cycles=4, alu=10, mul=12, sfu=28, shared=30,
        global_mem=320, branch=6, barrier=4, uncoalesced_penalty=16,
    ),
)

QUADRO_FX_5800 = GpuConfig(
    name="Quadro FX 5800",
    vendor="nvidia",
    isa="sass",
    microarchitecture="GT200",
    num_cores=30,
    warp_size=32,
    registers_per_core=16384,
    local_memory_bytes=16 * 1024,
    max_threads_per_core=1024,
    max_blocks_per_core=8,
    max_warps_per_core=32,
    shader_clock_hz=1.296e9,
    register_allocation_unit=512,
    local_allocation_unit=512,
    num_schedulers=1,
    latency=LatencyModel(
        issue_cycles=4, alu=10, mul=10, sfu=24, shared=26,
        global_mem=280, branch=6, barrier=4, uncoalesced_penalty=12,
    ),
)

GEFORCE_GTX_480 = GpuConfig(
    name="GeForce GTX 480",
    vendor="nvidia",
    isa="sass",
    microarchitecture="Fermi",
    num_cores=15,
    warp_size=32,
    registers_per_core=32768,
    local_memory_bytes=48 * 1024,
    max_threads_per_core=1536,
    max_blocks_per_core=8,
    max_warps_per_core=48,
    shader_clock_hz=1.401e9,
    max_registers_per_thread=63,    # Fermi caps threads at 63 regs
    register_allocation_unit=64,
    local_allocation_unit=128,
    num_schedulers=2,
    latency=LatencyModel(
        issue_cycles=2, alu=9, mul=9, sfu=18, shared=22,
        global_mem=220, branch=4, barrier=3, uncoalesced_penalty=8,
    ),
)

HD_RADEON_7970 = GpuConfig(
    name="HD Radeon 7970",
    vendor="amd",
    isa="si",
    microarchitecture="Southern Islands",
    num_cores=32,
    warp_size=64,
    registers_per_core=65536,       # 256 VGPRs x 64 lanes (32-bit words)
    local_memory_bytes=64 * 1024,
    max_threads_per_core=2560,
    max_blocks_per_core=16,
    max_warps_per_core=40,
    shader_clock_hz=0.925e9,
    max_registers_per_thread=256,
    register_allocation_unit=1024,  # VGPRs granted 4-at-a-time x 64 lanes x 4
    local_allocation_unit=256,
    num_schedulers=4,               # one per SIMD unit
    latency=LatencyModel(
        issue_cycles=4, alu=8, mul=8, sfu=16, shared=24,
        global_mem=240, branch=4, barrier=4, uncoalesced_penalty=8,
    ),
)

#: All chips evaluated in the paper, in the figures' left-to-right order.
GPU_PRESETS: dict[str, GpuConfig] = {
    "HD Radeon 7970": HD_RADEON_7970,
    "Quadro FX 5600": QUADRO_FX_5600,
    "Quadro FX 5800": QUADRO_FX_5800,
    "GeForce GTX 480": GEFORCE_GTX_480,
}

#: Short aliases accepted by :func:`get_gpu` and the CLI.
GPU_ALIASES: dict[str, str] = {
    "hd7970": "HD Radeon 7970",
    "radeon7970": "HD Radeon 7970",
    "tahiti": "HD Radeon 7970",
    "si": "HD Radeon 7970",
    "fx5600": "Quadro FX 5600",
    "g80": "Quadro FX 5600",
    "fx5800": "Quadro FX 5800",
    "gt200": "Quadro FX 5800",
    "gtx480": "GeForce GTX 480",
    "fermi": "GeForce GTX 480",
}


def get_gpu(name: str) -> GpuConfig:
    """Look up a chip by full name or alias (case/space-insensitive)."""
    if name in GPU_PRESETS:
        return GPU_PRESETS[name]
    key = name.lower().replace(" ", "").replace("_", "").replace("-", "")
    if key in GPU_ALIASES:
        return GPU_PRESETS[GPU_ALIASES[key]]
    for full in GPU_PRESETS:
        if full.lower().replace(" ", "") == key:
            return GPU_PRESETS[full]
    raise ConfigError(
        f"unknown GPU {name!r}; known: {', '.join(GPU_PRESETS)} "
        f"(aliases: {', '.join(sorted(GPU_ALIASES))})"
    )


def list_gpus() -> list[GpuConfig]:
    """The four chips in canonical (paper) order."""
    return list(GPU_PRESETS.values())
