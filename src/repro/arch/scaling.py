"""Scaled-chip presets for simulation-budget-bounded campaigns.

A pure-Python microarchitectural simulator is orders of magnitude
slower than GPGPU-Sim/Multi2Sim, so paper-sized workloads on full-sized
chips are not feasible. The standard methodology (used by sampled
simulation generally) is to scale the *chip*, not the experiment's
semantics: we divide the number of cores by 4 (keeping every per-core
quantity — register file size, local memory size, scheduling limits,
latencies, clocks — exactly as on the real chip), and run workloads
whose grids occupy the scaled chip the way the paper's workloads
occupied the real ones.

What this preserves:

* per-core occupancy (the AVF-vs-occupancy correlation of Fig. 1/2);
* every cross-chip ratio the paper compares (register file and local
  memory sizes per core, warp width, scheduling limits, clocks);
* the FI-vs-ACE methodology comparison (both operate on the same
  scaled structure).

What it changes (documented in DESIGN.md/EXPERIMENTS.md): whole-chip
structure bit counts are ~4x smaller, so absolute FIT is ~4x lower and
EPF ~4x higher than a full-chip run at equal AVF — a uniform shift
across all four chips that does not reorder Fig. 3.
"""

from __future__ import annotations

from dataclasses import replace

from repro.arch.config import GpuConfig
from repro.arch.presets import GPU_PRESETS, get_gpu

#: Core-count divisor for the scaled presets.
CORE_DIVISOR = 4


def scaled_config(config: GpuConfig, core_divisor: int = CORE_DIVISOR) -> GpuConfig:
    """Derive the scaled version of a chip (fewer cores, same cores)."""
    cores = max(2, round(config.num_cores / core_divisor))
    return replace(config, name=f"{config.name} (scaled)", num_cores=cores)


#: Scaled counterparts of the four paper chips, in figure order.
SCALED_GPU_PRESETS: dict[str, GpuConfig] = {
    name: scaled_config(config) for name, config in GPU_PRESETS.items()
}


def get_scaled_gpu(name: str) -> GpuConfig:
    """Scaled preset by (full-chip) name or alias."""
    full = get_gpu(name.replace(" (scaled)", ""))
    return SCALED_GPU_PRESETS[full.name]


def list_scaled_gpus() -> list[GpuConfig]:
    """The four scaled chips in canonical (paper) order."""
    return list(SCALED_GPU_PRESETS.values())
