"""Fault-site structure registry and per-structure geometry.

The paper injects into the two big *datapath* storage arrays (vector
register file, local/shared memory). The follow-on literature
(Guerrero-Balaguera et al. 2023 on parallelism-management units; dos
Santos et al., NSREC 2021) shows the *control* state — divergence
stacks, predicate/status registers, warp-scheduler bookkeeping — is a
first-order reliability concern of its own, so the reproduction models
those structures as fault-injection targets too.

Every structure is addressable through the same ``FaultPlan``
(core, word, bit) coordinates; this module publishes the per-structure
geometry that gives those coordinates meaning:

========================  =======================================  ==========
structure                 one *word* is                            exposed by
========================  =======================================  ==========
``register_file``         one 32-bit vector-register lane slot     sass, si
``local_memory``          one 32-bit shared/LDS word               sass, si
``simt_stack``            one field (pc / active mask / reconv     sass
                          pc) of one reconvergence-stack entry of
                          one hardware warp slot
``predicate_file``        sass: one predicate register (P0..P6)    sass, si
                          of one warp slot, one bit per lane;
                          si: one half of EXEC / VCC, or SCC, of
                          one wavefront slot
``scheduler_state``       one half of the ready-cycle / barrier-   sass, si
                          arrival counters, or the status flags,
                          of one warp slot
========================  =======================================  ==========

Control structures are sized per *hardware warp slot*
(``max_warps_per_core`` slots per core — the physical contexts the
structures back on real SMs/CUs), so their populations scale with the
chip exactly like the datapath arrays do.

The registry below is the single source of truth: ``FaultPlan``
validation, samplers, the campaign engine and the CLI ``--structures``
/ ``--list-structures`` flags all enumerate it instead of hardcoding
names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.config import GpuConfig

#: Canonical structure names.
REGISTER_FILE = "register_file"
LOCAL_MEMORY = "local_memory"
SIMT_STACK = "simt_stack"
PREDICATE_FILE = "predicate_file"
SCHEDULER_STATE = "scheduler_state"

# ----------------------------------------------------------------------
# Control-structure geometry constants
# ----------------------------------------------------------------------

#: Modeled reconvergence-stack entries per hardware warp slot. Eight
#: levels is the classic GPGPU-Sim sizing; deeper golden-run divergence
#: is legal (the stack is a Python list) — levels beyond the modeled
#: storage simply have no injectable bits.
SIMT_STACK_DEPTH = 8
#: 32-bit words per stack entry: pc, active mask, reconvergence pc.
SIMT_STACK_ENTRY_WORDS = 3
#: SIMT-stack entry field indices (word % SIMT_STACK_ENTRY_WORDS).
STACK_FIELD_PC, STACK_FIELD_MASK, STACK_FIELD_RECONV = 0, 1, 2

#: SASS predicate registers per thread (P0..P6); one packed 32-lane
#: word each per warp slot.
NUM_SASS_PREDICATES = 7

#: SI predicate/status words per wavefront slot:
#: exec_lo, exec_hi, vcc_lo, vcc_hi, scc (bit 0 of the fifth word).
SI_PRED_EXEC_LO, SI_PRED_EXEC_HI = 0, 1
SI_PRED_VCC_LO, SI_PRED_VCC_HI = 2, 3
SI_PRED_SCC = 4
SI_PRED_WORDS_PER_WAVE = 5

#: Scheduler-state words per warp slot:
#: ready-cycle lo/hi, barrier-arrival lo/hi, flags (bit 0: at-barrier).
SCHED_READY_LO, SCHED_READY_HI = 0, 1
SCHED_BARRIER_LO, SCHED_BARRIER_HI = 2, 3
SCHED_FLAGS = 4
SCHED_FLAG_AT_BARRIER = 1 << 0
SCHED_WORDS_PER_WARP = 5


@dataclass(frozen=True)
class StructureInfo:
    """Registry entry for one fault-injectable storage structure."""

    name: str
    description: str
    isas: tuple            # ISAs that physically expose the structure
    control: bool          # True for control state, False for datapath


#: Name -> info, in presentation order (datapath first, as the paper).
STRUCTURE_REGISTRY: dict[str, StructureInfo] = {
    info.name: info
    for info in (
        StructureInfo(
            REGISTER_FILE,
            "vector register file (the paper's Fig. 1 target)",
            isas=("sass", "si"), control=False,
        ),
        StructureInfo(
            LOCAL_MEMORY,
            "shared memory / LDS (the paper's Fig. 2 target)",
            isas=("sass", "si"), control=False,
        ),
        StructureInfo(
            SIMT_STACK,
            "per-warp reconvergence stack: pc, active mask, reconv pc",
            isas=("sass",), control=True,
        ),
        StructureInfo(
            PREDICATE_FILE,
            "SASS predicate registers P0..P6 / SI SCC+VCC+EXEC",
            isas=("sass", "si"), control=True,
        ),
        StructureInfo(
            SCHEDULER_STATE,
            "per-warp ready/barrier bookkeeping of the warp scheduler",
            isas=("sass", "si"), control=True,
        ),
    )
}

#: The paper's datapath pair — the default campaign structure set.
DATAPATH_STRUCTURES = (REGISTER_FILE, LOCAL_MEMORY)
#: The control-state structures (Guerrero-Balaguera et al. direction).
CONTROL_STRUCTURES = (SIMT_STACK, PREDICATE_FILE, SCHEDULER_STATE)
#: Every registered structure, registry order.
ALL_STRUCTURES = tuple(STRUCTURE_REGISTRY)


def structure_info(structure: str) -> StructureInfo:
    """Registry lookup with a friendly error naming the valid choices."""
    try:
        return STRUCTURE_REGISTRY[structure]
    except KeyError:
        raise ConfigError(
            f"unknown structure {structure!r}; "
            f"known: {', '.join(STRUCTURE_REGISTRY)}"
        ) from None


def structure_exposed(config: GpuConfig, structure: str) -> bool:
    """True when the chip's ISA physically exposes the structure."""
    return config.isa in structure_info(structure).isas


def exposed_structures(config: GpuConfig, structures) -> tuple:
    """The subset of ``structures`` the chip exposes (order preserved).

    Validates every name against the registry, so a typo fails loudly
    even when the chip would not have exposed the structure anyway.
    """
    return tuple(s for s in structures if structure_exposed(config, s))


def control_words_per_warp(config: GpuConfig, structure: str) -> int:
    """32-bit words one hardware warp slot contributes to a structure."""
    if structure == SIMT_STACK:
        return SIMT_STACK_DEPTH * SIMT_STACK_ENTRY_WORDS
    if structure == PREDICATE_FILE:
        return (NUM_SASS_PREDICATES if config.isa == "sass"
                else SI_PRED_WORDS_PER_WAVE)
    if structure == SCHEDULER_STATE:
        return SCHED_WORDS_PER_WARP
    raise ConfigError(f"{structure!r} is not a control structure")


def words_per_core(config: GpuConfig, structure: str) -> int:
    """32-bit words of the structure per SM/CU.

    Raises :class:`ConfigError` for unregistered structures and for
    structures the chip's ISA does not expose (e.g. ``simt_stack`` on
    an EXEC-mask SI chip, which has no reconvergence stack).
    """
    info = structure_info(structure)
    if config.isa not in info.isas:
        raise ConfigError(
            f"structure {structure!r} is not exposed by {config.name} "
            f"(isa {config.isa!r}; exposed on: {', '.join(info.isas)})"
        )
    if structure == REGISTER_FILE:
        return config.registers_per_core
    if structure == LOCAL_MEMORY:
        return config.local_memory_bytes // 4
    return config.max_warps_per_core * control_words_per_warp(config, structure)
