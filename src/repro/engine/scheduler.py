"""Dependency-aware job scheduler for campaign execution.

The scheduler drives an arbitrary DAG of :class:`JobSpec`\\ s:

* jobs whose fingerprint is already in the persistent store (or the
  in-process golden cache) resolve instantly as *cached*;
* pool jobs (a picklable ``worker`` + ``make_args``) run on an
  :class:`ExecutionBackend` as soon as their dependencies resolve —
  the local :class:`ProcessPoolBackend` by default, or the campaign
  service's ``RemoteBackend`` (:mod:`repro.engine.service`) leasing
  them to a fleet of HTTP workers; with ``workers <= 1`` and no
  backend everything runs inline in deterministic admission order
  instead;
* driver jobs (``reduce_fn``) run in the scheduling process the moment
  they are ready (they are cheap reductions);
* a completed job may *expand* into further jobs (the FI shards and the
  cell reduction only exist once the plan job has revealed the live
  fault sites), which are admitted through the same cache check.

Payload equality is guaranteed by construction — every job body is a
deterministic function of its fingerprinted parameters — so neither the
worker count, the execution backend, nor the completion order can
change any result.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.store import ResultStore

#: In-process payload cache for jobs flagged ``cache_in_memory`` —
#: golden runs, so repeated campaigns in one process (sample/seed
#: sweeps, fig1+fig2+fig3) never re-simulate an identical golden run.
#: LRU-bounded: golden payloads carry full output buffers, so an
#: unbounded cache would grow monotonically in long sweep processes.
_MEMORY_CACHE: dict[str, dict] = {}
_MEMORY_CACHE_MAX = 64


def _memory_cache_get(fp: str) -> dict | None:
    payload = _MEMORY_CACHE.get(fp)
    if payload is not None:
        _MEMORY_CACHE[fp] = _MEMORY_CACHE.pop(fp)  # mark most-recent
    return payload


def _memory_cache_put(fp: str, payload: dict) -> None:
    _MEMORY_CACHE.pop(fp, None)
    while len(_MEMORY_CACHE) >= _MEMORY_CACHE_MAX:
        _MEMORY_CACHE.pop(next(iter(_MEMORY_CACHE)))
    # Like the persistent store, the cache holds the fingerprinted
    # result only: ephemeral ``_``-keys (golden machine snapshots,
    # tens of MB each at full scale) live exactly as long as the
    # campaign that produced them.
    _MEMORY_CACHE[fp] = {
        k: v for k, v in payload.items() if not k.startswith("_")
    }


def clear_memory_cache() -> None:
    """Drop the in-process golden-run cache (benchmarks use this)."""
    _MEMORY_CACHE.clear()


def _payload_work_s(payload, default: float) -> float:
    """A job's in-worker seconds for telemetry (occupancy basis).

    Golden/plan/shard payloads self-report ``wall_time_s`` measured
    inside the worker; preferring it keeps pool queue wait out of the
    occupancy numbers. Reductions (no self-report) fall back to the
    driver-observed wall time.
    """
    if isinstance(payload, dict):
        work = payload.get("wall_time_s")
        if isinstance(work, (int, float)):
            return float(work)
    return default


class ExecutionBackend:
    """Where the scheduler's pool-eligible jobs execute.

    A backend receives each ready pool job (``worker`` + argument
    tuple) and returns a :class:`concurrent.futures.Future` resolving
    to the job's payload. The scheduler never cares *where* the body
    runs — a local process pool (:class:`ProcessPoolBackend`) and the
    campaign service's lease queue
    (:class:`repro.engine.service.RemoteBackend`) are interchangeable
    by the engine's determinism contract: every job body is a pure
    function of its fingerprinted parameters.
    """

    def submit(self, job: "JobSpec", args: tuple) -> Future:
        """Start one pool job; the Future resolves to its payload."""
        raise NotImplementedError

    def tick(self) -> None:
        """Periodic housekeeping between completions (lease expiry)."""

    def close(self) -> None:
        """Release backend resources (only called on owned backends)."""


class ProcessPoolBackend(ExecutionBackend):
    """The classic local backend: one ``ProcessPoolExecutor``."""

    def __init__(self, workers: int):
        self._pool = ProcessPoolExecutor(max_workers=max(1, int(workers)))

    def submit(self, job: "JobSpec", args: tuple) -> Future:
        return self._pool.submit(job.worker, args)

    def close(self) -> None:
        self._pool.shutdown()


@dataclass
class JobSpec:
    """One schedulable job."""

    job_id: str
    kind: str
    fingerprint: str
    deps: tuple = ()
    #: module-level picklable function for process-pool execution
    worker: Callable | None = None
    #: dep payloads (job_id -> payload) -> worker argument tuple
    make_args: Callable | None = None
    #: driver-side body: dep payloads -> payload (mutually exclusive
    #: with ``worker``)
    reduce_fn: Callable | None = None
    #: payload -> list[JobSpec] admitted after this job completes
    expand: Callable | None = None
    persist: bool = True
    cache_in_memory: bool = False


@dataclass
class CampaignStats:
    """Job accounting for one campaign run (the CLI summary)."""

    total: int = 0
    cached: int = 0
    executed: int = 0
    by_kind: dict = field(default_factory=dict)

    def count(self, kind: str, cached: bool) -> None:
        self.total += 1
        bucket = self.by_kind.setdefault(kind, {"cached": 0, "executed": 0})
        if cached:
            self.cached += 1
            bucket["cached"] += 1
        else:
            self.executed += 1
            bucket["executed"] += 1

    def merge(self, other: "CampaignStats") -> None:
        """Fold another campaign's accounting into this one (sweeps)."""
        self.total += other.total
        self.cached += other.cached
        self.executed += other.executed
        for kind, counts in other.by_kind.items():
            bucket = self.by_kind.setdefault(
                kind, {"cached": 0, "executed": 0})
            for key, value in counts.items():
                bucket[key] = bucket.get(key, 0) + value

    def summary(self) -> str:
        detail = ", ".join(
            f"{kind}={counts['cached']}+{counts['executed']}"
            for kind, counts in sorted(self.by_kind.items())
        )
        return (
            f"campaign: {self.total} jobs — {self.cached} cached, "
            f"{self.executed} executed ({detail}; cached+executed per kind)"
        )


class JobScheduler:
    """Execute a (dynamically expanding) job DAG with store caching.

    ``telemetry`` (a :class:`repro.telemetry.TelemetryHub`, optional)
    receives the scheduler's observability stream: per-job
    ``job_start`` / ``job_finish`` / ``job_cached`` events carrying
    the queue depth and in-flight worker count at emission time, and
    ``golden_cache`` hit/miss probes of the in-process memory cache.
    Emission is strictly observability-only — it never changes job
    admission order, payloads, or anything the store records.
    """

    def __init__(self, store: ResultStore | None = None, workers: int = 1,
                 telemetry=None, execution: ExecutionBackend | None = None):
        self.store = store
        self.workers = max(1, int(workers))
        self.telemetry = telemetry
        #: caller-owned execution backend; None = inline or an owned
        #: process pool, by ``workers``.
        self.execution = execution

    # ------------------------------------------------------------------
    def run(self, jobs: list[JobSpec], on_complete: Callable | None = None,
            stats: CampaignStats | None = None) -> dict[str, dict]:
        """Run every job (plus expansions); returns job_id -> payload."""
        state = _RunState(self, on_complete,
                          stats if stats is not None else CampaignStats())
        for job in jobs:
            state.admit(job)
        if self.execution is not None:
            state.run_backend(self.execution)
        elif self.workers <= 1:
            state.run_inline()
        else:
            backend = ProcessPoolBackend(self.workers)
            try:
                state.run_backend(backend)
            finally:
                backend.close()
        if state.pending:
            unmet = sorted(state.pending)
            raise RuntimeError(
                f"jobs with unsatisfiable dependencies: {unmet[:5]}"
            )
        return state.resolved


class _RunState:
    """Mutable bookkeeping for one scheduler run."""

    def __init__(self, scheduler: JobScheduler, on_complete, stats):
        self.store = scheduler.store
        self.on_complete = on_complete
        self.stats = stats
        self.telemetry = scheduler.telemetry
        self.workers = scheduler.workers
        self.running = 0
        self.resolved: dict[str, dict] = {}
        self.pending: dict[str, JobSpec] = {}
        self.seen: set[str] = set()

    def emit(self, event_type: str, job: JobSpec, **fields) -> None:
        """One telemetry event about ``job`` (no-op with telemetry off).

        Every event carries the job's kind and fingerprint plus the
        scheduler pressure at emission time: ``queue_depth`` (jobs
        admitted but not yet runnable/running) and ``running``
        (in-flight jobs) against the pool size.
        """
        if self.telemetry is not None:
            self.telemetry.record(
                event_type, kind=job.kind, fp=job.fingerprint,
                queue_depth=len(self.pending), running=self.running,
                workers=self.workers, **fields)

    # ------------------------------------------------------------------
    def admit(self, job: JobSpec) -> None:
        """Add one job, resolving it from cache when possible."""
        if job.job_id in self.seen:
            return
        self.seen.add(job.job_id)
        payload = None
        if job.cache_in_memory:
            payload = _memory_cache_get(job.fingerprint)
            self.emit("golden_cache", job, hit=payload is not None)
        if payload is not None:
            # Backfill stores that predate this cached payload, so a
            # later --resume still finds the complete job chain.
            if self.store is not None and job.fingerprint not in self.store:
                self.store.put(job.fingerprint, job.kind, payload)
            self.emit("job_cached", job, source="memory")
        elif self.store is not None and job.fingerprint in self.store:
            payload = self.store.get(job.fingerprint)
            self.emit("job_cached", job, source="store")
        if payload is not None:
            self.finish(job, payload, cached=True)
        else:
            self.pending[job.job_id] = job

    def finish(self, job: JobSpec, payload: dict, cached: bool) -> None:
        self.resolved[job.job_id] = payload
        self.stats.count(job.kind, cached)
        if not cached:
            if job.cache_in_memory:
                _memory_cache_put(job.fingerprint, payload)
            if job.persist and self.store is not None:
                self.store.put(job.fingerprint, job.kind, payload)
        if job.expand is not None:
            for child in job.expand(payload):
                self.admit(child)
        if self.on_complete is not None:
            self.on_complete(job, payload, cached)

    def dep_payloads(self, job: JobSpec) -> dict[str, dict]:
        return {dep: self.resolved[dep] for dep in job.deps}

    def ready(self, job: JobSpec) -> bool:
        return all(dep in self.resolved for dep in job.deps)

    def execute_inline(self, job: JobSpec) -> None:
        deps = self.dep_payloads(job)
        self.running += 1
        self.emit("job_start", job)
        start = time.perf_counter()
        if job.worker is not None:
            payload = job.worker(job.make_args(deps))
        else:
            payload = job.reduce_fn(deps)
        wall_s = time.perf_counter() - start
        self.running -= 1
        self.emit("job_finish", job, wall_s=wall_s,
                  work_s=_payload_work_s(payload, wall_s))
        self.finish(job, payload, cached=False)

    # ------------------------------------------------------------------
    def run_inline(self) -> None:
        """Serial execution in deterministic admission order."""
        progressed = True
        while self.pending and progressed:
            progressed = False
            for job_id in list(self.pending):
                job = self.pending.get(job_id)
                if job is None or not self.ready(job):
                    continue
                del self.pending[job_id]
                self.execute_inline(job)
                progressed = True

    def run_backend(self, backend: ExecutionBackend) -> None:
        """Concurrent execution: pool jobs on the backend, reductions
        and expansions in the driver as soon as they are ready."""
        futures: dict = {}

        def submit_ready() -> None:
            progressed = True
            while progressed:
                progressed = False
                for job_id in list(self.pending):
                    job = self.pending.get(job_id)
                    if job is None or not self.ready(job):
                        continue
                    del self.pending[job_id]
                    progressed = True
                    if job.worker is None:
                        self.execute_inline(job)
                    else:
                        args = job.make_args(self.dep_payloads(job))
                        future = backend.submit(job, args)
                        self.running = len(futures) + 1
                        self.emit("job_start", job)
                        futures[future] = (job, time.perf_counter())

        submit_ready()
        while futures:
            # The timeout keeps the driver responsive to backend
            # housekeeping that completions alone cannot trigger —
            # a remote backend expiring the leases of a dead worker
            # must requeue them even while nothing is finishing.
            done, _ = wait(futures, timeout=0.2,
                           return_when=FIRST_COMPLETED)
            backend.tick()
            for future in done:
                job, submitted = futures.pop(future)
                payload = future.result()
                # wall_s spans submit -> completion (including any
                # wait for a free worker); work_s is the body's own
                # in-worker measurement, the occupancy basis.
                wall_s = time.perf_counter() - submitted
                self.running = len(futures)
                self.emit("job_finish", job, wall_s=wall_s,
                          work_s=_payload_work_s(payload, wall_s))
                self.finish(job, payload, cached=False)
            submit_ready()
