"""Job bodies and payload codecs for the campaign execution engine.

A matrix campaign decomposes into four job kinds per (GPU, benchmark)
cell:

* **golden** — one traced fault-free run: cycle count, launch cycles,
  ACE AVFs, occupancies, and the golden output buffers. Shared between
  cells (and campaigns) that agree on (gpu, workload, scale, scheduler,
  ace_mode) — sample/seed sweeps hit the cache instead of re-running.
* **plan** — fault sampling plus the dead-site pruning pass: the exact
  per-structure plan lists the serial path draws (same RNG seeding),
  each tagged provably-dead or potentially-live.
* **shard** — a contiguous slice of the sorted live plans, each fully
  re-simulated and classified MASKED / SDC / DUE. Shards of *different
  cells* run concurrently on the process pool.
* **cell** — pure reduction of the above into a
  :class:`repro.reliability.campaign.CellResult`; cheap, runs in the
  driver process.

All worker functions are module-level (picklable) and take one
plain-data argument tuple; payloads are JSON-serializable dicts so the
persistent store can replay them across processes.
"""

from __future__ import annotations

import base64
import time
from contextlib import nullcontext

import numpy as np

from repro.arch.config import GpuConfig
from repro.faultmodels.registry import get_fault_model
from repro.kernels.registry import get_workload
from repro.kernels.workload import run_workload
from repro.reliability.campaign import CellResult
from repro.reliability.epf import EpfResult, compute_epf
from repro.reliability.fi import AvfEstimate, resimulate_plan, run_golden
from repro.reliability.liveness import AceMode, FaultSiteResolver
from repro.reliability.outcomes import Outcome
from repro.arch.structures import DATAPATH_STRUCTURES
from repro.sim.faults import FaultPlan
from repro.sim.gpu import Gpu
from repro.telemetry import profile as _profile

GOLDEN, PLAN, SHARD, CELL = "golden", "plan", "shard", "cell"


def _collector_for(flag) -> "_profile.ProfileCollector | None":
    """A fresh collector when a job's trailing profile flag is truthy.

    The collected data rides the ephemeral ``_profile`` payload key
    (stripped by the store and the in-process cache, like
    ``_snapshots``), so profiling never changes what is persisted.
    """
    return _profile.ProfileCollector() if flag else None


def _collecting(collector):
    return (nullcontext() if collector is None
            else _profile.collecting(collector))


# ----------------------------------------------------------------------
# Output-buffer codec (numpy <-> JSON-safe dict)
# ----------------------------------------------------------------------

def encode_outputs(outputs: dict) -> dict:
    """Golden output buffers as JSON-safe base64 blobs."""
    return {
        name: {
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "data": base64.b64encode(np.ascontiguousarray(array).tobytes())
            .decode("ascii"),
        }
        for name, array in outputs.items()
    }


def decode_outputs(payload: dict) -> dict:
    """Inverse of :func:`encode_outputs` (bit-exact round trip)."""
    return {
        name: np.frombuffer(
            base64.b64decode(blob["data"]), dtype=np.dtype(blob["dtype"])
        ).reshape(blob["shape"])
        for name, blob in payload.items()
    }


# ----------------------------------------------------------------------
# Golden job
# ----------------------------------------------------------------------

def run_golden_job(args: tuple) -> dict:
    """Worker: traced fault-free run -> plain-data golden payload.

    ACE AVFs and occupancies are recorded for *all* structures so one
    golden payload serves campaigns targeting any structure subset.

    With a checkpoint interval (the optional sixth element), the run
    additionally captures machine snapshots, attached under the
    ephemeral ``_snapshots`` key: FI shard jobs of the same cell
    receive them with the golden payload and run suffix-only. The
    persisted payload is unchanged — the store strips ephemeral keys —
    so golden fingerprints stay interval-independent and old stores
    keep resolving.
    """
    config, workload_name, scale, scheduler, ace_mode_value = args[:5]
    checkpoint_interval = args[5] if len(args) > 5 else None
    collector = _collector_for(args[6] if len(args) > 6 else False)
    workload = get_workload(workload_name, scale)
    with _collecting(collector):
        golden = run_golden(config, workload, scheduler=scheduler,
                            ace_mode=AceMode(ace_mode_value),
                            checkpoint_interval=checkpoint_interval)
    payload = {
        "cycles": golden.cycles,
        "launch_cycles": [int(c) for c in golden.launch_cycles],
        "ace": {s: golden.ace.avf(s) for s in DATAPATH_STRUCTURES},
        "occupancy": {s: golden.occupancy.occupancy(s)
                      for s in DATAPATH_STRUCTURES},
        "wall_time_s": golden.wall_time_s,
        "outputs": encode_outputs(golden.outputs),
    }
    if golden.snapshots is not None:
        payload["_snapshots"] = golden.snapshots
    if collector is not None:
        payload["_profile"] = collector.as_dict()
    return payload


# ----------------------------------------------------------------------
# Fault-plan row codec (FaultPlan <-> JSON-safe row / sortable key)
# ----------------------------------------------------------------------
#
# Plan-payload rows are ``[core, word, bit, cycle, alive]`` for
# default-geometry plans (single transient-style bit) — byte-identical
# to the single-model store format, so old stores keep resolving — and
# grow a ``[..., width, stuck_value]`` suffix only for plans that need
# it (MBU clusters, stuck-at polarity). Keys prepend the structure and
# drop ``alive``.

def encode_plan_row(plan: FaultPlan, alive: bool) -> list:
    """JSON row for one sampled plan (+ its pruning verdict)."""
    row = [plan.core, plan.word, plan.bit, plan.cycle, bool(alive)]
    if plan.width != 1 or plan.stuck_value != -1:
        row += [plan.width, plan.stuck_value]
    return row


def plan_key_from_row(structure: str, row: list) -> tuple:
    """(structure, core, word, bit, cycle[, width, stuck]) sort key."""
    return (structure, row[0], row[1], row[2], row[3], *row[5:])


def plan_from_key(key: tuple) -> FaultPlan:
    """Rehydrate a FaultPlan from a plan key (inverse of the above)."""
    structure, core, word, bit, cycle, *extra = key
    width, stuck_value = extra if extra else (1, -1)
    return FaultPlan(structure=structure, core=core, word=word, bit=bit,
                     cycle=cycle, width=width, stuck_value=stuck_value)


# ----------------------------------------------------------------------
# Plan (sampling + pruning) job
# ----------------------------------------------------------------------

def run_plan_job(args: tuple) -> dict:
    """Worker: draw fault plans and prune provably-dead sites.

    Sampling reproduces the serial path exactly: one generator seeded
    with ``seed``, structures drawn in campaign order through the
    campaign's fault model, so the engine's plans are bit-identical to
    ``run_fi_campaign``'s for any worker count or shard size.
    """
    (config, workload_name, scale, scheduler, cycles, samples, seed,
     structures, fault_model) = args[:9]
    collector = _collector_for(args[9] if len(args) > 9 else False)
    model = get_fault_model(fault_model)
    start = time.perf_counter()
    with _collecting(collector), _profile.phase("prune"):
        rng = np.random.default_rng(seed)
        plans_by_structure = {
            structure: model.sample(config, structure, cycles, samples, rng)
            for structure in structures
        }
        all_plans = [p for plans in plans_by_structure.values()
                     for p in plans]
        resolver = FaultSiteResolver(config, all_plans, fault_model=model)
        gpu = Gpu(config, scheduler=scheduler, sink=resolver)
        run_workload(gpu, get_workload(workload_name, scale))
    payload = {
        "plans": {
            structure: [
                encode_plan_row(p, resolver.is_live(p)) for p in plans
            ]
            for structure, plans in plans_by_structure.items()
        },
        "wall_time_s": time.perf_counter() - start,
    }
    if collector is not None:
        payload["_profile"] = collector.as_dict()
    return payload


def live_plan_keys(plan_payload: dict) -> list[tuple]:
    """Deduplicated live plans in the serial path's re-simulation order.

    Keys are (structure, core, word, bit, cycle[, width, stuck])
    tuples sorted exactly like ``run_fi_campaign`` sorts its live set;
    shard jobs cover contiguous slices of this list.
    """
    live = {
        plan_key_from_row(structure, row)
        for structure, rows in plan_payload["plans"].items()
        for row in rows
        if row[4]
    }
    return sorted(live)


# ----------------------------------------------------------------------
# FI shard job
# ----------------------------------------------------------------------

#: Per-process decoded golden outputs, keyed by golden fingerprint —
#: a worker running many shards of one cell decodes the blobs once.
_DECODED_OUTPUTS: dict[str, dict] = {}
_DECODED_OUTPUTS_MAX = 8


def _decoded_outputs_for(golden_fp: str, outputs_encoded: dict) -> dict:
    outputs = _DECODED_OUTPUTS.get(golden_fp)
    if outputs is None:
        if len(_DECODED_OUTPUTS) >= _DECODED_OUTPUTS_MAX:
            _DECODED_OUTPUTS.pop(next(iter(_DECODED_OUTPUTS)))
        outputs = _DECODED_OUTPUTS[golden_fp] = decode_outputs(outputs_encoded)
    return outputs


def _snapshots_for(golden_fp: str, checkpoint_interval, snapshots,
                   config, workload, scheduler: str):
    """This shard's snapshot set: shipped inline, rebuilt when pooled.

    Inline campaigns pass the golden job's set by reference; pooled
    shard jobs (and store resumes, where snapshots were stripped as
    ephemeral) get None and re-derive the set once per worker process
    through the shared :func:`repro.checkpoint.cached_snapshots`
    cache, keyed by the golden fingerprint.
    """
    if checkpoint_interval is None:
        return None
    if snapshots is not None:
        return snapshots
    from repro.checkpoint import cached_snapshots
    return cached_snapshots(("golden-fp", golden_fp, checkpoint_interval),
                            config, workload, scheduler,
                            checkpoint_interval)


def run_shard_job(args: tuple) -> dict:
    """Worker: re-simulate one slice of live fault plans.

    Result rows are ``[*plan_key, outcome, detail, corrupted]`` — the
    same 8-element flat rows as the single-model era for default plan
    keys, with the key's width/stuck suffix inlined for extended ones.

    The optional trailing args (snapshots, checkpoint_interval,
    profile flag, suffix_memo flag) switch the re-simulations to
    suffix-only restore with early-exit convergence, attach a
    ``_profile`` payload, and/or share classified quiescent states
    across the campaign's injections via the per-process suffix memo
    (:mod:`repro.checkpoint.memo`, keyed by golden fingerprint + fault
    model); rows are bit-identical either way, so shard fingerprints —
    and parity between checkpointed and un-checkpointed stores — are
    unaffected.
    """
    (config, workload_name, scale, scheduler, cycles, golden_fp,
     outputs_encoded, plan_keys, fault_model) = args[:9]
    snapshots = args[9] if len(args) > 9 else None
    checkpoint_interval = args[10] if len(args) > 10 else None
    collector = _collector_for(args[11] if len(args) > 11 else False)
    suffix_memo = args[12] if len(args) > 12 else False
    outputs = _decoded_outputs_for(golden_fp, outputs_encoded)
    workload = get_workload(workload_name, scale)
    start = time.perf_counter()
    with _collecting(collector):
        snapshots = _snapshots_for(golden_fp, checkpoint_interval, snapshots,
                                   config, workload, scheduler)
        memo = None
        if suffix_memo and snapshots is not None:
            from repro.checkpoint import cached_memo
            memo = cached_memo(("golden-fp", golden_fp, fault_model))
        results = []
        for key in plan_keys:
            plan = plan_from_key(tuple(key))
            result = resimulate_plan(config, workload, plan, outputs, cycles,
                                     scheduler, fault_model=fault_model,
                                     snapshots=snapshots, memo=memo)
            results.append([
                *key, result.outcome.value, result.detail,
                result.corrupted_words,
            ])
    payload = {"results": results,
               "wall_time_s": time.perf_counter() - start}
    if collector is not None:
        payload["_profile"] = collector.as_dict()
    return payload


# ----------------------------------------------------------------------
# Reduce-to-cell job (driver-side)
# ----------------------------------------------------------------------

def reduce_cell_job(config: GpuConfig, workload_name: str, scale: str,
                    scheduler: str, samples: int, seed: int,
                    structures: tuple, raw_fit_per_bit: float,
                    uses_local_memory: bool, golden_payload: dict,
                    plan_payload: dict, shard_payloads: list,
                    fault_model: str = "transient") -> dict:
    """Combine golden + plan + shard payloads into one cell payload.

    The counting mirrors ``run_fi_campaign`` line for line (pruned
    sites masked without re-simulation, duplicates resolved through the
    shared outcome map), so the reduced cell matches the serial path's
    AVF counts, EPF and cycles bit for bit.
    """
    outcome_by_key: dict[tuple, tuple] = {}
    resim_time = 0.0
    for shard in shard_payloads:
        resim_time += shard["wall_time_s"]
        for row in shard["results"]:
            outcome_by_key[tuple(row[:-3])] = (
                Outcome(row[-3]), row[-2], row[-1])
    total_live = max(1, len(live_plan_keys(plan_payload)))

    estimates: dict[str, dict] = {}
    avf_for_epf: dict[str, float] = {}
    for structure in structures:
        rows = plan_payload["plans"][structure]
        masked = sdc = due = pruned = resims = 0
        for row in rows:
            if not row[4]:
                masked += 1
                pruned += 1
                continue
            outcome, _, _ = outcome_by_key[plan_key_from_row(structure, row)]
            resims += 1
            if outcome is Outcome.MASKED:
                masked += 1
            elif outcome is Outcome.SDC:
                sdc += 1
            else:
                due += 1
        estimates[structure] = {
            "structure": structure,
            "samples": len(rows),
            "masked": masked,
            "sdc": sdc,
            "due": due,
            "pruned": pruned,
            "resimulated": resims,
            "wall_time_s": resim_time * resims / total_live,
        }
        avf_for_epf[structure] = (
            (sdc + due) / len(rows) if rows else 0.0
        )

    epf = compute_epf(config, workload_name, golden_payload["cycles"],
                      avf_for_epf, raw_fit_per_bit)
    return {
        "gpu": config.name,
        "workload": workload_name,
        "scale": scale,
        "scheduler": scheduler,
        "cycles": golden_payload["cycles"],
        "num_launches": len(golden_payload["launch_cycles"]),
        "fi": estimates,
        # Golden payloads record ACE/occupancy for the datapath pair
        # only (keeping them byte-identical across structure-taxonomy
        # growth, so old stores keep resolving); control structures
        # have no ACE/occupancy model and report 0.0 — exactly what the
        # serial path's accumulators return for them.
        "ace": {s: golden_payload["ace"].get(s, 0.0) for s in structures},
        "occupancy": {s: golden_payload["occupancy"].get(s, 0.0)
                      for s in structures},
        "epf": {
            "gpu": epf.gpu,
            "workload": epf.workload,
            "cycles": epf.cycles,
            "t_exec_s": epf.t_exec_s,
            "eit": epf.eit,
            "fit_by_structure": epf.fit_by_structure,
            "fit_gpu": epf.fit_gpu,
            "epf": epf.epf,
        },
        "golden_time_s": golden_payload["wall_time_s"],
        "fi_time_s": plan_payload["wall_time_s"] + resim_time,
        "samples": samples,
        "seed": seed,
        "uses_local_memory": uses_local_memory,
        "fault_model": fault_model,
    }


def cell_from_payload(payload: dict) -> CellResult:
    """Rehydrate a :class:`CellResult` from a stored cell payload."""
    fi = {
        structure: AvfEstimate(**est)
        for structure, est in payload["fi"].items()
    }
    epf = EpfResult(**payload["epf"]) if payload["epf"] is not None else None
    return CellResult(
        gpu=payload["gpu"],
        workload=payload["workload"],
        scale=payload["scale"],
        scheduler=payload["scheduler"],
        cycles=payload["cycles"],
        num_launches=payload["num_launches"],
        fi=fi,
        ace=dict(payload["ace"]),
        occupancy=dict(payload["occupancy"]),
        epf=epf,
        golden_time_s=payload["golden_time_s"],
        fi_time_s=payload["fi_time_s"],
        samples=payload["samples"],
        seed=payload["seed"],
        uses_local_memory=payload["uses_local_memory"],
        # Cell payloads from the single-model era predate the key.
        fault_model=payload.get("fault_model", "transient"),
    )
