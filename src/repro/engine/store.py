"""Persistent result store: every completed job, one JSONL record.

The store is the engine's memory across process boundaries: each record
holds a job's fingerprint (its full parameter identity, see
:mod:`repro.engine.fingerprint`), its kind, and its payload. A campaign
killed mid-run leaves behind a store whose finished jobs are simply
loaded instead of re-executed on the next invocation (``--resume``);
re-running an already-complete campaign executes nothing at all.

Records are appended with a flush + fsync per job, so at most the
record being written when the process dies can be lost; a truncated
trailing line is detected and skipped on load.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


class ResultStore:
    """Append-only fingerprint -> (kind, payload) store.

    ``path=None`` gives an in-memory store (no persistence) with the
    same interface, which is what ephemeral campaigns use.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self._records: dict[str, dict] = {}
        self._handle = None
        self.dropped_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        # Byte-mode read with per-line decoding (the TelemetryTail
        # idiom): a process killed mid-append can tear the final line
        # anywhere, including inside a multi-byte UTF-8 sequence, and
        # a text-mode iterator would raise UnicodeDecodeError for the
        # whole file instead of dropping the one torn record.
        for raw in self.path.read_bytes().split(b"\n"):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
                fp = record["fp"]
                record["kind"], record["payload"]
            except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                    TypeError):
                # Interrupted append: tolerate and let the job re-run.
                self.dropped_lines += 1
                continue
            self._records[fp] = record

    def _append(self, record: dict) -> None:
        if self.path is None:
            return
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # A file killed mid-append may end without a newline; the
            # first record appended after a resume must not glue itself
            # onto the torn tail (losing *both* lines on the next load).
            torn_tail = False
            if self.path.exists() and self.path.stat().st_size:
                with self.path.open("rb") as tail:
                    tail.seek(-1, os.SEEK_END)
                    torn_tail = tail.read(1) != b"\n"
            self._handle = self.path.open("a", encoding="utf-8")
            if torn_tail:
                self._handle.write("\n")
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    def __contains__(self, fp: str) -> bool:
        return fp in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, fp: str) -> dict | None:
        """Payload of a finished job, or None."""
        record = self._records.get(fp)
        return record["payload"] if record is not None else None

    def kind_of(self, fp: str) -> str | None:
        record = self._records.get(fp)
        return record["kind"] if record is not None else None

    def put(self, fp: str, kind: str, payload: dict) -> None:
        """Record one finished job (idempotent per fingerprint).

        Payload keys starting with ``_`` are *ephemeral* — in-process
        extras (e.g. the golden job's machine snapshots) that are
        neither JSON-safe nor part of the job's fingerprinted result —
        and are stripped before recording. Consumers must treat them
        as optional: a payload loaded from a store never has them.
        """
        if fp in self._records:
            return
        payload = {k: v for k, v in payload.items() if not k.startswith("_")}
        record = {"fp": fp, "kind": kind, "payload": payload}
        self._records[fp] = record
        self._append(record)

    def counts_by_kind(self) -> dict[str, int]:
        """kind -> number of finished jobs (for summaries)."""
        counts: dict[str, int] = {}
        for record in self._records.values():
            counts[record["kind"]] = counts.get(record["kind"], 0) + 1
        return counts

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
