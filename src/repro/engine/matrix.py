"""Matrix campaigns on the job-graph engine.

:func:`run_campaign` decomposes the (GPU x benchmark) evaluation matrix
into golden -> plan -> shard -> cell jobs, schedules them across a
process pool so *cells* run concurrently (not just one cell's
re-simulations), caches golden runs by (gpu, workload, scale,
scheduler, ace_mode), and records every finished job in a persistent
:class:`~repro.engine.store.ResultStore` — making interrupted campaigns
resumable and repeated invocations incremental. Results are
bit-identical to the serial ``run_cell`` loop for any worker count and
any shard size.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.arch.config import GpuConfig
from repro.arch.presets import list_gpus
from repro.engine import jobs
from repro.engine.fingerprint import (
    cell_params,
    fingerprint,
    golden_params,
    plan_params,
    shard_params,
)
from repro.engine.scheduler import CampaignStats, JobScheduler, JobSpec
from repro.engine.store import ResultStore
from repro.kernels.registry import KERNEL_NAMES, get_workload
from repro.reliability.campaign import CellResult, default_samples, default_scale
from repro.reliability.epf import RAW_FIT_PER_BIT
from repro.errors import ConfigError
from repro.reliability.liveness import AceMode
from repro.sim.faults import STRUCTURES
from repro.arch.structures import exposed_structures

#: Live fault plans per FI shard job. Small enough that a 2,000-sample
#: campaign spreads one cell over many workers; independent of the
#: worker count so shard fingerprints stay stable across runs.
DEFAULT_SHARD_SIZE = 24


@dataclass
class CampaignResult:
    """Cells in matrix order plus the job accounting."""

    cells: list
    stats: CampaignStats


def _cell_jobs(config: GpuConfig, workload_name: str, scale: str,
               samples: int, seed: int, scheduler: str, structures: tuple,
               ace_mode: AceMode, raw_fit_per_bit: float, shard_size: int,
               store: ResultStore | None,
               fault_model: str,
               checkpoint_interval=None,
               inline: bool = True) -> tuple[list[JobSpec], str]:
    """Job chain for one cell; returns (root jobs, cell job id).

    ``inline`` — True when the campaign runs without a process pool.
    Snapshot handling depends on it: inline, the golden job captures
    snapshots and the cell's shards consume them by reference (zero
    copies); pooled, golden jobs skip capture and each shard worker
    rebuilds the set once per process (a full-scale SnapshotSet
    pickles to tens of MB — shipping it per shard submission would
    cost more than the suffix-only speedup buys).
    """
    golden_fp = fingerprint(
        jobs.GOLDEN,
        golden_params(config, workload_name, scale, scheduler, ace_mode),
    )
    plan_fp = fingerprint(
        jobs.PLAN,
        plan_params(golden_fp, samples, seed, structures, fault_model))
    cell_fp = fingerprint(
        jobs.CELL,
        cell_params(plan_fp, raw_fit_per_bit,
                    checkpoint=checkpoint_interval))
    if store is not None and cell_fp in store:
        # Finished cell: short-circuit the whole chain (cell
        # fingerprints ignore shard geometry, so even a different
        # shard size reuses it). The cached payload resolves the job;
        # reduce_fn exists only to satisfy the spec's contract.
        return [JobSpec(
            job_id=cell_fp,
            kind=jobs.CELL,
            fingerprint=cell_fp,
            reduce_fn=lambda deps: store.get(cell_fp),
        )], cell_fp
    uses_local_memory = get_workload(workload_name, scale).uses_local_memory

    def expand_plan(plan_payload: dict) -> list[JobSpec]:
        live = jobs.live_plan_keys(plan_payload)
        shard_ids = []
        specs = []
        for start in range(0, len(live), shard_size):
            chunk = live[start:start + shard_size]
            shard_fp = fingerprint(
                jobs.SHARD,
                shard_params(plan_fp, start, start + len(chunk)))
            shard_ids.append(shard_fp)
            specs.append(JobSpec(
                job_id=shard_fp,
                kind=jobs.SHARD,
                fingerprint=shard_fp,
                deps=(golden_fp,),
                worker=jobs.run_shard_job,
                # Inline, snapshots ride along from the golden payload
                # by reference. They are ephemeral: a golden loaded
                # from a store (or produced by a pooled golden job)
                # has none, and the shard worker then rebuilds the set
                # once per process; a memory-cached golden may carry a
                # set captured at another interval — any set is
                # correct, it only changes wall time.
                make_args=lambda deps, chunk=chunk: (
                    config, workload_name, scale, scheduler,
                    deps[golden_fp]["cycles"], golden_fp,
                    deps[golden_fp]["outputs"], chunk, fault_model,
                    deps[golden_fp].get("_snapshots")
                    if checkpoint_interval is not None and inline else None,
                    checkpoint_interval,
                ),
            ))

        def reduce_cell(deps: dict) -> dict:
            payload = jobs.reduce_cell_job(
                config, workload_name, scale, scheduler, samples, seed,
                structures, raw_fit_per_bit, uses_local_memory,
                deps[golden_fp], deps[plan_fp],
                [deps[shard_id] for shard_id in shard_ids],
                fault_model=fault_model,
            )
            # The cell is the last consumer of this golden's snapshots
            # within the campaign: free them so driver memory stays
            # bounded by the cells in flight, not the whole matrix.
            deps[golden_fp].pop("_snapshots", None)
            return payload

        specs.append(JobSpec(
            job_id=cell_fp,
            kind=jobs.CELL,
            fingerprint=cell_fp,
            deps=(golden_fp, plan_fp, *shard_ids),
            reduce_fn=reduce_cell,
        ))
        return specs

    golden_job = JobSpec(
        job_id=golden_fp,
        kind=jobs.GOLDEN,
        fingerprint=golden_fp,
        worker=jobs.run_golden_job,
        # Pooled golden jobs skip capture: their payload would haul
        # the snapshots back through a pickle the shards never read.
        make_args=lambda deps: (
            config, workload_name, scale, scheduler, ace_mode.value,
            checkpoint_interval if inline else None),
        cache_in_memory=True,
    )
    plan_job = JobSpec(
        job_id=plan_fp,
        kind=jobs.PLAN,
        fingerprint=plan_fp,
        deps=(golden_fp,),
        worker=jobs.run_plan_job,
        make_args=lambda deps: (
            config, workload_name, scale, scheduler,
            deps[golden_fp]["cycles"], samples, seed, structures,
            fault_model),
        expand=expand_plan,
    )
    return [golden_job, plan_job], cell_fp


def run_campaign(gpus: list | None = None, workloads: list | None = None,
                 scale: str | None = None, samples: int | None = None,
                 seed: int = 0, scheduler: str = "rr",
                 structures: tuple = STRUCTURES,
                 ace_mode: AceMode = AceMode.CONSERVATIVE,
                 raw_fit_per_bit: float = RAW_FIT_PER_BIT,
                 shard_size: int | None = None, workers: int = 1,
                 store: ResultStore | str | Path | None = None,
                 progress=None,
                 stats: CampaignStats | None = None,
                 fault_model=None,
                 checkpoint_interval=None) -> CampaignResult:
    """Run (or resume) the full evaluation matrix on the job engine.

    ``store`` — a :class:`ResultStore` or a path to one — makes the
    campaign persistent: killed runs resume without re-executing any
    finished job, and identical re-invocations execute nothing.
    ``workers`` sizes the process pool (1 = inline/serial); cells and
    their FI shards are scheduled concurrently either way, and results
    are identical for every setting. ``fault_model`` (registry name or
    :class:`~repro.faultmodels.FaultModel`; default transient) is part
    of every plan/shard/cell fingerprint, so campaigns with different
    models share golden runs but never collide on results.

    ``checkpoint_interval`` (None, ``"auto"``, or a cycle count) makes
    golden jobs capture machine snapshots that the cell's FI shards
    restore, simulating only each fault's suffix with the early-exit
    convergence check (:mod:`repro.checkpoint`). Golden/plan/shard
    results are bit-identical with or without it; the interval joins
    only the *cell* fingerprint (omitted when off), so pre-checkpoint
    stores still resume and a checkpointed resume of one reuses every
    simulation job.
    """
    from repro.faultmodels.registry import fault_model_name
    gpus = gpus if gpus is not None else list_gpus()
    workloads = list(workloads) if workloads is not None else list(KERNEL_NAMES)
    scale = scale or default_scale()
    samples = samples if samples is not None else default_samples()
    shard_size = shard_size or DEFAULT_SHARD_SIZE
    fault_model = fault_model_name(fault_model)
    if checkpoint_interval is not None:
        from repro.checkpoint import resolve_interval
        resolve_interval(checkpoint_interval)  # validate early
    own_store = isinstance(store, (str, Path))
    if own_store:
        store = ResultStore(store)
    stats = stats if stats is not None else CampaignStats()

    specs: list[JobSpec] = []
    cell_ids: list[str] = []
    for config in gpus:
        # Per-chip structure subset: a campaign naming a structure the
        # chip's ISA does not expose (e.g. simt_stack on an EXEC-mask
        # SI chip) simply skips it there — the cell's fingerprint sees
        # the filtered tuple, so exposure never aliases across ISAs.
        cell_structures = exposed_structures(config, structures)
        if not cell_structures:
            continue
        for name in workloads:
            roots, cell_id = _cell_jobs(
                config, name, scale, samples, seed, scheduler,
                cell_structures,
                ace_mode, raw_fit_per_bit, shard_size, store, fault_model,
                checkpoint_interval=checkpoint_interval,
                inline=workers <= 1)
            specs.extend(roots)
            cell_ids.append(cell_id)
    if not specs:
        raise ConfigError(
            f"no runnable cells: none of the structures "
            f"{', '.join(structures)} are exposed by the selected GPUs"
        )

    def on_complete(job: JobSpec, payload: dict, cached: bool) -> None:
        if progress is not None and job.kind == jobs.CELL:
            progress(jobs.cell_from_payload(payload))

    try:
        resolved = JobScheduler(store=store, workers=workers).run(
            specs, on_complete=on_complete, stats=stats)
    finally:
        if own_store:
            store.close()
    cells: list[CellResult] = [
        jobs.cell_from_payload(resolved[cell_id]) for cell_id in cell_ids
    ]
    return CampaignResult(cells=cells, stats=stats)
