"""Matrix campaigns on the job-graph engine.

:func:`run_campaign` consumes one declarative
:class:`repro.spec.CampaignSpec` and decomposes its (GPU x benchmark)
evaluation matrix into golden -> plan -> shard -> cell jobs, schedules
them across a process pool so *cells* run concurrently (not just one
cell's re-simulations), caches golden runs by (gpu, workload, scale,
scheduler, ace_mode), and records every finished job in a persistent
:class:`~repro.engine.store.ResultStore` — making interrupted campaigns
resumable and repeated invocations incremental. Results are
bit-identical to the serial ``run_cell`` loop for any worker count and
any shard size; spec fields map one-to-one onto the job fingerprint
parameters (:func:`cell_fingerprints`), so stores from the kwarg era
resume with zero jobs executed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.arch.config import GpuConfig
from repro.arch.presets import list_gpus
from repro.engine import jobs
from repro.engine.fingerprint import (
    cell_params,
    fingerprint,
    golden_params,
    plan_params,
    shard_params,
)
from repro.engine.scheduler import CampaignStats, JobScheduler, JobSpec
from repro.engine.store import ResultStore
from repro.kernels.registry import get_workload
from repro.reliability.campaign import CellResult
from repro.errors import ConfigError
from repro.reliability.liveness import AceMode
from repro.arch.structures import exposed_structures
from repro.telemetry import profile as _profile
from repro.telemetry.profile import merge_profiles

#: Live fault plans per FI shard job. Small enough that a 2,000-sample
#: campaign spreads one cell over many workers; independent of the
#: worker count so shard fingerprints stay stable across runs.
DEFAULT_SHARD_SIZE = 24


@dataclass
class CampaignResult:
    """Cells in matrix order plus the job accounting."""

    cells: list
    stats: CampaignStats


def _cell_jobs(config: GpuConfig, workload_name: str, scale: str,
               samples: int, seed: int, scheduler: str, structures: tuple,
               ace_mode: AceMode, raw_fit_per_bit: float, shard_size: int,
               store: ResultStore | None,
               fault_model: str,
               checkpoint_interval=None,
               inline: bool = True,
               profile: bool = False,
               suffix_memo: bool = False) -> tuple[list[JobSpec], str]:
    """Job chain for one cell; returns (root jobs, cell job id).

    ``inline`` — True when the campaign runs without a process pool.
    Snapshot handling depends on it: inline, the golden job captures
    snapshots and the cell's shards consume them by reference (zero
    copies); pooled, golden jobs skip capture and each shard worker
    rebuilds the set once per process (a full-scale SnapshotSet
    pickles to tens of MB — shipping it per shard submission would
    cost more than the suffix-only speedup buys).
    """
    golden_fp = fingerprint(
        jobs.GOLDEN,
        golden_params(config, workload_name, scale, scheduler, ace_mode),
    )
    plan_fp = fingerprint(
        jobs.PLAN,
        plan_params(golden_fp, samples, seed, structures, fault_model))
    cell_fp = fingerprint(
        jobs.CELL,
        cell_params(plan_fp, raw_fit_per_bit,
                    checkpoint=checkpoint_interval))
    if store is not None and cell_fp in store:
        # Finished cell: short-circuit the whole chain (cell
        # fingerprints ignore shard geometry, so even a different
        # shard size reuses it). The cached payload resolves the job;
        # reduce_fn exists only to satisfy the spec's contract.
        return [JobSpec(
            job_id=cell_fp,
            kind=jobs.CELL,
            fingerprint=cell_fp,
            reduce_fn=lambda deps: store.get(cell_fp),
        )], cell_fp
    uses_local_memory = get_workload(workload_name, scale).uses_local_memory

    def expand_plan(plan_payload: dict) -> list[JobSpec]:
        live = jobs.live_plan_keys(plan_payload)
        shard_ids = []
        specs = []
        for start in range(0, len(live), shard_size):
            chunk = live[start:start + shard_size]
            shard_fp = fingerprint(
                jobs.SHARD,
                shard_params(plan_fp, start, start + len(chunk)))
            shard_ids.append(shard_fp)
            specs.append(JobSpec(
                job_id=shard_fp,
                kind=jobs.SHARD,
                fingerprint=shard_fp,
                deps=(golden_fp,),
                worker=jobs.run_shard_job,
                # Inline, snapshots ride along from the golden payload
                # by reference. They are ephemeral: a golden loaded
                # from a store (or produced by a pooled golden job)
                # has none, and the shard worker then rebuilds the set
                # once per process; a memory-cached golden may carry a
                # set captured at another interval — any set is
                # correct, it only changes wall time.
                make_args=lambda deps, chunk=chunk: (
                    config, workload_name, scale, scheduler,
                    deps[golden_fp]["cycles"], golden_fp,
                    deps[golden_fp]["outputs"], chunk, fault_model,
                    deps[golden_fp].get("_snapshots")
                    if checkpoint_interval is not None and inline else None,
                    checkpoint_interval,
                    profile,
                    suffix_memo,
                ),
            ))

        def reduce_cell(deps: dict) -> dict:
            collector = jobs._collector_for(profile)
            with jobs._collecting(collector), _profile.phase("reduce"):
                payload = jobs.reduce_cell_job(
                    config, workload_name, scale, scheduler, samples, seed,
                    structures, raw_fit_per_bit, uses_local_memory,
                    deps[golden_fp], deps[plan_fp],
                    [deps[shard_id] for shard_id in shard_ids],
                    fault_model=fault_model,
                )
            # The cell is the last consumer of this golden's snapshots
            # within the campaign: free them so driver memory stays
            # bounded by the cells in flight, not the whole matrix.
            deps[golden_fp].pop("_snapshots", None)
            if collector is not None:
                # Fold the workers' profiles into the cell's. Popping
                # the golden's (it is memory-cached and may feed other
                # cells of the campaign, but the cache strips `_` keys
                # anyway) attributes each executed golden exactly once.
                merged = None
                for fp in (golden_fp, plan_fp, *shard_ids):
                    dep = deps.get(fp)
                    if isinstance(dep, dict):
                        merged = merge_profiles(merged,
                                                dep.pop("_profile", None))
                merged = merge_profiles(merged, collector.as_dict())
                payload["_profile"] = merged
            return payload

        specs.append(JobSpec(
            job_id=cell_fp,
            kind=jobs.CELL,
            fingerprint=cell_fp,
            deps=(golden_fp, plan_fp, *shard_ids),
            reduce_fn=reduce_cell,
        ))
        return specs

    golden_job = JobSpec(
        job_id=golden_fp,
        kind=jobs.GOLDEN,
        fingerprint=golden_fp,
        worker=jobs.run_golden_job,
        # Pooled golden jobs skip capture: their payload would haul
        # the snapshots back through a pickle the shards never read.
        make_args=lambda deps: (
            config, workload_name, scale, scheduler, ace_mode.value,
            checkpoint_interval if inline else None, profile),
        cache_in_memory=True,
    )
    plan_job = JobSpec(
        job_id=plan_fp,
        kind=jobs.PLAN,
        fingerprint=plan_fp,
        deps=(golden_fp,),
        worker=jobs.run_plan_job,
        make_args=lambda deps: (
            config, workload_name, scale, scheduler,
            deps[golden_fp]["cycles"], samples, seed, structures,
            fault_model, profile),
        expand=expand_plan,
    )
    return [golden_job, plan_job], cell_fp


def iter_cells(spec):
    """(config, workload, exposed structure subset) per runnable cell.

    Per-chip structure subset: a campaign naming a structure the
    chip's ISA does not expose (e.g. simt_stack on an EXEC-mask SI
    chip) simply skips it there — the cell's fingerprint sees the
    filtered tuple, so exposure never aliases across ISAs.
    """
    structures = spec.resolved_structures()
    for config in spec.resolved_gpus():
        cell_structures = exposed_structures(config, structures)
        if not cell_structures:
            continue
        for name in spec.resolved_workloads():
            yield config, name, cell_structures


def cell_fingerprints(spec) -> dict:
    """(gpu name, workload) -> cell fingerprint, without executing.

    Spec fields map one-to-one onto the golden/plan/cell fingerprint
    parameters, so this is exactly the set of cell records a finished
    run of ``spec`` leaves in a store — usable to check resumability
    (every fingerprint present means a re-run executes zero jobs).
    """
    out = {}
    for config, name, cell_structures in iter_cells(spec):
        golden_fp = fingerprint(
            jobs.GOLDEN,
            golden_params(config, name, spec.resolved_scale(),
                          spec.scheduler, spec.ace_mode))
        plan_fp = fingerprint(
            jobs.PLAN,
            plan_params(golden_fp, spec.resolved_samples(), spec.seed,
                        cell_structures, spec.fault_model))
        out[(config.name, name)] = fingerprint(
            jobs.CELL,
            cell_params(plan_fp, spec.raw_fit_per_bit,
                        checkpoint=spec.checkpoint_interval))
    return out


def run_campaign(spec=None, *, store: ResultStore | str | Path | None = None,
                 workers: int = 1, progress=None,
                 stats: CampaignStats | None = None,
                 telemetry=None, profile=None, execution=None,
                 **legacy) -> CampaignResult:
    """Run (or resume) an evaluation matrix on the job engine.

    Preferred form: ``run_campaign(spec, store=..., workers=...)``
    with a :class:`repro.spec.CampaignSpec`. The legacy kwarg form
    (``gpus=``, ``workloads=``, ``samples=``, ...) builds a spec
    internally, emits a :class:`DeprecationWarning`, and produces
    bit-identical results — including the legacy default of running
    the *full-size* presets when no ``gpus`` are named (a bare spec
    defaults to the scaled presets, like the CLI and harnesses).

    ``store`` — a :class:`ResultStore` or a path to one — makes the
    campaign persistent: killed runs resume without re-executing any
    finished job, and identical re-invocations execute nothing. Spec
    fields map onto the same golden/plan/shard/cell fingerprints the
    kwarg era wrote, so pre-spec stores resume with zero jobs
    executed. ``workers`` sizes the process pool (1 = inline/serial);
    cells and their FI shards are scheduled concurrently either way,
    and results are identical for every setting. The spec's
    ``fault_model`` is part of every plan/shard/cell fingerprint, so
    campaigns with different models share golden runs but never
    collide on results.

    The spec's ``checkpoint_interval`` (None, ``"auto"``, or a cycle
    count) makes golden jobs capture machine snapshots that the cell's
    FI shards restore, simulating only each fault's suffix with the
    early-exit convergence check (:mod:`repro.checkpoint`).
    Golden/plan/shard results are bit-identical with or without it;
    the interval joins only the *cell* fingerprint (omitted when off),
    so pre-checkpoint stores still resume and a checkpointed resume of
    one reuses every simulation job.

    ``telemetry`` — ``None`` defers to the spec's ``telemetry`` field;
    otherwise it overrides it: ``False`` forces telemetry off, ``True``
    writes the event stream as JSONL next to the persistent store, a
    path writes there, and a ``TelemetrySink``/``TelemetryHub``
    receives the events directly (see
    :func:`repro.telemetry.resolve_telemetry`). Telemetry is strictly
    observability-only: it joins no fingerprint, and the result store
    is bit-identical with it on or off.

    ``profile`` — ``None`` defers to the spec's ``profile`` field;
    ``True`` turns on the hot-path profiling layer
    (:mod:`repro.telemetry.profile`): every executed job collects
    per-phase timers and dispatch counters, each cell emits one
    ``cell_profile`` telemetry event and the campaign one
    ``campaign_profile`` summary, rendered by ``repro-experiments
    profile STORE``. Profiling shares telemetry's guarantee — no
    fingerprint, bit-identical stores on or off — and auto-enables a
    JSONL telemetry sink next to the store when no other telemetry
    destination is configured.

    ``execution`` is an :class:`repro.engine.scheduler.ExecutionBackend`
    that runs the campaign's pool-eligible jobs somewhere other than the
    local process pool (the campaign service's ``RemoteBackend`` leases
    them to registered workers). Caller-owned: the campaign never closes
    it. Like telemetry, it joins no job fingerprint — stores are
    bit-identical for any backend.
    """
    from repro.spec import coerce_spec
    # The kwarg era defaulted to the full-size presets here (the
    # harnesses passed the scaled ones explicitly); coerce_spec keeps
    # that default for every spec-less call — including a bare
    # run_campaign() — so shimmed results stay bit-identical and old
    # stores resume. A bare CampaignSpec() resolves to the scaled
    # presets instead.
    spec = coerce_spec(spec, legacy, who="run_campaign",
                       legacy_defaults={"gpus": list_gpus})

    scale = spec.resolved_scale()
    samples = spec.resolved_samples()
    shard_size = spec.resolved_shard_size()
    checkpoint_interval = spec.checkpoint_interval
    own_store = isinstance(store, (str, Path))
    if own_store:
        store = ResultStore(store)
    stats = stats if stats is not None else CampaignStats()
    from repro.telemetry import resolve_telemetry
    hub, own_hub = resolve_telemetry(
        spec.telemetry if telemetry is None else telemetry, store)
    profile_on = bool(spec.profile if profile is None else profile)
    if profile_on and hub is None:
        # Profile events need a telemetry destination; default to the
        # JSONL stream next to the store, like ``telemetry=True``.
        try:
            hub, own_hub = resolve_telemetry(True, store)
        except ConfigError:
            raise ConfigError(
                "profiling needs somewhere to emit its events: give the "
                "campaign a persistent store (the profile stream lands "
                "next to it) or an explicit telemetry destination"
            ) from None

    specs: list[JobSpec] = []
    cell_ids: list[str] = []
    for config, name, cell_structures in iter_cells(spec):
        roots, cell_id = _cell_jobs(
            config, name, scale, samples, spec.seed, spec.scheduler,
            cell_structures,
            spec.ace_mode, spec.raw_fit_per_bit, shard_size, store,
            spec.fault_model,
            checkpoint_interval=checkpoint_interval,
            inline=workers <= 1 and execution is None,
            profile=profile_on,
            suffix_memo=spec.resolved_suffix_memo())
        specs.extend(roots)
        cell_ids.append(cell_id)
    if not specs:
        raise ConfigError(
            f"no runnable cells: none of the structures "
            f"{', '.join(spec.resolved_structures())} are exposed by the "
            f"selected GPUs"
        )

    # Campaign-level profile accumulator (folded from cell_profile
    # payloads as cells finish; profiled work time feeds the report's
    # coverage line).
    campaign_prof = {"data": None, "cells": 0, "work_s": 0.0}

    def on_complete(job: JobSpec, payload: dict, cached: bool) -> None:
        if job.kind == jobs.CELL:
            prof = payload.pop("_profile", None) if profile_on else None
            if hub is not None:
                hub.record("cell_finish", **_cell_event(payload, cached))
                if prof is not None:
                    hub.record(
                        "cell_profile",
                        gpu=payload.get("gpu"),
                        workload=payload.get("workload"),
                        fault_model=payload.get("fault_model"),
                        structures=sorted(payload.get("fi", {})),
                        profile=prof)
            if prof is not None:
                campaign_prof["data"] = merge_profiles(
                    campaign_prof["data"], prof)
                campaign_prof["cells"] += 1
                campaign_prof["work_s"] += (
                    payload.get("golden_time_s", 0.0)
                    + payload.get("fi_time_s", 0.0))
            if progress is not None:
                progress(jobs.cell_from_payload(payload))

    begin = time.perf_counter()
    # Shared stats objects accumulate across campaigns (sweeps, `all`);
    # campaign_end reports this campaign's delta, not the running sum.
    base = (stats.total, stats.cached, stats.executed)
    if hub is not None:
        hub.record(
            "campaign_begin",
            name=spec.name,
            spec=spec.describe(),
            gpus=[config.name for config in spec.resolved_gpus()],
            workloads=spec.resolved_workloads(),
            scale=scale, samples=samples, seed=spec.seed,
            fault_model=spec.fault_model,
            structures=list(spec.resolved_structures()),
            backend=",".join(sorted({g.backend
                                     for g in spec.resolved_gpus()})),
            suffix_memo=spec.resolved_suffix_memo(),
            cells=len(cell_ids), workers=workers,
            store=str(store.path) if store is not None and store.path
            else None)
    try:
        resolved = JobScheduler(store=store, workers=workers,
                                telemetry=hub, execution=execution).run(
            specs, on_complete=on_complete, stats=stats)
        if hub is not None and campaign_prof["data"] is not None:
            hub.record(
                "campaign_profile", name=spec.name,
                cells=campaign_prof["cells"],
                work_s=campaign_prof["work_s"],
                profile=campaign_prof["data"])
        if hub is not None:
            hub.record(
                "campaign_end", name=spec.name, cells=len(cell_ids),
                jobs_total=stats.total - base[0],
                jobs_cached=stats.cached - base[1],
                jobs_executed=stats.executed - base[2],
                wall_s=time.perf_counter() - begin)
    finally:
        if own_hub and hub is not None:
            hub.close()
        if own_store:
            store.close()
    cells: list[CellResult] = [
        jobs.cell_from_payload(resolved[cell_id]) for cell_id in cell_ids
    ]
    return CampaignResult(cells=cells, stats=stats)


def _cell_event(payload: dict, cached: bool) -> dict:
    """Scalar cell_finish telemetry fields from one cell payload.

    ``injections`` counts every sampled plan across the cell's
    structures, ``resimulated`` the subset that survived dead-site
    pruning and was actually re-simulated — the FI shards' true work,
    and the numerator of the `status` view's samples/sec.
    """
    estimates = payload.get("fi", {})
    injections = sum(est.get("samples", 0) for est in estimates.values())
    resimulated = sum(est.get("resimulated", 0) for est in estimates.values())
    fi_time_s = payload.get("fi_time_s", 0.0)
    return {
        "gpu": payload.get("gpu"),
        "workload": payload.get("workload"),
        "cycles": payload.get("cycles"),
        "injections": injections,
        "resimulated": resimulated,
        "fi_time_s": fi_time_s,
        "samples_per_s": (resimulated / fi_time_s) if fi_time_s else None,
        "cached": cached,
    }
