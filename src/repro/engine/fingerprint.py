"""Canonical job fingerprints for the campaign execution engine.

Every job the engine runs (golden simulation, fault-plan/pruning pass,
FI re-simulation shard, reduced cell) is identified by a fingerprint:
the SHA-256 of the canonical JSON encoding of its *full* parameter set,
including the complete chip configuration down to the latency model.
Two jobs share a fingerprint iff they are guaranteed to produce the
same payload, so the persistent store can treat fingerprints as cache
keys across interrupted, resumed and repeated campaigns. Changing any
parameter — a latency, the sample count, the RNG seed, the ACE mode —
changes the fingerprint and invalidates exactly the affected jobs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.arch.config import GpuConfig
from repro.reliability.liveness import AceMode


def config_params(config: GpuConfig) -> dict:
    """Complete plain-data description of one chip (incl. latencies).

    The interpreter ``backend`` is stripped: vector and pure-python
    execution are bit-identical by contract (CI diffs their stores), so
    the backend is an execution resource like ``workers`` — the same
    chip fingerprints the same under either, and stores written before
    the backend field existed resume with zero jobs executed.
    """
    params = asdict(config)
    params.pop("backend", None)
    return params


def canonical_json(params: dict) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def fingerprint(kind: str, params: dict) -> str:
    """SHA-256 fingerprint of a job's kind + full parameter set."""
    text = canonical_json({"kind": kind, "params": params})
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Per-kind parameter sets (each nests its upstream job's fingerprint,
# so the whole dependency chain is captured transitively).
# ----------------------------------------------------------------------

def golden_params(config: GpuConfig, workload: str, scale: str,
                  scheduler: str, ace_mode: AceMode) -> dict:
    """Parameters of one traced fault-free run."""
    return {
        "config": config_params(config),
        "workload": workload,
        "scale": scale,
        "scheduler": scheduler,
        "ace_mode": ace_mode.value,
    }


def plan_params(golden_fp: str, samples: int, seed: int,
                structures: tuple,
                fault_model: str = "transient") -> dict:
    """Parameters of one fault-sampling + dead-site-pruning pass.

    The fault model is part of the plan identity, so campaigns with
    different models never collide in a store. The default transient
    model is *omitted* from the parameter set: its fingerprints stay
    byte-identical to the single-model era, so existing stores resume
    cleanly.
    """
    params = {
        "golden": golden_fp,
        "samples": samples,
        "seed": seed,
        "structures": list(structures),
    }
    if fault_model != "transient":
        params["fault_model"] = fault_model
    return params


def shard_params(plan_fp: str, start: int, stop: int) -> dict:
    """Parameters of one re-simulation shard over the sorted live plans."""
    return {"plan": plan_fp, "start": start, "stop": stop}


def cell_params(plan_fp: str, raw_fit_per_bit: float,
                checkpoint=None) -> dict:
    """Parameters of one reduced (GPU, benchmark) cell.

    Shard geometry is deliberately absent: the reduced cell is
    independent of how the live plans were sharded, so changing the
    shard size never invalidates finished cells.

    ``checkpoint`` — the campaign's checkpoint interval ("auto" or a
    cycle count) — joins the identity only when checkpointing is on;
    disabled campaigns keep the pre-checkpoint fingerprints, so old
    stores resume unchanged. Golden/plan/shard fingerprints never
    carry it: their payloads are bit-identical either way, so a
    checkpointed resume of an un-checkpointed store reuses every
    simulation job and re-reduces only the (driver-side, cheap) cells.
    """
    params = {"plan": plan_fp, "raw_fit_per_bit": raw_fit_per_bit}
    if checkpoint is not None:
        params["checkpoint"] = checkpoint
    return params
