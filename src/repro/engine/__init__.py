"""Campaign execution engine: job graphs, persistent results, resume.

The engine turns a matrix campaign into a DAG of fingerprinted jobs
(golden runs -> fault plans -> FI shards -> reduced cells), schedules
them across a process pool so whole cells run concurrently, shares
golden runs between campaigns, and persists every finished job so
interrupted runs resume (``--resume``) and repeated runs are
incremental — all bit-identical to the serial path.

* :mod:`repro.engine.fingerprint` — canonical full-parameter job keys
* :mod:`repro.engine.store` — append-only JSONL result store
* :mod:`repro.engine.jobs` — job bodies and payload codecs
* :mod:`repro.engine.scheduler` — dependency-aware pool scheduler
* :mod:`repro.engine.matrix` — matrix campaigns (:func:`run_campaign`)
* :mod:`repro.engine.service` — distributed campaigns (coordinator /
  worker fleet over JSON-HTTP, bit-identical to the local pool)
"""

from repro.engine.fingerprint import (
    canonical_json,
    cell_params,
    config_params,
    fingerprint,
    golden_params,
    plan_params,
    shard_params,
)
from repro.engine.matrix import (
    DEFAULT_SHARD_SIZE,
    CampaignResult,
    cell_fingerprints,
    iter_cells,
    run_campaign,
)
from repro.engine.scheduler import (
    CampaignStats,
    ExecutionBackend,
    JobScheduler,
    JobSpec,
    ProcessPoolBackend,
    clear_memory_cache,
)
from repro.engine.service import (
    CampaignService,
    CampaignWorker,
    CoordinatorClient,
    CoordinatorServer,
    CoordinatorUnreachable,
    RemoteBackend,
)
from repro.engine.store import ResultStore

__all__ = [
    "CampaignResult",
    "CampaignService",
    "CampaignStats",
    "CampaignWorker",
    "CoordinatorClient",
    "CoordinatorServer",
    "CoordinatorUnreachable",
    "DEFAULT_SHARD_SIZE",
    "ExecutionBackend",
    "JobScheduler",
    "JobSpec",
    "ProcessPoolBackend",
    "RemoteBackend",
    "ResultStore",
    "canonical_json",
    "cell_fingerprints",
    "cell_params",
    "iter_cells",
    "clear_memory_cache",
    "config_params",
    "fingerprint",
    "golden_params",
    "plan_params",
    "run_campaign",
    "shard_params",
]
