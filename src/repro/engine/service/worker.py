"""The campaign worker runtime: lease, execute, push, heartbeat.

A worker is a plain process anywhere that can reach the coordinator
over HTTP. It registers, then loops: pull a lease, decode the argument
list (fetching + caching golden output blobs by fingerprint), run the
job through the *same* worker functions the process pool uses
(:mod:`repro.engine.jobs` — vector backend, per-process snapshot
rebuild, suffix memo all intact), and push the payload back. A
background heartbeat renews held leases at a third of the TTL, so a
live worker grinding through a long shard never expires, while a
killed one silently does — the coordinator re-queues its lease and the
campaign finishes without it.

Fault tolerance on the worker side is the optional *segment store*: a
local :class:`~repro.engine.store.ResultStore` every computed payload
is appended to before the push. A worker that computed a result but
died (or lost the network) mid-push replays its segment on the next
start; the coordinator merges replayed records idempotently — a
duplicate fingerprint appends nothing — so segments make pushes
at-least-once without ever making the store more-than-once.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import urllib.parse
from http.client import HTTPConnection, HTTPException

from repro.engine import jobs
from repro.engine.service import protocol
from repro.errors import ConfigError

#: kind -> module-level worker function (the process pool's own map).
WORKER_FUNCTIONS = {
    jobs.GOLDEN: jobs.run_golden_job,
    jobs.PLAN: jobs.run_plan_job,
    jobs.SHARD: jobs.run_shard_job,
}

#: Decoded golden blobs cached per worker (a cell's shards share one).
_GOLDEN_CACHE_MAX = 8


class CoordinatorUnreachable(ConnectionError):
    """The coordinator did not answer (died, or not started yet)."""


class CoordinatorClient:
    """Minimal JSON-over-HTTP client for the coordinator endpoints.

    One fresh connection per request: the client is talking to a
    threading server about jobs that take seconds to minutes, so
    connection reuse buys nothing and stale-socket handling costs
    plenty.
    """

    def __init__(self, url: str, timeout: float = 10.0):
        parsed = urllib.parse.urlparse(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ConfigError(
                f"coordinator URL must look like http://host:port, "
                f"got {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    def _request(self, method: str, path: str, body=None) -> dict:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            headers = {"Content-Type": "application/json"} if payload \
                else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except (OSError, HTTPException) as error:
            raise CoordinatorUnreachable(
                f"coordinator at {self.host}:{self.port} unreachable: "
                f"{error}") from error
        finally:
            conn.close()
        try:
            return json.loads(data)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CoordinatorUnreachable(
                f"coordinator at {self.host}:{self.port} returned a "
                f"non-JSON response: {error}") from error

    def post(self, path: str, body: dict) -> dict:
        return self._request("POST", path, body)

    def get(self, path: str) -> dict:
        return self._request("GET", path)


class CampaignWorker:
    """One fleet member: register -> (lease, execute, push)* -> exit.

    ``give_up_s`` bounds how long the worker retries an unreachable
    coordinator (both at registration and mid-loop) before exiting —
    a fleet must drain itself when the coordinator is gone for good,
    not hold hosts hostage.
    """

    def __init__(self, url: str, worker_id: str | None = None, *,
                 poll_s: float = 0.2, give_up_s: float = 30.0,
                 segment_store=None, quiet: bool = True):
        self.client = CoordinatorClient(url)
        self.worker_id = worker_id or \
            f"{socket.gethostname()}-{os.getpid()}"
        self.poll_s = poll_s
        self.give_up_s = give_up_s
        self.segment_store = segment_store
        self.quiet = quiet
        self.lease_ttl_s = 30.0  # refined by the register response
        self.counters = {"executed": 0, "pushed": 0, "duplicates": 0,
                         "rejected": 0, "replayed": 0}
        self._golden_cache: dict[str, dict] = {}
        self._held_leases: set[str] = set()
        self._leases_lock = threading.Lock()
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if not self.quiet:
            import sys
            print(f"[worker {self.worker_id}] {message}",
                  file=sys.stderr, flush=True)

    def _fetch_golden(self, fingerprint: str) -> dict:
        blob = self._golden_cache.get(fingerprint)
        if blob is None:
            response = self.client.get(protocol.GOLDEN_PATH + fingerprint)
            if not response.get("ok"):
                raise CoordinatorUnreachable(
                    f"coordinator has no golden blob {fingerprint[:12]}…")
            blob = response["outputs"]
            if len(self._golden_cache) >= _GOLDEN_CACHE_MAX:
                self._golden_cache.pop(next(iter(self._golden_cache)))
            self._golden_cache[fingerprint] = blob
        return blob

    def _with_retries(self, call):
        """Run one client call, retrying until ``give_up_s`` elapses."""
        deadline = time.monotonic() + self.give_up_s
        while True:
            try:
                return call()
            except CoordinatorUnreachable:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(self.poll_s)

    # ------------------------------------------------------------------
    def register(self) -> None:
        response = self._with_retries(lambda: self.client.post(
            protocol.REGISTER_PATH,
            {"worker_id": self.worker_id,
             "version": protocol.PROTOCOL_VERSION}))
        if not response.get("ok"):
            raise ConfigError(
                f"coordinator refused registration: "
                f"{response.get('error', 'unknown error')}")
        self.lease_ttl_s = float(response.get("lease_ttl_s", 30.0))
        self._log(f"registered (lease ttl {self.lease_ttl_s:.0f}s)")

    def replay_segment(self) -> None:
        """Push every record of the local segment store (idempotent)."""
        if self.segment_store is None:
            return
        for fingerprint in list(self.segment_store._records):
            kind = self.segment_store.kind_of(fingerprint)
            payload = self.segment_store.get(fingerprint)
            try:
                response = self.client.post(protocol.PUSH_PATH, {
                    "worker_id": self.worker_id, "fingerprint": fingerprint,
                    "kind": kind, "payload": payload})
            except CoordinatorUnreachable:
                return  # best effort; the lease machinery recovers
            if response.get("ok"):
                self.counters["replayed"] += 1

    def _heartbeat_loop(self) -> None:
        interval = max(0.05, self.lease_ttl_s / 3.0)
        while not self._stop.wait(interval):
            with self._leases_lock:
                leases = list(self._held_leases)
            try:
                response = self.client.post(protocol.HEARTBEAT_PATH, {
                    "worker_id": self.worker_id, "lease_ids": leases})
            except CoordinatorUnreachable:
                continue  # the main loop owns give-up policy
            if response.get("shutdown"):
                self._stop.set()

    # ------------------------------------------------------------------
    def _execute(self, lease_id: str, job: dict) -> None:
        kind, fingerprint = job["kind"], job["fingerprint"]
        args = protocol.decode_args(kind, job["args"], self._fetch_golden)
        self._log(f"executing {kind} {fingerprint[:12]}…")
        with self._leases_lock:
            self._held_leases.add(lease_id)
        try:
            payload = WORKER_FUNCTIONS[kind](args)
        finally:
            with self._leases_lock:
                self._held_leases.discard(lease_id)
        self.counters["executed"] += 1
        # Ephemeral keys are process-local extras (snapshots are not
        # JSON-safe); the store would strip them anyway — don't ship.
        payload = {k: v for k, v in payload.items()
                   if not k.startswith("_") or k == "_profile"}
        if self.segment_store is not None:
            self.segment_store.put(fingerprint, kind, payload)
        response = self._with_retries(lambda: self.client.post(
            protocol.PUSH_PATH, {
                "worker_id": self.worker_id, "lease_id": lease_id,
                "fingerprint": fingerprint, "kind": kind,
                "payload": payload}))
        if response.get("ok"):
            self.counters["pushed"] += 1
            if response.get("duplicate"):
                self.counters["duplicates"] += 1
        else:
            self.counters["rejected"] += 1
            self._log(f"push rejected: {response.get('error')}")

    def run(self) -> dict:
        """The worker main loop; returns the session's counters."""
        self.register()
        self.replay_segment()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="worker-heartbeat",
            daemon=True)
        heartbeat.start()
        try:
            while not self._stop.is_set():
                try:
                    response = self._with_retries(lambda: self.client.post(
                        protocol.LEASE_PATH,
                        {"worker_id": self.worker_id}))
                except CoordinatorUnreachable:
                    self._log("coordinator gone; exiting")
                    break
                if response.get("shutdown"):
                    self._log("coordinator finished; exiting")
                    break
                job = response.get("job")
                if not job:
                    time.sleep(self.poll_s)
                    continue
                self._execute(response["lease_id"], job)
        finally:
            self._stop.set()
            heartbeat.join(timeout=2.0)
        return dict(self.counters)
