"""Wire format of the campaign service: JSON codecs and endpoint names.

The coordinator and its workers speak a small JSON-over-HTTP protocol
(stdlib only — ``http.server`` on one side, ``http.client`` on the
other). Everything on the wire is plain JSON; the two non-JSON values
in a job's argument tuple get explicit markers:

* a :class:`~repro.arch.config.GpuConfig` travels as
  ``{"__gpu__": {...dataclass fields...}}`` (the spec-file embedding,
  bit-exact round trip);
* a shard job's golden output buffers — by far the largest argument —
  are replaced by ``{"__golden_outputs__": "<golden fp>"}``; the
  worker fetches the blob once per golden via ``GET /v1/golden/<fp>``
  and caches it, so a cell's many shards ship kilobytes instead of
  re-sending megabytes of base64 per lease.

Tuples flatten to JSON lists; every consumer downstream
(:mod:`repro.engine.jobs`) already tuples what it needs
(``plan_from_key(tuple(key))``), so a decoded argument list is handed
to the exact same worker functions the process pool runs. Payloads
pushed back are the worker functions' own JSON-safe dicts — Python's
``json`` round-trips ints, strings and floats exactly, which is what
makes a distributed store bit-identical to a local one.
"""

from __future__ import annotations

import dataclasses
import json

from repro.arch.config import GpuConfig, LatencyModel
from repro.engine import jobs

#: Version of the coordinator/worker wire protocol. A worker refuses
#: to register against a coordinator speaking a different version.
PROTOCOL_VERSION = 1

#: Marker key for an embedded GpuConfig in an encoded argument list.
GPU_KEY = "__gpu__"
#: Marker key replacing a shard job's golden output blobs.
GOLDEN_OUTPUTS_KEY = "__golden_outputs__"

#: Endpoint paths (all under one version prefix so the protocol can
#: evolve without breaking old workers mid-fleet).
REGISTER_PATH = "/v1/register"
LEASE_PATH = "/v1/lease"
PUSH_PATH = "/v1/push"
HEARTBEAT_PATH = "/v1/heartbeat"
GOLDEN_PATH = "/v1/golden/"  # + fingerprint
SUBMIT_PATH = "/v1/submit"
STATUS_PATH = "/v1/status"

#: Payload keys every push of a kind must carry — the coordinator's
#: malformed-push gate. Ephemeral ``_``-keys are optional extras.
REQUIRED_PAYLOAD_KEYS = {
    jobs.GOLDEN: ("cycles", "launch_cycles", "ace", "occupancy",
                  "wall_time_s", "outputs"),
    jobs.PLAN: ("plans", "wall_time_s"),
    jobs.SHARD: ("results", "wall_time_s"),
}


def encode_gpu(config: GpuConfig) -> dict:
    """One GpuConfig as a marker dict (bit-exact round trip)."""
    return {GPU_KEY: dataclasses.asdict(config)}


def decode_gpu(marker: dict) -> GpuConfig:
    """Inverse of :func:`encode_gpu`."""
    params = dict(marker[GPU_KEY])
    latency = params.pop("latency", None)
    if latency is not None:
        params["latency"] = LatencyModel(**latency)
    return GpuConfig(**params)


def encode_args(kind: str, args: tuple) -> list:
    """A job's argument tuple as a JSON-safe list.

    GpuConfigs become marker dicts; a shard job's golden outputs
    (element 6, with the owning golden fingerprint at element 5) become
    a fetch-by-fingerprint marker, and its snapshots element (9) is
    forced to ``None`` — remote shard workers rebuild snapshot sets
    from the golden fingerprint exactly like pooled ones do, which is
    bit-identical by the checkpoint layer's contract.
    """
    encoded = [encode_gpu(a) if isinstance(a, GpuConfig) else a
               for a in args]
    if kind == jobs.SHARD:
        encoded[6] = {GOLDEN_OUTPUTS_KEY: encoded[5]}
        if len(encoded) > 9:
            encoded[9] = None
    return encoded


def decode_args(kind: str, encoded: list, fetch_golden) -> tuple:
    """Inverse of :func:`encode_args` on the worker side.

    ``fetch_golden(fp)`` resolves a golden-outputs marker to the
    encoded output-buffer dict (the worker's cached ``GET /v1/golden``
    result).
    """
    args = []
    for element in encoded:
        if isinstance(element, dict):
            if GPU_KEY in element:
                element = decode_gpu(element)
            elif GOLDEN_OUTPUTS_KEY in element:
                element = fetch_golden(element[GOLDEN_OUTPUTS_KEY])
        args.append(element)
    return tuple(args)


def check_payload(kind: str, payload) -> str | None:
    """``None`` when a pushed payload is well-formed, else the problem.

    A malformed push is *rejected*, never appended: the store is the
    result of record, and one worker speaking garbage must not poison
    a multi-hour campaign.
    """
    if not isinstance(payload, dict):
        return f"payload must be an object, got {type(payload).__name__}"
    required = REQUIRED_PAYLOAD_KEYS.get(kind)
    if required is None:
        return f"unknown job kind {kind!r}"
    missing = [key for key in required if key not in payload]
    if missing:
        return f"{kind} payload missing keys: {', '.join(missing)}"
    try:
        json.dumps(payload)
    except (TypeError, ValueError):
        return "payload is not JSON-serializable"
    return None
