"""Distributed campaign service: coordinator, workers, wire protocol.

The campaign engine's pool-eligible jobs (golden runs, fault-plan
sampling, FI shards) are pure functions of their fingerprinted
parameters — so *where* they execute is a free choice. This package
makes that choice network-wide: a :class:`CampaignService` coordinator
expands campaigns exactly like a local run and leases ready jobs over
JSON-HTTP to any number of :class:`CampaignWorker` processes, with a
heartbeat + lease-timeout state machine recovering the work of a dead
worker and an idempotent push path keeping the shared
:class:`~repro.engine.store.ResultStore` append-once per fingerprint.

The contract is the engine's own: a distributed store is bit-identical
to the single-host process-pool store (``scripts/diff_stores.py``
gates it in CI), and any pre-service store resumes under the
coordinator with zero jobs executed.

Entry points: ``repro-experiments serve SPEC...`` (coordinator),
``repro-experiments worker URL`` (fleet member), and
``repro-experiments submit URL SPEC...`` (queue more campaigns onto a
live coordinator).
"""

from repro.engine.service.coordinator import (
    DEFAULT_LEASE_TTL_S,
    CampaignService,
    CoordinatorServer,
    RemoteBackend,
)
from repro.engine.service.protocol import PROTOCOL_VERSION
from repro.engine.service.worker import (
    CampaignWorker,
    CoordinatorClient,
    CoordinatorUnreachable,
)

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_LEASE_TTL_S",
    "RemoteBackend",
    "CoordinatorServer",
    "CampaignService",
    "CampaignWorker",
    "CoordinatorClient",
    "CoordinatorUnreachable",
]
