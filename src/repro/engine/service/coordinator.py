"""The campaign coordinator: lease queue, HTTP endpoints, serve loop.

Three layers, innermost first:

* :class:`RemoteBackend` — an
  :class:`~repro.engine.scheduler.ExecutionBackend` whose ``submit``
  enqueues each ready pool job into a FIFO lease queue instead of a
  process pool. Registered workers pull leases over HTTP and push
  payloads back; the handler threads complete the scheduler's Futures,
  and the scheduler's driver loop (``wait`` with a timeout +
  ``tick()``) keeps the lease state machine running even while nothing
  finishes. The backend is the whole fault-tolerance story: a lease
  that outlives its TTL without a heartbeat is *expired* — re-queued
  at the front so recovery does not wait behind fresh work — and a job
  that expires too many times fails the campaign loudly instead of
  looping forever.
* :class:`CoordinatorServer` — a stdlib ``ThreadingHTTPServer``
  translating the wire protocol (:mod:`.protocol`) onto the backend.
* :class:`CampaignService` — the ``repro-experiments serve`` body: it
  owns the shared :class:`~repro.engine.store.ResultStore`, drains a
  queue of :class:`~repro.spec.CampaignSpec`\\ s (initial + those
  POSTed to ``/v1/submit`` while serving) through
  :func:`~repro.engine.matrix.run_campaign` with the backend plugged
  in, then flags shutdown so idle workers exit.

Everything the coordinator appends to the store went through the same
scheduler/fingerprint path a local campaign uses — the service adds
transport, not semantics — so a distributed store is bit-identical to
the process-pool store and any pre-service store resumes under the
coordinator with zero jobs executed.

Telemetry from handler threads is staged in a queue and drained by
``tick()``/``flush_telemetry()`` on the driver thread, keeping the
(hub-thread-unsafe) sink fan-out single-threaded.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from concurrent.futures import Future
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.engine.scheduler import ExecutionBackend, JobSpec
from repro.engine.service import protocol
from repro.errors import ConfigError

#: Default seconds a lease may go un-heartbeaten before it expires.
DEFAULT_LEASE_TTL_S = 30.0

#: Times one job may be re-queued after lease expiry before the
#: campaign fails loudly (a job that kills every worker that touches
#: it must not ping-pong forever).
MAX_REQUEUES = 5


class _RemoteJob:
    """One pool job waiting to execute somewhere in the fleet."""

    __slots__ = ("job", "encoded_args", "future", "attempts")

    def __init__(self, job: JobSpec, encoded_args: list):
        self.job = job
        self.encoded_args = encoded_args
        self.future: Future = Future()
        self.attempts = 0


class _Lease:
    """One granted (job, worker) assignment with a deadline."""

    __slots__ = ("lease_id", "job_id", "worker_id", "deadline")

    def __init__(self, lease_id: str, job_id: str, worker_id: str,
                 deadline: float):
        self.lease_id = lease_id
        self.job_id = job_id
        self.worker_id = worker_id
        self.deadline = deadline


class RemoteBackend(ExecutionBackend):
    """Lease-queue execution backend behind the coordinator endpoints.

    ``clock`` is injectable (tests drive lease expiry deterministically
    with a fake clock); it must be monotonic. All state is guarded by
    one lock — every operation is a dict/deque update, so contention is
    negligible next to the simulations the fleet is running.
    """

    def __init__(self, telemetry=None, lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
                 clock=time.monotonic, max_requeues: int = MAX_REQUEUES):
        self.telemetry = telemetry
        self.lease_ttl_s = float(lease_ttl_s)
        self.clock = clock
        self.max_requeues = max_requeues
        self._lock = threading.Lock()
        self._jobs: dict[str, _RemoteJob] = {}
        self._ready: deque[str] = deque()
        self._leases: dict[str, _Lease] = {}
        self._workers: dict[str, dict] = {}
        self._golden_blobs: dict[str, dict] = {}
        self._done: set[str] = set()
        self._events: deque[tuple[str, dict]] = deque()
        self._shutdown = False
        self.counters = {
            "workers_registered": 0, "leases_granted": 0,
            "leases_expired": 0, "pushes_ok": 0, "pushes_duplicate": 0,
            "pushes_rejected": 0, "jobs_failed": 0,
        }

    # -- telemetry staging (handler threads enqueue, driver drains) ----
    def _emit(self, event_type: str, **fields) -> None:
        if self.telemetry is not None:
            self._events.append((event_type, fields))

    def flush_telemetry(self) -> None:
        """Hand staged fleet events to the hub (driver thread only)."""
        while self._events:
            event_type, fields = self._events.popleft()
            self.telemetry.record(event_type, **fields)

    # -- ExecutionBackend ----------------------------------------------
    def submit(self, job: JobSpec, args: tuple) -> Future:
        encoded = protocol.encode_args(job.kind, args)
        if job.kind == "shard":
            # Publish the golden blob once; every shard of the cell
            # ships a fingerprint-sized marker instead (workers fetch
            # and cache via GET /v1/golden/<fp>).
            self._golden_blobs.setdefault(encoded[5], args[6])
        remote = _RemoteJob(job, encoded)
        with self._lock:
            self._jobs[job.job_id] = remote
            self._ready.append(job.job_id)
        return remote.future

    def tick(self) -> None:
        now = self.clock()
        failed = []
        with self._lock:
            for lease in [l for l in self._leases.values()
                          if l.deadline <= now]:
                del self._leases[lease.lease_id]
                remote = self._jobs.get(lease.job_id)
                if remote is None:
                    continue  # pushed between deadline and sweep
                self.counters["leases_expired"] += 1
                self._emit("lease_expire", kind=remote.job.kind,
                           fp=remote.job.fingerprint,
                           worker=lease.worker_id,
                           attempts=remote.attempts)
                if remote.attempts > self.max_requeues:
                    del self._jobs[lease.job_id]
                    failed.append(remote)
                else:
                    # Front of the queue: recovery work preempts fresh
                    # work, so one flaky worker cannot starve a cell.
                    self._ready.appendleft(lease.job_id)
        for remote in failed:
            self.counters["jobs_failed"] += 1
            remote.future.set_exception(RuntimeError(
                f"{remote.job.kind} job {remote.job.fingerprint[:12]}… "
                f"failed {remote.attempts} leases (workers died or "
                f"timed out); raising instead of re-queueing forever"))
        self.flush_telemetry()

    def close(self) -> None:  # caller-owned; nothing pooled to release
        pass

    # -- endpoint bodies (called from HTTP handler threads) ------------
    def register(self, worker_id: str, version=protocol.PROTOCOL_VERSION):
        if version != protocol.PROTOCOL_VERSION:
            return {"ok": False,
                    "error": f"protocol version {version} != coordinator "
                             f"{protocol.PROTOCOL_VERSION}"}
        with self._lock:
            known = worker_id in self._workers
            self._workers[worker_id] = {"last_seen": self.clock(),
                                        "acked_shutdown": False}
        if not known:
            self.counters["workers_registered"] += 1
            self._emit("worker_register", worker=worker_id)
        return {"ok": True, "lease_ttl_s": self.lease_ttl_s,
                "version": protocol.PROTOCOL_VERSION}

    def lease(self, worker_id: str) -> dict:
        with self._lock:
            self._touch(worker_id)
            if self._shutdown:
                self._workers.setdefault(worker_id, {})[
                    "acked_shutdown"] = True
                return {"ok": True, "job": None, "shutdown": True}
            while self._ready:
                job_id = self._ready.popleft()
                if job_id in self._done or job_id not in self._jobs:
                    continue  # completed by a late push while queued
                remote = self._jobs[job_id]
                remote.attempts += 1
                lease_id = uuid.uuid4().hex
                self._leases[lease_id] = _Lease(
                    lease_id, job_id, worker_id,
                    self.clock() + self.lease_ttl_s)
                self.counters["leases_granted"] += 1
                self._emit("lease_grant", kind=remote.job.kind,
                           fp=remote.job.fingerprint, worker=worker_id,
                           attempts=remote.attempts)
                return {"ok": True, "lease_id": lease_id,
                        "job": {"kind": remote.job.kind,
                                "fingerprint": remote.job.fingerprint,
                                "args": remote.encoded_args}}
            return {"ok": True, "job": None, "shutdown": False}

    def push(self, worker_id: str, fingerprint, kind, payload,
             lease_id=None) -> dict:
        def reject(reason: str) -> dict:
            self.counters["pushes_rejected"] += 1
            self._emit("job_push", worker=worker_id, ok=False,
                       fp=fingerprint if isinstance(fingerprint, str)
                       else None, reason=reason)
            return {"ok": False, "error": reason}

        if not isinstance(fingerprint, str) or not fingerprint:
            return reject("missing fingerprint")
        with self._lock:
            self._touch(worker_id)
            if fingerprint in self._done:
                # Idempotent: the payload is a pure function of the
                # fingerprinted parameters, so a duplicate (expired
                # lease raced its own worker, or a replayed segment)
                # carries nothing new. Nothing is appended twice.
                self.counters["pushes_duplicate"] += 1
                self._emit("job_push", worker=worker_id, ok=True,
                           fp=fingerprint, duplicate=True, kind=kind)
                return {"ok": True, "duplicate": True}
            remote = self._jobs.get(fingerprint)
            if remote is None:
                return reject(f"stale fingerprint {fingerprint[:12]}…: "
                              f"no such job pending")
            if kind != remote.job.kind:
                return reject(f"kind {kind!r} does not match pending "
                              f"{remote.job.kind!r} job")
            problem = protocol.check_payload(remote.job.kind, payload)
            if problem is not None:
                return reject(problem)
            del self._jobs[fingerprint]
            self._done.add(fingerprint)
            if lease_id is not None:
                self._leases.pop(lease_id, None)
            self.counters["pushes_ok"] += 1
            self._emit("job_push", worker=worker_id, ok=True,
                       fp=fingerprint, kind=kind, duplicate=False)
        # Outside the lock: completes the scheduler's Future, which
        # runs finish() callbacks on the driver thread's next wait().
        remote.future.set_result(payload)
        return {"ok": True, "duplicate": False}

    def heartbeat(self, worker_id: str, lease_ids=()) -> dict:
        with self._lock:
            self._touch(worker_id)
            deadline = self.clock() + self.lease_ttl_s
            renewed = 0
            for lease_id in lease_ids or ():
                lease = self._leases.get(lease_id)
                if lease is not None and lease.worker_id == worker_id:
                    lease.deadline = deadline
                    renewed += 1
            if self._shutdown:
                self._workers.setdefault(worker_id, {})[
                    "acked_shutdown"] = True
            return {"ok": True, "renewed": renewed,
                    "shutdown": self._shutdown}

    def golden_blob(self, fingerprint: str) -> dict | None:
        return self._golden_blobs.get(fingerprint)

    def status(self) -> dict:
        with self._lock:
            return {"ok": True, "pending": len(self._jobs),
                    "ready": len(self._ready), "leased": len(self._leases),
                    "workers": len(self._workers), "done": len(self._done),
                    "shutdown": self._shutdown, **self.counters}

    # -- shutdown handshake --------------------------------------------
    def set_shutdown(self) -> None:
        with self._lock:
            self._shutdown = True

    def all_workers_acked(self) -> bool:
        with self._lock:
            return all(info.get("acked_shutdown")
                       for info in self._workers.values())

    def _touch(self, worker_id: str) -> None:
        info = self._workers.get(worker_id)
        if info is not None:
            info["last_seen"] = self.clock()


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------

class CoordinatorServer:
    """The coordinator's HTTP face (stdlib ``ThreadingHTTPServer``).

    ``submit_spec`` (optional) is the ``POST /v1/submit`` hook: a
    callable taking one spec dict, returning a response dict — wired to
    :meth:`CampaignService.enqueue_spec` by ``serve``.
    """

    def __init__(self, backend: RemoteBackend, host: str = "127.0.0.1",
                 port: int = 0, submit_spec=None):
        self.backend = backend
        self.submit_spec = submit_spec
        self.httpd = ThreadingHTTPServer((host, port), self._handler())
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="coordinator-http",
            daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args):  # keep campaign stderr clean
                pass

            def _reply(self, obj: dict, code: int = 200) -> None:
                body = json.dumps(obj).encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                backend = server.backend
                if self.path.startswith(protocol.GOLDEN_PATH):
                    fp = self.path[len(protocol.GOLDEN_PATH):]
                    blob = backend.golden_blob(fp)
                    if blob is None:
                        self._reply({"ok": False,
                                     "error": f"unknown golden {fp[:12]}…"},
                                    code=404)
                    else:
                        self._reply({"ok": True, "outputs": blob})
                elif self.path == protocol.STATUS_PATH:
                    self._reply(backend.status())
                else:
                    self._reply({"ok": False, "error": "not found"},
                                code=404)

            def do_POST(self):
                backend = server.backend
                try:
                    length = int(self.headers.get("Content-Length", 0))
                    data = json.loads(self.rfile.read(length) or b"{}")
                    if not isinstance(data, dict):
                        raise ValueError("body must be an object")
                except (ValueError, json.JSONDecodeError) as error:
                    self._reply({"ok": False,
                                 "error": f"bad request body: {error}"},
                                code=400)
                    return
                worker = data.get("worker_id", "?")
                if self.path == protocol.REGISTER_PATH:
                    self._reply(backend.register(
                        worker, data.get("version")))
                elif self.path == protocol.LEASE_PATH:
                    self._reply(backend.lease(worker))
                elif self.path == protocol.PUSH_PATH:
                    result = backend.push(
                        worker, data.get("fingerprint"), data.get("kind"),
                        data.get("payload"), lease_id=data.get("lease_id"))
                    self._reply(result, code=200 if result["ok"] else 409)
                elif self.path == protocol.HEARTBEAT_PATH:
                    self._reply(backend.heartbeat(
                        worker, data.get("lease_ids", ())))
                elif self.path == protocol.SUBMIT_PATH:
                    if server.submit_spec is None:
                        self._reply({"ok": False,
                                     "error": "coordinator does not accept "
                                              "submissions"}, code=403)
                    else:
                        result = server.submit_spec(data.get("spec"))
                        self._reply(result,
                                    code=200 if result.get("ok") else 400)
                else:
                    self._reply({"ok": False, "error": "not found"},
                                code=404)

        return Handler


# ----------------------------------------------------------------------
# Serve loop
# ----------------------------------------------------------------------

class CampaignService:
    """Drain a queue of campaign specs through one shared store/fleet.

    The serve loop runs each spec through the ordinary
    :func:`~repro.engine.matrix.run_campaign` — same expansion, same
    fingerprints, same caching — with the :class:`RemoteBackend`
    plugged in, so the *only* difference from a local run is where the
    pool jobs execute. Specs POSTed to ``/v1/submit`` while a campaign
    runs are appended to the queue and picked up when the current one
    finishes.
    """

    #: Seconds to keep serving after the last campaign so idle workers
    #: observe the shutdown flag instead of a connection error.
    SHUTDOWN_LINGER_S = 5.0

    def __init__(self, store, specs, *, host: str = "127.0.0.1",
                 port: int = 0, lease_ttl_s=None, telemetry=None,
                 profile=None, progress=None, clock=time.monotonic):
        from repro.spec import CampaignSpec
        self.store = store
        self.specs: deque = deque()
        for spec in specs:
            if not isinstance(spec, CampaignSpec):
                raise ConfigError(
                    f"serve expects CampaignSpecs, got "
                    f"{type(spec).__name__}")
            self.specs.append(spec)
        ttl = lease_ttl_s
        if ttl is None:
            for spec in self.specs:  # first spec naming a TTL wins
                ttl = getattr(spec, "lease_ttl_s", None)
                if ttl is not None:
                    break
        if telemetry is None:
            # Defer to the specs, like run_campaign would — but resolve
            # once here so fleet events and campaign events share one
            # hub (and one JSONL stream next to the store).
            for spec in self.specs:
                if spec.telemetry is not None:
                    telemetry = spec.telemetry
                    break
        from repro.telemetry import resolve_telemetry
        self.hub, self._own_hub = resolve_telemetry(telemetry, store)
        self.profile = profile
        self.progress = progress
        self.backend = RemoteBackend(
            telemetry=self.hub,
            lease_ttl_s=ttl if ttl is not None else DEFAULT_LEASE_TTL_S,
            clock=clock)
        self.server = CoordinatorServer(
            self.backend, host=host, port=port,
            submit_spec=self.enqueue_spec)
        self._lock = threading.Lock()

    @property
    def url(self) -> str:
        return self.server.url

    def enqueue_spec(self, data) -> dict:
        """``POST /v1/submit`` body: validate + queue one spec dict."""
        from repro.spec import CampaignSpec
        try:
            spec = CampaignSpec.from_dict(data)
        except (ConfigError, TypeError) as error:
            return {"ok": False, "error": str(error)}
        with self._lock:
            self.specs.append(spec)
        return {"ok": True, "queued": spec.name or spec.describe()}

    def run(self, on_campaign=None):
        """Serve until the spec queue drains; returns merged stats."""
        from repro.engine.matrix import run_campaign
        from repro.engine.scheduler import CampaignStats
        self.server.start()
        stats = CampaignStats()
        try:
            while True:
                with self._lock:
                    if not self.specs:
                        break
                    spec = self.specs.popleft()
                result = run_campaign(
                    spec, store=self.store, workers=1,
                    # False (not None) when no hub: the service already
                    # resolved the telemetry decision for the whole
                    # queue, so a spec field must not open a second hub
                    # that the fleet events would miss.
                    telemetry=self.hub if self.hub is not None else False,
                    profile=self.profile,
                    progress=self.progress, execution=self.backend)
                stats.merge(result.stats)
                self.backend.flush_telemetry()
                if on_campaign is not None:
                    on_campaign(spec, result)
            self.backend.set_shutdown()
            deadline = time.monotonic() + self.SHUTDOWN_LINGER_S
            while time.monotonic() < deadline \
                    and not self.backend.all_workers_acked():
                time.sleep(0.05)
        finally:
            self.backend.flush_telemetry()
            self.server.stop()
            if self._own_hub and self.hub is not None:
                self.hub.close()
        return stats
