"""Checkpoint/restore subsystem: suffix-only fault injection.

Statistical fault injection re-simulates every live fault, yet the
machine is fault-free — and therefore identical to the golden run —
until the injection cycle. This package removes that shared prefix:

* **capture** — during the (already-traced) golden run, a
  :class:`CheckpointRecorder` periodically snapshots the *entire*
  simulator state: global memory, per-core register files and local
  memories, warp/SIMT-stack and wavefront state, scheduler and barrier
  state, block residency, dispatcher state and cycle counters
  (:mod:`repro.checkpoint.capture`);
* **restore** — each live injection restores the latest snapshot whose
  target-core clock precedes its fault cycle and simulates only the
  suffix, which halves the average injection cost for uniformly
  sampled fault times (:mod:`repro.checkpoint.restore`);
* **early exit** — once the injected disturbance is provably
  overwritten or logically quiesced, the faulty machine's canonical
  state digest equals the golden digest at the same capture label and
  the run is classified MASKED immediately, skipping the rest of the
  simulation (:mod:`repro.checkpoint.convergence`).

Checkpointed fault injection is bit-identical — same per-sample
MASKED/SDC/DUE outcomes and cycle counts — to full re-simulation for
every fault model on both ISAs: snapshots are frozen prefixes of the
exact event sequence a from-scratch faulty run executes, restores
re-install fault plans (persistent stuck-at overlays re-arm through
the ordinary ``force_bit`` path), and the convergence check only fires
on full-state equality, from which deterministic simulation provably
reproduces the golden outputs and cycle count.
"""

from repro.checkpoint.capture import (
    AUTO_INTERVAL,
    MAX_SNAPSHOTS,
    CheckpointRecorder,
    cached_snapshots,
    capture_snapshots,
    resolve_interval,
)
from repro.checkpoint.convergence import ConvergedToGolden, ConvergenceMonitor
from repro.checkpoint.digest import digest_machine, digest_machine_pair
from repro.checkpoint.memo import (
    MEMO_MAX_ENTRIES,
    MemoHit,
    MemoRecord,
    SuffixMemo,
    cached_memo,
)
from repro.checkpoint.restore import (
    restore_machine,
    resume_workload,
    run_faulty_from_checkpoints,
)
from repro.checkpoint.snapshot import MachineSnapshot, SnapshotPoint, SnapshotSet

__all__ = [
    "AUTO_INTERVAL",
    "MAX_SNAPSHOTS",
    "MEMO_MAX_ENTRIES",
    "CheckpointRecorder",
    "ConvergedToGolden",
    "ConvergenceMonitor",
    "MachineSnapshot",
    "MemoHit",
    "MemoRecord",
    "SnapshotPoint",
    "SnapshotSet",
    "SuffixMemo",
    "cached_memo",
    "cached_snapshots",
    "capture_snapshots",
    "digest_machine",
    "digest_machine_pair",
    "restore_machine",
    "resume_workload",
    "run_faulty_from_checkpoints",
    "resolve_interval",
]
