"""Restore a snapshot into a fresh machine and run the suffix.

The restore side of the checkpoint protocol: rebuild a chip from a
:class:`~repro.checkpoint.snapshot.MachineSnapshot`, re-install the
fault plan and watchdog on it, and drive the remainder of the workload
— the still-draining launch first (the dispatcher state is part of the
snapshot), then every launch after it. The resulting
:class:`~repro.kernels.workload.RunResult` is bit-identical (outputs,
total cycles, per-launch cycles) to simulating the whole workload from
cycle zero, because the snapshot is a frozen prefix of the very event
sequence the from-scratch run would execute.

Launch configurations and programs are not stored in snapshots; they
are rebuilt deterministically from the workload and the snapshotted
buffer bases, which keeps snapshots plain-data and cheap to ship
across processes.
"""

from __future__ import annotations

from repro.checkpoint.convergence import ConvergenceMonitor
from repro.checkpoint.snapshot import SnapshotPoint, SnapshotSet
from repro.kernels.workload import RunResult, Workload, run_workload
from repro.sim.gpu import Gpu
from repro.telemetry import profile as _profile


def restore_machine(config, workload: Workload, point: SnapshotPoint,
                    scheduler: str = "rr", sink=None):
    """Rebuild a chip from one capture point; returns (gpu, launches).

    ``sink`` (optional) becomes the restored machine's trace sink: it
    observes exactly the suffix of the event stream an un-checkpointed
    run emits from this point on.
    """
    with _profile.phase("restore"):
        snapshot = point.snapshot
        gpu = Gpu(config, scheduler=scheduler, sink=sink)
        bases = {name: base
                 for name, base, _ in snapshot.state["mem"]["buffers"]}
        launches = list(workload.make_launches(config.isa, bases))
        active = snapshot.state["active"]
        launch = (launches[snapshot.launch_index]
                  if active is not None else None)
        gpu.restore_state(snapshot.state, launch=launch)
    return gpu, launches


def resume_workload(gpu: Gpu, workload: Workload, launches: list,
                    snapshot, monitor=None) -> RunResult:
    """Run a restored machine to completion; mirrors ``run_workload``."""
    launch_cycles = list(snapshot.launch_cycles)
    index = snapshot.launch_index
    if gpu.mid_launch:
        launch_cycles.append(gpu.resume_launch(monitor))
        index += 1
    for i in range(index, len(launches)):
        if monitor is not None:
            monitor.begin_launch(gpu, i, launch_cycles)
        launch_cycles.append(gpu.launch(launches[i], monitor=monitor))
    cycles = gpu.finish()
    outputs = gpu.mem.snapshot(workload.output_buffers)
    return RunResult(
        workload=workload.name,
        gpu=gpu.config.name,
        cycles=cycles,
        launch_cycles=launch_cycles,
        outputs=outputs,
    )


def run_faulty_from_checkpoints(config, workload: Workload, plan,
                                scheduler: str, watchdog: int,
                                snapshots: SnapshotSet,
                                fault_model=None, memo=None) -> RunResult:
    """One faulty run, suffix-only when a usable snapshot exists.

    Restores the latest golden snapshot whose target-core clock is
    still before the fault cycle, installs the plan + watchdog, and
    simulates only the suffix. Transient-class models additionally get
    the early-exit convergence monitor; the call then either returns a
    completed :class:`RunResult`, raises a
    :class:`~repro.errors.SimFault` (DUE), or raises
    :class:`~repro.checkpoint.convergence.ConvergedToGolden` (MASKED
    with the golden cycle count).

    ``memo`` (a :class:`~repro.checkpoint.memo.SuffixMemo`) arms the
    monitor's cross-sample memoization as well — including for
    persistent models, which keep the golden-convergence check off but
    can still reuse each other's quiescent states; a verified table
    match raises :class:`~repro.checkpoint.memo.MemoHit`.
    """
    # Imported here: the fault-model registry reaches back into the
    # sim layer, which would otherwise cycle at package-import time.
    from repro.faultmodels.registry import get_fault_model
    model = get_fault_model(fault_model)
    pos, point = snapshots.restore_point_for(plan.core, plan.cycle)
    monitor = None
    if not model.persistent or memo is not None:
        monitor = ConvergenceMonitor(snapshots.points_after(pos),
                                     memo=memo,
                                     golden_compare=not model.persistent)
    if point is None:
        _profile.count("checkpoint_miss")
        gpu = Gpu(config, scheduler=scheduler)
        gpu.set_faults([plan], fault_model=model)
        gpu.set_watchdog(watchdog)
        return run_workload(gpu, workload, monitor=monitor)
    _profile.count("checkpoint_hit")
    gpu, launches = restore_machine(config, workload, point, scheduler)
    gpu.set_faults([plan], fault_model=model)
    gpu.set_watchdog(watchdog)
    if monitor is not None:
        monitor.set_context(point.snapshot.launch_index,
                            point.snapshot.launch_cycles)
    return resume_workload(gpu, workload, launches, point.snapshot,
                           monitor=monitor)
