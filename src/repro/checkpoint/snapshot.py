"""Snapshot containers: one machine image, one capture point, one set.

A :class:`MachineSnapshot` is the plain-data full-machine image the sim
layer's ``snapshot_state`` protocol produces (global memory, per-core
register files and local memories, warp/SIMT-stack state, scheduler and
barrier state, block residency, dispatcher state, cycle counters) plus
the workload-level launch progress needed to resume the run.

A :class:`SnapshotPoint` is one capture: its label (an interval
threshold or a launch boundary), the per-core clocks at capture (the
restore-validity test), the state digest (the convergence test), and —
unless thinned away — the snapshot itself.

A :class:`SnapshotSet` is everything one golden run captured. Within
an inline campaign the engine hands it to a cell's FI shard jobs by
reference; pooled workers re-derive an identical set once per process
instead (:func:`repro.checkpoint.capture.cached_snapshots`) — at full
scale a set is tens of MB, more than per-shard pickling is worth.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MachineSnapshot:
    """Full machine image + launch progress at one capture point."""

    #: Index of the launch that was active (or about to start).
    launch_index: int
    #: Cycle counts of the launches completed before this point.
    launch_cycles: list
    #: Plain-data machine image from :meth:`repro.sim.gpu.Gpu.snapshot_state`.
    state: dict


@dataclass
class SnapshotPoint:
    """One capture point of a golden run."""

    #: ("interval", cycle) for periodic captures, ("launch", index) for
    #: launch boundaries. Labels key the convergence comparison: the
    #: faulty run evaluates its own digest at the same labels.
    label: tuple
    #: Per-core local clocks at capture. A point can seed the suffix run
    #: of a fault at (core, cycle) iff ``core_times[core] < cycle`` —
    #: the target core has then provably not yet executed any issue at
    #: or after the fault cycle, so the fault-free prefix is shared.
    core_times: tuple
    #: Canonical state digest (see :mod:`repro.checkpoint.digest`).
    digest: str
    #: The machine image. The recorder always retains it (thinning
    #: drops whole points); None is allowed for hand-built digest-only
    #: points, which restore selection skips.
    snapshot: MachineSnapshot | None = None


@dataclass
class SnapshotSet:
    """All capture points of one golden run, in capture order."""

    #: The requested checkpoint interval ("auto" or a cycle count) —
    #: recorded for fingerprinting/reporting; any set is correct for
    #: any request (snapshots only ever change wall time, not results).
    interval: object
    points: list = field(default_factory=list)

    def restore_point_for(self, core: int, cycle: int):
        """Latest usable point for a fault at (core, cycle).

        Returns ``(position, point)``; ``(-1, None)`` when no point
        precedes the fault (the suffix run then starts from scratch).
        """
        for pos in range(len(self.points) - 1, -1, -1):
            point = self.points[pos]
            if point.snapshot is not None and point.core_times[core] < cycle:
                return pos, point
        return -1, None

    def points_after(self, pos: int) -> list:
        """Capture points strictly after position ``pos``."""
        return self.points[pos + 1:]

    @property
    def num_snapshots(self) -> int:
        return sum(1 for p in self.points if p.snapshot is not None)

    def __len__(self) -> int:
        return len(self.points)
