"""Canonical architectural-state digests.

The early-exit convergence check (:mod:`repro.checkpoint.convergence`)
classifies a transient injection MASKED the moment the faulty machine
state becomes indistinguishable from the golden one: from equal full
machine state, deterministic simulation evolves identically, so the
outputs and the final cycle count are provably those of the golden run.

"Equal" is decided by a SHA-256 digest over a canonical encoding of the
plain-data machine image :meth:`repro.sim.gpu.Gpu.snapshot_state`
produces (plus the workload-level launch progress). The encoding is
explicit — type-tagged ints/strs/bools/arrays, sorted dict keys — so it
is stable across processes, unlike pickle's identity-sensitive stream.

Per-core ``instructions_issued`` is excluded: a faulty run that took a
different control-flow path and then re-converged may have executed a
different number of instructions, and the counter influences nothing
downstream of the convergence point.

Dead storage is canonicalised to zero before hashing, guided by the
``live_reg``/``live_lmem`` hints each core image carries: register and
local-memory words outside every resident block's allocation are
cleared at the next block allocation before any access, so corruption
orphaned there (the typical fate of a masked live fault once its block
retires) cannot influence the future and must not block convergence.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: State keys that never influence future evolution or reported results.
_SKIP_KEYS = frozenset({"instructions_issued"})


def _update(h, obj) -> None:
    """Feed one plain-data value into the hash, type-tagged."""
    if obj is None:
        h.update(b"\x00N")
    elif isinstance(obj, (bool, np.bool_)):
        h.update(b"\x00b1" if obj else b"\x00b0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"\x00i")
        h.update(str(int(obj)).encode())
    elif isinstance(obj, str):
        h.update(b"\x00s")
        h.update(obj.encode())
    elif isinstance(obj, np.ndarray):
        h.update(b"\x00a")
        h.update(str(obj.dtype).encode())
        h.update(str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update(b"\x00l")
        h.update(str(len(obj)).encode())
        for item in obj:
            _update(h, item)
    elif isinstance(obj, dict):
        h.update(b"\x00d")
        for key in sorted(obj, key=repr):
            if key in _SKIP_KEYS:
                continue
            h.update(b"\x00k")
            h.update(repr(key).encode())
            _update(h, obj[key])
    else:
        raise TypeError(f"cannot canonically hash {type(obj).__name__}")


def _masked_storage(storage: dict, live_ranges: list) -> dict:
    """Canonical storage form: the live slices only, with their ranges.

    Equivalent to zeroing everything outside the ranges, but hashes
    O(live words) instead of copying the whole array. Overlapping
    ranges cannot occur (block allocations are disjoint), so the
    (range, slice) list determines the zero-filled image uniquely.
    """
    data = storage["data"]
    return {
        "forced": storage["forced"],
        "live": [
            (start, nwords, data[start:start + nwords])
            for start, nwords in live_ranges
        ],
    }


def _canonical_core(core_state: dict) -> dict:
    canonical = dict(core_state)
    live_reg = canonical.pop("live_reg", None)
    live_lmem = canonical.pop("live_lmem", None)
    if live_reg is not None:
        canonical["regfile"] = _masked_storage(core_state["regfile"], live_reg)
    if live_lmem is not None:
        canonical["lmem"] = _masked_storage(core_state["lmem"], live_lmem)
    return canonical


def digest_machine(launch_index: int, launch_cycles: list,
                   state: dict) -> str:
    """SHA-256 hex digest of one machine image + launch progress."""
    state = dict(state)
    state["cores"] = [_canonical_core(c) for c in state["cores"]]
    h = hashlib.sha256()
    _update(h, int(launch_index))
    _update(h, [int(c) for c in launch_cycles])
    _update(h, state)
    return h.hexdigest()


class _MultiHash:
    """Fan one canonical byte stream into several hash objects."""

    __slots__ = ("parts",)

    def __init__(self, *parts):
        self.parts = parts

    def update(self, data) -> None:
        for part in self.parts:
            part.update(data)


def digest_machine_pair(launch_index: int, launch_cycles: list,
                        state: dict) -> tuple[str, str]:
    """(primary, secondary) digests of one machine image, one pass.

    The primary is byte-identical to :func:`digest_machine` (SHA-256
    over the same canonical stream), so it stays comparable with the
    golden capture points. The secondary (BLAKE2b-128 over the same
    stream) is an independent hash family used by the suffix memo
    (:mod:`repro.checkpoint.memo`) to verify lookups: reusing a
    memoized outcome requires *both* digests to match, so a primary
    collision alone can never misclassify an injection.
    """
    state = dict(state)
    state["cores"] = [_canonical_core(c) for c in state["cores"]]
    primary = hashlib.sha256()
    secondary = hashlib.blake2b(digest_size=16)
    h = _MultiHash(primary, secondary)
    _update(h, int(launch_index))
    _update(h, [int(c) for c in launch_cycles])
    _update(h, state)
    return primary.hexdigest(), secondary.hexdigest()
