"""Cross-sample suffix memoization for fault-injection campaigns.

The early-exit convergence check (:mod:`repro.checkpoint.convergence`)
only helps injections that quiesce back to the *golden* state. But a
campaign re-simulates hundreds of faults of the same cell, and many of
them quiesce to identical **non-golden** states: two transients that
flip the same already-written output word at different cycles, two
stuck-at defects on the same bit sampled at different times, two upsets
whose corruption funnels into the same architectural footprint. From
equal full machine state, deterministic simulation evolves identically
— so once one such run has been simulated to its outcome, every later
run reaching the same state at the same capture label can skip straight
to that outcome.

:class:`SuffixMemo` is the campaign-level table: at every golden
capture label the :class:`~repro.checkpoint.convergence
.ConvergenceMonitor` (when armed — all injected faults applied) hands
it the faulty machine's canonical state digests. A lookup match raises
:class:`MemoHit`, which the FI engine catches and converts into the
memoized :class:`~repro.reliability.outcomes.FaultResult` — and the
hitting run's own digest *trail* (the states it passed through before
the hit) is inserted too, since those states provably lead to the same
outcome.

Collision safety: entries are bucketed by ``(label, core_times,
primary-digest)`` but an outcome is only reused after a **second,
independent** digest (BLAKE2b over the same canonical stream —
:func:`repro.checkpoint.digest.digest_machine_pair`) also matches.
A primary-only match is counted as a collision and treated as a miss.

The memo is derived state, exactly like checkpoints: outcomes are
bit-identical with it on or off (CI's ``fastpath-parity`` job diffs the
stores), so it joins no job fingerprint and stores written before it
existed resume with zero jobs executed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry import profile as _profile

#: Bound on retained memo entries per table; inserts stop at the cap
#: (dropping *new* entries keeps every already-earned hit source).
MEMO_MAX_ENTRIES = 65536


class MemoHit(Exception):
    """A faulty run reached a state whose outcome is already memoized.

    Control-flow signal, not an error: the FI engine catches it and
    reconstructs the memoized result instead of simulating the suffix.
    """

    def __init__(self, label: tuple, record: "MemoRecord"):
        self.label = label
        self.record = record
        super().__init__(f"suffix memo hit at {label!r}")


@dataclass(frozen=True)
class MemoRecord:
    """The memoized outcome of one fully-classified faulty run.

    Plain result data only (no plan): every field is a deterministic
    function of the machine state at the memo point, so it transfers
    verbatim to any other injection reaching that state.
    """

    outcome: str          # Outcome.value ("masked" / "sdc" / "due")
    detail: str
    corrupted_words: int
    cycles: int
    early_exit: bool


class SuffixMemo:
    """Campaign-level digest -> outcome table (one cell's golden run).

    Single-threaded per process by design (each worker process owns
    its table via :func:`cached_memo`): a run is bracketed by
    :meth:`begin_run` / :meth:`commit`, with :meth:`observe` called at
    every armed capture label in between.
    """

    def __init__(self, max_entries: int = MEMO_MAX_ENTRIES):
        #: (label, core_times, primary) -> (secondary, MemoRecord)
        self._table: dict[tuple, tuple[str, MemoRecord]] = {}
        self._max = max_entries
        self._trail: list[tuple] = []
        #: (label, core_times) buckets ever reached — the digest gate.
        self._buckets: set[tuple] = set()
        self.hits = 0
        self.misses = 0
        self.collisions = 0

    def __len__(self) -> int:
        return len(self._table)

    # ------------------------------------------------------------------
    # Per-run protocol
    # ------------------------------------------------------------------
    def begin_run(self) -> None:
        """Start a fresh digest trail for one faulty run."""
        self._trail = []

    def should_digest(self, label: tuple, core_times: tuple) -> bool:
        """Whether hashing the state at this capture point can pay off.

        Full machine states can only be equal if the per-core clocks
        are — so the first run ever to reach a ``(label, core_times)``
        bucket cannot hit (nothing comparable is in the table) and the
        monitor skips the O(state) digest entirely, just marking the
        bucket. Later runs landing in a marked bucket hash and take
        part in memoization. This trades one pairing opportunity per
        bucket (the very first run's suffix is never inserted) for
        keeping the memo near-free on the overwhelmingly-unique
        suffixes; hit/miss outcomes stay bit-identical either way.
        """
        bucket = (label, core_times)
        if bucket in self._buckets:
            return True
        if len(self._buckets) < 4 * self._max:
            self._buckets.add(bucket)
        return False

    def observe(self, label: tuple, core_times: tuple,
                primary: str, secondary: str) -> MemoRecord | None:
        """One armed capture-label observation; returns a hit, if any.

        On a miss the observation joins the run's trail so
        :meth:`commit` can memoize it once the outcome is known.
        """
        key = (label, core_times, primary)
        entry = self._table.get(key)
        if entry is not None:
            stored_secondary, record = entry
            if stored_secondary == secondary:
                self.hits += 1
                return record
            # Primary collided but the independent digest disagrees:
            # different underlying states — never reuse the outcome.
            self.collisions += 1
            _profile.count("memo_collisions")
            return None
        self._trail.append(key + (secondary,))
        return None

    def commit(self, record: MemoRecord) -> None:
        """Memoize the finished run's trail under its final outcome.

        Called with the *classified* result — whether the run completed
        fully, exited early on golden convergence, died as a DUE, or
        itself ended on a memo hit (its pre-hit trail states provably
        lead to the same outcome).
        """
        for label, core_times, primary, secondary in self._trail:
            if len(self._table) >= self._max:
                break
            self._table.setdefault(
                (label, core_times, primary), (secondary, record))
        self._trail = []

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Plain-data counters for telemetry / bench output."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "collisions": self.collisions,
            "entries": len(self._table),
        }


#: Per-process memo tables, bounded FIFO — the same sharing pattern as
#: :data:`repro.checkpoint.capture._REBUILD_CACHE`: every fault of a
#: cell a process handles feeds (and profits from) one shared table.
_MEMO_CACHE: dict = {}
_MEMO_CACHE_MAX = 4


def cached_memo(key: tuple) -> SuffixMemo:
    """The memo table for ``key``, creating it on first use.

    ``key`` is the caller's cell identity (it must determine the golden
    run and the fault model); callers namespace keys with a leading tag
    so different derivations never collide.
    """
    memo = _MEMO_CACHE.get(key)
    if memo is None:
        while len(_MEMO_CACHE) >= _MEMO_CACHE_MAX:
            _MEMO_CACHE.pop(next(iter(_MEMO_CACHE)))
        memo = _MEMO_CACHE[key] = SuffixMemo()
    return memo
