"""Checkpoint capture during golden runs.

The :class:`CheckpointRecorder` is a run monitor (the observe-only hook
:func:`repro.kernels.workload.run_workload` and the GPU dispatcher call
between core steps): it watches the machine's maximum core clock and
captures a full snapshot whenever an interval threshold is crossed,
plus one at every launch boundary. Because monitors only observe, a
recorded golden run is event-for-event identical to a bare one.

Capture points are only available at core-step boundaries (a core runs
until a block retires between boundaries), so a threshold is honoured
at the first boundary at or after it — the same rule the convergence
monitor replays on the faulty side, which is what makes digest labels
comparable across the two runs.

The recorder self-limits: when the number of points exceeds
``max_snapshots``, every other point is dropped and the interval
doubles — so memory stays bounded for any run length without knowing
the cycle count in advance, and ``interval="auto"`` needs no tuning.
Thinning never affects results: any subset of points is correct, a
sparser set only shortens the skipped prefix less.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.checkpoint.digest import digest_machine
from repro.checkpoint.snapshot import MachineSnapshot, SnapshotPoint, SnapshotSet
from repro.telemetry import profile as _profile

#: Base capture stride (cycles) for ``interval="auto"``.
AUTO_INTERVAL = 256
#: Default bound on retained capture points (doubling starts beyond it).
MAX_SNAPSHOTS = 24


def resolve_interval(interval) -> int:
    """Base capture stride in cycles for a user-facing interval value."""
    if interval == "auto" or interval is None:
        return AUTO_INTERVAL
    try:
        stride = int(interval)
    except (TypeError, ValueError):
        raise ConfigError(
            f"checkpoint interval must be 'auto' or a cycle count, "
            f"got {interval!r}"
        ) from None
    if stride < 1:
        raise ConfigError(f"checkpoint interval must be >= 1, got {interval}")
    return stride


class CheckpointRecorder:
    """Run monitor that captures periodic full-machine snapshots."""

    def __init__(self, interval="auto", max_snapshots: int = MAX_SNAPSHOTS):
        self.interval = "auto" if interval is None else interval
        self._stride = resolve_interval(interval)
        self._next_due = self._stride
        self._max = max(2, int(max_snapshots))
        self._points: list[SnapshotPoint] = []
        self._launch_index = 0
        self._launch_cycles: list = []

    # ------------------------------------------------------------------
    # Run-monitor hooks
    # ------------------------------------------------------------------
    def begin_launch(self, gpu, index: int, launch_cycles: list) -> None:
        self._launch_index = index
        self._launch_cycles = list(launch_cycles)
        self._capture(gpu, [("launch", index)])

    def after_step(self, gpu) -> None:
        cur = max(core.time for core in gpu.cores)
        if cur < self._next_due:
            return
        labels = []
        while cur >= self._next_due:
            labels.append(("interval", self._next_due))
            self._next_due += self._stride
        self._capture(gpu, labels)

    # ------------------------------------------------------------------
    def _capture(self, gpu, labels: list) -> None:
        """Record one machine image under the given labels.

        Thresholds crossed within a single core step share one image
        (the machine cannot be observed between them).
        """
        with _profile.phase("snapshot_capture"):
            state = gpu.snapshot_state()
            snapshot = MachineSnapshot(
                launch_index=self._launch_index,
                launch_cycles=list(self._launch_cycles),
                state=state,
            )
            digest = digest_machine(snapshot.launch_index,
                                    snapshot.launch_cycles, state)
        core_times = tuple(int(c["time"]) for c in state["cores"])
        for label in labels:
            self._points.append(SnapshotPoint(
                label=label, core_times=core_times, digest=digest,
                snapshot=snapshot,
            ))
        while len(self._points) > self._max:
            self._points = self._points[::2]
            self._stride *= 2

    def snapshots(self) -> SnapshotSet:
        """The captured set (call after the run has ended)."""
        return SnapshotSet(interval=self.interval, points=list(self._points))


def capture_snapshots(config, workload, scheduler: str = "rr",
                      interval="auto",
                      max_snapshots: int = MAX_SNAPSHOTS) -> SnapshotSet:
    """Re-derive a golden run's snapshot set with a bare (untraced) run.

    Used by pooled FI workers — snapshots are ephemeral (never written
    to JSONL, never pickled through the pool), so a worker process
    rebuilds them once per cell and caches them in-process
    (:func:`cached_snapshots`). The machine trajectory is
    sink-independent, so the rebuilt set is identical to the one the
    golden run produced.
    """
    from repro.kernels.workload import run_workload
    from repro.sim.gpu import Gpu
    recorder = CheckpointRecorder(interval, max_snapshots=max_snapshots)
    # The rebuild is a golden-prefix re-run, so it profiles as `golden`
    # (with its captures nested under `snapshot_capture` as usual).
    with _profile.phase("golden"):
        run_workload(Gpu(config, scheduler=scheduler), workload,
                     monitor=recorder)
    return recorder.snapshots()


#: Per-process rebuilt snapshot sets, bounded FIFO. Shared by every
#: pooled consumer (engine FI shards, the serial path's worker pool):
#: one golden-prefix run per (cell, process) buys suffix-only
#: simulation for all the faults of that cell the process handles.
_REBUILD_CACHE: dict = {}
_REBUILD_CACHE_MAX = 4


def cached_snapshots(key: tuple, config, workload, scheduler: str,
                     interval) -> SnapshotSet:
    """The snapshot set for ``key``, rebuilding it on first use.

    ``key`` is the caller's capture identity (it must determine
    config/workload/scheduler/interval); callers namespace their keys
    with a leading tag so different derivations never collide.
    """
    cached = _REBUILD_CACHE.get(key)
    if cached is None:
        while len(_REBUILD_CACHE) >= _REBUILD_CACHE_MAX:
            _REBUILD_CACHE.pop(next(iter(_REBUILD_CACHE)))
        cached = _REBUILD_CACHE[key] = capture_snapshots(
            config, workload, scheduler, interval)
    return cached
