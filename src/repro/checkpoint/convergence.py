"""Early-exit convergence check for transient-fault suffix runs.

A live transient fault often stops mattering long before the program
ends: the corrupted word is overwritten, or its consumers mask the
upset logically, and from then on the faulty machine is bit-for-bit
the golden machine. Running to completion just to compare outputs is
wasted work — deterministic simulation from equal state provably
produces the golden outputs and the golden cycle count.

The :class:`ConvergenceMonitor` rides the faulty suffix run (the same
observe-only monitor hook the golden capture uses) and, at every label
the golden run recorded a digest for, compares the faulty machine's
canonical state digest against the golden one. On a match it raises
:class:`ConvergedToGolden`, which the FI engine catches and classifies
MASKED immediately.

Two guards make this sound:

* the comparison is **armed only after every installed fault plan has
  been applied** — before that the faulty run is still replaying the
  shared fault-free prefix, whose digests trivially match;
* digests cover the *full* machine state (including stuck-at overlay
  tables and core clocks), so a persistent (stuck-at) fault — whose
  overlay re-asserts forever — can never spuriously match; campaigns
  skip the monitor entirely for persistent models.
"""

from __future__ import annotations

from collections import deque

from repro.checkpoint.digest import digest_machine, digest_machine_pair
from repro.checkpoint.memo import MemoHit
from repro.telemetry import profile as _profile


class ConvergedToGolden(Exception):
    """The faulty machine state equals the golden state at a label.

    Control-flow signal, not an error: the FI engine maps it to an
    immediate MASKED classification with the golden cycle count.
    """

    def __init__(self, label: tuple):
        self.label = label
        super().__init__(f"machine state converged to golden at {label!r}")


class ConvergenceMonitor:
    """Run monitor comparing faulty state digests against golden ones."""

    def __init__(self, points: list, memo=None, golden_compare: bool = True):
        """``points`` — golden capture points ahead of the restore point.

        ``memo`` (a :class:`repro.checkpoint.memo.SuffixMemo`)
        additionally looks each armed label's digest pair up in the
        campaign-level memo table and raises
        :class:`~repro.checkpoint.memo.MemoHit` on a verified match.
        ``golden_compare=False`` disables the converged-to-golden check
        (persistent models: the stuck-at overlay re-asserts forever, so
        golden convergence is impossible but memoization still applies).
        """
        self._interval = deque(
            p for p in points if p.label[0] == "interval"
        )
        self._launch = {
            p.label[1]: p for p in points if p.label[0] == "launch"
        }
        self._memo = memo
        self._golden_compare = golden_compare
        self._launch_index = 0
        self._launch_cycles: list = []
        #: Full digest comparisons performed (observability / tests).
        self.checks = 0

    def set_context(self, launch_index: int, launch_cycles: list) -> None:
        """Seed the launch progress when resuming mid-workload."""
        self._launch_index = launch_index
        self._launch_cycles = list(launch_cycles)

    # ------------------------------------------------------------------
    # Run-monitor hooks
    # ------------------------------------------------------------------
    def begin_launch(self, gpu, index: int, launch_cycles: list) -> None:
        self.set_context(index, launch_cycles)
        point = self._launch.get(index)
        if point is not None:
            self._compare(gpu, point)

    def after_step(self, gpu) -> None:
        if not self._interval:
            return
        cur = max(core.time for core in gpu.cores)
        while self._interval and self._interval[0].label[1] <= cur:
            self._compare(gpu, self._interval.popleft())

    # ------------------------------------------------------------------
    def _compare(self, gpu, point) -> None:
        if any(core.pending_faults for core in gpu.cores):
            return  # still on the shared fault-free prefix
        core_times = tuple(int(core.time) for core in gpu.cores)
        times_match = core_times == point.core_times
        if self._memo is None:
            # Cheap pre-filter: full-state equality implies equal
            # per-core clocks, so a timing-diverged run (the usual
            # SDC/DUE fate) skips the digest entirely at O(cores) cost.
            if not times_match:
                return
            self.checks += 1
            _profile.count("digest_checks")
            with _profile.phase("digest"):
                mine = digest_machine(self._launch_index,
                                      self._launch_cycles,
                                      gpu.snapshot_state(copy=False))
            if mine == point.digest:
                raise ConvergedToGolden(point.label)
            return
        # Memoizing: quiescent states recur across injections even when
        # timing has diverged from golden — but hashing every state at
        # every point would swamp the memo's win, so the digest is
        # gated on the memo's (label, core_times) bucket index: only
        # states a second run could actually match get hashed. The
        # golden comparison still forces the digest when timing tracks
        # golden, exactly like the memo-less path.
        forced = self._golden_compare and times_match
        if not forced and not self._memo.should_digest(point.label,
                                                       core_times):
            return
        self.checks += 1
        _profile.count("digest_checks")
        with _profile.phase("digest"):
            primary, secondary = digest_machine_pair(
                self._launch_index, self._launch_cycles,
                gpu.snapshot_state(copy=False))
        if self._golden_compare and times_match and primary == point.digest:
            raise ConvergedToGolden(point.label)
        record = self._memo.observe(point.label, core_times,
                                    primary, secondary)
        if record is not None:
            raise MemoHit(point.label, record)
