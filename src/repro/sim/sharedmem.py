"""Per-core local/shared memory (NVIDIA shared memory / AMD LDS).

Word-addressed storage with scatter/gather access, bounds checking
against the core's aperture, word-granular access tracing, and a
deterministic lane-serialised atomic add (the shared-memory atomic the
histogram benchmark uses).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, LocalMemoryFault
from repro.sim.tracing import TraceSink
from repro.sim.vector import scatter_add_serialized


class LocalMemory:
    """One core's shared memory / LDS."""

    def __init__(self, core_id: int, nbytes: int, sink: TraceSink | None = None,
                 backend: str = "python"):
        if nbytes % 4:
            raise ConfigError("local memory size must be a word multiple")
        self.core_id = core_id
        self.nbytes = nbytes
        self.num_words = nbytes // 4
        self.data = np.zeros(self.num_words, dtype=np.uint32)
        self.sink = sink
        self._vector = backend == "vector"
        # word -> (and_mask, or_mask): permanent stuck-at overlays,
        # re-applied after every mutation (see _reapply_forced).
        self._forced: dict[int, tuple[int, int]] = {}

    def _word_index(self, byte_addrs: np.ndarray) -> np.ndarray:
        addrs = np.asarray(byte_addrs, dtype=np.int64)
        if addrs.size and np.any(addrs & 3):
            bad = int(addrs[np.argmax((addrs & 3) != 0)])
            raise LocalMemoryFault(bad, self.nbytes)
        if addrs.size and (np.any(addrs < 0) or np.any(addrs >= self.nbytes)):
            outside = (addrs < 0) | (addrs >= self.nbytes)
            raise LocalMemoryFault(int(addrs[np.argmax(outside)]), self.nbytes)
        return addrs >> 2

    def load(self, byte_addrs: np.ndarray, cycle: int) -> np.ndarray:
        """Gather words at per-lane byte addresses."""
        index = self._word_index(byte_addrs)
        if self.sink is not None and index.size:
            self.sink.on_lmem_access(cycle, self.core_id, index, False)
        return self.data[index]

    def store(self, byte_addrs: np.ndarray, values: np.ndarray, cycle: int) -> None:
        """Scatter words; duplicate addresses resolve highest-lane-wins."""
        index = self._word_index(byte_addrs)
        self.data[index] = values.astype(np.uint32, copy=False)
        if self._forced:
            self._reapply_forced()
        if self.sink is not None and index.size:
            self.sink.on_lmem_access(cycle, self.core_id, index, True)

    def atomic_add(self, byte_addrs: np.ndarray, values: np.ndarray,
                   cycle: int) -> np.ndarray:
        """Lane-serialised atomic integer add; returns old values."""
        index = self._word_index(byte_addrs)
        if self.sink is not None and index.size:
            self.sink.on_lmem_access(cycle, self.core_id, index, False)
        if self._vector:
            old = scatter_add_serialized(self.data, index, values)
        else:
            old = np.empty(index.size, dtype=np.uint32)
            for lane in range(index.size):
                old[lane] = self.data[index[lane]]
                self.data[index[lane]] = np.uint32(
                    (int(old[lane]) + int(values[lane])) & 0xFFFFFFFF
                )
        if self._forced:
            self._reapply_forced()
        if self.sink is not None and index.size:
            self.sink.on_lmem_access(cycle, self.core_id, index, True)
        return old

    def flip_bit(self, word: int, bit: int) -> None:
        """Invert one stored bit (transient fault injection)."""
        self.flip_bits(word, 1 << bit)

    def flip_bits(self, word: int, mask: int) -> None:
        """Invert a mask of stored bits in one word (multi-bit upsets)."""
        if not 0 <= word < self.num_words:
            raise ConfigError(f"local memory word {word} out of range")
        self.data[word] ^= np.uint32(mask & 0xFFFFFFFF)

    def force_bit(self, word: int, bit: int, value: int) -> None:
        """Permanently stick one bit at ``value`` (0/1).

        Takes effect immediately and is re-applied after every
        subsequent write-back (stores, atomics, block-allocation
        clears) — a hardware defect, not a one-shot upset.
        """
        if not 0 <= word < self.num_words:
            raise ConfigError(f"local memory word {word} out of range")
        and_mask, or_mask = self._forced.get(word, (0xFFFFFFFF, 0))
        if value:
            or_mask |= 1 << bit
        else:
            and_mask &= ~(1 << bit) & 0xFFFFFFFF
        self._forced[word] = (and_mask, or_mask)
        self._reapply_forced()

    def _reapply_forced(self) -> None:
        """Re-impose the stuck-at overlays (idempotent)."""
        for word, (and_mask, or_mask) in self._forced.items():
            self.data[word] = np.uint32(
                (int(self.data[word]) & and_mask) | or_mask
            )

    def clear_range(self, byte_offset: int, nbytes: int) -> None:
        """Zero a block's aperture at allocation."""
        start = byte_offset // 4
        self.data[start: start + nbytes // 4] = 0
        if self._forced:
            self._reapply_forced()

    # ------------------------------------------------------------------
    # Checkpoint protocol (see repro.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self, copy: bool = True) -> dict:
        """Plain-data copy of the stored words + stuck-at overlays.

        ``copy=False`` returns views instead (hash-and-discard users).
        """
        data = self.data.copy() if copy else self.data
        return {"data": data, "forced": dict(self._forced)}

    def restore_state(self, state: dict) -> None:
        """Overwrite contents with a snapshot (geometry must match)."""
        self.data[:] = state["data"]
        self._forced = dict(state["forced"])
