"""Warp / wavefront / thread-block runtime state."""

from __future__ import annotations

import numpy as np

from repro.arch.structures import NUM_SASS_PREDICATES
from repro.bits import mask_lanes
from repro.sim.simt_stack import SimtStack

#: Number of SASS predicate registers per thread (P0..P6). Published by
#: the structure registry so the predicate-file fault geometry and the
#: warp state can never disagree.
NUM_PREDICATES = NUM_SASS_PREDICATES


class BlockState:
    """One resident thread block (CTA / work-group)."""

    def __init__(self, linear_id: int, index: tuple, reg_base_row: int,
                 lmem_base: int, footprint):
        self.linear_id = linear_id
        self.index = index              # (bx, by)
        self.reg_base_row = reg_base_row
        self.lmem_base = lmem_base      # byte offset in the core's local memory
        self.footprint = footprint
        self.warps: list = []
        self.unfinished = 0

    def barrier_complete(self) -> bool:
        """True when every non-exited warp has arrived at the barrier."""
        live = [warp for warp in self.warps if not warp.done]
        return bool(live) and all(warp.at_barrier for warp in live)


class WarpBase:
    """State common to NVIDIA warps and AMD wavefronts."""

    def __init__(self, wid: int, block: BlockState, lane_offset: int,
                 nlanes: int, warp_size: int, reg_base_row: int):
        self.wid = wid                  # core-local warp slot id
        self.block = block
        self.lane_offset = lane_offset  # first flat thread id within block
        self.nlanes = nlanes
        self.warp_size = warp_size
        self.reg_base_row = reg_base_row
        #: Hardware warp-context slot (0 .. max_warps_per_core - 1),
        #: assigned by the core at block residency — the slot axis of
        #: the control-structure fault geometry (repro.sim.control).
        self.hw_slot = -1
        self.ready_cycle = 0
        self.last_issue = -1
        self.at_barrier = False
        self.barrier_arrival = 0

    @property
    def done(self) -> bool:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpoint protocol (see repro.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data image of the ISA-independent warp state."""
        return {
            "wid": self.wid,
            "lane_offset": self.lane_offset,
            "nlanes": self.nlanes,
            "reg_base_row": self.reg_base_row,
            "hw_slot": int(self.hw_slot),
            "ready_cycle": int(self.ready_cycle),
            "last_issue": int(self.last_issue),
            "at_barrier": bool(self.at_barrier),
            "barrier_arrival": int(self.barrier_arrival),
        }

    def _restore_base(self, state: dict) -> None:
        self.hw_slot = state["hw_slot"]
        self.ready_cycle = state["ready_cycle"]
        self.last_issue = state["last_issue"]
        self.at_barrier = state["at_barrier"]
        self.barrier_arrival = state["barrier_arrival"]


class SassWarp(WarpBase):
    """NVIDIA warp: SIMT stack divergence + predicate registers."""

    def __init__(self, wid, block, lane_offset, nlanes, warp_size, reg_base_row):
        super().__init__(wid, block, lane_offset, nlanes, warp_size, reg_base_row)
        self.stack = SimtStack(mask_lanes(nlanes))
        self.preds = np.zeros((NUM_PREDICATES, warp_size), dtype=bool)
        self._specials: dict[str, np.ndarray] = {}

    @property
    def done(self) -> bool:
        return self.stack.empty

    @property
    def pc(self) -> int:
        return self.stack.pc

    def special_cache(self) -> dict:
        return self._specials

    def snapshot_state(self) -> dict:
        # The special-register cache is dropped: its values are pure
        # functions of launch geometry, recomputed on demand.
        state = super().snapshot_state()
        state["stack"] = self.stack.snapshot_state()
        state["preds"] = self.preds.copy()
        return state

    @classmethod
    def from_state(cls, state: dict, block: "BlockState",
                   warp_size: int) -> "SassWarp":
        warp = cls(state["wid"], block, state["lane_offset"],
                   state["nlanes"], warp_size, state["reg_base_row"])
        warp._restore_base(state)
        warp.stack.restore_state(state["stack"])
        warp.preds[:] = state["preds"]
        return warp


class SiWavefront(WarpBase):
    """AMD wavefront: scalar register file + EXEC-mask divergence."""

    def __init__(self, wid, block, lane_offset, nlanes, warp_size,
                 reg_base_row, num_sgprs: int):
        super().__init__(wid, block, lane_offset, nlanes, warp_size, reg_base_row)
        self.pc = 0
        self.valid_mask = mask_lanes(nlanes)
        self.exec_mask = self.valid_mask
        self.vcc = 0
        self.scc = False
        self.sgprs = np.zeros(max(num_sgprs, 8), dtype=np.uint32)
        self.finished = False

    @property
    def done(self) -> bool:
        return self.finished

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["pc"] = int(self.pc)
        state["valid_mask"] = int(self.valid_mask)
        state["exec_mask"] = int(self.exec_mask)
        state["vcc"] = int(self.vcc)
        state["scc"] = bool(self.scc)
        state["sgprs"] = self.sgprs.copy()
        state["finished"] = bool(self.finished)
        return state

    @classmethod
    def from_state(cls, state: dict, block: "BlockState",
                   warp_size: int) -> "SiWavefront":
        wave = cls(state["wid"], block, state["lane_offset"],
                   state["nlanes"], warp_size, state["reg_base_row"],
                   num_sgprs=len(state["sgprs"]))
        wave._restore_base(state)
        wave.pc = state["pc"]
        wave.valid_mask = state["valid_mask"]
        wave.exec_mask = state["exec_mask"]
        wave.vcc = state["vcc"]
        wave.scc = state["scc"]
        wave.sgprs[:] = state["sgprs"]
        wave.finished = state["finished"]
        return wave
