"""Kernel launch descriptors.

A :class:`LaunchConfig` is the device-side half of a workload: which
program to run, the grid/block geometry, and the packed kernel
parameters (32-bit words — integers, float bit patterns and buffer base
addresses), accessed by the kernels as ``c[k]`` (SASS) or ``param[k]``
(SI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bits import float_to_bits, u32
from repro.errors import LaunchError
from repro.isa.base import Program


def pack_params(*values) -> list[int]:
    """Pack ints / floats / numpy scalars into u32 parameter words."""
    words: list[int] = []
    for value in values:
        if isinstance(value, (bool, np.bool_)):
            words.append(int(value))
        elif isinstance(value, (float, np.floating)):
            words.append(float_to_bits(float(value)))
        elif isinstance(value, (int, np.integer)):
            words.append(u32(int(value)))
        else:
            raise LaunchError(f"cannot pack parameter {value!r}")
    return words


@dataclass
class LaunchConfig:
    """One kernel launch (grid of blocks of threads)."""

    program: Program
    grid: tuple     # (gx, gy)
    block: tuple    # (bx, by)
    params: list = field(default_factory=list)

    def __post_init__(self):
        if len(self.grid) == 1:
            self.grid = (self.grid[0], 1)
        if len(self.block) == 1:
            self.block = (self.block[0], 1)
        gx, gy = self.grid
        bx, by = self.block
        if gx <= 0 or gy <= 0 or bx <= 0 or by <= 0:
            raise LaunchError(f"bad geometry grid={self.grid} block={self.block}")
        if bx * by > 1024:
            raise LaunchError("more than 1024 threads per block")

    @property
    def threads_per_block(self) -> int:
        return self.block[0] * self.block[1]

    @property
    def num_blocks(self) -> int:
        return self.grid[0] * self.grid[1]

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block

    def block_indices(self):
        """Linear dispatch order: x fastest (row-major over (y, x))."""
        for by_ in range(self.grid[1]):
            for bx_ in range(self.grid[0]):
                yield (bx_, by_)

    def param_word(self, index: int) -> int:
        if not 0 <= index < len(self.params):
            raise LaunchError(
                f"kernel {self.program.name!r} reads param {index} "
                f"but only {len(self.params)} were passed"
            )
        return self.params[index]
