"""Microarchitectural GPU simulators (the GPGPU-Sim / Multi2Sim substitutes)."""

from repro.sim.gpu import Gpu, default_watchdog_for
from repro.sim.launch import LaunchConfig, pack_params
from repro.sim.faults import (
    FaultPlan,
    LOCAL_MEMORY,
    PREDICATE_FILE,
    REGISTER_FILE,
    SCHEDULER_STATE,
    SIMT_STACK,
    sample_faults,
)
from repro.sim.tracing import (
    TRACE_SCHEMA_VERSION,
    CompositeSink,
    EventRecorder,
    JsonlTraceSink,
    TraceSink,
    read_trace_events,
)

__all__ = [
    "Gpu",
    "LaunchConfig",
    "pack_params",
    "FaultPlan",
    "REGISTER_FILE",
    "LOCAL_MEMORY",
    "SIMT_STACK",
    "PREDICATE_FILE",
    "SCHEDULER_STATE",
    "sample_faults",
    "TraceSink",
    "CompositeSink",
    "EventRecorder",
    "JsonlTraceSink",
    "TRACE_SCHEMA_VERSION",
    "read_trace_events",
    "default_watchdog_for",
]
