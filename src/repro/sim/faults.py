"""Fault plans: where and when a bit flips.

The fault model is the paper's: a single soft-error bit flip at a
uniformly random (bit, cycle) coordinate over a whole-chip storage
structure x the fault-free execution's duration. A plan pins one such
coordinate; the simulator applies the flip to the target core's storage
the first time that core's clock reaches the plan cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import GpuConfig
from repro.errors import ConfigError

#: Structures the paper injects into.
REGISTER_FILE = "register_file"
LOCAL_MEMORY = "local_memory"
STRUCTURES = (REGISTER_FILE, LOCAL_MEMORY)


@dataclass(frozen=True)
class FaultPlan:
    """One scheduled bit flip."""

    structure: str   # REGISTER_FILE | LOCAL_MEMORY
    core: int        # SM / CU index
    word: int        # word index within that core's structure
    bit: int         # 0 (LSB) .. 31
    cycle: int       # chip cycle at/after which the flip is applied

    def __post_init__(self):
        if self.structure not in STRUCTURES:
            raise ConfigError(f"unknown structure {self.structure!r}")
        if not 0 <= self.bit < 32:
            raise ConfigError(f"bit {self.bit} outside 0..31")
        if self.word < 0 or self.core < 0 or self.cycle < 0:
            raise ConfigError("fault coordinates must be non-negative")

    @property
    def global_word(self) -> int:
        """Word index within the whole-chip structure (core-major)."""
        return self.word  # per-core index; combine with .core for chip coords


def words_per_core(config: GpuConfig, structure: str) -> int:
    """Words of the structure per SM/CU."""
    if structure == REGISTER_FILE:
        return config.registers_per_core
    if structure == LOCAL_MEMORY:
        return config.local_memory_bytes // 4
    raise ConfigError(f"unknown structure {structure!r}")


def fault_from_flat(config: GpuConfig, structure: str, bit_index: int,
                    cycle: int) -> FaultPlan:
    """Build a plan from a flat whole-chip bit index + cycle."""
    per_core = words_per_core(config, structure)
    total_bits = per_core * 32 * config.num_cores
    if not 0 <= bit_index < total_bits:
        raise ConfigError(f"bit index {bit_index} outside structure")
    word_global, bit = divmod(bit_index, 32)
    core, word = divmod(word_global, per_core)
    return FaultPlan(structure=structure, core=core, word=word, bit=bit,
                     cycle=cycle)


def sample_faults(config: GpuConfig, structure: str, total_cycles: int,
                  count: int, rng: np.random.Generator) -> list[FaultPlan]:
    """Draw ``count`` uniform (bit, cycle) fault plans."""
    if total_cycles <= 0:
        raise ConfigError("total_cycles must be positive")
    per_core = words_per_core(config, structure)
    total_bits = per_core * 32 * config.num_cores
    bit_indices = rng.integers(0, total_bits, size=count)
    cycles = rng.integers(0, total_cycles, size=count)
    return [
        fault_from_flat(config, structure, int(b), int(c))
        for b, c in zip(bit_indices, cycles)
    ]
