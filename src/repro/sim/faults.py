"""Fault plans: where and when storage bits are disturbed.

The paper's fault model is a single soft-error bit flip at a uniformly
random (bit, cycle) coordinate over a whole-chip storage structure x
the fault-free execution's duration. A :class:`FaultPlan` pins one such
coordinate; the simulator applies the disturbance to the target core's
storage the first time that core's clock reaches the plan cycle.

The plan format generalizes beyond the paper's transient single-bit
flip (see :mod:`repro.faultmodels`): ``width`` widens the disturbance
to an adjacent bit cluster (multi-bit upsets), and ``stuck_value``
turns it into a permanent stuck-at-0/1 defect that the storage layer
re-applies on every subsequent write-back. The defaults (``width=1``,
``stuck_value=-1``) encode exactly the paper's transient flip, so
plans, samplers and stores from the single-bit-flip era are unchanged.

Plans target any structure in the registry
(:mod:`repro.arch.structures`): the paper's datapath pair
(``register_file``, ``local_memory``) plus the control structures
(``simt_stack``, ``predicate_file``, ``scheduler_state``), which the
per-core :mod:`repro.sim.control` banks translate from (word, bit)
coordinates into live warp state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import GpuConfig
from repro.arch.structures import (
    ALL_STRUCTURES,
    CONTROL_STRUCTURES,
    DATAPATH_STRUCTURES,
    LOCAL_MEMORY,
    PREDICATE_FILE,
    REGISTER_FILE,
    SCHEDULER_STATE,
    SIMT_STACK,
    structure_info,
)
from repro.arch.structures import words_per_core as _words_per_core
from repro.errors import ConfigError

def __getattr__(name: str):
    """Deprecated alias: ``STRUCTURES`` -> ``DATAPATH_STRUCTURES``.

    The default campaign structure set (the paper's datapath pair)
    lives in the structure registry; import
    :data:`repro.arch.structures.DATAPATH_STRUCTURES` instead. The
    full taxonomy (control structures included) is
    :data:`repro.arch.structures.ALL_STRUCTURES`.
    """
    if name == "STRUCTURES":
        import warnings
        warnings.warn(
            "repro.sim.faults.STRUCTURES is deprecated; use "
            "repro.arch.structures.DATAPATH_STRUCTURES (or pass a "
            "CampaignSpec, whose default already is the datapath pair)",
            DeprecationWarning, stacklevel=2)
        return DATAPATH_STRUCTURES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class FaultPlan:
    """One scheduled storage disturbance."""

    structure: str   # any repro.arch.structures registry name
    core: int        # SM / CU index
    word: int        # word index within that core's structure
    bit: int         # 0 (LSB) .. 31: the (lowest) disturbed bit
    cycle: int       # chip cycle at/after which the fault is applied
    width: int = 1   # adjacent bits disturbed (MBU clusters: 2..4)
    stuck_value: int = -1  # -1 = flip; 0/1 = permanent stuck-at value

    def __post_init__(self):
        structure_info(self.structure)  # registry-validated, friendly error
        if not 0 <= self.bit < 32:
            raise ConfigError(f"bit {self.bit} outside 0..31")
        if self.word < 0 or self.core < 0 or self.cycle < 0:
            raise ConfigError("fault coordinates must be non-negative")
        if not 1 <= self.width <= 32:
            raise ConfigError(f"cluster width {self.width} outside 1..32")
        if self.bit + self.width > 32:
            raise ConfigError(
                f"cluster bits {self.bit}..{self.bit + self.width - 1} "
                "cross the 32-bit word boundary"
            )
        if self.stuck_value not in (-1, 0, 1):
            raise ConfigError(
                f"stuck_value {self.stuck_value} not in (-1, 0, 1)"
            )

    @property
    def is_persistent(self) -> bool:
        """True for permanent (stuck-at) faults that survive write-back."""
        return self.stuck_value >= 0

    @property
    def bit_mask(self) -> int:
        """32-bit mask of the disturbed bit cluster."""
        return ((1 << self.width) - 1) << self.bit

    def global_word(self, config: GpuConfig) -> int:
        """Word index within the whole-chip structure (core-major).

        Core-major layout: core ``c``'s words occupy the contiguous
        range ``c * words_per_core .. (c+1) * words_per_core - 1``, so
        this is ``core * words_per_core + word`` — the inverse of
        :func:`fault_from_flat`'s word arithmetic.
        """
        return self.core * words_per_core(config, self.structure) + self.word


def words_per_core(config: GpuConfig, structure: str) -> int:
    """Words of the structure per SM/CU (registry geometry).

    Raises :class:`ConfigError` for unknown structures and for
    structures the chip's ISA does not expose.
    """
    return _words_per_core(config, structure)


def fault_from_flat(config: GpuConfig, structure: str, bit_index: int,
                    cycle: int) -> FaultPlan:
    """Build a plan from a flat whole-chip bit index + cycle."""
    per_core = words_per_core(config, structure)
    total_bits = per_core * 32 * config.num_cores
    if not 0 <= bit_index < total_bits:
        raise ConfigError(f"bit index {bit_index} outside structure")
    word_global, bit = divmod(bit_index, 32)
    core, word = divmod(word_global, per_core)
    return FaultPlan(structure=structure, core=core, word=word, bit=bit,
                     cycle=cycle)


def sample_faults(config: GpuConfig, structure: str, total_cycles: int,
                  count: int, rng: np.random.Generator) -> list[FaultPlan]:
    """Draw ``count`` uniform (bit, cycle) single-bit-flip plans."""
    if total_cycles <= 0:
        raise ConfigError("total_cycles must be positive")
    per_core = words_per_core(config, structure)
    total_bits = per_core * 32 * config.num_cores
    bit_indices = rng.integers(0, total_bits, size=count)
    cycles = rng.integers(0, total_cycles, size=count)
    return [
        fault_from_flat(config, structure, int(b), int(c))
        for b, c in zip(bit_indices, cycles)
    ]
