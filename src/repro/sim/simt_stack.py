"""SIMT reconvergence stack (NVIDIA divergence model).

GPGPU-Sim's per-warp stack with immediate-post-dominator reconvergence:
the top entry defines the warp's current pc and active mask; a divergent
branch rewrites the top entry into the reconvergence point and pushes
one entry per taken side; entries pop when the warp reaches their
reconvergence pc. ``reconv == NO_RECONV`` marks entries that never
reconverge (sides that run until EXIT).
"""

from __future__ import annotations

from dataclasses import dataclass

NO_RECONV = -1


@dataclass
class StackEntry:
    """One reconvergence-stack level."""

    pc: int
    mask: int        # active-lane bitmask
    reconv: int      # pc at which this entry pops (NO_RECONV: never)


class SimtStack:
    """Per-warp divergence stack."""

    def __init__(self, initial_mask: int):
        self.entries = [StackEntry(pc=0, mask=initial_mask, reconv=NO_RECONV)]

    @property
    def top(self) -> StackEntry:
        return self.entries[-1]

    @property
    def pc(self) -> int:
        return self.top.pc

    @property
    def active_mask(self) -> int:
        return self.top.mask

    @property
    def depth(self) -> int:
        return len(self.entries)

    @property
    def empty(self) -> bool:
        """True when every lane has exited."""
        return not self.entries

    def advance(self, next_pc: int) -> None:
        """Sequential flow: move the top entry to ``next_pc`` and pop any
        entries whose reconvergence point has been reached."""
        self.top.pc = next_pc
        self._pop_reconverged()

    def branch(self, taken_mask: int, target: int, fallthrough: int,
               reconv: int) -> None:
        """Apply a (possibly divergent) branch executed by the top entry.

        ``taken_mask`` must be a subset of the current active mask.
        """
        top = self.top
        not_taken = top.mask & ~taken_mask
        if taken_mask == 0:
            self.advance(fallthrough)
            return
        if not_taken == 0:
            self.advance(target)
            return
        if reconv == NO_RECONV:
            # Both sides run to EXIT; no reconvergence entry possible.
            self.entries.pop()
            self.entries.append(
                StackEntry(pc=fallthrough, mask=not_taken, reconv=NO_RECONV)
            )
            self.entries.append(
                StackEntry(pc=target, mask=taken_mask, reconv=NO_RECONV)
            )
            return
        # Divergence: the current top becomes the reconvergence entry
        # (it already carries the union mask of both sides).
        top.pc = reconv
        self.entries.append(StackEntry(pc=fallthrough, mask=not_taken, reconv=reconv))
        self.entries.append(StackEntry(pc=target, mask=taken_mask, reconv=reconv))

    def exit_lanes(self, mask: int) -> None:
        """Lanes terminated (EXIT): remove them from every entry."""
        for entry in self.entries:
            entry.mask &= ~mask
        self.entries = [entry for entry in self.entries if entry.mask]
        self._pop_reconverged()

    def _pop_reconverged(self) -> None:
        while len(self.entries) > 1:
            top = self.entries[-1]
            if top.reconv != NO_RECONV and top.pc == top.reconv:
                self.entries.pop()
            else:
                break

    # ------------------------------------------------------------------
    # Checkpoint protocol (see repro.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> list:
        """Plain-data stack image: one (pc, mask, reconv) row per entry."""
        return [(e.pc, e.mask, e.reconv) for e in self.entries]

    def restore_state(self, state: list) -> None:
        """Replace the stack contents with a snapshot image."""
        self.entries = [
            StackEntry(pc=pc, mask=mask, reconv=reconv)
            for pc, mask, reconv in state
        ]
