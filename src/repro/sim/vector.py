"""Vector-backend fast-path helpers (``GpuConfig.backend="vector"``).

The per-lane reference interpreter (``backend="python"``) spends most
of its per-instruction budget on a handful of tiny scalar loops and
repeated small-array allocations: bit-by-bit SIMT mask conversion,
fresh ``np.full``/``np.zeros`` operands for every immediate, and
lane-serialised atomic adds. This module batches those over all lanes
at once:

* :func:`mask_to_bools` / :func:`bools_to_mask` — SIMT masks via
  ``np.unpackbits``/``np.packbits`` with a bounded cache of immutable
  lane-bool arrays (the same few masks recur for almost every
  instruction of a run);
* :func:`const_u32` / :func:`const_bool` — cached read-only broadcast
  arrays for immediates, kernel parameters, RZ and PT;
* :func:`scatter_add_serialized` — the lane-ordered atomic-add
  semantics as grouped prefix sums instead of a per-lane loop.

Everything here is bit-identical to the reference loops by contract:
the vector and python backends are diffed store-for-store in CI
(``fastpath-parity``), and the unit tests compare each helper against
its reference implementation exhaustively on random inputs. Cached
arrays are returned *read-only* and shared — callers treat operands as
immutable (the ISA semantics handlers are purely functional).
"""

from __future__ import annotations

import numpy as np

#: Bounded caches: cleared wholesale when full (the working set of one
#: run is a few dozen masks and a few hundred constants).
_CACHE_MAX = 4096

_MASK_CACHE: dict[tuple[int, int], np.ndarray] = {}
_CONST_CACHE: dict[tuple[int, int], np.ndarray] = {}
_BOOL_CACHE: dict[tuple[int, bool], np.ndarray] = {}


def mask_to_bools(mask: int, width: int) -> np.ndarray:
    """Lane-bool view of a SIMT mask (cached, read-only).

    Bit-identical to the reference per-bit loop for any mask with bits
    below ``width`` (the only masks the simulators produce: mask words
    are as wide as the warp).
    """
    key = (width, mask)
    out = _MASK_CACHE.get(key)
    if out is None:
        raw = np.frombuffer(
            int(mask).to_bytes((width + 7) // 8, "little"), dtype=np.uint8
        )
        out = np.unpackbits(raw, bitorder="little")[:width].astype(bool)
        out.setflags(write=False)
        if len(_MASK_CACHE) >= _CACHE_MAX:
            _MASK_CACHE.clear()
        _MASK_CACHE[key] = out
    return out


def bools_to_mask(bools: np.ndarray) -> int:
    """Integer SIMT mask from a lane-bool array (inverse of the above)."""
    return int.from_bytes(
        np.packbits(bools, bitorder="little").tobytes(), "little"
    )


def const_u32(width: int, value: int) -> np.ndarray:
    """Cached read-only ``np.full(width, value, uint32)`` broadcast."""
    key = (width, int(value))
    out = _CONST_CACHE.get(key)
    if out is None:
        out = np.full(width, value, dtype=np.uint32)
        out.setflags(write=False)
        if len(_CONST_CACHE) >= _CACHE_MAX:
            _CONST_CACHE.clear()
        _CONST_CACHE[key] = out
    return out


def const_bool(width: int, value: bool) -> np.ndarray:
    """Cached read-only all-``value`` lane-bool array (PT reads)."""
    key = (width, bool(value))
    out = _BOOL_CACHE.get(key)
    if out is None:
        out = (np.ones if value else np.zeros)(width, dtype=bool)
        out.setflags(write=False)
        _BOOL_CACHE[key] = out
    return out


def scatter_add_serialized(data: np.ndarray, index: np.ndarray,
                           values: np.ndarray) -> np.ndarray:
    """Lane-ordered atomic add into ``data``; returns per-lane old values.

    Reproduces the reference loop exactly: lanes hitting the same word
    are serialised in lane order, so lane *k*'s old value includes the
    adds of every lower lane on that word, and all arithmetic is mod
    2**32. Unique-index calls (the common case) are a pure gather +
    scatter; duplicates fall back to grouped prefix sums (stable sort
    keeps lane order within each address group).
    """
    n = index.size
    if n == 0:
        return np.empty(0, dtype=np.uint32)
    vals = values.astype(np.uint32, copy=False)
    if np.unique(index).size == n:
        old = data[index].copy()
        data[index] = old + vals  # uint32 addition wraps mod 2**32
        return old
    order = np.argsort(index, kind="stable")
    sidx = index[order]
    svals = vals[order].astype(np.uint64)
    starts = np.flatnonzero(np.r_[True, sidx[1:] != sidx[:-1]])
    group = np.cumsum(np.r_[0, (sidx[1:] != sidx[:-1]).astype(np.int64)])
    csum = np.cumsum(svals)
    before = csum - svals                    # adds by all earlier lanes
    before -= before[starts][group]          # ... restricted to the group
    base = data[sidx[starts]].astype(np.uint64)[group]
    old = np.empty(n, dtype=np.uint32)
    old[order] = ((base + before) & 0xFFFFFFFF).astype(np.uint32)
    totals = np.add.reduceat(svals, starts)
    first = sidx[starts]
    data[first] = ((data[first].astype(np.uint64) + totals)
                   & 0xFFFFFFFF).astype(np.uint32)
    return old


def clear_caches() -> None:
    """Drop every cached array (tests and long-lived workers)."""
    _MASK_CACHE.clear()
    _CONST_CACHE.clear()
    _BOOL_CACHE.clear()
