"""NVIDIA SM model: SASS front-end on the generic core engine.

Implements the warp context protocol consumed by
:mod:`repro.isa.sass.semantics` (masked register/predicate/memory
access) plus SIMT-stack divergence with immediate-post-dominator
reconvergence.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import IllegalInstruction
from repro.isa.base import Imm, Param, Pred, Reg
from repro.isa.sass import semantics
from repro.isa.sass.cfg import immediate_postdominators
from repro.isa.sass.opcodes import SASS_OPCODES
from repro.sim.core import CoreBase
from repro.sim.simt_stack import NO_RECONV
from repro.sim.vector import bools_to_mask as _v_bools_to_mask
from repro.sim.vector import const_bool, const_u32
from repro.sim.vector import mask_to_bools as _v_mask_to_bools
from repro.sim.warp import BlockState, SassWarp
from repro.telemetry import profile as _profile


def _bools_to_mask(bools: np.ndarray) -> int:
    mask = 0
    for lane in np.flatnonzero(bools):
        mask |= 1 << int(lane)
    return mask


def _mask_to_bools(mask: int, width: int) -> np.ndarray:
    out = np.zeros(width, dtype=bool)
    lane = 0
    while mask:
        if mask & 1:
            out[lane] = True
        mask >>= 1
        lane += 1
    return out


class SassCore(CoreBase):
    """One streaming multiprocessor executing SASS-like kernels."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._ipdom: dict[int, int] = {}
        #: vector backend: per-pc (inst, opcode-info, latency) decode
        #: cache, built once per launch instead of per issue.
        self._decoded: list = []
        # Per-instruction context (the semantics handlers' `ctx` is self).
        self._warp: SassWarp | None = None
        self.eff_bool: np.ndarray | None = None
        self.eff_mask: int = 0
        self._cycle: int = 0

    # ------------------------------------------------------------------
    # CoreBase hooks
    # ------------------------------------------------------------------
    def _prepare_program(self, program) -> None:
        self._ipdom = immediate_postdominators(program)
        if self.vector:
            self._decoded = []
            for pc in range(len(program)):
                inst = program.at(pc)
                info = SASS_OPCODES[inst.opcode]
                self._decoded.append(
                    (inst, info, self.latency_of(info.latency_class)))

    def _populate_warps(self, block: BlockState) -> None:
        threads = self.launch.threads_per_block
        warp_size = self.config.warp_size
        rows_per_warp = self.footprint.reg_words_per_warp // warp_size
        num_warps = math.ceil(threads / warp_size)
        for slot in range(num_warps):
            lane_offset = slot * warp_size
            nlanes = min(warp_size, threads - lane_offset)
            warp = SassWarp(
                wid=self.next_warp_id(),
                block=block,
                lane_offset=lane_offset,
                nlanes=nlanes,
                warp_size=warp_size,
                reg_base_row=block.reg_base_row + slot * rows_per_warp,
            )
            block.warps.append(warp)
        block.unfinished = num_warps

    def _warp_from_state(self, state: dict, block: BlockState) -> SassWarp:
        return SassWarp.from_state(state, block, self.config.warp_size)

    def _execute(self, warp: SassWarp, t_issue: int) -> int:
        if self.vector:
            return self._execute_fast(warp, t_issue)
        program = self.program
        pc = warp.stack.pc
        if not 0 <= pc < len(program):
            # Only reachable under fault injection (e.g. a flipped
            # SIMT-stack pc); hardware raises an illegal-address
            # exception here, which the campaign classifies as DUE.
            raise IllegalInstruction(
                f"pc {pc} outside program 0..{len(program) - 1}"
            )
        inst = program.at(pc)
        info = SASS_OPCODES[inst.opcode]

        # Hot-path profiling hook: one global read + branch when off.
        prof = _profile.ACTIVE
        if prof is not None:
            prof.dispatch("sass", info.latency_class,
                          bool(info.memory_space))

        active_mask = warp.stack.active_mask
        active_bool = _mask_to_bools(active_mask, self.config.warp_size)
        if inst.guard is not None:
            guard_bool = self._pred_values(warp, inst.guard)
            eff_bool = active_bool & guard_bool
        else:
            eff_bool = active_bool
        eff_mask = _bools_to_mask(eff_bool)

        self._warp = warp
        self.eff_bool = eff_bool
        self.eff_mask = eff_mask
        self._cycle = t_issue

        latency = self.latency_of(info.latency_class)

        if eff_mask == 0 and not (info.is_branch or info.is_exit or info.is_barrier):
            warp.stack.advance(pc + 1)
            return latency

        # Corrupted values under fault injection legitimately overflow
        # float arithmetic; hardware does not warn, neither do we.
        with np.errstate(all="ignore"):
            effect = semantics.execute(self, inst)

        self._apply_effect(warp, pc, effect, t_issue)
        return latency + effect.extra_cycles

    def _execute_fast(self, warp: SassWarp, t_issue: int) -> int:
        """Vector-backend twin of :meth:`_execute` (same decisions).

        Differences are purely mechanical: the per-pc decode cache
        replaces the opcode-table lookups, and the SIMT mask/bool
        conversions come from :mod:`repro.sim.vector`'s cached
        ``packbits`` forms instead of per-bit loops.
        """
        decoded = self._decoded
        pc = warp.stack.pc
        if not 0 <= pc < len(decoded):
            raise IllegalInstruction(
                f"pc {pc} outside program 0..{len(decoded) - 1}"
            )
        inst, info, latency = decoded[pc]

        prof = _profile.ACTIVE
        if prof is not None:
            prof.dispatch("sass", info.latency_class,
                          bool(info.memory_space))

        active_mask = warp.stack.active_mask
        active_bool = _v_mask_to_bools(active_mask, self.config.warp_size)
        if inst.guard is not None:
            eff_bool = active_bool & self._pred_values(warp, inst.guard)
            eff_mask = _v_bools_to_mask(eff_bool)
        else:
            eff_bool = active_bool
            eff_mask = active_mask

        self._warp = warp
        self.eff_bool = eff_bool
        self.eff_mask = eff_mask
        self._cycle = t_issue

        if eff_mask == 0 and not (info.is_branch or info.is_exit or info.is_barrier):
            warp.stack.advance(pc + 1)
            return latency

        with np.errstate(all="ignore"):
            effect = semantics.execute(self, inst)

        self._apply_effect(warp, pc, effect, t_issue)
        return latency + effect.extra_cycles

    def _apply_effect(self, warp: SassWarp, pc: int, effect,
                      t_issue: int) -> None:
        """Retire one instruction's control effect on the SIMT stack."""
        if effect.kind == "branch":
            reconv = self._ipdom.get(pc, NO_RECONV)
            warp.stack.branch(effect.mask, effect.target, pc + 1, reconv)
        elif effect.kind == "exit":
            warp.stack.exit_lanes(effect.mask)
            if not warp.stack.empty and warp.stack.pc == pc:
                warp.stack.advance(pc + 1)
        elif effect.kind == "barrier":
            warp.stack.advance(pc + 1)
            self._arrive_barrier(warp, t_issue)
        else:
            warp.stack.advance(pc + 1)

    # ------------------------------------------------------------------
    # Warp-context protocol (used by repro.isa.sass.semantics)
    # ------------------------------------------------------------------
    def resolve_label(self, ref) -> int:
        return self.program.resolve_label(ref)

    def read_reg(self, reg: Reg) -> np.ndarray:
        if reg.index < 0:  # RZ
            if self.vector:
                return const_u32(self.config.warp_size, 0)
            return np.zeros(self.config.warp_size, dtype=np.uint32)
        row = self._warp.reg_base_row + reg.index
        return self.regfile.read_row(row, self.eff_mask, self._cycle)

    def write_reg(self, reg: Reg, values: np.ndarray) -> None:
        if reg.index < 0:  # RZ: discard
            return
        row = self._warp.reg_base_row + reg.index
        self.regfile.write_row(
            row, values, self.eff_bool, self.eff_mask, self._cycle
        )

    def _pred_values(self, warp: SassWarp, pred: Pred) -> np.ndarray:
        if pred.index < 0:  # PT
            if self.vector:
                return const_bool(self.config.warp_size, not pred.negated)
            values = np.ones(self.config.warp_size, dtype=bool)
        else:
            values = warp.preds[pred.index].copy()
        return ~values if pred.negated else values

    def read_pred(self, pred: Pred) -> np.ndarray:
        return self._pred_values(self._warp, pred)

    def write_pred(self, pred: Pred, values: np.ndarray) -> None:
        if pred.index < 0:
            return
        np.copyto(self._warp.preds[pred.index], values, where=self.eff_bool)

    def read_operand(self, op) -> np.ndarray:
        if isinstance(op, Reg):
            return self.read_reg(op)
        if isinstance(op, Imm):
            if self.vector:
                return const_u32(self.config.warp_size, op.value)
            return np.full(self.config.warp_size, op.value, dtype=np.uint32)
        if isinstance(op, Param):
            word = self.launch.param_word(op.index)
            if self.vector:
                return const_u32(self.config.warp_size, word)
            return np.full(self.config.warp_size, word, dtype=np.uint32)
        raise TypeError(f"cannot read operand {op!r}")

    def special(self, name: str) -> np.ndarray:
        cache = self._warp.special_cache()
        if name not in cache:
            cache[name] = self._compute_special(self._warp, name)
        return cache[name]

    def _compute_special(self, warp: SassWarp, name: str) -> np.ndarray:
        size = self.config.warp_size
        bx, by = self.launch.block
        gx, gy = self.launch.grid
        flat = warp.lane_offset + np.arange(size, dtype=np.uint32)
        if name == "SR_TID_X":
            return flat % np.uint32(bx)
        if name == "SR_TID_Y":
            return flat // np.uint32(bx)
        if name == "SR_CTAID_X":
            return np.full(size, warp.block.index[0], dtype=np.uint32)
        if name == "SR_CTAID_Y":
            return np.full(size, warp.block.index[1], dtype=np.uint32)
        if name == "SR_NTID_X":
            return np.full(size, bx, dtype=np.uint32)
        if name == "SR_NTID_Y":
            return np.full(size, by, dtype=np.uint32)
        if name == "SR_NCTAID_X":
            return np.full(size, gx, dtype=np.uint32)
        if name == "SR_NCTAID_Y":
            return np.full(size, gy, dtype=np.uint32)
        if name == "SR_LANEID":
            return np.arange(size, dtype=np.uint32)
        if name == "SR_WARPID":
            return np.full(size, warp.lane_offset // size, dtype=np.uint32)
        raise KeyError(f"unknown special register {name}")

    # ------------------------------------------------------------------
    # Memory (global addresses are byte addresses; values are u32 words)
    # ------------------------------------------------------------------
    def global_load(self, addresses: np.ndarray):
        sel = self.eff_bool
        out = np.zeros(self.config.warp_size, dtype=np.uint32)
        selected = addresses[sel]
        out[sel] = self.gmem.load_words(selected)
        return out, self._coalescing_extra(selected)

    def global_store(self, addresses: np.ndarray, values: np.ndarray) -> int:
        sel = self.eff_bool
        selected = addresses[sel]
        self.gmem.store_words(selected, values[sel])
        return self._coalescing_extra(selected)

    def global_atomic_add(self, addresses: np.ndarray, values: np.ndarray):
        sel = self.eff_bool
        out = np.zeros(self.config.warp_size, dtype=np.uint32)
        selected = addresses[sel]
        out[sel] = self.gmem.atomic_add(selected, values[sel])
        return out, self._coalescing_extra(selected)

    def _shared_addrs(self, addresses: np.ndarray) -> np.ndarray:
        return addresses + self._warp.block.lmem_base

    def shared_load(self, addresses: np.ndarray) -> np.ndarray:
        sel = self.eff_bool
        out = np.zeros(self.config.warp_size, dtype=np.uint32)
        out[sel] = self.lmem.load(self._shared_addrs(addresses)[sel], self._cycle)
        return out

    def shared_store(self, addresses: np.ndarray, values: np.ndarray) -> None:
        sel = self.eff_bool
        self.lmem.store(
            self._shared_addrs(addresses)[sel], values[sel], self._cycle
        )

    def shared_atomic_add(self, addresses: np.ndarray, values: np.ndarray):
        sel = self.eff_bool
        out = np.zeros(self.config.warp_size, dtype=np.uint32)
        out[sel] = self.lmem.atomic_add(
            self._shared_addrs(addresses)[sel], values[sel], self._cycle
        )
        return out
