"""Access-trace plumbing.

The reliability analyses (ACE lifetime analysis, fault-injection pruning,
occupancy measurement) all consume the same stream of storage-access
events emitted by the simulators:

* register-file accesses at *row* granularity — one row is the
  ``warp_size`` consecutive 32-bit words holding one architectural
  register of one warp/wavefront — with a lane bitmask;
* local/shared-memory accesses as arrays of word indices (scatter/gather
  capable);
* block (CTA / work-group) allocate / release events carrying the
  resources the block occupies.

Sinks accumulate *online*: nothing stores the full event stream, so a
traced golden run costs O(structure) memory, not O(instructions). For
debugging and tests, :class:`EventRecorder` keeps the raw events.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

#: Version of the JSONL trace event schema (the ``v`` field of every
#: line :class:`JsonlTraceSink` writes). Bump when an event's fields
#: change incompatibly.
TRACE_SCHEMA_VERSION = 1


class TraceSink:
    """Interface for consumers of storage-access events.

    ``cycle`` is always chip-level (launch-continuous) time. ``core`` is
    the SM/CU index. All hooks have default no-op implementations so
    sinks override only what they need.
    """

    def on_reg_access(self, cycle: int, core: int, row: int, mask: int,
                      is_write: bool) -> None:
        """A register row (``warp_size`` words) was read or written.

        ``mask`` is the active-lane bitmask (lane 0 = LSB): lane ``l`` is
        involved iff bit ``l`` is set, and the touched physical word is
        ``row * warp_size + l`` within the core's register file.
        """

    def on_lmem_access(self, cycle: int, core: int, words: np.ndarray,
                       is_write: bool) -> None:
        """Local/shared memory words (array of word indices) accessed."""

    def on_block_alloc(self, cycle: int, core: int, reg_words: int,
                       lmem_bytes: int) -> None:
        """A block became resident, occupying the given resources."""

    def on_block_free(self, cycle: int, core: int, reg_words: int,
                      lmem_bytes: int) -> None:
        """A resident block retired, releasing its resources."""

    def on_warp_slot_alloc(self, cycle: int, core: int, slot: int) -> None:
        """A hardware warp-context slot became occupied.

        The slot's control state (SIMT stack, predicates, scheduler
        bookkeeping — see :mod:`repro.sim.control`) is initialised at
        this point, which is the write-back that kills any earlier
        transient disturbance of the slot's storage.
        """

    def on_warp_slot_free(self, cycle: int, core: int, slot: int) -> None:
        """A hardware warp-context slot was released (block retired)."""

    def on_run_end(self, cycle: int) -> None:
        """Simulation finished; ``cycle`` is the final chip time."""


class CompositeSink(TraceSink):
    """Fan out events to several sinks."""

    def __init__(self, *sinks: TraceSink):
        self.sinks = [sink for sink in sinks if sink is not None]

    def on_reg_access(self, cycle, core, row, mask, is_write):
        for sink in self.sinks:
            sink.on_reg_access(cycle, core, row, mask, is_write)

    def on_lmem_access(self, cycle, core, words, is_write):
        for sink in self.sinks:
            sink.on_lmem_access(cycle, core, words, is_write)

    def on_block_alloc(self, cycle, core, reg_words, lmem_bytes):
        for sink in self.sinks:
            sink.on_block_alloc(cycle, core, reg_words, lmem_bytes)

    def on_block_free(self, cycle, core, reg_words, lmem_bytes):
        for sink in self.sinks:
            sink.on_block_free(cycle, core, reg_words, lmem_bytes)

    def on_warp_slot_alloc(self, cycle, core, slot):
        for sink in self.sinks:
            sink.on_warp_slot_alloc(cycle, core, slot)

    def on_warp_slot_free(self, cycle, core, slot):
        for sink in self.sinks:
            sink.on_warp_slot_free(cycle, core, slot)

    def on_run_end(self, cycle):
        for sink in self.sinks:
            sink.on_run_end(cycle)


class EventRecorder(TraceSink):
    """Keep every event verbatim (tests / debugging only)."""

    def __init__(self):
        self.reg_events: list[tuple] = []    # (cycle, core, row, mask, is_write)
        self.lmem_events: list[tuple] = []   # (cycle, core, tuple(words), is_write)
        self.block_events: list[tuple] = []  # (cycle, core, reg_words, lmem_bytes, kind)
        self.warp_slot_events: list[tuple] = []  # (cycle, core, slot, kind)
        self.end_cycle: int | None = None

    def on_reg_access(self, cycle, core, row, mask, is_write):
        self.reg_events.append((cycle, core, row, mask, is_write))

    def on_lmem_access(self, cycle, core, words, is_write):
        self.lmem_events.append(
            (cycle, core, tuple(int(w) for w in np.atleast_1d(words)), is_write)
        )

    def on_block_alloc(self, cycle, core, reg_words, lmem_bytes):
        self.block_events.append((cycle, core, reg_words, lmem_bytes, "alloc"))

    def on_block_free(self, cycle, core, reg_words, lmem_bytes):
        self.block_events.append((cycle, core, reg_words, lmem_bytes, "free"))

    def on_warp_slot_alloc(self, cycle, core, slot):
        self.warp_slot_events.append((cycle, core, slot, "alloc"))

    def on_warp_slot_free(self, cycle, core, slot):
        self.warp_slot_events.append((cycle, core, slot, "free"))

    def on_run_end(self, cycle):
        self.end_cycle = cycle


class JsonlTraceSink(TraceSink):
    """Write every access event as one JSON line (offline analysis).

    Each line is a flat object ``{"v": 1, "event": <type>, ...}`` with
    plain-scalar fields only (word-index arrays become lists of ints),
    so any JSONL consumer can replay a simulation's access stream
    without this package. The file is truncated on construction — one
    file is one run — and closed by :meth:`on_run_end`, ``close()``,
    or the context-manager exit.

    Unlike the online sinks this stores the *full* stream: cost is
    O(instructions) disk, so it is a debugging/inter-op tool, not part
    of a campaign. :func:`read_trace_events` loads the file back.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self.events_written = 0

    def _write(self, event_type: str, **fields) -> None:
        if self._handle is None:
            return
        record = {"v": TRACE_SCHEMA_VERSION, "event": event_type, **fields}
        self._handle.write(json.dumps(record) + "\n")
        self.events_written += 1

    def on_reg_access(self, cycle, core, row, mask, is_write):
        self._write("reg_access", cycle=int(cycle), core=int(core),
                    row=int(row), mask=int(mask), is_write=bool(is_write))

    def on_lmem_access(self, cycle, core, words, is_write):
        self._write("lmem_access", cycle=int(cycle), core=int(core),
                    words=[int(w) for w in np.atleast_1d(words)],
                    is_write=bool(is_write))

    def on_block_alloc(self, cycle, core, reg_words, lmem_bytes):
        self._write("block_alloc", cycle=int(cycle), core=int(core),
                    reg_words=int(reg_words), lmem_bytes=int(lmem_bytes))

    def on_block_free(self, cycle, core, reg_words, lmem_bytes):
        self._write("block_free", cycle=int(cycle), core=int(core),
                    reg_words=int(reg_words), lmem_bytes=int(lmem_bytes))

    def on_warp_slot_alloc(self, cycle, core, slot):
        self._write("warp_slot_alloc", cycle=int(cycle), core=int(core),
                    slot=int(slot))

    def on_warp_slot_free(self, cycle, core, slot):
        self._write("warp_slot_free", cycle=int(cycle), core=int(core),
                    slot=int(slot))

    def on_run_end(self, cycle):
        self._write("run_end", cycle=int(cycle))
        self.close()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace_events(path: str | Path) -> list[dict]:
    """The events of one :class:`JsonlTraceSink` file, in file order."""
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events
