"""Control-structure storage banks: (word, bit)-addressable views over
live warp state.

The datapath structures (register file, local memory) are backed by
real arrays, so fault injection mutates storage directly. The control
structures — SIMT reconvergence stacks, predicate/status registers,
warp-scheduler bookkeeping — live distributed across the core's warp
objects instead. Each :class:`ControlBank` exposes one such structure
through the same storage protocol the fault models already speak
(``flip_bit`` / ``flip_bits`` / ``force_bit``), translating the
physical (word, bit) coordinate of a :class:`~repro.sim.faults.FaultPlan`
into a mutation of the warp currently occupying the target hardware
slot.

Geometry (see :mod:`repro.arch.structures`): each structure has
``control_words_per_warp`` words per hardware warp slot and
``max_warps_per_core`` slots per core; word ``w`` addresses slot
``w // words_per_warp``, field ``w % words_per_warp``.

Semantics that fall out of the hardware model:

* A disturbance landing in an *unoccupied* slot (or a SIMT-stack level
  deeper than the current stack) is a no-op: the slot's storage is
  re-initialised (written) when the next warp moves in, which is
  exactly the write-back that kills a transient fault — and the
  dead-site pruning (:class:`repro.reliability.liveness.FaultSiteResolver`)
  proves sites dead only when the slot is never occupied again.
* Permanent (stuck-at) overlays belong to the *slot's storage*, not to
  one warp: the core re-asserts them at every issue boundary, so they
  corrupt every warp that ever occupies the slot from the fault cycle
  onward — including warps allocated after the defect appeared.
"""

from __future__ import annotations

import numpy as np

from repro.arch.structures import (
    PREDICATE_FILE,
    SCHED_BARRIER_HI,
    SCHED_BARRIER_LO,
    SCHED_FLAG_AT_BARRIER,
    SCHED_FLAGS,
    SCHED_READY_HI,
    SCHED_READY_LO,
    SCHEDULER_STATE,
    SI_PRED_EXEC_HI,
    SI_PRED_EXEC_LO,
    SI_PRED_SCC,
    SI_PRED_VCC_HI,
    SI_PRED_VCC_LO,
    SIMT_STACK,
    SIMT_STACK_ENTRY_WORDS,
    STACK_FIELD_MASK,
    STACK_FIELD_PC,
    STACK_FIELD_RECONV,
    control_words_per_warp,
    structure_exposed,
    words_per_core,
)
from repro.errors import ConfigError
from repro.sim.simt_stack import NO_RECONV

_M32 = 0xFFFFFFFF


class ControlBank:
    """One core's (word, bit)-addressable view of one control structure.

    Subclasses implement ``_read``/``_write`` for their field layout;
    ``_read`` returns None for storage with no current occupant (empty
    slot, stack level beyond the live depth), which makes every
    disturbance of it a no-op.
    """

    structure: str = ""

    def __init__(self, core):
        self.core = core
        self.words_per_warp = control_words_per_warp(core.config, self.structure)
        self.num_words = words_per_core(core.config, self.structure)
        # word -> (and_mask, or_mask): permanent stuck-at overlays,
        # re-asserted by the core at every issue boundary.
        self._forced: dict[int, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Storage protocol (mirrors RegisterFile / LocalMemory)
    # ------------------------------------------------------------------
    def flip_bit(self, word: int, bit: int) -> None:
        """Invert one stored bit (transient fault injection)."""
        self.flip_bits(word, 1 << bit)

    def flip_bits(self, word: int, mask: int) -> None:
        """Invert a mask of stored bits in one word (multi-bit upsets)."""
        self._check_word(word)
        value = self._read(word)
        if value is None:
            return
        self._write(word, (value ^ mask) & _M32)

    def force_bit(self, word: int, bit: int, value: int) -> None:
        """Permanently stick one bit at ``value`` (0/1).

        The overlay takes effect immediately and is re-asserted by the
        core before every subsequent instruction issue, so the bit
        reads as ``value`` for the rest of the run no matter how often
        the machine rewrites the field — a hardware defect of the
        slot's storage, not a one-shot upset.
        """
        self._check_word(word)
        and_mask, or_mask = self._forced.get(word, (_M32, 0))
        if value:
            or_mask |= 1 << bit
        else:
            and_mask &= ~(1 << bit) & _M32
        self._forced[word] = (and_mask, or_mask)
        self.core._control_dirty = True
        self.reassert()

    def reassert(self) -> None:
        """Re-impose the stuck-at overlays on the live state (idempotent)."""
        for word, (and_mask, or_mask) in self._forced.items():
            value = self._read(word)
            if value is None:
                continue
            forced = (value & and_mask) | or_mask
            if forced != value:
                self._write(word, forced)

    def _check_word(self, word: int) -> None:
        if not 0 <= word < self.num_words:
            raise ConfigError(
                f"{self.structure} word {word} out of range "
                f"0..{self.num_words - 1}"
            )

    # ------------------------------------------------------------------
    # Checkpoint protocol (see repro.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data overlay image (the live state lives on the warps)."""
        return {"forced": dict(self._forced)}

    def restore_state(self, state: dict) -> None:
        """Restore the stuck-at overlays from a snapshot image."""
        self._forced = {
            int(word): (int(and_mask), int(or_mask))
            for word, (and_mask, or_mask) in state["forced"].items()
        }

    @property
    def has_overlays(self) -> bool:
        return bool(self._forced)

    # ------------------------------------------------------------------
    def _warp(self, slot: int):
        """The warp occupying a hardware slot, or None."""
        for warp in self.core.warps:
            if warp.hw_slot == slot:
                return warp
        return None

    def _locate(self, word: int) -> tuple:
        return divmod(word, self.words_per_warp)

    def _read(self, word: int):
        raise NotImplementedError

    def _write(self, word: int, value: int) -> None:
        raise NotImplementedError


class SimtStackBank(ControlBank):
    """SASS reconvergence stacks: (pc, mask, reconv) per entry.

    ``NO_RECONV`` (-1) is stored as the all-ones word, so flips of a
    never-reconverges marker behave like flips of any other field.
    """

    structure = SIMT_STACK

    def _entry(self, word: int):
        slot, rest = self._locate(word)
        level, field = divmod(rest, SIMT_STACK_ENTRY_WORDS)
        warp = self._warp(slot)
        if warp is None or level >= len(warp.stack.entries):
            return None, field
        return warp.stack.entries[level], field

    def _read(self, word: int):
        entry, field = self._entry(word)
        if entry is None:
            return None
        if field == STACK_FIELD_PC:
            return entry.pc & _M32
        if field == STACK_FIELD_MASK:
            return entry.mask & _M32
        return entry.reconv & _M32

    def _write(self, word: int, value: int) -> None:
        entry, field = self._entry(word)
        if entry is None:
            return
        if field == STACK_FIELD_PC:
            entry.pc = value
        elif field == STACK_FIELD_MASK:
            entry.mask = value
        elif field == STACK_FIELD_RECONV:
            entry.reconv = NO_RECONV if value == _M32 else value


class SassPredicateBank(ControlBank):
    """SASS predicate file: P0..P6 per warp slot, one bit per lane."""

    structure = PREDICATE_FILE

    def _read(self, word: int):
        slot, pred = self._locate(word)
        warp = self._warp(slot)
        if warp is None:
            return None
        lanes = warp.preds[pred].astype(np.uint64)
        return int((lanes << np.arange(len(lanes), dtype=np.uint64)).sum())

    def _write(self, word: int, value: int) -> None:
        slot, pred = self._locate(word)
        warp = self._warp(slot)
        if warp is None:
            return
        width = warp.preds.shape[1]
        warp.preds[pred] = (
            (value >> np.arange(width, dtype=np.uint64)) & 1
        ) != 0


class SiPredicateBank(ControlBank):
    """SI status state: EXEC and VCC as lo/hi word pairs, SCC as bit 0.

    Bits 1..31 of the SCC word model unimplemented storage: they read
    as zero and writes to them are dropped.
    """

    structure = PREDICATE_FILE

    def _read(self, word: int):
        slot, field = self._locate(word)
        wave = self._warp(slot)
        if wave is None:
            return None
        if field == SI_PRED_EXEC_LO:
            return wave.exec_mask & _M32
        if field == SI_PRED_EXEC_HI:
            return (wave.exec_mask >> 32) & _M32
        if field == SI_PRED_VCC_LO:
            return wave.vcc & _M32
        if field == SI_PRED_VCC_HI:
            return (wave.vcc >> 32) & _M32
        if field == SI_PRED_SCC:
            return int(wave.scc)
        return None

    def _write(self, word: int, value: int) -> None:
        slot, field = self._locate(word)
        wave = self._warp(slot)
        if wave is None:
            return
        if field == SI_PRED_EXEC_LO:
            wave.exec_mask = (wave.exec_mask & ~_M32) | value
        elif field == SI_PRED_EXEC_HI:
            wave.exec_mask = (wave.exec_mask & _M32) | (value << 32)
        elif field == SI_PRED_VCC_LO:
            wave.vcc = (wave.vcc & ~_M32) | value
        elif field == SI_PRED_VCC_HI:
            wave.vcc = (wave.vcc & _M32) | (value << 32)
        elif field == SI_PRED_SCC:
            wave.scc = bool(value & 1)


class SchedulerStateBank(ControlBank):
    """Warp-scheduler bookkeeping: ready/barrier counters + flags.

    The 64-bit ready-cycle and barrier-arrival counters are exposed as
    lo/hi word pairs; the flags word models the at-barrier latch in
    bit 0 (the other bits read as zero, writes to them are dropped).
    Corrupting these is how control faults starve warps (watchdog DUE),
    deadlock barriers (BarrierDeadlock DUE) or release them early.
    """

    structure = SCHEDULER_STATE

    def _read(self, word: int):
        slot, field = self._locate(word)
        warp = self._warp(slot)
        if warp is None:
            return None
        if field == SCHED_READY_LO:
            return warp.ready_cycle & _M32
        if field == SCHED_READY_HI:
            return (warp.ready_cycle >> 32) & _M32
        if field == SCHED_BARRIER_LO:
            return warp.barrier_arrival & _M32
        if field == SCHED_BARRIER_HI:
            return (warp.barrier_arrival >> 32) & _M32
        if field == SCHED_FLAGS:
            return SCHED_FLAG_AT_BARRIER if warp.at_barrier else 0
        return None

    def _write(self, word: int, value: int) -> None:
        slot, field = self._locate(word)
        warp = self._warp(slot)
        if warp is None:
            return
        if field == SCHED_READY_LO:
            warp.ready_cycle = (warp.ready_cycle & ~_M32) | value
        elif field == SCHED_READY_HI:
            warp.ready_cycle = (warp.ready_cycle & _M32) | (value << 32)
        elif field == SCHED_BARRIER_LO:
            warp.barrier_arrival = (warp.barrier_arrival & ~_M32) | value
        elif field == SCHED_BARRIER_HI:
            warp.barrier_arrival = (warp.barrier_arrival & _M32) | (value << 32)
        elif field == SCHED_FLAGS:
            warp.at_barrier = bool(value & SCHED_FLAG_AT_BARRIER)


def make_control_banks(core) -> dict:
    """The control banks one core exposes, keyed by structure name."""
    banks: dict[str, ControlBank] = {}
    config = core.config
    if structure_exposed(config, SIMT_STACK):
        banks[SIMT_STACK] = SimtStackBank(core)
    if structure_exposed(config, PREDICATE_FILE):
        banks[PREDICATE_FILE] = (
            SassPredicateBank(core) if config.isa == "sass"
            else SiPredicateBank(core)
        )
    if structure_exposed(config, SCHEDULER_STATE):
        banks[SCHEDULER_STATE] = SchedulerStateBank(core)
    return banks
