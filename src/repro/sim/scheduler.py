"""Warp scheduling policies.

The core's event loop computes, each issue slot, the set of warps that
tie for the earliest possible issue time; the policy only breaks the
tie. Two policies from the GPU literature (and GPGPU-Sim) are provided:
loose round-robin (LRR) and greedy-then-oldest (GTO). The paper lists
"execution scheduling" among the factors studied; the scheduler
ablation benchmark flips this policy.
"""

from __future__ import annotations

from repro.errors import ConfigError


class WarpScheduler:
    """Tie-break policy among equally-ready warps."""

    name = "base"

    def pick(self, candidates: list, last_issued: int):
        """Choose one warp from ``candidates`` (non-empty, same ready time).

        ``last_issued`` is the warp id issued in the previous slot
        (-1 at start). Candidates are ordered by warp id.
        """
        raise NotImplementedError


class RoundRobinScheduler(WarpScheduler):
    """Loose round-robin: next warp id after the last issued one."""

    name = "rr"

    def pick(self, candidates, last_issued):
        for warp in candidates:
            if warp.wid > last_issued:
                return warp
        return candidates[0]


class GreedyThenOldestScheduler(WarpScheduler):
    """Keep issuing the same warp while possible, else the oldest.

    "Oldest" is the warp that has gone longest without issuing
    (tracked by each warp's ``last_issue`` cycle).
    """

    name = "gto"

    def pick(self, candidates, last_issued):
        for warp in candidates:
            if warp.wid == last_issued:
                return warp
        return min(candidates, key=lambda warp: (warp.last_issue, warp.wid))


_POLICIES = {
    "rr": RoundRobinScheduler,
    "gto": GreedyThenOldestScheduler,
}


def make_scheduler(name: str) -> WarpScheduler:
    """Instantiate a policy by name ("rr" or "gto")."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown scheduler {name!r}; known: {', '.join(_POLICIES)}"
        ) from None
