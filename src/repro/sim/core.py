"""Core (SM / CU) execution engine.

One :class:`CoreBase` instance models one streaming multiprocessor or
compute unit: it owns the core's register file and local memory (the
fault-injection targets), the resident blocks and warps, the issue port
and warp scheduler, and the core-local clock.

The timing model is event-driven at warp-instruction granularity, the
same altitude as GPGPU-Sim's "performance simulation" of these
structures: each issued instruction occupies the issue port for
``issue_cycles / num_schedulers`` cycles and makes its warp ready again
after the instruction-class latency (dependent back-to-back issue —
latency is hidden by multithreading across warps, not by intra-warp
ILP). Memory instructions add a coalescing penalty proportional to the
distinct 128-byte segments touched.

Subclasses implement the ISA front-end: :class:`repro.sim.sass_core.SassCore`
(NVIDIA) and :class:`repro.sim.si_core.SiCore` (AMD).
"""

from __future__ import annotations

from repro.arch.config import GpuConfig
from repro.errors import BarrierDeadlock, LaunchError, WatchdogTimeout
from repro.faultmodels.registry import get_fault_model
from repro.sim.control import make_control_banks
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE, FaultPlan
from repro.sim.launch import LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.sim.occupancy import BlockFootprint
from repro.sim.regfile import RegisterFile
from repro.sim.scheduler import WarpScheduler
from repro.sim.sharedmem import LocalMemory
from repro.sim.tracing import TraceSink
from repro.sim.warp import BlockState

#: Default per-run cycle budget for fault-free simulations.
DEFAULT_WATCHDOG = 50_000_000


class CoreBase:
    """One SM/CU: storage, resident blocks, issue loop."""

    def __init__(self, core_id: int, config: GpuConfig, gmem: GlobalMemory,
                 scheduler: WarpScheduler, sink: TraceSink | None = None):
        self.core_id = core_id
        self.config = config
        self.gmem = gmem
        self.scheduler = scheduler
        self.sink = sink
        #: True under the vector fast path (``config.backend``); the
        #: pure-python reference path stays bit-identical by contract.
        self.vector = config.backend == "vector"
        self.regfile = RegisterFile(
            core_id, config.registers_per_core, config.warp_size, sink
        )
        self.lmem = LocalMemory(core_id, config.local_memory_bytes, sink,
                                backend=config.backend)
        # Control-structure banks (SIMT stack, predicate file, scheduler
        # state): (word, bit)-addressable fault targets over the live
        # warp state. ``_control_dirty`` flags installed stuck-at
        # overlays so the per-issue re-assert costs nothing without them.
        self.control = make_control_banks(self)
        self._control_dirty = False
        self._free_warp_slots = list(range(config.max_warps_per_core))
        self.time = 0
        self.issue_free = 0
        self.issue_interval = max(
            1, config.latency.issue_cycles // config.num_schedulers
        )
        self.last_issued = -1
        self.resume_at: int | None = None
        self.watchdog_limit = DEFAULT_WATCHDOG
        # Fault plans targeting this core, sorted by cycle; applied
        # lazily through the installed fault model.
        self._faults: list[FaultPlan] = []
        self._fault_pos = 0
        self._fault_model = None
        # Per-launch state
        self.program = None
        self.launch: LaunchConfig | None = None
        self.footprint: BlockFootprint | None = None
        self.blocks: list[BlockState] = []
        self.warps: list = []
        self._free_reg_slots: list[int] = []
        self._free_lmem_slots: list[int] = []
        self.blocks_retired = 0
        self.instructions_issued = 0
        self._warp_counter = 0
        # Prebuilt latency-class table (the python path builds the dict
        # per call; the table is the same mapping, hoisted out).
        table = config.latency
        self._latency_table = {
            "alu": table.alu,
            "mul": table.mul,
            "sfu": table.sfu,
            "shared": table.shared,
            "global": table.global_mem,
            "branch": table.branch,
            "barrier": table.barrier,
        }

    def next_warp_id(self) -> int:
        """Core-unique, monotonically increasing warp slot id."""
        wid = self._warp_counter
        self._warp_counter += 1
        return wid

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------
    def set_faults(self, plans: list[FaultPlan], fault_model=None) -> None:
        """Install this core's fault plans (any order; sorted here).

        ``fault_model`` — a :class:`repro.faultmodels.FaultModel` or
        registry name — decides how each plan disturbs the storage when
        its cycle is reached (default: transient single-bit flip).
        """
        self._faults = sorted(
            (p for p in plans if p.core == self.core_id), key=lambda p: p.cycle
        )
        self._fault_pos = 0
        self._fault_model = get_fault_model(fault_model)

    def _apply_faults_up_to(self, cycle: int) -> None:
        while (self._fault_pos < len(self._faults)
               and self._faults[self._fault_pos].cycle <= cycle):
            plan = self._faults[self._fault_pos]
            if plan.structure == REGISTER_FILE:
                self._fault_model.apply(self.regfile, plan)
            elif plan.structure == LOCAL_MEMORY:
                self._fault_model.apply(self.lmem, plan)
            else:
                bank = self.control.get(plan.structure)
                if bank is not None:
                    self._fault_model.apply(bank, plan)
            self._fault_pos += 1

    def _reassert_control(self) -> None:
        """Re-impose control-structure stuck-at overlays (issue boundary)."""
        for bank in self.control.values():
            if bank.has_overlays:
                bank.reassert()

    @property
    def pending_faults(self) -> bool:
        """True while installed fault plans have not all been applied."""
        return self._fault_pos < len(self._faults)

    # ------------------------------------------------------------------
    # Checkpoint protocol (see repro.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self, active: bool = True, copy: bool = True) -> dict:
        """Plain-data image of everything the core's future depends on.

        Launch-derived structure (program, launch config, footprint) is
        deliberately absent: it is rebuilt deterministically from the
        workload on restore. Fault bookkeeping is absent too — snapshots
        are taken on fault-free golden runs and faults are re-installed
        via :meth:`set_faults` after a restore.

        ``active`` — False for between-launch captures. The image also
        carries ``live_reg``/``live_lmem`` hints: the word ranges owned
        by resident blocks. Storage outside them is *dead* — cleared at
        the next allocation before any access — so the convergence
        digest (:mod:`repro.checkpoint.digest`) canonicalises it to
        zero; a faulty run whose corruption is orphaned in a retired
        block's rows then still converges to golden. Restores use the
        raw data, so the hints never affect simulation.
        """
        live_reg: list = []
        live_lmem: list = []
        if active and self.footprint is not None:
            words_per_block = (
                self.footprint.reg_words_per_warp
                // self.config.warp_size
            ) * self.footprint.warps * self.config.warp_size
            lmem_words = self.footprint.lmem_bytes // 4
            for block in self.blocks:
                live_reg.append(
                    (block.reg_base_row * self.config.warp_size,
                     words_per_block))
                if lmem_words:
                    live_lmem.append((block.lmem_base // 4, lmem_words))
        return {
            "live_reg": live_reg,
            "live_lmem": live_lmem,
            "time": int(self.time),
            "issue_free": int(self.issue_free),
            "last_issued": int(self.last_issued),
            "blocks_retired": int(self.blocks_retired),
            "instructions_issued": int(self.instructions_issued),
            "warp_counter": int(self._warp_counter),
            "free_reg_slots": list(self._free_reg_slots),
            "free_lmem_slots": list(self._free_lmem_slots),
            "free_warp_slots": list(self._free_warp_slots),
            "regfile": self.regfile.snapshot_state(copy=copy),
            "lmem": self.lmem.snapshot_state(copy=copy),
            "control": {
                name: bank.snapshot_state()
                for name, bank in self.control.items()
            },
            "blocks": [
                {
                    "linear_id": block.linear_id,
                    "index": tuple(block.index),
                    "reg_base_row": block.reg_base_row,
                    "lmem_base": block.lmem_base,
                    "unfinished": block.unfinished,
                    "warps": [warp.snapshot_state() for warp in block.warps],
                }
                for block in self.blocks
            ],
        }

    def restore_state(self, state: dict, program=None,
                      launch: LaunchConfig | None = None,
                      footprint: BlockFootprint | None = None) -> None:
        """Overwrite this core with a snapshot.

        ``program``/``launch``/``footprint`` describe the launch that
        was active at capture time (all None between launches). Faults
        are cleared; install them with :meth:`set_faults` afterwards.
        """
        self.program = program
        self.launch = launch
        self.footprint = footprint
        if program is not None:
            self._prepare_program(program)
        self.time = state["time"]
        self.issue_free = state["issue_free"]
        self.last_issued = state["last_issued"]
        self.blocks_retired = state["blocks_retired"]
        self.instructions_issued = state["instructions_issued"]
        self._warp_counter = state["warp_counter"]
        self._free_reg_slots = list(state["free_reg_slots"])
        self._free_lmem_slots = list(state["free_lmem_slots"])
        self._free_warp_slots = list(state["free_warp_slots"])
        self.regfile.restore_state(state["regfile"])
        self.lmem.restore_state(state["lmem"])
        for name, bank in self.control.items():
            bank.restore_state(state["control"][name])
        self._control_dirty = any(
            bank.has_overlays for bank in self.control.values()
        )
        self.blocks = []
        self.warps = []
        for bstate in state["blocks"]:
            block = BlockState(bstate["linear_id"], tuple(bstate["index"]),
                               bstate["reg_base_row"], bstate["lmem_base"],
                               footprint)
            block.unfinished = bstate["unfinished"]
            for wstate in bstate["warps"]:
                block.warps.append(self._warp_from_state(wstate, block))
            self.blocks.append(block)
            self.warps.extend(block.warps)
        self._faults = []
        self._fault_pos = 0
        self._fault_model = None

    def _warp_from_state(self, state: dict, block: BlockState):
        """ISA-specific warp reconstruction (SassWarp / SiWavefront)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Launch setup / block residency
    # ------------------------------------------------------------------
    def configure_launch(self, program, launch: LaunchConfig,
                         footprint: BlockFootprint, resident_cap: int,
                         start_time: int) -> None:
        """Prepare the core for a new kernel launch at ``start_time``."""
        self.program = program
        self.launch = launch
        self.footprint = footprint
        self.blocks = []
        self.warps = []
        self.time = start_time
        self.issue_free = start_time
        self.last_issued = -1
        # All warp contexts are free between launches (every block of
        # the previous launch has retired by the time the next starts).
        self._free_warp_slots = list(range(self.config.max_warps_per_core))
        rows_per_block = (
            footprint.reg_words_per_warp // self.config.warp_size
        ) * footprint.warps
        max_rows = self.regfile.num_rows
        self._free_reg_slots = [
            slot * rows_per_block
            for slot in range(resident_cap)
            if (slot + 1) * rows_per_block <= max_rows
        ]
        lmem_bytes = footprint.lmem_bytes
        if lmem_bytes:
            self._free_lmem_slots = [
                slot * lmem_bytes
                for slot in range(resident_cap)
                if (slot + 1) * lmem_bytes <= self.config.local_memory_bytes
            ]
        else:
            self._free_lmem_slots = [0] * resident_cap
        self._prepare_program(program)

    def _prepare_program(self, program) -> None:
        """ISA-specific per-launch preparation (e.g. CFG analysis)."""

    @property
    def can_accept_block(self) -> bool:
        return bool(self._free_reg_slots) and bool(self._free_lmem_slots)

    @property
    def has_work(self) -> bool:
        return bool(self.blocks)

    def add_block(self, linear_id: int, index: tuple) -> BlockState:
        """Make one block resident (allocates registers + local memory)."""
        if not self.can_accept_block:
            raise LaunchError(f"core {self.core_id} has no free block slot")
        footprint = self.footprint
        reg_base_row = self._free_reg_slots.pop(0)
        lmem_base = self._free_lmem_slots.pop(0)
        rows_per_block = (
            footprint.reg_words_per_warp // self.config.warp_size
        ) * footprint.warps
        self.regfile.clear_rows(reg_base_row, rows_per_block)
        if footprint.lmem_bytes:
            self.lmem.clear_range(lmem_base, footprint.lmem_bytes)
        block = BlockState(linear_id, index, reg_base_row, lmem_base, footprint)
        self._populate_warps(block)
        if len(self._free_warp_slots) < len(block.warps):
            raise LaunchError(
                f"core {self.core_id} has no free warp context slots"
            )
        self.blocks.append(block)
        for warp in block.warps:
            # Hardware warp-context slot: backs the warp's control state
            # (SIMT stack, predicates, scheduler bookkeeping) in the
            # control-structure fault geometry. Allocation initialises
            # the slot's storage, so earlier transient disturbances of
            # an empty slot are dead by construction.
            warp.hw_slot = self._free_warp_slots.pop(0)
            warp.ready_cycle = self.time
            self.warps.append(warp)
            if self.sink is not None:
                self.sink.on_warp_slot_alloc(self.time, self.core_id,
                                             warp.hw_slot)
        if self.sink is not None:
            self.sink.on_block_alloc(
                self.time, self.core_id, footprint.reg_words, footprint.lmem_bytes
            )
        return block

    def _populate_warps(self, block: BlockState) -> None:
        raise NotImplementedError

    def _retire_block(self, block: BlockState) -> None:
        self.blocks.remove(block)
        self.warps = [warp for warp in self.warps if warp.block is not block]
        self._free_reg_slots.append(block.reg_base_row)
        self._free_lmem_slots.append(block.lmem_base)
        for warp in block.warps:
            self._free_warp_slots.append(warp.hw_slot)
            if self.sink is not None:
                self.sink.on_warp_slot_free(self.time, self.core_id,
                                            warp.hw_slot)
        self.blocks_retired += 1
        if self.sink is not None:
            self.sink.on_block_free(
                self.time, self.core_id,
                block.footprint.reg_words, block.footprint.lmem_bytes,
            )

    # ------------------------------------------------------------------
    # Issue loop
    # ------------------------------------------------------------------
    def run_until_retire(self, quantum: int | None = None) -> bool:
        """Issue instructions until a block retires, the core drains, or
        a slice boundary is reached.

        Returns True if a block retired (the caller may backfill),
        False otherwise. ``quantum`` (cycles) makes the core yield
        control at the next multiple-of-quantum clock boundary instead
        of running a whole block to retirement: ``self.resume_at`` then
        holds the pending issue time for the dispatcher's heap. The
        boundaries form a fixed global grid, so the cross-core event
        interleaving stays deterministic — and the dispatcher regains
        control often enough for the checkpoint subsystem's capture
        points to land close to their interval thresholds.
        """
        retired_before = self.blocks_retired
        limit = None
        self.resume_at = None
        if self.vector:
            return self._run_until_retire_fast(quantum, retired_before)
        while self.blocks:
            candidates = [
                warp for warp in self.warps
                if not warp.done and not warp.at_barrier
            ]
            if not candidates:
                # Every live warp is at a barrier that never completed:
                # arrival-time release should have fired, so this is a
                # genuine deadlock (possible under injected faults).
                raise BarrierDeadlock(
                    f"core {self.core_id}: all warps blocked at barrier"
                )
            t_best = min(
                max(warp.ready_cycle, self.issue_free) for warp in candidates
            )
            if quantum is not None:
                if limit is None:
                    # First issue of this step pins the slice boundary;
                    # it always proceeds, so every step makes progress.
                    limit = (t_best // quantum + 1) * quantum
                elif t_best >= limit:
                    self.resume_at = t_best
                    return False
            ties = [
                warp for warp in candidates
                if max(warp.ready_cycle, self.issue_free) == t_best
            ]
            warp = self.scheduler.pick(ties, self.last_issued)
            self._issue(warp, t_best)
            if self.blocks_retired != retired_before:
                return True
        return False

    def _run_until_retire_fast(self, quantum: int | None,
                               retired_before: int) -> bool:
        """Vector-backend issue loop: one fused candidate scan per issue.

        Identical decisions to the reference loop above — same
        candidate set, same ``t_best``, same tie list in the same warp
        order — computed in a single pass instead of three
        comprehensions over ``self.warps``.
        """
        limit = None
        while self.blocks:
            t_best = None
            ties = None
            issue_free = self.issue_free
            for warp in self.warps:
                if warp.done or warp.at_barrier:
                    continue
                t = warp.ready_cycle
                if t < issue_free:
                    t = issue_free
                if t_best is None or t < t_best:
                    t_best = t
                    ties = [warp]
                elif t == t_best:
                    ties.append(warp)
            if t_best is None:
                raise BarrierDeadlock(
                    f"core {self.core_id}: all warps blocked at barrier"
                )
            if quantum is not None:
                if limit is None:
                    limit = (t_best // quantum + 1) * quantum
                elif t_best >= limit:
                    self.resume_at = t_best
                    return False
            warp = ties[0] if len(ties) == 1 else self.scheduler.pick(
                ties, self.last_issued)
            self._issue(warp, t_best)
            if self.blocks_retired != retired_before:
                return True
        return False

    def _issue(self, warp, t_issue: int) -> None:
        """Execute one warp-instruction at ``t_issue``."""
        if t_issue > self.watchdog_limit:
            raise WatchdogTimeout(t_issue, self.watchdog_limit)
        self._apply_faults_up_to(t_issue)
        if self._control_dirty:
            self._reassert_control()
        self.time = t_issue
        self.issue_free = t_issue + self.issue_interval
        self.last_issued = warp.wid
        self.instructions_issued += 1
        warp.last_issue = t_issue
        latency = self._execute(warp, t_issue)
        warp.ready_cycle = t_issue + max(1, latency)
        if warp.done:
            self._note_warp_done(warp)

    def _execute(self, warp, t_issue: int) -> int:
        """ISA-specific: run one instruction, return its latency."""
        raise NotImplementedError

    def _note_warp_done(self, warp) -> None:
        block = warp.block
        block.unfinished -= 1
        # A warp exiting can complete a pending barrier.
        self._maybe_release_barrier(block)
        if block.unfinished == 0:
            self._retire_block(block)

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------
    def _arrive_barrier(self, warp, t_issue: int) -> None:
        warp.at_barrier = True
        warp.barrier_arrival = t_issue
        self._maybe_release_barrier(warp.block)

    def _maybe_release_barrier(self, block: BlockState) -> None:
        if not block.barrier_complete():
            return
        release = max(
            warp.barrier_arrival for warp in block.warps if not warp.done
        ) + self.config.latency.barrier
        for warp in block.warps:
            if not warp.done:
                warp.at_barrier = False
                warp.ready_cycle = max(warp.ready_cycle, release)

    # ------------------------------------------------------------------
    # Memory timing helper
    # ------------------------------------------------------------------
    def _coalescing_extra(self, addresses) -> int:
        segments = self.gmem.segments_touched(addresses)
        if segments <= 1:
            return 0
        return (segments - 1) * self.config.latency.uncoalesced_penalty

    def latency_of(self, latency_class: str) -> int:
        table = self.config.latency
        return {
            "alu": table.alu,
            "mul": table.mul,
            "sfu": table.sfu,
            "shared": table.shared,
            "global": table.global_mem,
            "branch": table.branch,
            "barrier": table.barrier,
        }[latency_class]
