"""Occupancy calculator: how many blocks fit on one core.

Mirrors the CUDA occupancy calculator / Multi2Sim's work-group limits:
residency is bounded by the per-core block, warp, thread, register-file
and local-memory limits, with vendor-specific allocation granularities.
The same footprint numbers feed the reliability occupancy metric (the
red lines of the paper's Fig. 1/2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.errors import LaunchError
from repro.isa.base import Program
from repro.sim.launch import LaunchConfig


def _align(value: int, unit: int) -> int:
    return (value + unit - 1) // unit * unit


@dataclass(frozen=True)
class BlockFootprint:
    """Per-block resource usage on one core."""

    threads: int
    warps: int
    reg_words_per_warp: int  # register-file words one warp occupies (rounded)
    lmem_bytes: int          # local/shared bytes per block, after rounding

    @property
    def reg_words(self) -> int:
        """Register-file words the whole block occupies."""
        return self.reg_words_per_warp * self.warps


def block_footprint(config: GpuConfig, program: Program,
                    launch: LaunchConfig) -> BlockFootprint:
    """Resources one block of ``launch`` occupies on ``config``."""
    threads = launch.threads_per_block
    warps = math.ceil(threads / config.warp_size)
    regs_per_thread = max(1, program.registers_per_thread)
    if regs_per_thread > config.max_registers_per_thread:
        raise LaunchError(
            f"kernel {program.name!r} needs {regs_per_thread} regs/thread, "
            f"{config.name} allows {config.max_registers_per_thread}"
        )
    words_per_warp = _align(
        regs_per_thread * config.warp_size, config.register_allocation_unit
    )
    lmem = _align(program.local_memory_bytes, config.local_allocation_unit) \
        if program.local_memory_bytes else 0
    return BlockFootprint(
        threads=threads, warps=warps,
        reg_words_per_warp=words_per_warp, lmem_bytes=lmem,
    )


def max_resident_blocks(config: GpuConfig, footprint: BlockFootprint) -> int:
    """Blocks of this footprint that fit simultaneously on one core."""
    limits = [
        config.max_blocks_per_core,
        config.max_threads_per_core // footprint.threads,
        config.max_warps_per_core // footprint.warps,
        config.registers_per_core // footprint.reg_words,
    ]
    if footprint.lmem_bytes:
        limits.append(config.local_memory_bytes // footprint.lmem_bytes)
    resident = min(limits)
    if resident == 0:
        raise LaunchError(
            f"block footprint {footprint} does not fit on {config.name}"
        )
    return resident


def theoretical_occupancy(config: GpuConfig, program: Program,
                          launch: LaunchConfig) -> dict:
    """Static occupancy summary (used by reports and tests)."""
    footprint = block_footprint(config, program, launch)
    resident = max_resident_blocks(config, footprint)
    return {
        "footprint": footprint,
        "resident_blocks": resident,
        "warp_occupancy": resident * footprint.warps / config.max_warps_per_core,
        "register_occupancy": (
            resident * footprint.reg_words / config.registers_per_core
        ),
        "lmem_occupancy": (
            resident * footprint.lmem_bytes / config.local_memory_bytes
        ),
    }
