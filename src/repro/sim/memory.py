"""Global (device) memory model.

A single flat 32-bit byte-addressed space backed by one numpy array.
Buffers are bump-allocated with 256-byte alignment (matching GPU
allocators); every access is bounds-checked against the allocated
buffers, so a fault-corrupted pointer produces a :class:`MemoryFault`
— the simulator's analogue of an Xid/page-fault, classified as DUE by
the fault-injection engine.

Only 32-bit word accesses exist (both our ISAs are 32-bit RISC cores);
addresses must be word-aligned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, MemoryFault
from repro.sim.vector import scatter_add_serialized

#: First valid address; [0, _BASE) traps null/near-null dereferences.
_BASE = 0x1000
_ALIGN = 256


@dataclass(frozen=True)
class Buffer:
    """One allocated device buffer."""

    name: str
    base: int       # byte address
    nbytes: int

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    @property
    def words(self) -> int:
        return self.nbytes // 4


class GlobalMemory:
    """Flat device memory with buffer-granular bounds checking."""

    def __init__(self, capacity_bytes: int = 1 << 24, backend: str = "python"):
        if capacity_bytes % 4:
            raise ConfigError("capacity must be a word multiple")
        self.capacity = capacity_bytes
        # Lazily zeroed: words are observable only inside allocated
        # buffers (every device access is bounds-checked) or in the
        # snapshot prefix [0, _next), and alloc() zeroes each claimed
        # region — so the tail never needs the O(capacity) memset a
        # np.zeros would pay up front (3ms per machine at 16 MiB,
        # which used to dominate checkpoint-restore cost).
        self._words = np.empty(capacity_bytes // 4, dtype=np.uint32)
        self._words[:_BASE // 4] = 0
        self._next = _BASE
        self.buffers: dict[str, Buffer] = {}
        self._vector = backend == "vector"
        # Sorted buffer extents for the vector backend's searchsorted
        # bounds check (bump allocation keeps bases ascending already;
        # sorting makes that explicit and restore-proof).
        self._bases = np.empty(0, dtype=np.int64)
        self._ends = np.empty(0, dtype=np.int64)

    def _refresh_ranges(self) -> None:
        spans = sorted((b.base, b.end) for b in self.buffers.values())
        self._bases = np.array([s[0] for s in spans], dtype=np.int64)
        self._ends = np.array([s[1] for s in spans], dtype=np.int64)

    # ------------------------------------------------------------------
    # Allocation and host-side access
    # ------------------------------------------------------------------
    def alloc(self, name: str, nbytes: int) -> Buffer:
        """Allocate a zero-initialised buffer; returns its descriptor."""
        if name in self.buffers:
            raise ConfigError(f"buffer {name!r} already allocated")
        if nbytes <= 0 or nbytes % 4:
            raise ConfigError(f"buffer size {nbytes} must be a positive word multiple")
        base = self._next
        if base + nbytes > self.capacity:
            raise ConfigError("device memory exhausted")
        buffer = Buffer(name, base, nbytes)
        self.buffers[name] = buffer
        self._next = (base + nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        # Zero the claimed region including the alignment padding up to
        # the new bump pointer: the buffer contract is zero-initialised
        # storage, and the padding lands inside the snapshot prefix.
        self._words[base // 4:min(self._next, self.capacity) // 4] = 0
        self._refresh_ranges()
        return buffer

    def alloc_from(self, name: str, data: np.ndarray) -> Buffer:
        """Allocate a buffer holding ``data`` (u32/i32/f32 array)."""
        words = _as_words(data)
        buffer = self.alloc(name, words.size * 4)
        self._words[buffer.base // 4: buffer.base // 4 + words.size] = words
        return buffer

    def write_host(self, buffer: Buffer, data: np.ndarray) -> None:
        """Host-side overwrite of an existing buffer."""
        words = _as_words(data)
        if words.size * 4 > buffer.nbytes:
            raise ConfigError("host write larger than buffer")
        self._words[buffer.base // 4: buffer.base // 4 + words.size] = words

    def read_host(self, buffer: Buffer, dtype=np.uint32) -> np.ndarray:
        """Host-side snapshot of a buffer's contents as ``dtype``."""
        start = buffer.base // 4
        words = self._words[start: start + buffer.words].copy()
        return words.view(dtype) if dtype is not np.uint32 else words

    def snapshot(self, names: list[str] | None = None) -> dict[str, np.ndarray]:
        """Copy of the named (default: all) buffers, for output compare."""
        names = list(self.buffers) if names is None else names
        return {name: self.read_host(self.buffers[name]) for name in names}

    # ------------------------------------------------------------------
    # Device-side (simulated) access
    # ------------------------------------------------------------------
    def _check(self, addresses: np.ndarray, kind: str) -> None:
        if addresses.size == 0:
            return
        if np.any(addresses & 3):
            bad = int(addresses[np.argmax((addresses & 3) != 0)])
            raise MemoryFault(bad, f"misaligned {kind}")
        if self._vector and self._bases.size:
            # searchsorted(right) - 1 = index of the last buffer whose
            # base <= address; the address is valid iff it also falls
            # before that buffer's end (buffers never overlap).
            idx = np.searchsorted(self._bases, addresses, side="right") - 1
            inside = idx >= 0
            valid = inside & (addresses < self._ends[np.where(inside, idx, 0)])
        else:
            valid = np.zeros(addresses.shape, dtype=bool)
            for buffer in self.buffers.values():
                valid |= (addresses >= buffer.base) & (addresses < buffer.end)
        if not valid.all():
            bad = int(addresses[np.argmin(valid)])
            raise MemoryFault(bad, kind)

    def load_words(self, addresses: np.ndarray) -> np.ndarray:
        """Gather 32-bit words at byte ``addresses`` (device semantics)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check(addresses, "load")
        return self._words[addresses >> 2]

    def store_words(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Scatter 32-bit words; duplicate addresses: highest lane wins."""
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check(addresses, "store")
        self._words[addresses >> 2] = values.astype(np.uint32)

    def atomic_add(self, addresses: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Word-wise atomic integer add; returns the old values (per lane).

        Lanes hitting the same address are serialised in lane order, as
        hardware atomics serialise conflicting lanes.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check(addresses, "atomic")
        index = addresses >> 2
        if self._vector:
            return scatter_add_serialized(self._words, index, values)
        old = np.empty(addresses.size, dtype=np.uint32)
        # Serialise in lane order for a deterministic old-value per lane.
        for lane in range(addresses.size):
            old[lane] = self._words[index[lane]]
            self._words[index[lane]] = np.uint32(
                (int(old[lane]) + int(values[lane])) & 0xFFFFFFFF
            )
        return old

    def segments_touched(self, addresses: np.ndarray, segment_bytes: int = 128) -> int:
        """Distinct memory segments hit — the coalescing metric."""
        if addresses.size == 0:
            return 0
        return int(np.unique(np.asarray(addresses, dtype=np.int64) // segment_bytes).size)

    # ------------------------------------------------------------------
    # Checkpoint protocol (see repro.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self, copy: bool = True) -> dict:
        """Plain-data copy of the allocated state (prefix of the array).

        Words past the bump pointer are untouched by construction
        (every device access is bounds-checked against the allocated
        buffers), so only the used prefix needs copying. ``copy=False``
        returns a view instead (hash-and-discard users).
        """
        used = (self._next + 3) // 4
        return {
            "words": self._words[:used].copy() if copy
            else self._words[:used],
            "next": self._next,
            "buffers": [
                (buffer.name, buffer.base, buffer.nbytes)
                for buffer in self.buffers.values()
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite this memory with a snapshot (capacity must match)."""
        words = state["words"]
        if words.size > self._words.size:
            raise ConfigError("snapshot larger than this memory's capacity")
        self._words[:words.size] = words
        self._next = state["next"]
        self.buffers = {
            name: Buffer(name, base, nbytes)
            for name, base, nbytes in state["buffers"]
        }
        self._refresh_ranges()


def _as_words(data: np.ndarray) -> np.ndarray:
    """View any 4-byte-element array as little-endian u32 words."""
    array = np.ascontiguousarray(data)
    if array.dtype.itemsize != 4:
        raise ConfigError(f"expected 4-byte elements, got {array.dtype}")
    return array.reshape(-1).view(np.uint32)
