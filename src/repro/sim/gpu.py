"""Whole-chip GPU model: block dispatcher over per-core engines.

Blocks are dispatched exactly as on hardware: an initial wave fills
every core up to the kernel's occupancy limit, then each retiring block
backfills the core that freed the slot (cores run independent clocks —
legitimate because inter-core communication within a launch is limited
to commutative global atomics in our benchmark suite). Consecutive
launches serialise: every launch starts at the chip cycle where the
previous one ended, so fault cycles are continuous across multi-kernel
workloads (e.g. gaussian's Fan1/Fan2 iterations).

The dispatcher's event loop is explicit state (:class:`_ActiveLaunch`
on the chip), advanced one core-step at a time, with an optional
*monitor* observing the machine between steps. That is the hook the
checkpoint subsystem (:mod:`repro.checkpoint`) uses both to capture
periodic full-machine snapshots during golden runs and to resume a
restored machine mid-launch; monitors only observe, so a monitored run
is event-for-event identical to a bare one.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.arch.config import GpuConfig
from repro.errors import ConfigError, LaunchError
from repro.sim.core import DEFAULT_WATCHDOG
from repro.sim.faults import FaultPlan
from repro.sim.launch import LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.sim.occupancy import block_footprint, max_resident_blocks
from repro.sim.scheduler import make_scheduler
from repro.sim.tracing import TraceSink

#: Core time-slice grid (cycles). Every run slices at the same fixed
#: boundaries, so the cross-core event interleaving — and therefore
#: every simulation result — is one deterministic function of the
#: machine state, independent of monitors, snapshots or faults. The
#: grid bounds how far one core runs ahead between dispatcher steps,
#: which is what lets checkpoint capture points land near their
#: interval thresholds even when a whole launch fits in one block.
SLICE_CYCLES = 256


@dataclass
class _ActiveLaunch:
    """Dispatcher state of the launch currently draining."""

    launch: LaunchConfig
    start: int                       # chip cycle the launch began at
    pending: list = field(default_factory=list)  # (linear, index), pop() order
    heap: list = field(default_factory=list)     # (core time, core id)


class Gpu:
    """One simulated GPU chip."""

    def __init__(self, config: GpuConfig, scheduler: str = "rr",
                 sink: TraceSink | None = None,
                 memory_capacity: int = 1 << 24):
        self.config = config
        self.sink = sink
        self.mem = GlobalMemory(memory_capacity, backend=config.backend)
        self.scheduler_name = scheduler
        core_class = self._core_class(config)
        self.cores = [
            core_class(core_id, config, self.mem, make_scheduler(scheduler), sink)
            for core_id in range(config.num_cores)
        ]
        self.chip_cycle = 0
        self.launches_run = 0
        self._active: _ActiveLaunch | None = None

    @staticmethod
    def _core_class(config: GpuConfig):
        # Imported here to avoid a circular import at module load.
        if config.isa == "sass":
            from repro.sim.sass_core import SassCore
            return SassCore
        if config.isa == "si":
            from repro.sim.si_core import SiCore
            return SiCore
        raise ConfigError(f"no core model for ISA {config.isa!r}")

    def set_faults(self, plans: list[FaultPlan], fault_model=None) -> None:
        """Install fault plans (each routed to its target core).

        ``fault_model`` — a :class:`repro.faultmodels.FaultModel` or
        registry name — selects the application/liveness semantics
        (default: the paper's transient single-bit flip).
        """
        for core in self.cores:
            core.set_faults(plans, fault_model=fault_model)

    def set_watchdog(self, limit_cycles: int) -> None:
        """Abort any core whose clock passes ``limit_cycles`` (DUE)."""
        for core in self.cores:
            core.watchdog_limit = limit_cycles

    def launch(self, launch: LaunchConfig, monitor=None) -> int:
        """Run one kernel launch to completion; returns its cycle count.

        ``monitor`` (optional) is notified after every core-step via
        ``monitor.after_step(gpu)``; monitors only observe, so the run
        is identical with or without one.
        """
        self._begin_launch(launch)
        return self._drain_active(monitor)

    def resume_launch(self, monitor=None) -> int:
        """Finish a restored mid-launch dispatch (see repro.checkpoint)."""
        if self._active is None:
            raise LaunchError("no active launch to resume")
        return self._drain_active(monitor)

    @property
    def mid_launch(self) -> bool:
        """True when a (restored) launch is still draining."""
        return self._active is not None

    def _begin_launch(self, launch: LaunchConfig) -> None:
        program = launch.program
        if program.isa != self.config.isa:
            raise LaunchError(
                f"kernel {program.name!r} is {program.isa} but "
                f"{self.config.name} executes {self.config.isa}"
            )
        footprint = block_footprint(self.config, program, launch)
        resident_cap = max_resident_blocks(self.config, footprint)

        start = self.chip_cycle
        for core in self.cores:
            core.configure_launch(program, launch, footprint, resident_cap, start)

        pending = list(enumerate(launch.block_indices()))
        pending.reverse()  # pop() yields dispatch order

        # Initial wave: round-robin across cores until slots or blocks run out.
        filling = True
        while filling and pending:
            filling = False
            for core in self.cores:
                if pending and core.can_accept_block:
                    linear, index = pending.pop()
                    core.add_block(linear, index)
                    filling = True

        heap = [
            (core.time, core.core_id) for core in self.cores if core.has_work
        ]
        heapq.heapify(heap)
        self._active = _ActiveLaunch(launch=launch, start=start,
                                     pending=pending, heap=heap)

    def _step(self) -> None:
        """Advance the core with the earliest local clock by one step."""
        active = self._active
        _, core_id = heapq.heappop(active.heap)
        core = self.cores[core_id]
        if not core.has_work:
            return
        retired = core.run_until_retire(quantum=SLICE_CYCLES)
        if retired and active.pending and core.can_accept_block:
            linear, index = active.pending.pop()
            core.add_block(linear, index)
        if core.has_work:
            resume = core.resume_at if core.resume_at is not None else core.time
            heapq.heappush(active.heap, (resume, core_id))

    def _drain_active(self, monitor=None) -> int:
        active = self._active
        while active.heap:
            self._step()
            if monitor is not None:
                monitor.after_step(self)

        if active.pending:
            raise LaunchError("dispatcher finished with undispatched blocks")

        end = max(core.time for core in self.cores)
        self.chip_cycle = max(end, active.start)
        self.launches_run += 1
        self._active = None
        return self.chip_cycle - active.start

    def finish(self) -> int:
        """Signal end-of-workload to the trace sink; returns chip cycles."""
        if self.sink is not None:
            self.sink.on_run_end(self.chip_cycle)
        return self.chip_cycle

    # ------------------------------------------------------------------
    # Checkpoint protocol (see repro.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self, copy: bool = True) -> dict:
        """Plain-data image of the whole machine (chip + cores + memory).

        Capturable at any core-step boundary, including mid-launch: the
        dispatcher's pending-block list and core-clock heap are part of
        the image. Trace sinks and fault plans are excluded — a restore
        rebinds both to the new run's. ``copy=False`` leaves the big
        storage arrays as views (hash-and-discard users only).
        """
        active = self._active
        return {
            "chip_cycle": int(self.chip_cycle),
            "launches_run": int(self.launches_run),
            "mem": self.mem.snapshot_state(copy=copy),
            "cores": [core.snapshot_state(active=active is not None,
                                          copy=copy)
                      for core in self.cores],
            "active": None if active is None else {
                "start": int(active.start),
                "pending": [(lin, tuple(idx)) for lin, idx in active.pending],
                "heap": [(int(t), int(cid)) for t, cid in active.heap],
            },
        }

    def restore_state(self, state: dict,
                      launch: LaunchConfig | None = None) -> None:
        """Overwrite this (fresh) chip with a snapshot.

        ``launch`` must be the launch that was active at capture time
        (rebuilt deterministically from the workload), or None for a
        between-launches snapshot. Faults and the watchdog are NOT part
        of snapshots: call :meth:`set_faults` / :meth:`set_watchdog`
        after restoring — a permanent (stuck-at) fault then re-arms its
        write-back overlay exactly as in an un-checkpointed run.
        """
        active_state = state["active"]
        if (active_state is not None) != (launch is not None):
            raise ConfigError("snapshot and launch disagree about mid-launch")
        self.chip_cycle = state["chip_cycle"]
        self.launches_run = state["launches_run"]
        self.mem.restore_state(state["mem"])
        program = footprint = None
        if launch is not None:
            program = launch.program
            footprint = block_footprint(self.config, program, launch)
        for core, core_state in zip(self.cores, state["cores"]):
            core.restore_state(core_state, program=program, launch=launch,
                               footprint=footprint)
        if active_state is None:
            self._active = None
        else:
            self._active = _ActiveLaunch(
                launch=launch,
                start=active_state["start"],
                pending=[(lin, tuple(idx))
                         for lin, idx in active_state["pending"]],
                heap=list(active_state["heap"]),
            )

    @property
    def instructions_issued(self) -> int:
        """Warp-instructions executed across all cores (all launches)."""
        return sum(core.instructions_issued for core in self.cores)


def default_watchdog_for(golden_cycles: int) -> int:
    """Watchdog budget for faulty re-runs given the fault-free runtime."""
    return golden_cycles * 4 + 20_000


__all__ = ["Gpu", "default_watchdog_for", "DEFAULT_WATCHDOG"]
