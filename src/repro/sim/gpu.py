"""Whole-chip GPU model: block dispatcher over per-core engines.

Blocks are dispatched exactly as on hardware: an initial wave fills
every core up to the kernel's occupancy limit, then each retiring block
backfills the core that freed the slot (cores run independent clocks —
legitimate because inter-core communication within a launch is limited
to commutative global atomics in our benchmark suite). Consecutive
launches serialise: every launch starts at the chip cycle where the
previous one ended, so fault cycles are continuous across multi-kernel
workloads (e.g. gaussian's Fan1/Fan2 iterations).
"""

from __future__ import annotations

import heapq

from repro.arch.config import GpuConfig
from repro.errors import ConfigError, LaunchError
from repro.sim.core import DEFAULT_WATCHDOG
from repro.sim.faults import FaultPlan
from repro.sim.launch import LaunchConfig
from repro.sim.memory import GlobalMemory
from repro.sim.occupancy import block_footprint, max_resident_blocks
from repro.sim.scheduler import make_scheduler
from repro.sim.tracing import TraceSink


class Gpu:
    """One simulated GPU chip."""

    def __init__(self, config: GpuConfig, scheduler: str = "rr",
                 sink: TraceSink | None = None,
                 memory_capacity: int = 1 << 24):
        self.config = config
        self.sink = sink
        self.mem = GlobalMemory(memory_capacity)
        self.scheduler_name = scheduler
        core_class = self._core_class(config)
        self.cores = [
            core_class(core_id, config, self.mem, make_scheduler(scheduler), sink)
            for core_id in range(config.num_cores)
        ]
        self.chip_cycle = 0
        self.launches_run = 0

    @staticmethod
    def _core_class(config: GpuConfig):
        # Imported here to avoid a circular import at module load.
        if config.isa == "sass":
            from repro.sim.sass_core import SassCore
            return SassCore
        if config.isa == "si":
            from repro.sim.si_core import SiCore
            return SiCore
        raise ConfigError(f"no core model for ISA {config.isa!r}")

    def set_faults(self, plans: list[FaultPlan], fault_model=None) -> None:
        """Install fault plans (each routed to its target core).

        ``fault_model`` — a :class:`repro.faultmodels.FaultModel` or
        registry name — selects the application/liveness semantics
        (default: the paper's transient single-bit flip).
        """
        for core in self.cores:
            core.set_faults(plans, fault_model=fault_model)

    def set_watchdog(self, limit_cycles: int) -> None:
        """Abort any core whose clock passes ``limit_cycles`` (DUE)."""
        for core in self.cores:
            core.watchdog_limit = limit_cycles

    def launch(self, launch: LaunchConfig) -> int:
        """Run one kernel launch to completion; returns its cycle count."""
        program = launch.program
        if program.isa != self.config.isa:
            raise LaunchError(
                f"kernel {program.name!r} is {program.isa} but "
                f"{self.config.name} executes {self.config.isa}"
            )
        footprint = block_footprint(self.config, program, launch)
        resident_cap = max_resident_blocks(self.config, footprint)

        start = self.chip_cycle
        for core in self.cores:
            core.configure_launch(program, launch, footprint, resident_cap, start)

        pending = list(enumerate(launch.block_indices()))
        pending.reverse()  # pop() yields dispatch order

        # Initial wave: round-robin across cores until slots or blocks run out.
        filling = True
        while filling and pending:
            filling = False
            for core in self.cores:
                if pending and core.can_accept_block:
                    linear, index = pending.pop()
                    core.add_block(linear, index)
                    filling = True

        # Event loop: always advance the core with the earliest local clock.
        heap = [
            (core.time, core.core_id) for core in self.cores if core.has_work
        ]
        heapq.heapify(heap)
        while heap:
            _, core_id = heapq.heappop(heap)
            core = self.cores[core_id]
            if not core.has_work:
                continue
            retired = core.run_until_retire()
            if retired and pending and core.can_accept_block:
                linear, index = pending.pop()
                core.add_block(linear, index)
            if core.has_work:
                heapq.heappush(heap, (core.time, core_id))

        if pending:
            raise LaunchError("dispatcher finished with undispatched blocks")

        end = max(core.time for core in self.cores)
        self.chip_cycle = max(end, start)
        self.launches_run += 1
        return self.chip_cycle - start

    def finish(self) -> int:
        """Signal end-of-workload to the trace sink; returns chip cycles."""
        if self.sink is not None:
            self.sink.on_run_end(self.chip_cycle)
        return self.chip_cycle

    @property
    def instructions_issued(self) -> int:
        """Warp-instructions executed across all cores (all launches)."""
        return sum(core.instructions_issued for core in self.cores)


def default_watchdog_for(golden_cycles: int) -> int:
    """Watchdog budget for faulty re-runs given the fault-free runtime."""
    return golden_cycles * 4 + 20_000


__all__ = ["Gpu", "default_watchdog_for", "DEFAULT_WATCHDOG"]
