"""Per-core register file with bit-exact state and access tracing.

The physical register file of one SM/CU is a flat array of 32-bit words
organised in *rows* of ``warp_size`` words: row ``r`` holds one
architectural register for the ``warp_size`` lanes of one warp, at words
``r * warp_size .. (r+1) * warp_size - 1``. Warps receive contiguous row
ranges at block dispatch (the same banked layout GPGPU-Sim and Multi2Sim
model), so a physical (word, bit) coordinate — the fault-injection
target space — maps directly onto (row, lane, bit).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.sim.tracing import TraceSink


class RegisterFile:
    """One core's (vector) register file."""

    def __init__(self, core_id: int, num_words: int, warp_size: int,
                 sink: TraceSink | None = None):
        if num_words % warp_size:
            raise ConfigError("register file size not a row multiple")
        self.core_id = core_id
        self.warp_size = warp_size
        self.num_words = num_words
        self.num_rows = num_words // warp_size
        self.data = np.zeros(num_words, dtype=np.uint32)
        self.sink = sink
        # word -> (and_mask, or_mask): permanent stuck-at overlays,
        # re-applied after every mutation (see _reapply_forced).
        self._forced: dict[int, tuple[int, int]] = {}

    def read_row(self, row: int, mask: int, cycle: int) -> np.ndarray:
        """Read a full row (copy); traces the active-lane ``mask``."""
        start = row * self.warp_size
        values = self.data[start: start + self.warp_size].copy()
        if self.sink is not None and mask:
            self.sink.on_reg_access(cycle, self.core_id, row, mask, False)
        return values

    def write_row(self, row: int, values: np.ndarray, lane_sel: np.ndarray,
                  mask: int, cycle: int) -> None:
        """Masked row write: lanes with ``lane_sel`` True take ``values``."""
        start = row * self.warp_size
        view = self.data[start: start + self.warp_size]
        np.copyto(view, values.astype(np.uint32, copy=False), where=lane_sel)
        if self._forced:
            self._reapply_forced()
        if self.sink is not None and mask:
            self.sink.on_reg_access(cycle, self.core_id, row, mask, True)

    def flip_bit(self, word: int, bit: int) -> None:
        """Invert one stored bit (transient fault injection)."""
        self.flip_bits(word, 1 << bit)

    def flip_bits(self, word: int, mask: int) -> None:
        """Invert a mask of stored bits in one word (multi-bit upsets)."""
        if not 0 <= word < self.num_words:
            raise ConfigError(f"register word {word} out of range")
        self.data[word] ^= np.uint32(mask & 0xFFFFFFFF)

    def force_bit(self, word: int, bit: int, value: int) -> None:
        """Permanently stick one bit at ``value`` (0/1).

        The overlay takes effect immediately and is re-applied after
        every subsequent write-back to this register file, so the bit
        reads as ``value`` for the rest of the run — a hardware defect,
        not a one-shot upset.
        """
        if not 0 <= word < self.num_words:
            raise ConfigError(f"register word {word} out of range")
        and_mask, or_mask = self._forced.get(word, (0xFFFFFFFF, 0))
        if value:
            or_mask |= 1 << bit
        else:
            and_mask &= ~(1 << bit) & 0xFFFFFFFF
        self._forced[word] = (and_mask, or_mask)
        self._reapply_forced()

    def _reapply_forced(self) -> None:
        """Re-impose the stuck-at overlays (idempotent)."""
        for word, (and_mask, or_mask) in self._forced.items():
            self.data[word] = np.uint32(
                (int(self.data[word]) & and_mask) | or_mask
            )

    def clear_rows(self, first_row: int, count: int) -> None:
        """Zero rows on block allocation (fresh register state)."""
        start = first_row * self.warp_size
        self.data[start: start + count * self.warp_size] = 0
        if self._forced:
            self._reapply_forced()

    # ------------------------------------------------------------------
    # Checkpoint protocol (see repro.checkpoint)
    # ------------------------------------------------------------------
    def snapshot_state(self, copy: bool = True) -> dict:
        """Plain-data copy of the stored words + stuck-at overlays.

        ``copy=False`` returns views instead (for hash-and-discard
        users like the convergence digest); never retain such a state.
        """
        data = self.data.copy() if copy else self.data
        return {"data": data, "forced": dict(self._forced)}

    def restore_state(self, state: dict) -> None:
        """Overwrite contents with a snapshot (geometry must match).

        The stuck-at overlay dict is restored too; golden-run snapshots
        carry an empty overlay, and a permanent fault installed *after*
        the restore re-arms itself through ``force_bit`` exactly as in
        an un-checkpointed run.
        """
        self.data[:] = state["data"]
        self._forced = dict(state["forced"])
