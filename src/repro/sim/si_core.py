"""AMD compute-unit model: Southern-Islands front-end on the core engine.

Implements the wavefront context protocol consumed by
:mod:`repro.isa.si.semantics`: SGPR/VCC/EXEC/SCC scalar state per
wavefront, EXEC-masked vector register access against the CU's VGPR
file (the fault-injection target), LDS and global memory access.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import IllegalInstruction
from repro.isa.base import EXEC, Imm, Param, SCC, SReg, SRegPair, SpecialScalar, VReg
from repro.isa.si import semantics
from repro.isa.si.opcodes import SI_OPCODES
from repro.sim.core import CoreBase
from repro.sim.vector import bools_to_mask as _v_bools_to_mask
from repro.sim.vector import const_u32
from repro.sim.vector import mask_to_bools as _v_mask_to_bools
from repro.sim.warp import BlockState, SiWavefront
from repro.telemetry import profile as _profile

_MASK64 = (1 << 64) - 1


class SiCore(CoreBase):
    """One compute unit executing SI-like kernels."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: vector backend: per-pc (inst, opcode-info, latency) decode
        #: cache, built once per launch instead of per issue.
        self._decoded: list = []
        self._wave: SiWavefront | None = None
        self.eff_bool: np.ndarray | None = None
        self.eff_mask: int = 0
        self._cycle: int = 0
        self.scc: bool = False  # mirrors the current wavefront during execute

    def _prepare_program(self, program) -> None:
        if self.vector:
            self._decoded = []
            for pc in range(len(program)):
                inst = program.at(pc)
                info = SI_OPCODES[inst.opcode]
                self._decoded.append(
                    (inst, info, self.latency_of(info.latency_class)))

    # ------------------------------------------------------------------
    # CoreBase hooks
    # ------------------------------------------------------------------
    def _populate_warps(self, block: BlockState) -> None:
        threads = self.launch.threads_per_block
        warp_size = self.config.warp_size
        rows_per_wave = self.footprint.reg_words_per_warp // warp_size
        num_waves = math.ceil(threads / warp_size)
        for slot in range(num_waves):
            lane_offset = slot * warp_size
            nlanes = min(warp_size, threads - lane_offset)
            wave = SiWavefront(
                wid=self.next_warp_id(),
                block=block,
                lane_offset=lane_offset,
                nlanes=nlanes,
                warp_size=warp_size,
                reg_base_row=block.reg_base_row + slot * rows_per_wave,
                num_sgprs=self.program.scalar_registers,
            )
            self._init_abi(wave)
            block.warps.append(wave)
        block.unfinished = num_waves

    def _init_abi(self, wave: SiWavefront) -> None:
        """Preload the launch ABI: s0..s5 geometry, v0/v1 local ids."""
        bx, by = self.launch.block
        gx, gy = self.launch.grid
        wave.sgprs[0] = wave.block.index[0]
        wave.sgprs[1] = wave.block.index[1]
        wave.sgprs[2] = bx
        wave.sgprs[3] = by
        wave.sgprs[4] = gx
        wave.sgprs[5] = gy
        # v0 / v1 are architectural VGPRs holding local ids: write them
        # through the register file so allocation-time state is visible
        # to the reliability analyses (they are genuinely stored there).
        flat = wave.lane_offset + np.arange(self.config.warp_size, dtype=np.uint32)
        lid_x = flat % np.uint32(bx)
        lid_y = flat // np.uint32(bx)
        valid = self._mask_to_bools_width(wave.valid_mask)
        self.regfile.write_row(wave.reg_base_row + 0, lid_x, valid,
                               wave.valid_mask, self.time)
        if self.program.registers_per_thread > 1:
            self.regfile.write_row(wave.reg_base_row + 1, lid_y, valid,
                                   wave.valid_mask, self.time)

    def _warp_from_state(self, state: dict, block: BlockState) -> SiWavefront:
        return SiWavefront.from_state(state, block, self.config.warp_size)

    def _execute(self, wave: SiWavefront, t_issue: int) -> int:
        if self.vector:
            return self._execute_fast(wave, t_issue)
        program = self.program
        pc = wave.pc
        if not 0 <= pc < len(program):
            # Only reachable under fault injection (corrupted wave pc);
            # the campaign classifies the exception as DUE.
            raise IllegalInstruction(
                f"pc {pc} outside program 0..{len(program) - 1}"
            )
        inst = program.at(pc)
        info = SI_OPCODES[inst.opcode]

        # Hot-path profiling hook: one global read + branch when off.
        prof = _profile.ACTIVE
        if prof is not None:
            prof.dispatch("si", info.latency_class,
                          bool(info.memory_space))

        self._wave = wave
        self.scc = wave.scc
        if info.is_scalar:
            self.eff_mask = wave.exec_mask & wave.valid_mask
            self.eff_bool = self._mask_to_bools_width(self.eff_mask)
        else:
            self.eff_mask = wave.exec_mask & wave.valid_mask
            self.eff_bool = self._mask_to_bools_width(self.eff_mask)
        self._cycle = t_issue

        latency = self.latency_of(info.latency_class)

        if (not info.is_scalar and self.eff_mask == 0):
            # Vector op with EXEC == 0: architecturally a no-op.
            wave.pc = pc + 1
            return latency

        # Corrupted values under fault injection legitimately overflow
        # float arithmetic; hardware does not warn, neither do we.
        with np.errstate(all="ignore"):
            effect = semantics.execute(self, inst)
        wave.scc = self.scc

        if effect.kind == "branch":
            wave.pc = effect.target
        elif effect.kind == "exit":
            wave.finished = True
        elif effect.kind == "barrier":
            wave.pc = pc + 1
            self._arrive_barrier(wave, t_issue)
        else:
            wave.pc = pc + 1
        return latency + effect.extra_cycles

    def _execute_fast(self, wave: SiWavefront, t_issue: int) -> int:
        """Vector-backend twin of :meth:`_execute` (bit-identical).

        Decode, opcode lookup and latency come from the per-launch
        cache; SIMT mask conversion goes through the shared cached
        helpers instead of the per-bit loop.
        """
        pc = wave.pc
        decoded = self._decoded
        if not 0 <= pc < len(decoded):
            raise IllegalInstruction(
                f"pc {pc} outside program 0..{len(decoded) - 1}"
            )
        inst, info, latency = decoded[pc]

        prof = _profile.ACTIVE
        if prof is not None:
            prof.dispatch("si", info.latency_class,
                          bool(info.memory_space))

        self._wave = wave
        self.scc = wave.scc
        self.eff_mask = wave.exec_mask & wave.valid_mask
        self.eff_bool = _v_mask_to_bools(self.eff_mask, self.config.warp_size)
        self._cycle = t_issue

        if not info.is_scalar and self.eff_mask == 0:
            wave.pc = pc + 1
            return latency

        with np.errstate(all="ignore"):
            effect = semantics.execute(self, inst)
        wave.scc = self.scc

        if effect.kind == "branch":
            wave.pc = effect.target
        elif effect.kind == "exit":
            wave.finished = True
        elif effect.kind == "barrier":
            wave.pc = pc + 1
            self._arrive_barrier(wave, t_issue)
        else:
            wave.pc = pc + 1
        return latency + effect.extra_cycles

    # ------------------------------------------------------------------
    # Mask helpers
    # ------------------------------------------------------------------
    def _mask_to_bools_width(self, mask: int) -> np.ndarray:
        if self.vector:
            return _v_mask_to_bools(mask, self.config.warp_size)
        out = np.zeros(self.config.warp_size, dtype=bool)
        lane = 0
        while mask:
            if mask & 1:
                out[lane] = True
            mask >>= 1
            lane += 1
        return out

    def mask_to_bools(self, mask: int) -> np.ndarray:
        return self._mask_to_bools_width(mask)

    def bools_to_mask(self, bools: np.ndarray) -> int:
        if self.vector:
            return _v_bools_to_mask(bools)
        mask = 0
        for lane in np.flatnonzero(bools):
            mask |= 1 << int(lane)
        return mask

    # ------------------------------------------------------------------
    # Wavefront-context protocol (used by repro.isa.si.semantics)
    # ------------------------------------------------------------------
    def resolve_label(self, ref) -> int:
        return self.program.resolve_label(ref)

    def read_vreg(self, reg: VReg) -> np.ndarray:
        row = self._wave.reg_base_row + reg.index
        return self.regfile.read_row(row, self.eff_mask, self._cycle)

    def write_vreg(self, reg: VReg, values: np.ndarray) -> None:
        row = self._wave.reg_base_row + reg.index
        self.regfile.write_row(
            row, values, self.eff_bool, self.eff_mask, self._cycle
        )

    def read_vsrc(self, op) -> np.ndarray:
        if isinstance(op, VReg):
            return self.read_vreg(op)
        if isinstance(op, SReg):
            return np.full(
                self.config.warp_size, self._wave.sgprs[op.index], dtype=np.uint32
            )
        if isinstance(op, Imm):
            if self.vector:
                return const_u32(self.config.warp_size, op.value)
            return np.full(self.config.warp_size, op.value, dtype=np.uint32)
        if isinstance(op, Param):
            word = self.launch.param_word(op.index)
            if self.vector:
                return const_u32(self.config.warp_size, word)
            return np.full(self.config.warp_size, word, dtype=np.uint32)
        raise IllegalInstruction(f"cannot read vector source {op!r}")

    def read_scalar32(self, op) -> int:
        if isinstance(op, SReg):
            return int(self._wave.sgprs[op.index])
        if isinstance(op, Imm):
            return op.value
        if isinstance(op, Param):
            return self.launch.param_word(op.index)
        raise IllegalInstruction(f"cannot read scalar source {op!r}")

    def write_scalar32(self, op, value: int) -> None:
        if isinstance(op, SReg):
            self._wave.sgprs[op.index] = np.uint32(value & 0xFFFFFFFF)
            return
        raise IllegalInstruction(f"cannot write scalar destination {op!r}")

    def read_mask64(self, op) -> int:
        if isinstance(op, SpecialScalar):
            if op.name == "vcc":
                return self._wave.vcc
            if op.name == "exec":
                return self._wave.exec_mask
            if op.name == "scc":
                return int(self.scc)
        if isinstance(op, SRegPair):
            low = int(self._wave.sgprs[op.index])
            high = int(self._wave.sgprs[op.index + 1])
            return low | (high << 32)
        if isinstance(op, Imm):
            return op.value & _MASK64
        raise IllegalInstruction(f"cannot read 64-bit source {op!r}")

    def write_mask64(self, op, value: int) -> None:
        value &= _MASK64
        if isinstance(op, SpecialScalar):
            if op.name == "vcc":
                self._wave.vcc = value
                return
            if op.name == "exec":
                self._wave.exec_mask = value
                return
        if isinstance(op, SRegPair):
            self._wave.sgprs[op.index] = np.uint32(value & 0xFFFFFFFF)
            self._wave.sgprs[op.index + 1] = np.uint32(value >> 32)
            return
        raise IllegalInstruction(f"cannot write 64-bit destination {op!r}")

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def global_load(self, addresses: np.ndarray):
        sel = self.eff_bool
        out = np.zeros(self.config.warp_size, dtype=np.uint32)
        selected = addresses[sel]
        out[sel] = self.gmem.load_words(selected)
        return out, self._coalescing_extra(selected)

    def global_store(self, addresses: np.ndarray, values: np.ndarray) -> int:
        sel = self.eff_bool
        selected = addresses[sel]
        self.gmem.store_words(selected, values[sel])
        return self._coalescing_extra(selected)

    def global_atomic_add(self, addresses: np.ndarray, values: np.ndarray):
        sel = self.eff_bool
        out = np.zeros(self.config.warp_size, dtype=np.uint32)
        selected = addresses[sel]
        out[sel] = self.gmem.atomic_add(selected, values[sel])
        return out, self._coalescing_extra(selected)

    def _lds_addrs(self, addresses: np.ndarray) -> np.ndarray:
        return addresses + self._wave.block.lmem_base

    def shared_load(self, addresses: np.ndarray) -> np.ndarray:
        sel = self.eff_bool
        out = np.zeros(self.config.warp_size, dtype=np.uint32)
        out[sel] = self.lmem.load(self._lds_addrs(addresses)[sel], self._cycle)
        return out

    def shared_store(self, addresses: np.ndarray, values: np.ndarray) -> None:
        sel = self.eff_bool
        self.lmem.store(self._lds_addrs(addresses)[sel], values[sel], self._cycle)

    def shared_atomic_add(self, addresses: np.ndarray, values: np.ndarray):
        sel = self.eff_bool
        out = np.zeros(self.config.warp_size, dtype=np.uint32)
        out[sel] = self.lmem.atomic_add(
            self._lds_addrs(addresses)[sel], values[sel], self._cycle
        )
        return out
