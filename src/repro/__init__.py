"""repro — microarchitecture-level GPU reliability comparison.

A full-stack Python reproduction of Vallero, Di Carlo, Tselonis and
Gizopoulos, "Microarchitecture Level Reliability Comparison of Modern
GPU Designs: First Findings" (ISPASS 2017): two GPU microarchitectural
simulators (SASS-level NVIDIA SMs and Southern-Islands AMD CUs), a
ten-benchmark cross-vendor suite, statistical fault injection, ACE
lifetime analysis, occupancy measurement and the EPF combined metric.

Quickstart — campaigns are described by one declarative, serializable
:class:`~repro.spec.CampaignSpec`::

    from repro import CampaignSpec, run_cell

    spec = CampaignSpec(gpus=("gtx480",), workloads=("matrixMul",),
                        scale="small", samples=200)
    cell = run_cell(spec)
    print(cell.avf_fi("register_file"), cell.avf_ace("register_file"))
    print(cell.epf.epf)

    spec.to_file("campaign.toml")       # repro-experiments run campaign.toml
    children = spec.sweep(fault_model=["transient", "stuck_at"],
                          seed=range(3))   # one spec, many axes
"""

from repro.arch import (
    GPU_PRESETS,
    GpuConfig,
    LatencyModel,
    SCALED_GPU_PRESETS,
    get_gpu,
    get_scaled_gpu,
    list_gpus,
    list_scaled_gpus,
)
from repro.arch.structures import (
    ALL_STRUCTURES,
    CONTROL_STRUCTURES,
    DATAPATH_STRUCTURES,
    PREDICATE_FILE,
    SCHEDULER_STATE,
    SIMT_STACK,
    STRUCTURE_REGISTRY,
    structure_exposed,
)
from repro.checkpoint import (
    CheckpointRecorder,
    SnapshotSet,
    capture_snapshots,
)
from repro.engine import (
    CampaignResult,
    CampaignService,
    CampaignStats,
    CampaignWorker,
    CoordinatorUnreachable,
    ExecutionBackend,
    RemoteBackend,
    ResultStore,
    run_campaign,
)
from repro.engine.matrix import cell_fingerprints
from repro.errors import (
    AssemblyError,
    ConfigError,
    LaunchError,
    MemoryFault,
    ReproError,
    SimFault,
    WatchdogTimeout,
)
from repro.faultmodels import (
    FAULT_MODELS,
    FaultModel,
    MultiBitUpset,
    StuckAt,
    TransientBitFlip,
    get_fault_model,
    list_fault_models,
)
from repro.kernels import (
    KERNEL_NAMES,
    RunResult,
    Workload,
    get_workload,
    list_workloads,
    run_workload,
    verify_against_reference,
)
from repro.reliability import (
    AceMode,
    AvfEstimate,
    CellResult,
    EpfResult,
    Outcome,
    RAW_FIT_PER_BIT,
    compute_epf,
    margin_of_error,
    required_samples,
    run_cell,
    run_fi_campaign,
    run_golden,
    run_matrix,
)
from repro.reliability.report import (
    format_ace_vs_fi,
    format_avf_figure,
    format_control_avf,
    format_epf_figure,
    format_model_compare,
    format_sweep_summary,
    write_cells_csv,
)
from repro.sim import (
    CompositeSink,
    EventRecorder,
    FaultPlan,
    Gpu,
    JsonlTraceSink,
    LOCAL_MEMORY,
    LaunchConfig,
    REGISTER_FILE,
    TraceSink,
    pack_params,
    read_trace_events,
    sample_faults,
)
from repro.spec import (
    CampaignSpec,
    SPEC_FIELDS,
    SweepResult,
    expand_sweep,
    run_sweep,
)
from repro.telemetry import (
    CallbackTelemetrySink,
    JsonlTelemetrySink,
    MemoryTelemetrySink,
    ProfileCollector,
    TelemetryHub,
    TelemetrySink,
    TelemetryTail,
    aggregate_profiles,
    format_profile,
    load_telemetry,
    load_telemetry_events,
    telemetry_path_for_store,
    top_cost_centers,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # chips
    "GpuConfig", "LatencyModel", "GPU_PRESETS", "SCALED_GPU_PRESETS",
    "get_gpu", "get_scaled_gpu", "list_gpus", "list_scaled_gpus",
    # simulator
    "Gpu", "LaunchConfig", "pack_params",
    "FaultPlan", "sample_faults", "REGISTER_FILE", "LOCAL_MEMORY",
    # fault-site structure registry
    "SIMT_STACK", "PREDICATE_FILE", "SCHEDULER_STATE",
    "DATAPATH_STRUCTURES", "CONTROL_STRUCTURES", "ALL_STRUCTURES",
    "STRUCTURE_REGISTRY", "structure_exposed",
    # fault models
    "FaultModel", "TransientBitFlip", "StuckAt", "MultiBitUpset",
    "FAULT_MODELS", "get_fault_model", "list_fault_models",
    # benchmarks
    "KERNEL_NAMES", "Workload", "RunResult",
    "get_workload", "list_workloads", "run_workload",
    "verify_against_reference",
    # declarative campaign specs + sweeps
    "CampaignSpec", "SPEC_FIELDS", "SweepResult",
    "expand_sweep", "run_sweep",
    # campaign engine
    "run_campaign", "CampaignResult", "CampaignStats", "ResultStore",
    "cell_fingerprints",
    # distributed campaign service (coordinator / worker fleet)
    "CampaignService", "CampaignWorker", "RemoteBackend",
    "ExecutionBackend", "CoordinatorUnreachable",
    # engine telemetry (observability)
    "TelemetrySink", "MemoryTelemetrySink", "JsonlTelemetrySink",
    "CallbackTelemetrySink", "TelemetryHub",
    "load_telemetry", "load_telemetry_events", "telemetry_path_for_store",
    # hot-path profiling (observability)
    "ProfileCollector", "TelemetryTail", "aggregate_profiles",
    "format_profile", "top_cost_centers",
    # simulator access traces
    "TraceSink", "CompositeSink", "EventRecorder", "JsonlTraceSink",
    "read_trace_events",
    # checkpointing
    "CheckpointRecorder", "SnapshotSet", "capture_snapshots",
    # reliability
    "run_cell", "run_matrix", "run_golden", "run_fi_campaign",
    "CellResult", "AvfEstimate", "AceMode", "Outcome",
    "compute_epf", "EpfResult", "RAW_FIT_PER_BIT",
    "margin_of_error", "required_samples",
    # reports (figure/table formatters, CSV export)
    "format_avf_figure", "format_epf_figure", "format_control_avf",
    "format_model_compare", "format_sweep_summary", "format_ace_vs_fi",
    "write_cells_csv",
    # errors
    "ReproError", "ConfigError", "AssemblyError", "LaunchError",
    "SimFault", "MemoryFault", "WatchdogTimeout",
]
