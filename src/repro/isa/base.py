"""Operand and instruction model shared by the SASS and SI front-ends.

Both assemblers lower kernel text into a :class:`Program`: a flat list of
:class:`Instruction` objects plus label and directive metadata. The
simulators interpret instructions directly (no encode/decode round-trip:
faults are injected into *storage*, not into instruction words, exactly as
in the paper, which targets the register file and local memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblyError

# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    """SASS general-purpose register ``R<n>``; ``index == -1`` is RZ."""

    index: int

    def __str__(self):
        return "RZ" if self.index == -1 else f"R{self.index}"


RZ = Reg(-1)


@dataclass(frozen=True)
class Pred:
    """SASS predicate register ``P<n>``; ``index == -1`` is PT (true)."""

    index: int
    negated: bool = False

    def __str__(self):
        bang = "!" if self.negated else ""
        name = "PT" if self.index == -1 else f"P{self.index}"
        return f"{bang}{name}"


PT = Pred(-1)


@dataclass(frozen=True)
class Imm:
    """Immediate operand, stored as a raw 32-bit pattern."""

    value: int

    def __str__(self):
        return f"0x{self.value & 0xFFFFFFFF:x}"


@dataclass(frozen=True)
class Param:
    """Kernel parameter word: SASS ``c[k]`` / SI ``param[k]``."""

    index: int

    def __str__(self):
        return f"c[{self.index}]"


@dataclass(frozen=True)
class Special:
    """SASS special register read via S2R (``SR_TID_X``, ...)."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class MemRef:
    """Register-indirect memory operand ``[R<n>+offset]`` (byte offset)."""

    base: "Reg | VReg"
    offset: int = 0

    def __str__(self):
        if self.offset:
            return f"[{self.base}+0x{self.offset:x}]"
        return f"[{self.base}]"


@dataclass(frozen=True)
class SReg:
    """SI scalar register ``s<n>``."""

    index: int

    def __str__(self):
        return f"s{self.index}"


@dataclass(frozen=True)
class SRegPair:
    """SI aligned scalar register pair ``s[n:n+1]`` (64-bit)."""

    index: int  # first (even) register

    def __str__(self):
        return f"s[{self.index}:{self.index + 1}]"


@dataclass(frozen=True)
class VReg:
    """SI vector register ``v<n>`` (one 32-bit word per lane)."""

    index: int

    def __str__(self):
        return f"v{self.index}"


@dataclass(frozen=True)
class SpecialScalar:
    """SI architectural scalar: ``vcc``, ``exec`` (64-bit) or ``scc``."""

    name: str  # "vcc" | "exec" | "scc"

    def __str__(self):
        return self.name


VCC = SpecialScalar("vcc")
EXEC = SpecialScalar("exec")
SCC = SpecialScalar("scc")


@dataclass(frozen=True)
class LabelRef:
    """Branch target by label name; resolved to a pc during assembly."""

    name: str

    def __str__(self):
        return self.name


Operand = object  # documentation alias: any of the classes above


# ---------------------------------------------------------------------------
# Instructions and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Instruction:
    """One decoded machine instruction.

    ``opcode`` is the canonical mnemonic (upper-case for SASS, lower-case
    for SI), ``mods`` the dot-suffix modifiers in order, ``operands`` the
    parsed operand tuple (destination first when one exists), ``guard``
    the SASS ``@P#`` / ``@!P#`` predicate guard (None = unconditional).
    """

    opcode: str
    mods: tuple = ()
    operands: tuple = ()
    guard: Pred | None = None
    pc: int = 0
    line: int = 0

    def has_mod(self, name: str) -> bool:
        return name in self.mods

    def __str__(self):
        text = self.opcode
        if self.mods:
            text += "." + ".".join(self.mods)
        if self.operands:
            text += " " + ", ".join(str(op) for op in self.operands)
        if self.guard is not None:
            text = f"@{self.guard} {text}"
        return text


@dataclass
class Program:
    """An assembled kernel: instructions + labels + resource directives."""

    name: str
    isa: str                       # "sass" | "si"
    instructions: list = field(default_factory=list)
    labels: dict = field(default_factory=dict)     # label -> pc
    #: architectural registers per thread (SASS) / VGPRs per work-item (SI)
    registers_per_thread: int = 0
    #: SGPRs per wavefront (SI only)
    scalar_registers: int = 0
    #: statically allocated local/shared memory bytes per block
    local_memory_bytes: int = 0
    source: str = ""

    def __len__(self):
        return len(self.instructions)

    def at(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def resolve_label(self, ref: LabelRef) -> int:
        try:
            return self.labels[ref.name]
        except KeyError:
            raise AssemblyError(f"undefined label {ref.name!r}") from None

    def validate(self) -> None:
        """Check label targets and register bounds; raise AssemblyError."""
        if not self.instructions:
            raise AssemblyError(f"kernel {self.name!r} has no instructions")
        for inst in self.instructions:
            for op in inst.operands:
                if isinstance(op, LabelRef) and op.name not in self.labels:
                    raise AssemblyError(
                        f"undefined label {op.name!r}", line=inst.line
                    )


# ---------------------------------------------------------------------------
# Shared tokenising helpers used by both parsers
# ---------------------------------------------------------------------------

_COMMENT_MARKERS = ("#", "//", ";")


def strip_comment(line: str) -> str:
    """Remove trailing comments introduced by ``#``, ``//`` or ``;``."""
    for marker in _COMMENT_MARKERS:
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def split_operands(text: str) -> list[str]:
    """Split an operand list on top-level commas (respecting brackets)."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char in "[(":
            depth += 1
        elif char in "])":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_int(token: str, line: int = 0) -> int:
    """Parse a decimal/hex integer literal (with optional sign)."""
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad integer literal {token!r}", line=line) from None
