"""Execution semantics for the SASS-like ISA.

Each handler interprets one warp-instruction, vectorised across the 32
lanes with numpy. Handlers receive a *context* object (provided by the
core model, :class:`repro.sim.sass_core.SassWarpContext`) exposing
masked register/predicate/memory access, and return an :class:`Effect`
describing any control-flow consequence; plain data instructions return
``EFFECT_NONE``.

All integer state is uint32 (wrap-around semantics); float operations
reinterpret the same words as IEEE-754 binary32 and compute in float32,
so results are bit-deterministic — a requirement for fault-injection
outcome classification, which compares outputs bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IllegalInstruction
from repro.isa.base import Imm, Instruction, LabelRef, MemRef, Pred, Reg

_INT32_MIN = -(2 ** 31)
_INT32_MAX = 2 ** 31 - 1


@dataclass(frozen=True)
class Effect:
    """Control-flow outcome of one executed instruction."""

    kind: str                 # "none" | "branch" | "exit" | "barrier"
    mask: int = 0             # taken lanes (branch) / exiting lanes (exit)
    target: int = 0           # branch target pc
    extra_cycles: int = 0     # added latency (e.g. uncoalesced accesses)


EFFECT_NONE = Effect("none")


def _f32(words: np.ndarray) -> np.ndarray:
    """View uint32 lane words as float32 (no copy)."""
    return words.view(np.float32)


def _bits(floats: np.ndarray) -> np.ndarray:
    """View float32 lane values as their uint32 bit patterns."""
    return np.ascontiguousarray(floats, dtype=np.float32).view(np.uint32)


def _signed(words: np.ndarray) -> np.ndarray:
    return words.view(np.int32)


def _cmp(kind: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if kind == "LT":
        return a < b
    if kind == "LE":
        return a <= b
    if kind == "GT":
        return a > b
    if kind == "GE":
        return a >= b
    if kind == "EQ":
        return a == b
    if kind == "NE":
        return a != b
    raise IllegalInstruction(f"unknown comparison {kind!r}")


# ---------------------------------------------------------------------------
# Handlers. Signature: handler(ctx, inst) -> Effect
# ---------------------------------------------------------------------------


def _h_mov(ctx, inst):
    ctx.write_reg(inst.operands[0], ctx.read_operand(inst.operands[1]))
    return EFFECT_NONE


def _h_s2r(ctx, inst):
    ctx.write_reg(inst.operands[0], ctx.special(inst.operands[1].name))
    return EFFECT_NONE


def _h_sel(ctx, inst):
    dst, a_op, b_op, pred = inst.operands
    a = ctx.read_operand(a_op)
    b = ctx.read_operand(b_op)
    ctx.write_reg(dst, np.where(ctx.read_pred(pred), a, b))
    return EFFECT_NONE


def _h_iadd(ctx, inst):
    a = ctx.read_operand(inst.operands[1])
    b = ctx.read_operand(inst.operands[2])
    ctx.write_reg(inst.operands[0], a + b)
    return EFFECT_NONE


def _h_isub(ctx, inst):
    a = ctx.read_operand(inst.operands[1])
    b = ctx.read_operand(inst.operands[2])
    ctx.write_reg(inst.operands[0], a - b)
    return EFFECT_NONE


def _h_imul(ctx, inst):
    a = ctx.read_operand(inst.operands[1])
    b = ctx.read_operand(inst.operands[2])
    if inst.has_mod("HI"):
        wide = a.astype(np.uint64) * b.astype(np.uint64)
        result = (wide >> np.uint64(32)).astype(np.uint32)
    else:
        result = a * b
    ctx.write_reg(inst.operands[0], result)
    return EFFECT_NONE


def _h_imad(ctx, inst):
    a = ctx.read_operand(inst.operands[1])
    b = ctx.read_operand(inst.operands[2])
    c = ctx.read_operand(inst.operands[3])
    ctx.write_reg(inst.operands[0], a * b + c)
    return EFFECT_NONE


def _h_iscadd(ctx, inst):
    dst, a_op, b_op, shift_op = inst.operands
    a = ctx.read_operand(a_op)
    b = ctx.read_operand(b_op)
    shift = shift_op.value & 31
    ctx.write_reg(dst, (a << np.uint32(shift)) + b)
    return EFFECT_NONE


def _h_imnmx(ctx, inst):
    a = ctx.read_operand(inst.operands[1])
    b = ctx.read_operand(inst.operands[2])
    if not inst.has_mod("U32"):
        a_c, b_c = _signed(a), _signed(b)
    else:
        a_c, b_c = a, b
    picked = np.maximum(a_c, b_c) if inst.has_mod("MAX") else np.minimum(a_c, b_c)
    ctx.write_reg(inst.operands[0], picked.view(np.uint32))
    return EFFECT_NONE


def _h_shl(ctx, inst):
    a = ctx.read_operand(inst.operands[1])
    amount = ctx.read_operand(inst.operands[2]) & np.uint32(31)
    ctx.write_reg(inst.operands[0], a << amount)
    return EFFECT_NONE


def _h_shr(ctx, inst):
    a = ctx.read_operand(inst.operands[1])
    amount = ctx.read_operand(inst.operands[2]) & np.uint32(31)
    if inst.has_mod("S32"):
        result = (_signed(a) >> amount.astype(np.int32)).view(np.uint32)
    else:
        result = a >> amount
    ctx.write_reg(inst.operands[0], result)
    return EFFECT_NONE


def _h_and(ctx, inst):
    a = ctx.read_operand(inst.operands[1])
    b = ctx.read_operand(inst.operands[2])
    ctx.write_reg(inst.operands[0], a & b)
    return EFFECT_NONE


def _h_or(ctx, inst):
    a = ctx.read_operand(inst.operands[1])
    b = ctx.read_operand(inst.operands[2])
    ctx.write_reg(inst.operands[0], a | b)
    return EFFECT_NONE


def _h_xor(ctx, inst):
    a = ctx.read_operand(inst.operands[1])
    b = ctx.read_operand(inst.operands[2])
    ctx.write_reg(inst.operands[0], a ^ b)
    return EFFECT_NONE


def _h_not(ctx, inst):
    ctx.write_reg(inst.operands[0], ~ctx.read_operand(inst.operands[1]))
    return EFFECT_NONE


def _h_fadd(ctx, inst):
    a = _f32(ctx.read_operand(inst.operands[1]))
    b = _f32(ctx.read_operand(inst.operands[2]))
    ctx.write_reg(inst.operands[0], _bits(a + b))
    return EFFECT_NONE


def _h_fmul(ctx, inst):
    a = _f32(ctx.read_operand(inst.operands[1]))
    b = _f32(ctx.read_operand(inst.operands[2]))
    ctx.write_reg(inst.operands[0], _bits(a * b))
    return EFFECT_NONE


def _h_ffma(ctx, inst):
    a = _f32(ctx.read_operand(inst.operands[1]))
    b = _f32(ctx.read_operand(inst.operands[2]))
    c = _f32(ctx.read_operand(inst.operands[3]))
    ctx.write_reg(inst.operands[0], _bits(a * b + c))
    return EFFECT_NONE


def _h_fmnmx(ctx, inst):
    a = _f32(ctx.read_operand(inst.operands[1]))
    b = _f32(ctx.read_operand(inst.operands[2]))
    picked = np.fmax(a, b) if inst.has_mod("MAX") else np.fmin(a, b)
    ctx.write_reg(inst.operands[0], _bits(picked))
    return EFFECT_NONE


def _h_mufu(ctx, inst):
    a = _f32(ctx.read_operand(inst.operands[1]))
    kind = inst.mods[0] if inst.mods else ""
    with np.errstate(all="ignore"):
        if kind == "RCP":
            result = np.float32(1.0) / a
        elif kind == "SQRT":
            result = np.sqrt(a)
        elif kind == "RSQ":
            result = np.float32(1.0) / np.sqrt(a)
        elif kind == "EX2":
            result = np.exp2(a)
        elif kind == "LG2":
            result = np.log2(a)
        elif kind == "SIN":
            result = np.sin(a)
        elif kind == "COS":
            result = np.cos(a)
        else:
            raise IllegalInstruction(f"MUFU needs a function modifier, got {inst}")
    ctx.write_reg(inst.operands[0], _bits(result.astype(np.float32)))
    return EFFECT_NONE


def _h_f2i(ctx, inst):
    a = _f32(ctx.read_operand(inst.operands[1]))
    with np.errstate(all="ignore"):
        staged = np.floor(a) if inst.has_mod("FLOOR") else np.trunc(a)
        staged = np.nan_to_num(staged, nan=0.0, posinf=_INT32_MAX, neginf=_INT32_MIN)
        clipped = np.clip(staged, _INT32_MIN, _INT32_MAX).astype(np.int32)
    ctx.write_reg(inst.operands[0], clipped.view(np.uint32))
    return EFFECT_NONE


def _h_i2f(ctx, inst):
    a = ctx.read_operand(inst.operands[1])
    source = a.astype(np.float32) if inst.has_mod("U32") else _signed(a).astype(np.float32)
    ctx.write_reg(inst.operands[0], _bits(source))
    return EFFECT_NONE


def _h_isetp(ctx, inst):
    pd, a_op, b_op = inst.operands[0], inst.operands[1], inst.operands[2]
    a = ctx.read_operand(a_op)
    b = ctx.read_operand(b_op)
    if not inst.has_mod("U32"):
        a, b = _signed(a), _signed(b)
    kind = inst.mods[0]
    result = _cmp(kind, a, b)
    if inst.has_mod("AND") and len(inst.operands) > 3:
        result = result & ctx.read_pred(inst.operands[3])
    ctx.write_pred(pd, result)
    return EFFECT_NONE


def _h_fsetp(ctx, inst):
    pd, a_op, b_op = inst.operands[0], inst.operands[1], inst.operands[2]
    a = _f32(ctx.read_operand(a_op))
    b = _f32(ctx.read_operand(b_op))
    result = _cmp(inst.mods[0], a, b)
    if inst.has_mod("AND") and len(inst.operands) > 3:
        result = result & ctx.read_pred(inst.operands[3])
    ctx.write_pred(pd, result)
    return EFFECT_NONE


def _addresses(ctx, ref: MemRef) -> np.ndarray:
    base = ctx.read_reg(ref.base)
    return base.astype(np.int64) + ref.offset


def _h_ldg(ctx, inst):
    dst, ref = inst.operands
    values, extra = ctx.global_load(_addresses(ctx, ref))
    ctx.write_reg(dst, values)
    return Effect("none", extra_cycles=extra)


def _h_stg(ctx, inst):
    ref, src = inst.operands
    extra = ctx.global_store(_addresses(ctx, ref), ctx.read_reg(src))
    return Effect("none", extra_cycles=extra)


def _h_lds(ctx, inst):
    dst, ref = inst.operands
    ctx.write_reg(dst, ctx.shared_load(_addresses(ctx, ref)))
    return EFFECT_NONE


def _h_sts(ctx, inst):
    ref, src = inst.operands
    ctx.shared_store(_addresses(ctx, ref), ctx.read_reg(src))
    return EFFECT_NONE


def _h_atoms(ctx, inst):
    dst, ref, src = inst.operands
    old = ctx.shared_atomic_add(_addresses(ctx, ref), ctx.read_reg(src))
    ctx.write_reg(dst, old)
    return EFFECT_NONE


def _h_atom(ctx, inst):
    dst, ref, src = inst.operands
    old, extra = ctx.global_atomic_add(_addresses(ctx, ref), ctx.read_reg(src))
    ctx.write_reg(dst, old)
    return Effect("none", extra_cycles=extra)


def _h_bra(ctx, inst):
    target_op = inst.operands[0]
    if not isinstance(target_op, LabelRef):
        raise IllegalInstruction("BRA target must be a label")
    return Effect("branch", mask=ctx.eff_mask, target=ctx.resolve_label(target_op))


def _h_exit(ctx, inst):
    return Effect("exit", mask=ctx.eff_mask)


def _h_bar(ctx, inst):
    return Effect("barrier")


def _h_nop(ctx, inst):
    return EFFECT_NONE


HANDLERS = {
    "MOV": _h_mov,
    "MOV32I": _h_mov,
    "S2R": _h_s2r,
    "SEL": _h_sel,
    "IADD": _h_iadd,
    "ISUB": _h_isub,
    "IMUL": _h_imul,
    "IMAD": _h_imad,
    "ISCADD": _h_iscadd,
    "IMNMX": _h_imnmx,
    "SHL": _h_shl,
    "SHR": _h_shr,
    "AND": _h_and,
    "OR": _h_or,
    "XOR": _h_xor,
    "NOT": _h_not,
    "FADD": _h_fadd,
    "FMUL": _h_fmul,
    "FFMA": _h_ffma,
    "FMNMX": _h_fmnmx,
    "MUFU": _h_mufu,
    "F2I": _h_f2i,
    "I2F": _h_i2f,
    "ISETP": _h_isetp,
    "FSETP": _h_fsetp,
    "LDG": _h_ldg,
    "STG": _h_stg,
    "LDS": _h_lds,
    "STS": _h_sts,
    "ATOMS": _h_atoms,
    "ATOM": _h_atom,
    "BRA": _h_bra,
    "EXIT": _h_exit,
    "BAR": _h_bar,
    "NOP": _h_nop,
}


def execute(ctx, inst: Instruction) -> Effect:
    """Execute one instruction against a warp context."""
    handler = HANDLERS.get(inst.opcode)
    if handler is None:
        raise IllegalInstruction(f"no handler for {inst.opcode}")
    return handler(ctx, inst)
