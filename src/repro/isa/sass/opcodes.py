"""SASS-like opcode table.

The mnemonics and semantics follow NVIDIA's native SASS (the level GUFI
injects at), restricted to the subset our ten benchmarks need. Each entry
records the latency class used by the timing model and structural flags
used by the parser/simulator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    name: str
    latency_class: str          # alu | mul | sfu | shared | global | branch | barrier
    writes_reg: bool = False    # first operand is a destination register
    writes_pred: bool = False   # first operand is a destination predicate
    is_branch: bool = False
    is_barrier: bool = False
    is_exit: bool = False
    is_memory: bool = False     # has a MemRef operand
    memory_space: str = ""      # "global" | "shared"
    valid_mods: tuple = ()


_OPS = [
    # Data movement
    OpInfo("MOV", "alu", writes_reg=True),
    OpInfo("MOV32I", "alu", writes_reg=True),
    OpInfo("S2R", "alu", writes_reg=True),
    OpInfo("SEL", "alu", writes_reg=True),
    # Integer arithmetic
    OpInfo("IADD", "alu", writes_reg=True),
    OpInfo("ISUB", "alu", writes_reg=True),
    OpInfo("IMUL", "mul", writes_reg=True, valid_mods=("HI", "U32")),
    OpInfo("IMAD", "mul", writes_reg=True, valid_mods=("U32",)),
    OpInfo("ISCADD", "alu", writes_reg=True),   # (a << shift) + b
    OpInfo("IMNMX", "alu", writes_reg=True, valid_mods=("MIN", "MAX", "U32")),
    OpInfo("SHL", "alu", writes_reg=True),
    OpInfo("SHR", "alu", writes_reg=True, valid_mods=("U32", "S32")),
    OpInfo("AND", "alu", writes_reg=True),
    OpInfo("OR", "alu", writes_reg=True),
    OpInfo("XOR", "alu", writes_reg=True),
    OpInfo("NOT", "alu", writes_reg=True),
    # Floating point
    OpInfo("FADD", "alu", writes_reg=True),
    OpInfo("FMUL", "alu", writes_reg=True),
    OpInfo("FFMA", "mul", writes_reg=True),
    OpInfo("FMNMX", "alu", writes_reg=True, valid_mods=("MIN", "MAX")),
    OpInfo(
        "MUFU", "sfu", writes_reg=True,
        valid_mods=("RCP", "SQRT", "RSQ", "EX2", "LG2", "SIN", "COS"),
    ),
    OpInfo("F2I", "sfu", writes_reg=True, valid_mods=("TRUNC", "FLOOR", "S32")),
    OpInfo("I2F", "sfu", writes_reg=True, valid_mods=("U32",)),
    # Predicates / comparison
    OpInfo(
        "ISETP", "alu", writes_pred=True,
        valid_mods=("LT", "LE", "GT", "GE", "EQ", "NE", "U32", "AND"),
    ),
    OpInfo(
        "FSETP", "alu", writes_pred=True,
        valid_mods=("LT", "LE", "GT", "GE", "EQ", "NE", "AND"),
    ),
    # Memory
    OpInfo("LDG", "global", writes_reg=True, is_memory=True, memory_space="global"),
    OpInfo("STG", "global", is_memory=True, memory_space="global"),
    OpInfo("LDS", "shared", writes_reg=True, is_memory=True, memory_space="shared"),
    OpInfo("STS", "shared", is_memory=True, memory_space="shared"),
    OpInfo(
        "ATOMS", "shared", writes_reg=False, is_memory=True,
        memory_space="shared", valid_mods=("ADD",),
    ),
    OpInfo(
        "ATOM", "global", writes_reg=False, is_memory=True,
        memory_space="global", valid_mods=("ADD",),
    ),
    # Control flow
    OpInfo("BRA", "branch", is_branch=True),
    OpInfo("EXIT", "branch", is_exit=True),
    OpInfo("BAR", "barrier", is_barrier=True, valid_mods=("SYNC",)),
    OpInfo("NOP", "alu"),
]

SASS_OPCODES: dict[str, OpInfo] = {op.name: op for op in _OPS}

#: SASS special registers readable via S2R.
SPECIAL_REGISTERS = (
    "SR_TID_X", "SR_TID_Y",
    "SR_CTAID_X", "SR_CTAID_Y",
    "SR_NTID_X", "SR_NTID_Y",
    "SR_NCTAID_X", "SR_NCTAID_Y",
    "SR_LANEID", "SR_WARPID",
)
