"""SASS-like ISA: the native-assembly level GUFI injects at."""

from repro.isa.sass.parser import assemble_sass

__all__ = ["assemble_sass"]
