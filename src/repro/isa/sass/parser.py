"""Assembler for the SASS-like ISA.

Kernel text format::

    .kernel matrixMul      # kernel name
    .regs 14               # architectural registers per thread
    .smem 2048             # static shared memory bytes per block

        S2R R0, SR_TID_X
        ISETP.GE P0, R0, c[0]
    @P0 EXIT
    loop:
        LDG R2, [R4+0x10]
        FFMA R5, R2, R3, R5
        IADD R4, R4, 4
        ISETP.LT P1, R4, R6
    @P1 BRA loop
        STG [R7], R5
        EXIT

Comments start with ``#``, ``//`` or ``;``. Operands: ``R<n>``/``RZ``
registers, ``P<n>``/``PT`` predicates, ``c[k]`` parameter words,
``SR_*`` specials, integer (``123``, ``0x7B``) and float (``1.0``,
``0.5f``) immediates, ``[R<n>+off]`` memory references, label names.
"""

from __future__ import annotations

import re

from repro.bits import float_to_bits, u32
from repro.errors import AssemblyError
from repro.isa.base import (
    Imm,
    Instruction,
    LabelRef,
    MemRef,
    Param,
    Pred,
    Program,
    Reg,
    Special,
    parse_int,
    split_operands,
    strip_comment,
)
from repro.isa.sass.opcodes import SASS_OPCODES, SPECIAL_REGISTERS

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_REG_RE = re.compile(r"^R(\d+)$")
_PRED_RE = re.compile(r"^(!?)P(\d+)$")
_PARAM_RE = re.compile(r"^c\[(0x[0-9a-fA-F]+|\d+)\]$")
_MEM_RE = re.compile(
    r"^\[\s*(RZ|R\d+)\s*(?:([+-])\s*(0x[0-9a-fA-F]+|\d+)\s*)?\]$"
)
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+([eE][+-]?\d+))f?$|^[+-]?\d+\.\d*[eE][+-]?\d+f?$")
_GUARD_RE = re.compile(r"^@(!?)(P\d+|PT)\s+(.*)$")


def _parse_operand(token: str, line: int):
    """Parse one operand token into an operand object."""
    if token == "RZ":
        return Reg(-1)
    if token == "PT":
        return Pred(-1)
    if token == "!PT":
        return Pred(-1, negated=True)
    match = _REG_RE.match(token)
    if match:
        return Reg(int(match.group(1)))
    match = _PRED_RE.match(token)
    if match:
        return Pred(int(match.group(2)), negated=bool(match.group(1)))
    match = _PARAM_RE.match(token)
    if match:
        return Param(int(match.group(1), 0))
    if token in SPECIAL_REGISTERS:
        return Special(token)
    match = _MEM_RE.match(token)
    if match:
        base = Reg(-1) if match.group(1) == "RZ" else Reg(int(match.group(1)[1:]))
        offset = 0
        if match.group(3):
            offset = int(match.group(3), 0)
            if match.group(2) == "-":
                offset = -offset
        return MemRef(base, offset)
    if _FLOAT_RE.match(token):
        return Imm(float_to_bits(float(token.rstrip("fF"))))
    try:
        return Imm(u32(parse_int(token, line)))
    except AssemblyError:
        pass
    if re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", token):
        return LabelRef(token)
    raise AssemblyError(f"cannot parse operand {token!r}", line=line)


def assemble_sass(text: str) -> Program:
    """Assemble SASS-like kernel text into a :class:`Program`."""
    name = "kernel"
    regs = 0
    smem = 0
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = strip_comment(raw)
        if not line:
            continue

        if line.startswith("."):
            fields = line.split()
            directive = fields[0]
            if directive == ".kernel" and len(fields) == 2:
                name = fields[1]
            elif directive == ".regs" and len(fields) == 2:
                regs = parse_int(fields[1], lineno)
            elif directive == ".smem" and len(fields) == 2:
                smem = parse_int(fields[1], lineno)
            else:
                raise AssemblyError(f"bad directive {line!r}", line=lineno)
            continue

        match = _LABEL_RE.match(line)
        if match:
            label = match.group(1)
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", line=lineno)
            labels[label] = len(instructions)
            continue

        guard = None
        match = _GUARD_RE.match(line)
        if match:
            pred_token = match.group(2)
            index = -1 if pred_token == "PT" else int(pred_token[1:])
            guard = Pred(index, negated=bool(match.group(1)))
            line = match.group(3).strip()

        parts = line.split(None, 1)
        mnemonic = parts[0]
        pieces = mnemonic.split(".")
        opcode, mods = pieces[0], tuple(pieces[1:])
        info = SASS_OPCODES.get(opcode)
        if info is None:
            raise AssemblyError(f"unknown opcode {opcode!r}", line=lineno)
        for mod in mods:
            if info.valid_mods and mod not in info.valid_mods:
                raise AssemblyError(
                    f"invalid modifier .{mod} for {opcode}", line=lineno
                )
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = tuple(
            _parse_operand(token, lineno)
            for token in split_operands(operand_text)
        )
        instructions.append(
            Instruction(
                opcode=opcode,
                mods=mods,
                operands=operands,
                guard=guard,
                pc=len(instructions),
                line=lineno,
            )
        )

    program = Program(
        name=name,
        isa="sass",
        instructions=instructions,
        labels=labels,
        registers_per_thread=regs,
        local_memory_bytes=smem,
        source=text,
    )
    program.validate()
    _check_register_bounds(program)
    return program


def _check_register_bounds(program: Program) -> None:
    """Every register index must be below the declared .regs count."""
    limit = program.registers_per_thread
    for inst in program.instructions:
        for op in inst.operands:
            reg = None
            if isinstance(op, Reg):
                reg = op
            elif isinstance(op, MemRef) and isinstance(op.base, Reg):
                reg = op.base
            if reg is not None and reg.index >= limit:
                raise AssemblyError(
                    f"R{reg.index} used but .regs is {limit}", line=inst.line
                )
