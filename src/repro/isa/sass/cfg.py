"""Control-flow analysis for SASS kernels.

Builds the instruction-level CFG and computes each branch's immediate
post-dominator — the reconvergence point used by the SIMT stack (the
same policy GPGPU-Sim applies to SASS/PTX without explicit SSY
annotations). Uses networkx's dominator algorithm on the reversed CFG.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import AssemblyError
from repro.isa.base import LabelRef, Program
from repro.sim.simt_stack import NO_RECONV

_EXIT_NODE = "exit"


def build_cfg(program: Program) -> nx.DiGraph:
    """Instruction-level CFG with a virtual exit node."""
    graph = nx.DiGraph()
    count = len(program.instructions)
    graph.add_nodes_from(range(count))
    graph.add_node(_EXIT_NODE)
    for pc, inst in enumerate(program.instructions):
        fallthrough = pc + 1 if pc + 1 < count else _EXIT_NODE
        if inst.opcode == "EXIT":
            graph.add_edge(pc, _EXIT_NODE)
            if inst.guard is not None:
                graph.add_edge(pc, fallthrough)
        elif inst.opcode == "BRA":
            target_op = inst.operands[0]
            if not isinstance(target_op, LabelRef):
                raise AssemblyError("BRA target must be a label", line=inst.line)
            graph.add_edge(pc, program.resolve_label(target_op))
            if inst.guard is not None:
                graph.add_edge(pc, fallthrough)
        else:
            graph.add_edge(pc, fallthrough)
    return graph


def immediate_postdominators(program: Program) -> dict[int, int]:
    """pc -> reconvergence pc for every branch instruction.

    ``NO_RECONV`` when the branch's sides only rejoin at program exit.
    """
    graph = build_cfg(program)
    # Instructions unreachable from the entry would confuse the dominator
    # computation; keep the reachable subgraph only.
    reachable = nx.descendants(graph, 0) | {0}
    graph = graph.subgraph(reachable).copy()
    idom = nx.immediate_dominators(graph.reverse(copy=False), _EXIT_NODE)
    table: dict[int, int] = {}
    for pc, inst in enumerate(program.instructions):
        if inst.opcode != "BRA" or pc not in reachable:
            continue
        node = idom.get(pc, _EXIT_NODE)
        table[pc] = NO_RECONV if node == _EXIT_NODE else int(node)
    return table
