"""Instruction-set front-ends: SASS-like (NVIDIA) and Southern-Islands-like (AMD)."""

from repro.isa.base import Instruction, Program

__all__ = ["Instruction", "Program"]
