"""Execution semantics for the Southern-Islands-like ISA.

Scalar (``s_``) handlers run once per wavefront on Python integers
(SGPRs, SCC, and the 64-bit VCC/EXEC masks); vector (``v_``/``ds_``/
``global_``) handlers are vectorised across the 64 lanes with numpy
under EXEC masking. The context object is the CU model,
:class:`repro.sim.si_core.SiCore`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits import to_signed, u32
from repro.errors import IllegalInstruction
from repro.isa.base import EXEC, Imm, LabelRef, VCC, VReg

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class Effect:
    """Control-flow outcome of one executed SI instruction."""

    kind: str              # "none" | "branch" | "exit" | "barrier"
    target: int = 0
    extra_cycles: int = 0


EFFECT_NONE = Effect("none")


def _f32(words: np.ndarray) -> np.ndarray:
    return words.view(np.float32)


def _bits(floats: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(floats, dtype=np.float32).view(np.uint32)


def _signed(words: np.ndarray) -> np.ndarray:
    return words.view(np.int32)


# ---------------------------------------------------------------------------
# Scalar handlers
# ---------------------------------------------------------------------------


def _h_s_mov_b32(ctx, inst):
    ctx.write_scalar32(inst.operands[0], ctx.read_scalar32(inst.operands[1]))
    return EFFECT_NONE


_SALU32 = {
    "s_add_i32": lambda a, b: a + b,
    "s_sub_i32": lambda a, b: a - b,
    "s_mul_i32": lambda a, b: a * b,
    "s_and_b32": lambda a, b: a & b,
    "s_or_b32": lambda a, b: a | b,
    "s_xor_b32": lambda a, b: a ^ b,
    "s_lshl_b32": lambda a, b: a << (b & 31),
    "s_lshr_b32": lambda a, b: (a & 0xFFFFFFFF) >> (b & 31),
    "s_ashr_i32": lambda a, b: to_signed(a) >> (b & 31),
    "s_min_i32": lambda a, b: min(to_signed(a), to_signed(b)),
    "s_max_i32": lambda a, b: max(to_signed(a), to_signed(b)),
}


def _h_salu32(ctx, inst):
    a = ctx.read_scalar32(inst.operands[1])
    b = ctx.read_scalar32(inst.operands[2])
    ctx.write_scalar32(inst.operands[0], u32(_SALU32[inst.opcode](a, b)))
    return EFFECT_NONE


def _h_s_mov_b64(ctx, inst):
    ctx.write_mask64(inst.operands[0], ctx.read_mask64(inst.operands[1]))
    return EFFECT_NONE


_SALU64 = {
    "s_and_b64": lambda a, b: a & b,
    "s_or_b64": lambda a, b: a | b,
    "s_xor_b64": lambda a, b: a ^ b,
    "s_andn2_b64": lambda a, b: a & ~b,
}


def _h_salu64(ctx, inst):
    a = ctx.read_mask64(inst.operands[1])
    b = ctx.read_mask64(inst.operands[2])
    result = _SALU64[inst.opcode](a, b) & _MASK64
    ctx.write_mask64(inst.operands[0], result)
    ctx.scc = result != 0
    return EFFECT_NONE


def _h_s_not_b64(ctx, inst):
    result = ~ctx.read_mask64(inst.operands[1]) & _MASK64
    ctx.write_mask64(inst.operands[0], result)
    ctx.scc = result != 0
    return EFFECT_NONE


def _h_s_and_saveexec_b64(ctx, inst):
    old_exec = ctx.read_mask64(EXEC)
    ctx.write_mask64(inst.operands[0], old_exec)
    new_exec = old_exec & ctx.read_mask64(inst.operands[1])
    ctx.write_mask64(EXEC, new_exec)
    ctx.scc = new_exec != 0
    return EFFECT_NONE


_SCMP = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


def _h_s_cmp(ctx, inst):
    _, _, op, ty = inst.opcode.split("_")
    a = ctx.read_scalar32(inst.operands[0])
    b = ctx.read_scalar32(inst.operands[1])
    if ty == "i32":
        a, b = to_signed(a), to_signed(b)
    ctx.scc = _SCMP[op](a, b)
    return EFFECT_NONE


def _branch_target(ctx, inst) -> int:
    target_op = inst.operands[0]
    if not isinstance(target_op, LabelRef):
        raise IllegalInstruction(f"{inst.opcode} target must be a label")
    return ctx.resolve_label(target_op)


def _h_s_branch(ctx, inst):
    return Effect("branch", target=_branch_target(ctx, inst))


def _h_s_cbranch(ctx, inst):
    kind = inst.opcode.removeprefix("s_cbranch_")
    if kind == "scc0":
        take = not ctx.scc
    elif kind == "scc1":
        take = ctx.scc
    elif kind == "vccz":
        take = ctx.read_mask64(VCC) == 0
    elif kind == "vccnz":
        take = ctx.read_mask64(VCC) != 0
    elif kind == "execz":
        take = ctx.read_mask64(EXEC) == 0
    elif kind == "execnz":
        take = ctx.read_mask64(EXEC) != 0
    else:
        raise IllegalInstruction(f"unknown conditional branch {inst.opcode}")
    if take:
        return Effect("branch", target=_branch_target(ctx, inst))
    return EFFECT_NONE


def _h_s_barrier(ctx, inst):
    return Effect("barrier")


def _h_s_endpgm(ctx, inst):
    return Effect("exit")


def _h_s_nop(ctx, inst):
    return EFFECT_NONE


def _h_s_load_dword(ctx, inst):
    ctx.write_scalar32(inst.operands[0], ctx.read_scalar32(inst.operands[1]))
    return EFFECT_NONE


# ---------------------------------------------------------------------------
# Vector handlers
# ---------------------------------------------------------------------------


def _h_v_mov_b32(ctx, inst):
    ctx.write_vreg(inst.operands[0], ctx.read_vsrc(inst.operands[1]))
    return EFFECT_NONE


_VALU_INT = {
    "v_add_i32": lambda a, b: a + b,
    "v_sub_i32": lambda a, b: a - b,
    "v_mul_lo_i32": lambda a, b: a * b,
    "v_and_b32": lambda a, b: a & b,
    "v_or_b32": lambda a, b: a | b,
    "v_xor_b32": lambda a, b: a ^ b,
}


def _h_valu_int(ctx, inst):
    a = ctx.read_vsrc(inst.operands[1])
    b = ctx.read_vsrc(inst.operands[2])
    ctx.write_vreg(inst.operands[0], _VALU_INT[inst.opcode](a, b))
    return EFFECT_NONE


def _h_v_minmax_i32(ctx, inst):
    a = _signed(ctx.read_vsrc(inst.operands[1]))
    b = _signed(ctx.read_vsrc(inst.operands[2]))
    picked = np.maximum(a, b) if inst.opcode == "v_max_i32" else np.minimum(a, b)
    ctx.write_vreg(inst.operands[0], picked.view(np.uint32))
    return EFFECT_NONE


def _h_v_mad_i32(ctx, inst):
    a = ctx.read_vsrc(inst.operands[1])
    b = ctx.read_vsrc(inst.operands[2])
    c = ctx.read_vsrc(inst.operands[3])
    ctx.write_vreg(inst.operands[0], a * b + c)
    return EFFECT_NONE


def _h_v_shift(ctx, inst):
    amount = ctx.read_vsrc(inst.operands[1]) & np.uint32(31)
    value = ctx.read_vsrc(inst.operands[2])
    if inst.opcode == "v_lshlrev_b32":
        result = value << amount
    elif inst.opcode == "v_lshrrev_b32":
        result = value >> amount
    else:  # v_ashrrev_i32
        result = (_signed(value) >> amount.astype(np.int32)).view(np.uint32)
    ctx.write_vreg(inst.operands[0], result)
    return EFFECT_NONE


_VALU_F32 = {
    "v_add_f32": lambda a, b: a + b,
    "v_sub_f32": lambda a, b: a - b,
    "v_mul_f32": lambda a, b: a * b,
    "v_min_f32": np.fmin,
    "v_max_f32": np.fmax,
}


def _h_valu_f32(ctx, inst):
    a = _f32(ctx.read_vsrc(inst.operands[1]))
    b = _f32(ctx.read_vsrc(inst.operands[2]))
    ctx.write_vreg(inst.operands[0], _bits(_VALU_F32[inst.opcode](a, b)))
    return EFFECT_NONE


def _h_v_mac_f32(ctx, inst):
    dst = inst.operands[0]
    a = _f32(ctx.read_vsrc(inst.operands[1]))
    b = _f32(ctx.read_vsrc(inst.operands[2]))
    acc = _f32(ctx.read_vsrc(dst))
    ctx.write_vreg(dst, _bits(a * b + acc))
    return EFFECT_NONE


def _h_v_fma_f32(ctx, inst):
    a = _f32(ctx.read_vsrc(inst.operands[1]))
    b = _f32(ctx.read_vsrc(inst.operands[2]))
    c = _f32(ctx.read_vsrc(inst.operands[3]))
    ctx.write_vreg(inst.operands[0], _bits(a * b + c))
    return EFFECT_NONE


_VUNARY_F32 = {
    "v_rcp_f32": lambda a: np.float32(1.0) / a,
    "v_sqrt_f32": np.sqrt,
    "v_rsq_f32": lambda a: np.float32(1.0) / np.sqrt(a),
    "v_exp_f32": np.exp2,
    "v_log_f32": np.log2,
    "v_sin_f32": np.sin,
    "v_cos_f32": np.cos,
}


def _h_vunary_f32(ctx, inst):
    a = _f32(ctx.read_vsrc(inst.operands[1]))
    with np.errstate(all="ignore"):
        result = _VUNARY_F32[inst.opcode](a).astype(np.float32)
    ctx.write_vreg(inst.operands[0], _bits(result))
    return EFFECT_NONE


def _h_v_cvt(ctx, inst):
    a = ctx.read_vsrc(inst.operands[1])
    if inst.opcode == "v_cvt_f32_i32":
        result = _bits(_signed(a).astype(np.float32))
    elif inst.opcode == "v_cvt_f32_u32":
        result = _bits(a.astype(np.float32))
    else:  # v_cvt_i32_f32 truncates
        with np.errstate(all="ignore"):
            staged = np.nan_to_num(
                np.trunc(_f32(a)), nan=0.0,
                posinf=2 ** 31 - 1, neginf=-(2 ** 31),
            )
            result = np.clip(staged, -(2 ** 31), 2 ** 31 - 1) \
                .astype(np.int32).view(np.uint32)
    ctx.write_vreg(inst.operands[0], result)
    return EFFECT_NONE


def _h_v_cndmask_b32(ctx, inst):
    dst, src0, src1, mask_op = inst.operands
    mask = ctx.read_mask64(mask_op)
    select = ctx.mask_to_bools(mask)
    a = ctx.read_vsrc(src0)
    b = ctx.read_vsrc(src1)
    ctx.write_vreg(dst, np.where(select, b, a))
    return EFFECT_NONE


_VCMP = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


def _h_v_cmp(ctx, inst):
    _, _, op, ty = inst.opcode.split("_")
    a = ctx.read_vsrc(inst.operands[1])
    b = ctx.read_vsrc(inst.operands[2])
    if ty == "f32":
        a, b = _f32(a), _f32(b)
    elif ty == "i32":
        a, b = _signed(a), _signed(b)
    result = _VCMP[op](a, b)
    mask = ctx.bools_to_mask(result & ctx.eff_bool)
    ctx.write_mask64(inst.operands[0], mask)
    return EFFECT_NONE


# ---------------------------------------------------------------------------
# Memory handlers
# ---------------------------------------------------------------------------


def _mem_addrs(ctx, addr_op, offset_op) -> np.ndarray:
    base = ctx.read_vsrc(addr_op).astype(np.int64)
    if offset_op is not None:
        if not isinstance(offset_op, Imm):
            raise IllegalInstruction("memory offset must be an immediate")
        base = base + offset_op.value
    return base


def _h_ds_read(ctx, inst):
    dst = inst.operands[0]
    offset = inst.operands[2] if len(inst.operands) > 2 else None
    ctx.write_vreg(dst, ctx.shared_load(_mem_addrs(ctx, inst.operands[1], offset)))
    return EFFECT_NONE


def _h_ds_write(ctx, inst):
    offset = inst.operands[2] if len(inst.operands) > 2 else None
    # Offset, when present, is the third operand: ds_write_b32 vaddr, vsrc, off
    addrs = _mem_addrs(ctx, inst.operands[0], offset)
    ctx.shared_store(addrs, ctx.read_vsrc(inst.operands[1]))
    return EFFECT_NONE


def _h_ds_add(ctx, inst):
    offset = inst.operands[2] if len(inst.operands) > 2 else None
    addrs = _mem_addrs(ctx, inst.operands[0], offset)
    ctx.shared_atomic_add(addrs, ctx.read_vsrc(inst.operands[1]))
    return EFFECT_NONE


def _h_global_load(ctx, inst):
    dst = inst.operands[0]
    offset = inst.operands[2] if len(inst.operands) > 2 else None
    values, extra = ctx.global_load(_mem_addrs(ctx, inst.operands[1], offset))
    ctx.write_vreg(dst, values)
    return Effect("none", extra_cycles=extra)


def _h_global_store(ctx, inst):
    offset = inst.operands[2] if len(inst.operands) > 2 else None
    addrs = _mem_addrs(ctx, inst.operands[0], offset)
    extra = ctx.global_store(addrs, ctx.read_vsrc(inst.operands[1]))
    return Effect("none", extra_cycles=extra)


def _h_global_atomic_add(ctx, inst):
    dst, addr_op, src_op = inst.operands[0], inst.operands[1], inst.operands[2]
    addrs = _mem_addrs(ctx, addr_op, None)
    old, extra = ctx.global_atomic_add(addrs, ctx.read_vsrc(src_op))
    if isinstance(dst, VReg):
        ctx.write_vreg(dst, old)
    return Effect("none", extra_cycles=extra)


# ---------------------------------------------------------------------------
# Dispatch table
# ---------------------------------------------------------------------------

HANDLERS: dict = {"s_mov_b32": _h_s_mov_b32, "s_mov_b64": _h_s_mov_b64}
for _name in _SALU32:
    HANDLERS[_name] = _h_salu32
for _name in _SALU64:
    HANDLERS[_name] = _h_salu64
HANDLERS.update({
    "s_not_b64": _h_s_not_b64,
    "s_and_saveexec_b64": _h_s_and_saveexec_b64,
    "s_branch": _h_s_branch,
    "s_barrier": _h_s_barrier,
    "s_endpgm": _h_s_endpgm,
    "s_nop": _h_s_nop,
    "s_waitcnt": _h_s_nop,
    "s_load_dword": _h_s_load_dword,
    "v_mov_b32": _h_v_mov_b32,
    "v_mad_i32": _h_v_mad_i32,
    "v_min_i32": _h_v_minmax_i32,
    "v_max_i32": _h_v_minmax_i32,
    "v_mac_f32": _h_v_mac_f32,
    "v_fma_f32": _h_v_fma_f32,
    "v_cndmask_b32": _h_v_cndmask_b32,
    "v_lshlrev_b32": _h_v_shift,
    "v_lshrrev_b32": _h_v_shift,
    "v_ashrrev_i32": _h_v_shift,
    "v_cvt_f32_i32": _h_v_cvt,
    "v_cvt_f32_u32": _h_v_cvt,
    "v_cvt_i32_f32": _h_v_cvt,
    "ds_read_b32": _h_ds_read,
    "ds_write_b32": _h_ds_write,
    "ds_add_u32": _h_ds_add,
    "global_load_dword": _h_global_load,
    "global_store_dword": _h_global_store,
    "global_atomic_add": _h_global_atomic_add,
})
for _name in _VALU_INT:
    HANDLERS[_name] = _h_valu_int
for _name in _VALU_F32:
    HANDLERS[_name] = _h_valu_f32
for _name in _VUNARY_F32:
    HANDLERS[_name] = _h_vunary_f32
for _op in ("lt", "le", "gt", "ge", "eq", "ne"):
    for _ty in ("i32", "u32"):
        HANDLERS[f"s_cmp_{_op}_{_ty}"] = _h_s_cmp
    for _ty in ("i32", "u32", "f32"):
        HANDLERS[f"v_cmp_{_op}_{_ty}"] = _h_v_cmp
for _kind in ("scc0", "scc1", "vccz", "vccnz", "execz", "execnz"):
    HANDLERS[f"s_cbranch_{_kind}"] = _h_s_cbranch


def execute(ctx, inst) -> Effect:
    """Execute one SI instruction against a wavefront context."""
    handler = HANDLERS.get(inst.opcode)
    if handler is None:
        raise IllegalInstruction(f"no handler for {inst.opcode}")
    return handler(ctx, inst)
