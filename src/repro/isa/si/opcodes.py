"""Southern-Islands-like opcode table.

Mnemonics follow AMD's GCN1 ISA manual (the level SIFI injects at),
restricted to the subset our ten benchmarks need. Scalar (``s_``)
instructions execute on the scalar unit once per wavefront; vector
(``v_``) instructions execute per lane under EXEC masking; ``ds_``
instructions access the LDS; ``global_`` instructions access device
memory.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one SI opcode."""

    name: str
    latency_class: str      # alu | mul | sfu | shared | global | branch | barrier
    is_scalar: bool = False
    is_branch: bool = False
    is_barrier: bool = False
    is_exit: bool = False
    memory_space: str = ""  # "global" | "shared"


def _scalar(name, latency="alu", **kw):
    return OpInfo(name, latency, is_scalar=True, **kw)


def _vector(name, latency="alu", **kw):
    return OpInfo(name, latency, **kw)


_OPS = [
    # --- scalar moves / ALU (32-bit) ---
    _scalar("s_mov_b32"),
    _scalar("s_add_i32"),
    _scalar("s_sub_i32"),
    _scalar("s_mul_i32", "mul"),
    _scalar("s_and_b32"),
    _scalar("s_or_b32"),
    _scalar("s_xor_b32"),
    _scalar("s_lshl_b32"),
    _scalar("s_lshr_b32"),
    _scalar("s_ashr_i32"),
    _scalar("s_min_i32"),
    _scalar("s_max_i32"),
    # --- scalar 64-bit mask ops ---
    _scalar("s_mov_b64"),
    _scalar("s_and_b64"),
    _scalar("s_or_b64"),
    _scalar("s_xor_b64"),
    _scalar("s_andn2_b64"),
    _scalar("s_not_b64"),
    _scalar("s_and_saveexec_b64"),
    # --- scalar compares (write SCC) ---
    *[
        _scalar(f"s_cmp_{op}_{ty}")
        for op in ("lt", "le", "gt", "ge", "eq", "ne")
        for ty in ("i32", "u32")
    ],
    # --- scalar control flow ---
    _scalar("s_branch", "branch", is_branch=True),
    _scalar("s_cbranch_scc0", "branch", is_branch=True),
    _scalar("s_cbranch_scc1", "branch", is_branch=True),
    _scalar("s_cbranch_vccz", "branch", is_branch=True),
    _scalar("s_cbranch_vccnz", "branch", is_branch=True),
    _scalar("s_cbranch_execz", "branch", is_branch=True),
    _scalar("s_cbranch_execnz", "branch", is_branch=True),
    _scalar("s_barrier", "barrier", is_barrier=True),
    _scalar("s_endpgm", "branch", is_exit=True),
    _scalar("s_nop"),
    _scalar("s_waitcnt"),
    _scalar("s_load_dword"),        # kernel-argument load: s_load_dword sN, param[k]
    # --- vector moves / integer ALU ---
    _vector("v_mov_b32"),
    _vector("v_add_i32"),
    _vector("v_sub_i32"),
    _vector("v_mul_lo_i32", "mul"),
    _vector("v_mad_i32", "mul"),
    _vector("v_min_i32"),
    _vector("v_max_i32"),
    _vector("v_and_b32"),
    _vector("v_or_b32"),
    _vector("v_xor_b32"),
    _vector("v_lshlrev_b32"),
    _vector("v_lshrrev_b32"),
    _vector("v_ashrrev_i32"),
    # --- vector float ALU ---
    _vector("v_add_f32"),
    _vector("v_sub_f32"),
    _vector("v_mul_f32"),
    _vector("v_mac_f32", "mul"),
    _vector("v_fma_f32", "mul"),
    _vector("v_min_f32"),
    _vector("v_max_f32"),
    _vector("v_rcp_f32", "sfu"),
    _vector("v_sqrt_f32", "sfu"),
    _vector("v_rsq_f32", "sfu"),
    _vector("v_exp_f32", "sfu"),
    _vector("v_log_f32", "sfu"),
    _vector("v_sin_f32", "sfu"),
    _vector("v_cos_f32", "sfu"),
    _vector("v_cvt_f32_i32", "sfu"),
    _vector("v_cvt_f32_u32", "sfu"),
    _vector("v_cvt_i32_f32", "sfu"),
    _vector("v_cndmask_b32"),
    # --- vector compares ---
    *[
        _vector(f"v_cmp_{op}_{ty}")
        for op in ("lt", "le", "gt", "ge", "eq", "ne")
        for ty in ("i32", "u32", "f32")
    ],
    # --- LDS ---
    _vector("ds_read_b32", "shared", memory_space="shared"),
    _vector("ds_write_b32", "shared", memory_space="shared"),
    _vector("ds_add_u32", "shared", memory_space="shared"),
    # --- global memory ---
    _vector("global_load_dword", "global", memory_space="global"),
    _vector("global_store_dword", "global", memory_space="global"),
    _vector("global_atomic_add", "global", memory_space="global"),
]

SI_OPCODES: dict[str, OpInfo] = {op.name: op for op in _OPS}
