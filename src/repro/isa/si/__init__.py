"""Southern-Islands-like ISA: the native-assembly level SIFI injects at."""

from repro.isa.si.parser import assemble_si

__all__ = ["assemble_si"]
