"""Assembler for the Southern-Islands-like ISA.

Kernel text format::

    .kernel reduction
    .vregs 8                 # VGPRs per work-item
    .sregs 16                # SGPRs per wavefront
    .lds 1024                # LDS bytes per work-group

        s_load_dword s6, param[0]      # N
        v_mov_b32 v1, v0               # local id
        v_cmp_lt_i32 vcc, v1, s6
        s_and_saveexec_b64 s[8:9], vcc
        s_cbranch_execz done
        ds_read_b32 v2, v3, 16         # optional trailing byte offset
        ...
    done:
        s_endpgm

Operands: ``s<n>`` scalar regs, ``s[a:b]`` 64-bit pairs, ``v<n>``
vector regs, ``vcc`` / ``exec`` / ``scc``, ``param[k]`` kernel
arguments, integer and float literals, label names. The launch ABI
preloads s0 = workgroup id x, s1 = workgroup id y, s2 = workgroup dim
x, s3 = workgroup dim y, s4 = grid dim x (in workgroups), s5 = grid
dim y; v0 = local id x, v1 = local id y.
"""

from __future__ import annotations

import re

from repro.bits import float_to_bits, u32
from repro.errors import AssemblyError
from repro.isa.base import (
    EXEC,
    Imm,
    Instruction,
    LabelRef,
    Param,
    Program,
    SCC,
    SReg,
    SRegPair,
    VCC,
    VReg,
    parse_int,
    split_operands,
    strip_comment,
)
from repro.isa.si.opcodes import SI_OPCODES

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_SREG_RE = re.compile(r"^s(\d+)$")
_VREG_RE = re.compile(r"^v(\d+)$")
_SPAIR_RE = re.compile(r"^s\[(\d+):(\d+)\]$")
_PARAM_RE = re.compile(r"^param\[(0x[0-9a-fA-F]+|\d+)\]$")
_FLOAT_RE = re.compile(
    r"^[+-]?(\d+\.\d*|\.\d+)([eE][+-]?\d+)?f?$|^[+-]?\d+[eE][+-]?\d+f?$"
)

#: Number of ABI-preloaded SGPRs (s0..s5, see module docstring).
ABI_SGPRS = 6


def _parse_operand(token: str, line: int):
    lowered = token.lower()
    if lowered == "vcc":
        return VCC
    if lowered == "exec":
        return EXEC
    if lowered == "scc":
        return SCC
    match = _SREG_RE.match(token)
    if match:
        return SReg(int(match.group(1)))
    match = _VREG_RE.match(token)
    if match:
        return VReg(int(match.group(1)))
    match = _SPAIR_RE.match(token)
    if match:
        first, second = int(match.group(1)), int(match.group(2))
        if second != first + 1 or first % 2:
            raise AssemblyError(
                f"scalar pair must be aligned consecutive regs, got {token}",
                line=line,
            )
        return SRegPair(first)
    match = _PARAM_RE.match(token)
    if match:
        return Param(int(match.group(1), 0))
    if _FLOAT_RE.match(token):
        return Imm(float_to_bits(float(token.rstrip("fF"))))
    try:
        return Imm(u32(parse_int(token, line)))
    except AssemblyError:
        pass
    if re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", token):
        return LabelRef(token)
    raise AssemblyError(f"cannot parse operand {token!r}", line=line)


def assemble_si(text: str) -> Program:
    """Assemble SI-like kernel text into a :class:`Program`."""
    name = "kernel"
    vregs = 0
    sregs = 16
    lds = 0
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = strip_comment(raw)
        if not line:
            continue

        if line.startswith("."):
            fields = line.split()
            directive = fields[0]
            if directive == ".kernel" and len(fields) == 2:
                name = fields[1]
            elif directive == ".vregs" and len(fields) == 2:
                vregs = parse_int(fields[1], lineno)
            elif directive == ".sregs" and len(fields) == 2:
                sregs = parse_int(fields[1], lineno)
            elif directive == ".lds" and len(fields) == 2:
                lds = parse_int(fields[1], lineno)
            else:
                raise AssemblyError(f"bad directive {line!r}", line=lineno)
            continue

        match = _LABEL_RE.match(line)
        if match:
            label = match.group(1)
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", line=lineno)
            labels[label] = len(instructions)
            continue

        parts = line.split(None, 1)
        opcode = parts[0].lower()
        if opcode not in SI_OPCODES:
            raise AssemblyError(f"unknown opcode {opcode!r}", line=lineno)
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = tuple(
            _parse_operand(token, lineno)
            for token in split_operands(operand_text)
        )
        instructions.append(
            Instruction(
                opcode=opcode,
                operands=operands,
                pc=len(instructions),
                line=lineno,
            )
        )

    program = Program(
        name=name,
        isa="si",
        instructions=instructions,
        labels=labels,
        registers_per_thread=vregs,
        scalar_registers=max(sregs, ABI_SGPRS),
        local_memory_bytes=lds,
        source=text,
    )
    program.validate()
    _check_register_bounds(program)
    return program


def _check_register_bounds(program: Program) -> None:
    vlimit = program.registers_per_thread
    slimit = program.scalar_registers
    for inst in program.instructions:
        for op in inst.operands:
            if isinstance(op, VReg) and op.index >= vlimit:
                raise AssemblyError(
                    f"v{op.index} used but .vregs is {vlimit}", line=inst.line
                )
            if isinstance(op, SReg) and op.index >= slimit:
                raise AssemblyError(
                    f"s{op.index} used but .sregs is {slimit}", line=inst.line
                )
            if isinstance(op, SRegPair) and op.index + 1 >= slimit:
                raise AssemblyError(
                    f"s[{op.index}:{op.index + 1}] exceeds .sregs {slimit}",
                    line=inst.line,
                )
