"""Multi-bit upsets: adjacent bit-cluster flips (Cui et al. direction).

Field studies of modern HBM-era GPUs (H100/A100 resilience
characterization) show multi-bit events are a substantial fraction of
observed errors. This model flips a cluster of 2-4 physically adjacent
bits in one word at a uniform (word, cycle) coordinate; clusters never
cross the 32-bit word boundary (adjacent words belong to different
physical columns at this abstraction level).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.arch.config import GpuConfig
from repro.errors import ConfigError
from repro.faultmodels.base import FaultModel
from repro.sim.faults import FaultPlan, fault_from_flat, words_per_core

#: Inclusive cluster-size bounds.
MIN_WIDTH = 2
MAX_WIDTH = 4


class MultiBitUpset(FaultModel):
    """Transient flip of a 2-4 adjacent-bit cluster within one word.

    Sampling draws (word, cycle) uniformly, a cluster width uniformly
    in {2, 3, 4}, and the anchor bit uniformly over the positions that
    keep the whole cluster inside the word (``bit + width <= 32``).
    Application is a one-shot XOR of the cluster mask, so liveness
    semantics match the transient model (a write-back before any read
    provably masks the fault).
    """

    name = "mbu"
    description = ("transient multi-bit upset: adjacent 2-4 bit cluster "
                   "flip within one word")
    persistent = False

    def sample(self, config: GpuConfig, structure: str, total_cycles: int,
               count: int, rng: np.random.Generator) -> list[FaultPlan]:
        if total_cycles <= 0:
            raise ConfigError("total_cycles must be positive")
        total_words = words_per_core(config, structure) * config.num_cores
        word_indices = rng.integers(0, total_words, size=count)
        cycles = rng.integers(0, total_cycles, size=count)
        widths = rng.integers(MIN_WIDTH, MAX_WIDTH + 1, size=count)
        # Anchor uniform over the (33 - width) in-word positions.
        bits = rng.integers(0, 33 - widths)
        return [
            dataclasses.replace(
                fault_from_flat(config, structure,
                                int(flat) * 32 + int(bit), int(cycle)),
                width=int(width),
            )
            for flat, cycle, width, bit in zip(word_indices, cycles,
                                               widths, bits)
        ]

    def apply(self, storage, plan: FaultPlan) -> None:
        storage.flip_bits(plan.word, plan.bit_mask)
