"""Fault-model registry: name -> singleton, the CLI/engine lookup path.

``DEFAULT_FAULT_MODEL`` (``transient``) is special: it reproduces the
hard-coded single-bit-flip era bit for bit, and fingerprint builders
omit it from job parameters so pre-registry stores keep resolving.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.faultmodels.base import FaultModel
from repro.faultmodels.mbu import MultiBitUpset
from repro.faultmodels.stuckat import StuckAt
from repro.faultmodels.transient import TransientBitFlip

#: Name -> model singleton, in presentation order.
FAULT_MODELS: dict[str, FaultModel] = {
    model.name: model
    for model in (TransientBitFlip(), StuckAt(), MultiBitUpset())
}

DEFAULT_FAULT_MODEL = "transient"


def get_fault_model(model: str | FaultModel | None) -> FaultModel:
    """Resolve a model by name (or pass an instance through).

    ``None`` resolves to the default (transient) model.
    """
    if model is None:
        model = DEFAULT_FAULT_MODEL
    if isinstance(model, FaultModel):
        return model
    try:
        return FAULT_MODELS[model]
    except KeyError:
        raise ConfigError(
            f"unknown fault model {model!r}; "
            f"known: {', '.join(FAULT_MODELS)}"
        ) from None


def fault_model_name(model: str | FaultModel | None) -> str:
    """Canonical registry name of a model reference (validates it)."""
    return get_fault_model(model).name


def list_fault_models() -> list[str]:
    """Registered model names in presentation order."""
    return list(FAULT_MODELS)
