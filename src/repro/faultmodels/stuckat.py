"""Permanent stuck-at-0/1 faults (Guerrero-Balaguera et al. direction).

A stuck-at fault models a hardware defect, not a particle strike: from
the fault cycle onward the target bit always reads as the stuck value,
no matter how often the program overwrites the word. The storage layer
enforces this with a persistent overlay re-applied on every write-back
(:meth:`RegisterFile.force_bit` / :meth:`LocalMemory.force_bit`), and
the dead-site pruning must treat the fault as potentially-live until
the end of the run unless the word is never read after the fault cycle
(``persistent = True``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.arch.config import GpuConfig
from repro.errors import ConfigError
from repro.faultmodels.base import FaultModel
from repro.sim.faults import FaultPlan, fault_from_flat, words_per_core


class StuckAt(FaultModel):
    """Permanent stuck-at-0/1 defect at a uniform (bit, cycle) site.

    The stuck polarity is drawn uniformly per fault (half stuck-at-0,
    half stuck-at-1), mirroring defect characterization practice. The
    (bit, cycle) coordinate is drawn exactly like the transient model,
    with one extra polarity draw per fault — deterministic per seed.
    """

    name = "stuck_at"
    description = ("permanent stuck-at-0/1 from the fault cycle onward, "
                   "re-applied on every write-back")
    persistent = True

    def sample(self, config: GpuConfig, structure: str, total_cycles: int,
               count: int, rng: np.random.Generator) -> list[FaultPlan]:
        if total_cycles <= 0:
            raise ConfigError("total_cycles must be positive")
        total_bits = words_per_core(config, structure) * 32 * config.num_cores
        bit_indices = rng.integers(0, total_bits, size=count)
        cycles = rng.integers(0, total_cycles, size=count)
        values = rng.integers(0, 2, size=count)
        return [
            dataclasses.replace(
                fault_from_flat(config, structure, int(flat), int(cycle)),
                stuck_value=int(value),
            )
            for flat, cycle, value in zip(bit_indices, cycles, values)
        ]

    def apply(self, storage, plan: FaultPlan) -> None:
        storage.force_bit(plan.word, plan.bit, plan.stuck_value)
