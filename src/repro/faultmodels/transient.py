"""The paper's fault model: one transient single-bit flip per run."""

from __future__ import annotations

import numpy as np

from repro.arch.config import GpuConfig
from repro.faultmodels.base import FaultModel
from repro.sim.faults import FaultPlan, sample_faults


class TransientBitFlip(FaultModel):
    """Single soft-error bit flip at a uniform (bit, cycle) coordinate.

    Bit-identical to the pre-registry hard-coded behaviour: sampling
    delegates to :func:`repro.sim.faults.sample_faults` (same RNG
    consumption order) and application is a one-shot XOR of the target
    bit, so campaigns, fingerprints and stored results from the
    single-model era are reproduced exactly.
    """

    name = "transient"
    description = ("single-bit soft-error flip, uniform over (bit, cycle) "
                   "[the paper's model]")
    persistent = False

    def sample(self, config: GpuConfig, structure: str, total_cycles: int,
               count: int, rng: np.random.Generator) -> list[FaultPlan]:
        return sample_faults(config, structure, total_cycles, count, rng)

    def apply(self, storage, plan: FaultPlan) -> None:
        storage.flip_bit(plan.word, plan.bit)
