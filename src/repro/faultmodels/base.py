"""The :class:`FaultModel` abstraction.

A fault model owns the three things that distinguish one fault type
from another:

* **sampling** — how fault sites are drawn over a storage structure x
  the execution duration (``sample``);
* **application** — what happens to the storage when a plan's cycle is
  reached (``apply``): a one-shot XOR for upsets, a persistent
  stuck-at overlay for permanent defects;
* **liveness semantics** — whether a write-back kills the fault
  (``persistent``): a transient flip is provably dead once the word is
  overwritten before being read, while a stuck-at defect re-asserts
  itself on every write-back and is only dead if the word is *never
  read* from the fault cycle onward.

Concrete models live next to this module and register themselves in
:mod:`repro.faultmodels.registry`; everything downstream — the serial
FI path, the job-graph engine, the CLI — looks them up by name, and
the name is part of every plan/shard/cell fingerprint (except for the
default ``transient`` model, whose fingerprints are kept identical to
the single-bit-flip era so existing stores resume cleanly).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.arch.config import GpuConfig
from repro.sim.faults import FaultPlan


class FaultModel(abc.ABC):
    """Sampling, application and liveness semantics of one fault type."""

    #: Registry key; appears in fingerprints, CLI flags and reports.
    name: str = ""
    #: One-line human description (``--list-fault-models``).
    description: str = ""
    #: Liveness semantics: True if write-backs never kill an activated
    #: fault (the dead-site pruning must then treat writes as neutral).
    persistent: bool = False

    @abc.abstractmethod
    def sample(self, config: GpuConfig, structure: str, total_cycles: int,
               count: int, rng: np.random.Generator) -> list[FaultPlan]:
        """Draw ``count`` fault plans uniformly over structure x time."""

    @abc.abstractmethod
    def apply(self, storage, plan: FaultPlan) -> None:
        """Disturb ``storage`` (a RegisterFile or LocalMemory) per plan.

        Called once, by the target core, the first time its clock
        reaches ``plan.cycle``. Persistent models install overlays that
        the storage layer re-applies on every later write-back.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultModel {self.name!r}>"
