"""Pluggable fault models: transient bit flips, stuck-at defects, MBUs.

The paper's comparison uses a single fault model — one transient bit
flip per run — but the microarchitecture-level methodology generalizes
directly to permanent and multi-bit faults. This package makes the
fault model a first-class, pluggable axis of every campaign:

* :class:`TransientBitFlip` (``transient``) — the paper's model and
  the default; bit-identical to the pre-registry behaviour.
* :class:`StuckAt` (``stuck_at``) — permanent stuck-at-0/1 defects,
  re-applied by the storage layer on every write-back.
* :class:`MultiBitUpset` (``mbu``) — adjacent 2-4 bit cluster flips.

Campaigns select a model by name (``--fault-model`` on the CLI, the
``fault_model=`` keyword in the library), and the model is part of the
engine's job fingerprints so different models never collide in a
result store.
"""

from repro.faultmodels.base import FaultModel
from repro.faultmodels.mbu import MAX_WIDTH, MIN_WIDTH, MultiBitUpset
from repro.faultmodels.registry import (
    DEFAULT_FAULT_MODEL,
    FAULT_MODELS,
    fault_model_name,
    get_fault_model,
    list_fault_models,
)
from repro.faultmodels.stuckat import StuckAt
from repro.faultmodels.transient import TransientBitFlip

__all__ = [
    "DEFAULT_FAULT_MODEL",
    "FAULT_MODELS",
    "FaultModel",
    "MAX_WIDTH",
    "MIN_WIDTH",
    "MultiBitUpset",
    "StuckAt",
    "TransientBitFlip",
    "fault_model_name",
    "get_fault_model",
    "list_fault_models",
]
