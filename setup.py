"""Shim for environments without the ``wheel`` package (offline installs).

``pip install -e . --no-build-isolation`` needs bdist_wheel unless the
legacy setup.py code path is available; this file provides it. All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
