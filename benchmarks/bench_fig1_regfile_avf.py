"""FIG1 — regenerate the paper's Fig. 1 rows (register-file AVF).

One benchmark per chip: runs the FI + ACE campaign over the benchmark
subset and prints the (AVF-FI, AVF-ACE, occupancy) triples the figure
plots. Timing measures the full campaign (golden runs + pruning +
re-simulations), i.e. the cost a GUFI/SIFI user would pay.
"""

from __future__ import annotations

from benchmarks.conftest import bench_samples, bench_scale, bench_workloads
from repro.arch.structures import REGISTER_FILE
from repro.engine import clear_memory_cache, run_campaign
from repro.spec import CampaignSpec

WORKLOADS = ["matrixMul", "reduction", "kmeans"]


def test_fig1_register_file_avf(benchmark, scaled_gpu):
    samples = bench_samples()
    scale = bench_scale()
    workloads = bench_workloads(WORKLOADS)
    clear_memory_cache()

    spec = CampaignSpec(gpus=(scaled_gpu,), workloads=tuple(workloads),
                        scale=scale, samples=samples, seed=1,
                        structures=(REGISTER_FILE,))

    def campaign():
        return run_campaign(spec).cells

    cells = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print(f"\nFig.1 rows — {scaled_gpu.name} (n={samples}/structure, {scale}):")
    for cell in cells:
        fi = cell.avf_fi(REGISTER_FILE)
        ace = cell.avf_ace(REGISTER_FILE)
        occ = cell.occupancy[REGISTER_FILE]
        print(f"  {cell.workload:<12} AVF-FI={fi:6.3f}  AVF-ACE={ace:6.3f}  occ={occ:6.3f}")
        benchmark.extra_info[cell.workload] = {
            "avf_fi": round(fi, 4), "avf_ace": round(ace, 4), "occ": round(occ, 4),
        }
