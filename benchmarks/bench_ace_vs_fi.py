"""ABL-ACE — the paper's ACE-vs-FI accuracy / analysis-time trade-off.

Section III: "for the register file the ACE analysis significantly
overestimates vulnerability compared to FI, [while] the same technique
is very accurate ... for the local memory", and ACE needs one traced
golden run where FI needs a whole campaign. Two benchmarks measure the
two analysis costs separately; the printed table shows the accuracy
ratios.
"""

from __future__ import annotations

from benchmarks.conftest import bench_samples, bench_scale
from repro.arch.scaling import get_scaled_gpu
from repro.kernels.registry import get_workload
from repro.reliability.fi import run_fi_campaign, run_golden
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE

GPU = "gtx480"
WORKLOAD = "matrixMul"


def test_ace_analysis_time(benchmark):
    """Cost of ACE: exactly one traced golden run."""
    config = get_scaled_gpu(GPU)
    workload = get_workload(WORKLOAD, bench_scale())
    golden = benchmark.pedantic(
        lambda: run_golden(config, workload), rounds=1, iterations=1
    )
    print(f"\nACE (one traced run): regfile AVF={golden.ace.avf(REGISTER_FILE):.3f} "
          f"localmem AVF={golden.ace.avf(LOCAL_MEMORY):.3f}")
    benchmark.extra_info["avf_ace_regfile"] = round(golden.ace.avf(REGISTER_FILE), 4)


def test_fi_campaign_time_and_overestimation(benchmark):
    """Cost of FI + the ACE/FI overestimation ratios."""
    config = get_scaled_gpu(GPU)
    workload = get_workload(WORKLOAD, bench_scale())
    samples = bench_samples()
    golden = run_golden(config, workload)

    output = benchmark.pedantic(
        lambda: run_fi_campaign(config, workload, golden, samples=samples, seed=1),
        rounds=1, iterations=1,
    )
    print(f"\nACE vs FI on {config.name} / {WORKLOAD} (n={samples}):")
    for structure in (REGISTER_FILE, LOCAL_MEMORY):
        fi = output.estimates[structure].avf
        ace = golden.ace.avf(structure)
        ratio = ace / fi if fi else float("inf")
        print(f"  {structure:<14} FI={fi:6.3f} ACE={ace:6.3f} ACE/FI={ratio:5.2f}")
        benchmark.extra_info[structure] = {
            "fi": round(fi, 4), "ace": round(ace, 4),
        }
