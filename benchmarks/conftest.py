"""Benchmark-harness configuration.

Every bench prints the paper-style rows it regenerates (run with
``pytest benchmarks/ --benchmark-only -s`` to see them) and records the
measurements in ``benchmark.extra_info`` for machine consumption.

Knobs (environment):

* ``REPRO_FI_SAMPLES``  — injections per structure (default 40 here;
  the paper used 2,000 — see EXPERIMENTS.md for a full-scale run).
* ``REPRO_SCALE``       — workload scale (default "tiny" here).
* ``REPRO_BENCH_FULL=1``— benchmark the full 10-benchmark suite
  instead of the representative subset.
"""

from __future__ import annotations

import os

import pytest

from repro.arch.scaling import list_scaled_gpus


def bench_samples(default: int = 40) -> int:
    return int(os.environ.get("REPRO_FI_SAMPLES", default))


def bench_scale(default: str = "tiny") -> str:
    return os.environ.get("REPRO_SCALE", default)


def bench_workloads(subset: list) -> list:
    if os.environ.get("REPRO_BENCH_FULL"):
        from repro.kernels.registry import KERNEL_NAMES
        return list(KERNEL_NAMES)
    return subset


@pytest.fixture(params=list_scaled_gpus(), ids=lambda c: c.microarchitecture)
def scaled_gpu(request):
    """One scaled chip per benchmark invocation (all four covered)."""
    return request.param
