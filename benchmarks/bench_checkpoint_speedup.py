"""CKPT-SPEEDUP — injections/sec with and without checkpoint restore.

Runs the same serial FI campaigns twice — re-simulating every live
fault from cycle zero, then suffix-only from the golden run's machine
snapshots (with the early-exit convergence check) — verifies the
per-structure outcome counts are identical, and records the
injections-per-second speedup. The smoke matrix uses two compact chips
(one per ISA) whose occupancy keeps a healthy live-fault fraction at
tiny scale.

The CI gate (``scripts/check_bench.py``) requires the checkpointed
path to deliver at least the ``min_speedup`` recorded in
``extra_info`` (1.5x on the resimulation phase).

Both runs are pinned to the pure-python reference interpreter with
the suffix memo off, isolating the *checkpoint* optimization: the
vector backend and the memo each shrink or shift the resim time this
bench divides, and their combined effect is gated separately by
``bench_sim_throughput.py::test_fastpath_speedup``.

Knobs: ``REPRO_FI_SAMPLES`` / ``REPRO_SCALE`` (see conftest).
"""

from __future__ import annotations

import dataclasses

from benchmarks.conftest import bench_samples, bench_scale
from repro.arch.config import GpuConfig, LatencyModel
from repro.kernels.registry import get_workload
from repro.reliability.fi import run_fi_campaign, run_golden

#: Speedup floor the CI gate enforces (resim phase, whole smoke matrix).
MIN_SPEEDUP = 1.5

_SMOKE_NVIDIA = GpuConfig(
    name="Smoke NVIDIA", vendor="nvidia", isa="sass",
    microarchitecture="smoke", num_cores=2, warp_size=32,
    registers_per_core=8192, local_memory_bytes=8 * 1024,
    max_threads_per_core=768, max_blocks_per_core=4,
    max_warps_per_core=24, shader_clock_hz=1e9,
    register_allocation_unit=32, local_allocation_unit=128,
    num_schedulers=1, latency=LatencyModel(),
)

_SMOKE_AMD = GpuConfig(
    name="Smoke AMD", vendor="amd", isa="si",
    microarchitecture="smoke", num_cores=2, warp_size=64,
    registers_per_core=4096, local_memory_bytes=8 * 1024,
    max_threads_per_core=512, max_blocks_per_core=4,
    max_warps_per_core=8, shader_clock_hz=1e9,
    register_allocation_unit=64, local_allocation_unit=128,
    num_schedulers=1, latency=LatencyModel(),
)

#: The smoke matrix: live-fault-rich cells covering both ISAs.
CELLS = [
    (_SMOKE_NVIDIA, "kmeans"),
    (_SMOKE_NVIDIA, "matrixMul"),
    (_SMOKE_AMD, "scan"),
    (_SMOKE_AMD, "reduction"),
]


def _counts(campaign) -> list:
    return [
        (s, e.masked, e.sdc, e.due, e.pruned, e.resimulated)
        for s, e in sorted(campaign.estimates.items())
    ]


def _resim_seconds(campaign) -> float:
    return sum(e.wall_time_s for e in campaign.estimates.values())


def test_checkpoint_speedup(benchmark):
    # Default higher than the suite-wide 40: per-fault wall times are
    # milliseconds, so a larger injection count keeps the speedup
    # measurement out of the noise floor.
    samples = bench_samples(default=120)
    scale = bench_scale()

    goldens = [
        (dataclasses.replace(config, backend="python"),
         get_workload(name, scale))
        for config, name in CELLS
    ]
    baseline_s = 0.0
    injections = 0
    baseline_counts = []
    plain = [run_golden(config, workload) for config, workload in goldens]
    for (config, workload), golden in zip(goldens, plain):
        campaign = run_fi_campaign(config, workload, golden,
                                   samples=samples, seed=1,
                                   suffix_memo=False)
        baseline_s += _resim_seconds(campaign)
        injections += sum(e.resimulated for e in campaign.estimates.values())
        baseline_counts.append(_counts(campaign))

    checkpointed = [
        run_golden(config, workload, checkpoint_interval="auto")
        for config, workload in goldens
    ]

    def checkpointed_matrix():
        results = []
        for (config, workload), golden in zip(goldens, checkpointed):
            results.append(run_fi_campaign(config, workload, golden,
                                           samples=samples, seed=1,
                                           suffix_memo=False,
                                           keep_results=True))
        return results

    campaigns = benchmark.pedantic(checkpointed_matrix, rounds=1,
                                   iterations=1)
    accelerated_s = sum(_resim_seconds(c) for c in campaigns)
    assert [_counts(c) for c in campaigns] == baseline_counts

    speedup = baseline_s / accelerated_s if accelerated_s else float("inf")
    base_ips = injections / baseline_s if baseline_s else float("inf")
    fast_ips = injections / accelerated_s if accelerated_s else float("inf")
    early = sum(
        1 for c in campaigns for r in c.results if r.early_exit
    )
    print(f"\nCheckpoint speedup ({len(CELLS)} cells, n={samples}, {scale}): "
          f"{injections} injections, {base_ips:.1f} -> {fast_ips:.1f} inj/s "
          f"(x{speedup:.2f}, early exits={early})")
    benchmark.extra_info["baseline_s"] = round(baseline_s, 3)
    benchmark.extra_info["accelerated_s"] = round(accelerated_s, 3)
    benchmark.extra_info["min_speedup"] = MIN_SPEEDUP
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["injections"] = injections
    benchmark.extra_info["injections_per_s"] = round(fast_ips, 2)
    assert injections > 0, "smoke matrix drew no live faults"
