"""TAB-STAT — the paper's statistical-sampling footnote.

Footnote 4: "We simulated 2,000 fault injections per hardware
structure, which statistically provides 2.88% error margin for 99%
confidence level." This bench reproduces that number and prints the
margin table for other campaign sizes.
"""

from __future__ import annotations

from repro.reliability.sampling import margin_of_error, required_samples


def test_sampling_margin_table(benchmark):
    def table():
        return {
            n: margin_of_error(n, confidence=0.99)
            for n in (50, 100, 250, 500, 1000, 2000, 5000)
        }

    margins = benchmark(table)
    print("\nInjections -> 99%-confidence error margin:")
    for n, margin in margins.items():
        marker = "  <- paper" if n == 2000 else ""
        print(f"  n={n:<6} e={margin * 100:5.2f}%{marker}")
    assert abs(margins[2000] - 0.0288) < 2e-4
    benchmark.extra_info["paper_margin_at_2000"] = round(margins[2000], 5)
    benchmark.extra_info["samples_for_2.88pct"] = required_samples(0.0288)
