"""ABL-SDC — silent-data-corruption severity distribution.

Beyond the paper's binary SDC classification, the engine records how
many output words each SDC corrupts. The distribution separates
single-word corruptions (a flipped data value flowing straight to one
output) from amplified ones (corrupted values feeding shared-memory
reductions or address arithmetic) — useful context for the DUE/SDC
split the EPF metric builds on.
"""

from __future__ import annotations

from collections import Counter

from benchmarks.conftest import bench_samples, bench_scale
from repro.arch.scaling import get_scaled_gpu
from repro.kernels.registry import get_workload
from repro.reliability.fi import run_fi_campaign, run_golden
from repro.reliability.outcomes import Outcome
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE


def test_sdc_severity_distribution(benchmark):
    config = get_scaled_gpu("gtx480")
    workload = get_workload("matrixMul", bench_scale())
    golden = run_golden(config, workload)
    samples = max(bench_samples(), 120)

    output = benchmark.pedantic(
        lambda: run_fi_campaign(config, workload, golden, samples=samples,
                                seed=17, keep_results=True),
        rounds=1, iterations=1,
    )
    sdcs = [r for r in output.results if r.outcome is Outcome.SDC]
    buckets = Counter()
    for result in sdcs:
        if result.corrupted_words == 1:
            buckets["1 word"] += 1
        elif result.corrupted_words <= 16:
            buckets["2-16 words"] += 1
        else:
            buckets[">16 words"] += 1
    print(f"\nSDC severity on {config.name} / matrixMul "
          f"({len(sdcs)} SDCs of {2 * samples} injections):")
    for bucket in ("1 word", "2-16 words", ">16 words"):
        print(f"  {bucket:<12} {buckets.get(bucket, 0)}")
    by_structure = Counter(r.plan.structure for r in sdcs)
    print(f"  by structure: regfile={by_structure.get(REGISTER_FILE, 0)} "
          f"localmem={by_structure.get(LOCAL_MEMORY, 0)}")
    benchmark.extra_info["sdc_total"] = len(sdcs)
    benchmark.extra_info.update({k: v for k, v in buckets.items()})
    assert all(r.corrupted_words >= 1 for r in sdcs)
