"""PERF-SIM — simulator throughput (harness health, not a paper figure).

Measures warp-instructions per second for both core models on a
benchmark kernel, so performance regressions in the simulators are
visible in the benchmark history.
"""

from __future__ import annotations

import time

from repro.arch.scaling import get_scaled_gpu
from repro.kernels.registry import get_workload
from repro.kernels.workload import run_workload
from repro.sim.gpu import Gpu


def _throughput(benchmark, gpu_alias: str):
    config = get_scaled_gpu(gpu_alias)
    workload = get_workload("matrixMul", "small")

    def run():
        gpu = Gpu(config)
        run_workload(gpu, workload)
        return gpu

    gpu = benchmark(run)
    instructions = gpu.instructions_issued
    per_second = instructions / benchmark.stats["mean"]
    print(f"\n{config.name}: {instructions} warp-instructions "
          f"({per_second / 1e3:.1f}k winstr/s)")
    benchmark.extra_info["warp_instructions"] = instructions


def test_sass_core_throughput(benchmark):
    _throughput(benchmark, "gtx480")


def test_si_core_throughput(benchmark):
    _throughput(benchmark, "hd7970")


def test_traced_run_overhead(benchmark):
    """Golden runs with ACE+occupancy tracing attached (FI prep cost)."""
    from repro.reliability.fi import run_golden
    config = get_scaled_gpu("gtx480")
    workload = get_workload("matrixMul", "small")
    golden = benchmark.pedantic(
        lambda: run_golden(config, workload), rounds=2, iterations=1
    )
    assert golden.cycles > 0


def test_profile_hook_overhead(benchmark):
    """Cost of the hot-path profiling hook, collector off vs on.

    The bench history tracks the disabled path (the one every normal
    campaign pays); ``profile_enabled_s`` / ``profile_overhead_pct``
    in extra_info record what turning the collector on adds. Neither
    key is gated — check_bench prints them as trend datapoints only.
    """
    from repro.telemetry.profile import ProfileCollector, collecting

    config = get_scaled_gpu("gtx480")
    workload = get_workload("matrixMul", "small")

    def run_disabled():
        run_workload(Gpu(config), workload)

    def run_enabled():
        with collecting(ProfileCollector()):
            run_workload(Gpu(config), workload)

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    run_disabled()  # warm code paths before timing either variant
    run_enabled()
    disabled_s = min(timed(run_disabled) for _ in range(3))
    enabled_s = min(timed(run_enabled) for _ in range(3))
    overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s
    print(f"\nprofile hook: off {disabled_s:.3f}s  on {enabled_s:.3f}s  "
          f"(+{overhead_pct:.1f}%)")
    benchmark.pedantic(run_disabled, rounds=2, iterations=1)
    benchmark.extra_info["profile_disabled_s"] = round(disabled_s, 6)
    benchmark.extra_info["profile_enabled_s"] = round(enabled_s, 6)
    benchmark.extra_info["profile_overhead_pct"] = round(overhead_pct, 2)


def test_profiled_campaign_phases(benchmark):
    """One profiled FI cell; records the per-phase wall-time split."""
    from repro.engine.matrix import run_campaign
    from repro.engine.scheduler import clear_memory_cache
    from repro.spec import CampaignSpec
    from repro.telemetry import MemoryTelemetrySink, TelemetryHub

    spec = CampaignSpec(gpus=("gtx480",), workloads=("matrixMul",),
                        scale="small", samples=4)

    def run():
        clear_memory_cache()
        sink = MemoryTelemetrySink()
        run_campaign(spec, telemetry=TelemetryHub(sink), profile=True)
        return sink

    sink = benchmark.pedantic(run, rounds=1, iterations=1)
    profile = sink.of_type("campaign_profile")[-1]["profile"]
    phases = {name: round(seconds, 6)
              for name, seconds in sorted(profile["phases"].items())}
    total = sum(phases.values()) or 1.0
    shares = {name: round(100.0 * seconds / total, 1)
              for name, seconds in phases.items()}
    print("\nphase split: " + "  ".join(
        f"{name} {share:.1f}%" for name, share in shares.items()))
    benchmark.extra_info["profile_phases"] = phases
    benchmark.extra_info["profile_phase_shares_pct"] = shares
