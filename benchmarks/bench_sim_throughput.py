"""PERF-SIM — simulator throughput (harness health, not a paper figure).

Measures warp-instructions per second for both core models on a
benchmark kernel, so performance regressions in the simulators are
visible in the benchmark history.
"""

from __future__ import annotations

import time

from repro.arch.scaling import get_scaled_gpu
from repro.kernels.registry import get_workload
from repro.kernels.workload import run_workload
from repro.sim.gpu import Gpu


def _throughput(benchmark, gpu_alias: str):
    config = get_scaled_gpu(gpu_alias)
    workload = get_workload("matrixMul", "small")

    def run():
        gpu = Gpu(config)
        run_workload(gpu, workload)
        return gpu

    gpu = benchmark(run)
    instructions = gpu.instructions_issued
    per_second = instructions / benchmark.stats["mean"]
    print(f"\n{config.name}: {instructions} warp-instructions "
          f"({per_second / 1e3:.1f}k winstr/s)")
    benchmark.extra_info["warp_instructions"] = instructions


def test_sass_core_throughput(benchmark):
    _throughput(benchmark, "gtx480")


def test_si_core_throughput(benchmark):
    _throughput(benchmark, "hd7970")


def test_traced_run_overhead(benchmark):
    """Golden runs with ACE+occupancy tracing attached (FI prep cost)."""
    from repro.reliability.fi import run_golden
    config = get_scaled_gpu("gtx480")
    workload = get_workload("matrixMul", "small")
    golden = benchmark.pedantic(
        lambda: run_golden(config, workload), rounds=2, iterations=1
    )
    assert golden.cycles > 0


def test_profile_hook_overhead(benchmark):
    """Cost of the hot-path profiling hook, collector off vs on.

    The bench history tracks the disabled path (the one every normal
    campaign pays); ``profile_enabled_s`` / ``profile_overhead_pct``
    in extra_info record what turning the collector on adds. Neither
    key is gated — check_bench prints them as trend datapoints only.
    """
    from repro.telemetry.profile import ProfileCollector, collecting

    config = get_scaled_gpu("gtx480")
    workload = get_workload("matrixMul", "small")

    def run_disabled():
        run_workload(Gpu(config), workload)

    def run_enabled():
        with collecting(ProfileCollector()):
            run_workload(Gpu(config), workload)

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    run_disabled()  # warm code paths before timing either variant
    run_enabled()
    disabled_s = min(timed(run_disabled) for _ in range(3))
    enabled_s = min(timed(run_enabled) for _ in range(3))
    overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s
    print(f"\nprofile hook: off {disabled_s:.3f}s  on {enabled_s:.3f}s  "
          f"(+{overhead_pct:.1f}%)")
    benchmark.pedantic(run_disabled, rounds=2, iterations=1)
    benchmark.extra_info["profile_disabled_s"] = round(disabled_s, 6)
    benchmark.extra_info["profile_enabled_s"] = round(enabled_s, 6)
    benchmark.extra_info["profile_overhead_pct"] = round(overhead_pct, 2)


def test_fastpath_speedup(benchmark):
    """FASTPATH — the whole acceleration stack vs the reference path.

    Baseline: pure-python lane interpreter, no checkpoints, no memo —
    every live fault re-simulated from cycle zero one lane at a time.
    Accelerated: vector backend + auto checkpoints + cross-sample
    suffix memoization, i.e. what a default campaign runs. Outcome
    counts must be identical; the CI gate (``scripts/check_bench.py``)
    requires ``fastpath_speedup`` to clear ``min_speedup`` (3x on the
    smoke matrix; the full matrix targets 5x+). Memo hit counts are
    recorded as trend-only datapoints.

    Pinned to ``small`` scale (knob: ``REPRO_FASTPATH_SCALE``) rather
    than the suite-wide ``REPRO_SCALE``: at ``tiny`` the runs are so
    short that machine construction and restore overheads — identical
    on both paths — dominate, and the bench would measure those
    instead of the interpreters. ``REPRO_FASTPATH_SAMPLES`` bounds the
    pure-python baseline's wall-clock cost.
    """
    import dataclasses
    import os

    from benchmarks.bench_checkpoint_speedup import (
        CELLS,
        _counts,
        _resim_seconds,
    )
    from repro.reliability.fi import run_fi_campaign, run_golden

    samples = int(os.environ.get("REPRO_FASTPATH_SAMPLES", 40))
    scale = os.environ.get("REPRO_FASTPATH_SCALE", "small")

    reference = [
        (dataclasses.replace(config, backend="python"),
         get_workload(name, scale))
        for config, name in CELLS
    ]
    baseline_s = 0.0
    injections = 0
    baseline_counts = []
    for config, workload in reference:
        golden = run_golden(config, workload)
        campaign = run_fi_campaign(config, workload, golden,
                                   samples=samples, seed=1,
                                   suffix_memo=False)
        baseline_s += _resim_seconds(campaign)
        injections += sum(e.resimulated for e in campaign.estimates.values())
        baseline_counts.append(_counts(campaign))

    fast = [(config, get_workload(name, scale)) for config, name in CELLS]
    goldens = [
        run_golden(config, workload, checkpoint_interval="auto")
        for config, workload in fast
    ]

    def accelerated_matrix():
        results = []
        for (config, workload), golden in zip(fast, goldens):
            results.append(run_fi_campaign(config, workload, golden,
                                           samples=samples, seed=1,
                                           keep_results=True))
        return results

    campaigns = benchmark.pedantic(accelerated_matrix, rounds=1,
                                   iterations=1)
    accelerated_s = sum(_resim_seconds(c) for c in campaigns)
    assert [_counts(c) for c in campaigns] == baseline_counts

    speedup = baseline_s / accelerated_s if accelerated_s else float("inf")
    base_ips = injections / baseline_s if baseline_s else float("inf")
    fast_ips = injections / accelerated_s if accelerated_s else float("inf")
    memo_hits = sum((c.memo or {}).get("hits", 0) for c in campaigns)
    memo_misses = sum((c.memo or {}).get("misses", 0) for c in campaigns)
    print(f"\nFast-path speedup ({len(CELLS)} cells, n={samples}, {scale}): "
          f"{injections} injections, {base_ips:.1f} -> {fast_ips:.1f} inj/s "
          f"(x{speedup:.2f}, memo {memo_hits} hits / {memo_misses} misses)")
    benchmark.extra_info["fastpath_baseline_s"] = round(baseline_s, 3)
    benchmark.extra_info["fastpath_accelerated_s"] = round(accelerated_s, 3)
    benchmark.extra_info["fastpath_speedup"] = round(speedup, 2)
    benchmark.extra_info["min_speedup"] = 3.0
    benchmark.extra_info["backend"] = "vector"
    benchmark.extra_info["memo_hits"] = memo_hits
    benchmark.extra_info["memo_misses"] = memo_misses
    benchmark.extra_info["injections"] = injections
    benchmark.extra_info["injections_per_s"] = round(fast_ips, 2)
    assert injections > 0, "smoke matrix drew no live faults"


def test_profiled_campaign_phases(benchmark):
    """One profiled FI cell; records the per-phase wall-time split."""
    from repro.engine.matrix import run_campaign
    from repro.engine.scheduler import clear_memory_cache
    from repro.spec import CampaignSpec
    from repro.telemetry import MemoryTelemetrySink, TelemetryHub

    spec = CampaignSpec(gpus=("gtx480",), workloads=("matrixMul",),
                        scale="small", samples=4)

    def run():
        clear_memory_cache()
        sink = MemoryTelemetrySink()
        run_campaign(spec, telemetry=TelemetryHub(sink), profile=True)
        return sink

    sink = benchmark.pedantic(run, rounds=1, iterations=1)
    profile = sink.of_type("campaign_profile")[-1]["profile"]
    phases = {name: round(seconds, 6)
              for name, seconds in sorted(profile["phases"].items())}
    total = sum(phases.values()) or 1.0
    shares = {name: round(100.0 * seconds / total, 1)
              for name, seconds in phases.items()}
    print("\nphase split: " + "  ".join(
        f"{name} {share:.1f}%" for name, share in shares.items()))
    benchmark.extra_info["profile_phases"] = phases
    benchmark.extra_info["profile_phase_shares_pct"] = shares
