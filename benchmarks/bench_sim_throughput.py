"""PERF-SIM — simulator throughput (harness health, not a paper figure).

Measures warp-instructions per second for both core models on a
benchmark kernel, so performance regressions in the simulators are
visible in the benchmark history.
"""

from __future__ import annotations

from repro.arch.scaling import get_scaled_gpu
from repro.kernels.registry import get_workload
from repro.kernels.workload import run_workload
from repro.sim.gpu import Gpu


def _throughput(benchmark, gpu_alias: str):
    config = get_scaled_gpu(gpu_alias)
    workload = get_workload("matrixMul", "small")

    def run():
        gpu = Gpu(config)
        run_workload(gpu, workload)
        return gpu

    gpu = benchmark(run)
    instructions = gpu.instructions_issued
    per_second = instructions / benchmark.stats["mean"]
    print(f"\n{config.name}: {instructions} warp-instructions "
          f"({per_second / 1e3:.1f}k winstr/s)")
    benchmark.extra_info["warp_instructions"] = instructions


def test_sass_core_throughput(benchmark):
    _throughput(benchmark, "gtx480")


def test_si_core_throughput(benchmark):
    _throughput(benchmark, "hd7970")


def test_traced_run_overhead(benchmark):
    """Golden runs with ACE+occupancy tracing attached (FI prep cost)."""
    from repro.reliability.fi import run_golden
    config = get_scaled_gpu("gtx480")
    workload = get_workload("matrixMul", "small")
    golden = benchmark.pedantic(
        lambda: run_golden(config, workload), rounds=2, iterations=1
    )
    assert golden.cycles > 0
