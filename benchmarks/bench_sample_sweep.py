"""ABL-SAMPLES — FI estimate convergence vs campaign size.

Sweeps the number of injections and shows the AVF estimate converging
within the theoretical error margin of a large-sample reference — the
justification for the paper's choice of 2,000 injections/structure.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale
from repro.arch.scaling import get_scaled_gpu
from repro.kernels.registry import get_workload
from repro.reliability.fi import run_fi_campaign, run_golden
from repro.reliability.sampling import margin_of_error
from repro.sim.faults import REGISTER_FILE

SWEEP = (25, 50, 100, 200)
REFERENCE = 400


def test_sample_size_sweep(benchmark):
    config = get_scaled_gpu("fx5600")
    workload = get_workload("histogram", bench_scale())
    golden = run_golden(config, workload)

    def sweep():
        estimates = {}
        for n in (*SWEEP, REFERENCE):
            output = run_fi_campaign(
                config, workload, golden, samples=n, seed=99,
                structures=(REGISTER_FILE,),
            )
            estimates[n] = output.estimates[REGISTER_FILE].avf
        return estimates

    estimates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reference = estimates[REFERENCE]
    print(f"\nSample-size sweep (reference n={REFERENCE}: AVF={reference:.3f}):")
    for n in SWEEP:
        margin = margin_of_error(n, confidence=0.99)
        delta = abs(estimates[n] - reference)
        print(f"  n={n:<4} AVF={estimates[n]:6.3f} |delta|={delta:5.3f} "
              f"margin(99%)={margin:5.3f}")
        benchmark.extra_info[str(n)] = round(estimates[n], 4)
        # Combined margin of both estimates bounds the observed delta.
        assert delta <= margin + margin_of_error(REFERENCE, confidence=0.99)
