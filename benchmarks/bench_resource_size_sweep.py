"""ABL-SIZE — AVF vs structure size ("resource sizes", paper section I).

The full study's stated scope includes the effect of resource sizes.
Sweeping the register-file size of one chip (same workload) shows the
mechanism behind the cross-chip Fig. 1 variation: a larger file dilutes
the same live bits over more capacity, so AVF falls roughly inversely
while the absolute FIT contribution stays flat.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import bench_scale
from repro.arch.scaling import get_scaled_gpu
from repro.kernels.registry import get_workload
from repro.reliability.fi import run_golden
from repro.sim.faults import REGISTER_FILE

SIZES = (16 * 1024, 32 * 1024, 64 * 1024)  # registers per core


def test_register_file_size_sweep(benchmark):
    base = get_scaled_gpu("gtx480")
    workload = get_workload("transpose", bench_scale())

    def sweep():
        rows = []
        for regs in SIZES:
            config = replace(base, name=f"{base.name} rf={regs}",
                             registers_per_core=regs)
            golden = run_golden(config, workload)
            rows.append((regs, golden.ace.avf(REGISTER_FILE),
                         golden.occupancy.occupancy(REGISTER_FILE)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nRegister-file size sweep (GTX 480 scaled, transpose):")
    for regs, avf, occ in rows:
        print(f"  {regs // 1024:3d}K regs/SM: AVF-ACE={avf:7.4f} occ={occ:7.4f}")
        benchmark.extra_info[f"{regs}"] = round(avf, 5)
    # Doubling the file must not increase AVF.
    avfs = [avf for _, avf, _ in rows]
    assert avfs == sorted(avfs, reverse=True)
