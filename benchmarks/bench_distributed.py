"""DIST — campaign-service throughput at fleet sizes 1, 2 and 4.

Runs the same small campaign through the coordinator with 1, 2 and 4
worker *processes* (real ``repro-experiments worker`` subprocesses, so
the fleet actually runs in parallel) and records injections/second per
fleet size. The stores from the smallest and largest fleet are
verified identical, the distributed-parity contract.

Trend only, never gated: at smoke scale the lease/push round-trips,
worker interpreter start-up and the one-cell queue depth swamp the
fleet win, so a floor here would gate HTTP framing, not the engine.
The datapoints feed the bench history (``check_bench.py`` prints them
alongside the gated speedups).

Knobs: ``REPRO_FI_SAMPLES`` / ``REPRO_SCALE`` (see conftest).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from benchmarks.conftest import bench_samples, bench_scale
from repro.arch.structures import DATAPATH_STRUCTURES as STRUCTURES
from repro.engine import clear_memory_cache
from repro.engine.service import CampaignService
from repro.engine.store import ResultStore
from repro.spec import CampaignSpec

FLEET_SIZES = (1, 2, 4)
GPUS = ("fx5600", "hd7970")
WORKLOADS = ("histogram", "scan")

_SRC = Path(__file__).resolve().parents[1] / "src"


def _spawn_workers(url: str, count: int, tag: str) -> list:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return [
        subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", "worker", url,
             "--id", f"bench-{tag}-{index}", "--poll", "0.05", "--quiet"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for index in range(count)
    ]


def _run_fleet(spec: CampaignSpec, store_path: Path, count: int) -> float:
    clear_memory_cache()
    store = ResultStore(store_path)
    service = CampaignService(store, [spec], port=0)
    start = time.perf_counter()
    workers = _spawn_workers(service.url, count, tag=str(count))
    try:
        service.run()
    finally:
        for worker in workers:
            try:
                worker.wait(timeout=30)
            except subprocess.TimeoutExpired:
                worker.kill()
        store.close()
    return time.perf_counter() - start


def _strip_times(value):
    if isinstance(value, dict):
        return {k: _strip_times(v) for k, v in value.items()
                if not k.endswith("_time_s")}
    if isinstance(value, list):
        return [_strip_times(v) for v in value]
    return value


def test_distributed_throughput(benchmark, tmp_path):
    samples = bench_samples()
    scale = bench_scale()
    spec = CampaignSpec(gpus=GPUS, workloads=WORKLOADS, scale=scale,
                        samples=samples, seed=1, structures=STRUCTURES)
    injections = (samples * len(STRUCTURES)
                  * len(GPUS) * len(WORKLOADS))

    wall = {}
    for count in FLEET_SIZES[:-1]:
        wall[count] = _run_fleet(spec, tmp_path / f"dist{count}.jsonl",
                                 count)
    largest = FLEET_SIZES[-1]
    benchmark.pedantic(
        lambda: wall.__setitem__(largest, _run_fleet(
            spec, tmp_path / f"dist{largest}.jsonl", largest)),
        rounds=1, iterations=1)

    def image(path):
        store = ResultStore(path)
        return {fp: (store.kind_of(fp), _strip_times(store.get(fp)))
                for fp in store._records}

    assert image(tmp_path / f"dist{FLEET_SIZES[0]}.jsonl") == \
        image(tmp_path / f"dist{largest}.jsonl")

    rates = {count: injections / seconds if seconds else float("inf")
             for count, seconds in sorted(wall.items())}
    print(f"\nDistributed campaign (n={samples}/structure, {scale}, "
          f"{injections} nominal injections):")
    for count, rate in rates.items():
        print(f"  workers={count}  {wall[count]:6.1f}s  "
              f"{rate:8.1f} inj/s  [trend only]")
    benchmark.extra_info["dist_fleet_sizes"] = list(FLEET_SIZES)
    benchmark.extra_info["dist_wall_s"] = {
        str(count): round(seconds, 2) for count, seconds in wall.items()}
    benchmark.extra_info["dist_inj_per_s"] = {
        str(count): round(rate, 1) for count, rate in rates.items()}
    benchmark.extra_info["dist_injections"] = injections
