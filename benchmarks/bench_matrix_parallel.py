"""MATRIX-PAR — engine wall-time at workers=1 vs workers=N.

Runs the same small (GPU x benchmark) matrix serially and on the
process pool, verifies the cells are identical, and records the
speedup. The golden-run memory cache is cleared between the runs so
each pays the full campaign cost.

Pinned to the pure-python reference interpreter, isolating the *pool*
optimization: the vector backend halves the per-cell work, and at
smoke scale what remains is dominated by the pool's fixed process
start-up cost, turning the gate into a coin flip. The combined fast
path is gated separately by
``bench_sim_throughput.py::test_fastpath_speedup``.

Knobs: ``REPRO_FI_SAMPLES`` / ``REPRO_SCALE`` (see conftest) plus
``REPRO_BENCH_WORKERS`` (default: min(4, cpu_count)).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import bench_samples, bench_scale
from repro.arch.scaling import get_scaled_gpu
from repro.arch.structures import DATAPATH_STRUCTURES as STRUCTURES
from repro.engine import clear_memory_cache, run_campaign
from repro.spec import CampaignSpec

GPUS = ("fx5600", "hd7970")
WORKLOADS = ["matrixMul", "histogram", "scan"]


def bench_workers(default: int | None = None) -> int:
    if "REPRO_BENCH_WORKERS" in os.environ:
        return int(os.environ["REPRO_BENCH_WORKERS"])
    # At least 2 so the pooled path is exercised even on 1-core hosts
    # (where the speedup will simply come out ~1x or below).
    return default or max(2, min(4, os.cpu_count() or 1))


def test_matrix_parallel_speedup(benchmark):
    samples = bench_samples()
    scale = bench_scale()
    workers = bench_workers()
    gpus = [get_scaled_gpu(name) for name in GPUS]

    spec = CampaignSpec(gpus=tuple(gpus), workloads=tuple(WORKLOADS),
                        scale=scale, samples=samples, seed=1,
                        structures=STRUCTURES, backend="python")

    clear_memory_cache()
    start = time.perf_counter()
    serial = run_campaign(spec, workers=1).cells
    serial_s = time.perf_counter() - start

    def parallel_campaign():
        clear_memory_cache()
        return run_campaign(spec, workers=workers).cells

    parallel = benchmark.pedantic(parallel_campaign, rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.mean

    def comparable(cell):
        row = cell.row()
        row.pop("golden_time_s")
        row.pop("fi_time_s")
        return row

    assert [comparable(c) for c in serial] == [comparable(c) for c in parallel]

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    # A 1-core host cannot show a pool speedup, only the pool's
    # overhead (the docstring's "~1x or below" case) — record the
    # datapoint but tell check_bench not to gate it there.
    gated = (os.cpu_count() or 1) >= 2
    print(f"\nMatrix wall-time ({len(serial)} cells, n={samples}, {scale}): "
          f"workers=1 {serial_s:6.1f}s  workers={workers} {parallel_s:6.1f}s  "
          f"speedup x{speedup:.2f}"
          + ("" if gated else "  (1-core host: trend only)"))
    benchmark.extra_info["serial_s"] = round(serial_s, 2)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 2)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["min_speedup"] = 1.0 if gated else 0.0
