"""FIG3 — regenerate the paper's Fig. 3 rows (Executions Per Failure).

EPF needs both structures' AVF-FI plus the cycle count, so this is the
complete per-chip campaign. Printed rows are the log-scale series of
the figure; the expected band is roughly 10^12..10^17.
"""

from __future__ import annotations

import math

from benchmarks.conftest import bench_samples, bench_scale, bench_workloads
from repro.arch.structures import DATAPATH_STRUCTURES as STRUCTURES
from repro.engine import clear_memory_cache, run_campaign
from repro.spec import CampaignSpec

WORKLOADS = ["vectoradd", "matrixMul"]


def test_fig3_epf(benchmark, scaled_gpu):
    samples = bench_samples()
    scale = bench_scale()
    workloads = bench_workloads(WORKLOADS)
    clear_memory_cache()

    spec = CampaignSpec(gpus=(scaled_gpu,), workloads=tuple(workloads),
                        scale=scale, samples=samples, seed=1,
                        structures=STRUCTURES)

    def campaign():
        return run_campaign(spec).cells

    cells = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print(f"\nFig.3 rows — {scaled_gpu.name} (n={samples}/structure, {scale}):")
    for cell in cells:
        epf = cell.epf.epf
        log_epf = math.log10(epf) if math.isfinite(epf) else float("inf")
        print(
            f"  {cell.workload:<12} EPF={epf:12.3e} (log10={log_epf:5.2f}) "
            f"FIT={cell.epf.fit_gpu:8.1f} cycles={cell.cycles}"
        )
        benchmark.extra_info[cell.workload] = {
            "epf": f"{epf:.3e}", "fit": round(cell.epf.fit_gpu, 2),
            "cycles": cell.cycles,
        }
