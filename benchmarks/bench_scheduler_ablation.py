"""ABL-SCHED — effect of warp scheduling on reliability.

The paper's introduction lists "the execution scheduling" among the
aspects the full study covers. This ablation runs the same benchmark
under loose round-robin and greedy-then-oldest scheduling and compares
cycle counts and ACE AVF (scheduling reshuffles lifetimes, so AVF
moves even though the computed outputs are identical).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale
from repro.arch.scaling import get_scaled_gpu
from repro.kernels.registry import get_workload
from repro.reliability.fi import run_golden
from repro.sim.faults import REGISTER_FILE

GPU = "gtx480"
WORKLOAD = "scan"


def test_scheduler_ablation(benchmark):
    config = get_scaled_gpu(GPU)
    workload = get_workload(WORKLOAD, bench_scale())

    def both():
        return {
            policy: run_golden(config, workload, scheduler=policy)
            for policy in ("rr", "gto")
        }

    goldens = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nScheduler ablation on {config.name} / {WORKLOAD}:")
    for policy, golden in goldens.items():
        print(f"  {policy:<4} cycles={golden.cycles:<8} "
              f"regfile AVF-ACE={golden.ace.avf(REGISTER_FILE):.4f}")
        benchmark.extra_info[policy] = {
            "cycles": golden.cycles,
            "avf_ace": round(golden.ace.avf(REGISTER_FILE), 4),
        }
    # Different schedules must not change the computed results.
    rr, gto = goldens["rr"].outputs, goldens["gto"].outputs
    for name in rr:
        assert np.array_equal(rr[name], gto[name])
