"""ABL-OCC — AVF-vs-occupancy correlation (the figures' red lines).

Section III: "Red lines reporting the occupancy of the considered
memory structures show a strong correlation of the AVF with this
parameter." This bench sweeps benchmarks on one chip and reports the
Pearson correlation between ACE-measured AVF and occupancy.
"""

from __future__ import annotations

from scipy import stats

from benchmarks.conftest import bench_scale
from repro.arch.scaling import get_scaled_gpu
from repro.kernels.registry import KERNEL_NAMES, get_workload
from repro.reliability.fi import run_golden
from repro.sim.faults import REGISTER_FILE


def test_avf_tracks_occupancy(benchmark):
    config = get_scaled_gpu("fx5800")
    scale = bench_scale()

    def sweep():
        rows = []
        for name in KERNEL_NAMES:
            golden = run_golden(config, get_workload(name, scale))
            rows.append(
                (name, golden.ace.avf(REGISTER_FILE),
                 golden.occupancy.occupancy(REGISTER_FILE))
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    avfs = [row[1] for row in rows]
    occs = [row[2] for row in rows]
    r, p = stats.pearsonr(avfs, occs)
    print(f"\nAVF-vs-occupancy on {config.name} ({scale}): Pearson r={r:.3f} (p={p:.4f})")
    for name, avf, occ in rows:
        print(f"  {name:<12} AVF-ACE={avf:6.3f} occ={occ:6.3f}")
    benchmark.extra_info["pearson_r"] = round(float(r), 4)
    # The paper calls the correlation "strong"; fail the bench if the
    # reproduction loses it entirely.
    assert r > 0.5
