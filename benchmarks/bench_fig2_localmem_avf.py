"""FIG2 — regenerate the paper's Fig. 2 rows (local-memory AVF).

Covers local-memory-using benchmarks only, as in the paper. The
finding to observe in the printed rows: AVF-ACE tracks AVF-FI closely
for this structure (unlike Fig. 1).
"""

from __future__ import annotations

from benchmarks.conftest import bench_samples, bench_scale, bench_workloads
from repro.arch.structures import LOCAL_MEMORY
from repro.engine import clear_memory_cache, run_campaign
from repro.spec import CampaignSpec

WORKLOADS = ["matrixMul", "scan", "histogram"]


def test_fig2_local_memory_avf(benchmark, scaled_gpu):
    samples = bench_samples()
    scale = bench_scale()
    workloads = [
        name for name in bench_workloads(WORKLOADS)
        if name not in ("gaussian", "kmeans", "vectoradd")
    ]
    clear_memory_cache()

    spec = CampaignSpec(gpus=(scaled_gpu,), workloads=tuple(workloads),
                        scale=scale, samples=samples, seed=1,
                        structures=(LOCAL_MEMORY,))

    def campaign():
        return run_campaign(spec).cells

    cells = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print(f"\nFig.2 rows — {scaled_gpu.name} (n={samples}/structure, {scale}):")
    for cell in cells:
        fi = cell.avf_fi(LOCAL_MEMORY)
        ace = cell.avf_ace(LOCAL_MEMORY)
        occ = cell.occupancy[LOCAL_MEMORY]
        print(f"  {cell.workload:<12} AVF-FI={fi:6.3f}  AVF-ACE={ace:6.3f}  occ={occ:6.3f}")
        benchmark.extra_info[cell.workload] = {
            "avf_fi": round(fi, 4), "avf_ace": round(ace, 4), "occ": round(occ, 4),
        }
