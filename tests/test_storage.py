"""Register file and local memory storage tests (incl. tracing hooks)."""

import numpy as np
import pytest

from repro.errors import ConfigError, LocalMemoryFault
from repro.sim.regfile import RegisterFile
from repro.sim.sharedmem import LocalMemory
from repro.sim.tracing import EventRecorder


class TestRegisterFile:
    def test_row_layout(self):
        rf = RegisterFile(0, 256, 32)
        assert rf.num_rows == 8

    def test_row_size_must_divide(self):
        with pytest.raises(ConfigError):
            RegisterFile(0, 100, 32)

    def test_masked_write(self):
        rf = RegisterFile(0, 256, 32)
        values = np.arange(32, dtype=np.uint32)
        sel = np.zeros(32, dtype=bool)
        sel[:4] = True
        rf.write_row(2, values, sel, 0xF, cycle=5)
        row = rf.read_row(2, 0xFFFFFFFF, cycle=6)
        assert np.array_equal(row[:4], values[:4])
        assert (row[4:] == 0).all()

    def test_read_returns_copy(self):
        rf = RegisterFile(0, 256, 32)
        row = rf.read_row(0, 0xFFFFFFFF, 0)
        row[:] = 99
        assert (rf.read_row(0, 0xFFFFFFFF, 0) == 0).all()

    def test_flip_bit(self):
        rf = RegisterFile(0, 256, 32)
        rf.flip_bit(10, 3)
        assert rf.data[10] == 8
        rf.flip_bit(10, 3)
        assert rf.data[10] == 0

    def test_flip_bit_bounds(self):
        rf = RegisterFile(0, 256, 32)
        with pytest.raises(ConfigError):
            rf.flip_bit(256, 0)

    def test_clear_rows(self):
        rf = RegisterFile(0, 256, 32)
        rf.data[:] = 7
        rf.clear_rows(1, 2)
        assert (rf.data[32:96] == 0).all()
        assert (rf.data[:32] == 7).all()

    def test_tracing_events(self):
        recorder = EventRecorder()
        rf = RegisterFile(3, 256, 32, sink=recorder)
        rf.read_row(1, 0xF, cycle=10)
        rf.write_row(2, np.zeros(32, dtype=np.uint32),
                     np.ones(32, dtype=bool), 0xFFFFFFFF, cycle=11)
        assert recorder.reg_events == [
            (10, 3, 1, 0xF, False),
            (11, 3, 2, 0xFFFFFFFF, True),
        ]

    def test_zero_mask_not_traced(self):
        recorder = EventRecorder()
        rf = RegisterFile(0, 256, 32, sink=recorder)
        rf.read_row(1, 0, cycle=10)
        assert recorder.reg_events == []


class TestLocalMemory:
    def test_roundtrip(self):
        lm = LocalMemory(0, 1024)
        addrs = np.arange(8) * 4
        lm.store(addrs, np.arange(8, dtype=np.uint32), cycle=0)
        assert np.array_equal(lm.load(addrs, cycle=1), np.arange(8, dtype=np.uint32))

    def test_out_of_bounds(self):
        lm = LocalMemory(0, 1024)
        with pytest.raises(LocalMemoryFault):
            lm.load(np.array([1024]), cycle=0)
        with pytest.raises(LocalMemoryFault):
            lm.load(np.array([-4]), cycle=0)

    def test_misaligned(self):
        lm = LocalMemory(0, 1024)
        with pytest.raises(LocalMemoryFault):
            lm.store(np.array([3]), np.array([1], dtype=np.uint32), cycle=0)

    def test_atomic_add(self):
        lm = LocalMemory(0, 1024)
        addrs = np.zeros(16, dtype=np.int64)
        old = lm.atomic_add(addrs, np.ones(16, dtype=np.uint32), cycle=0)
        assert sorted(old.tolist()) == list(range(16))
        assert lm.data[0] == 16

    def test_flip_bit(self):
        lm = LocalMemory(0, 1024)
        lm.flip_bit(5, 31)
        assert lm.data[5] == 0x80000000

    def test_clear_range(self):
        lm = LocalMemory(0, 1024)
        lm.data[:] = 9
        lm.clear_range(128, 256)
        assert (lm.data[32:96] == 0).all()
        assert lm.data[31] == 9 and lm.data[96] == 9

    def test_trace_word_indices(self):
        recorder = EventRecorder()
        lm = LocalMemory(2, 1024, sink=recorder)
        lm.store(np.array([0, 8]), np.array([1, 2], dtype=np.uint32), cycle=4)
        assert recorder.lmem_events == [(4, 2, (0, 2), True)]

    def test_atomic_traces_read_and_write(self):
        recorder = EventRecorder()
        lm = LocalMemory(0, 1024, sink=recorder)
        lm.atomic_add(np.array([4]), np.array([1], dtype=np.uint32), cycle=7)
        kinds = [event[3] for event in recorder.lmem_events]
        assert kinds == [False, True]
