"""The `status STORE` monitor and the consolidated CLI surface.

Renders against the checked-in fixture store
(tests/fixtures/status_store.jsonl + .telemetry.jsonl — a finished
2-cell gtx480 campaign recorded with telemetry on), so output checks
are deterministic and need no simulation.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import main
from repro.telemetry import (
    aggregate_events,
    format_status,
    load_telemetry,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"
STORE = FIXTURES / "status_store.jsonl"
TELEMETRY = FIXTURES / "status_store.telemetry.jsonl"


class TestStatusCommand:
    def test_completed_campaign_panel(self, capsys):
        assert main(["status", str(STORE)]) == 0
        out = capsys.readouterr().out
        # job counts, per kind
        assert "jobs: 7" in out
        for kind in ("golden", "plan", "shard", "cell"):
            assert kind in out
        # cache hit rate, occupancy, throughput — the acceptance surface
        assert "cache hit rate" in out
        assert "occupancy" in out and "workers: 2" in out
        assert "samples/s" in out
        assert "completed in" in out
        assert "status fixture" in out

    def test_in_progress_campaign_shows_eta(self, tmp_path, capsys):
        # The same stream minus campaign_end is a killed/running
        # campaign: the panel must flip to IN PROGRESS with an ETA.
        events = [e for e in load_telemetry(TELEMETRY)
                  if e["event"] != "campaign_end"]
        store = tmp_path / "status_store.jsonl"
        store.write_text(STORE.read_text())
        (tmp_path / "status_store.telemetry.jsonl").write_text(
            "".join(json.dumps(e) + "\n" for e in events))
        assert main(["status", str(store)]) == 0
        out = capsys.readouterr().out
        assert "IN PROGRESS" in out
        assert "ETA" in out

    def test_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["status", str(tmp_path / "nope.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "not found" in err
        assert "Traceback" not in err

    def test_store_without_telemetry_renders_hint(self, tmp_path, capsys):
        store = tmp_path / "bare.jsonl"
        store.write_text(STORE.read_text())
        assert main(["status", str(store)]) == 0
        out = capsys.readouterr().out
        assert "store: 7 finished job records" in out
        assert "none recorded" in out
        assert "--telemetry" in out

    def test_explicit_telemetry_path_override(self, tmp_path, capsys):
        store = tmp_path / "bare.jsonl"
        store.write_text(STORE.read_text())
        assert main(["status", str(store),
                     "--telemetry", str(TELEMETRY)]) == 0
        out = capsys.readouterr().out
        assert "status fixture" in out


class TestStatusRendering:
    """format_status is a pure function — pin the clock and assert."""

    def test_fixture_aggregation(self):
        status = aggregate_events(load_telemetry(TELEMETRY))
        assert status.campaigns_begun == 1 and status.campaigns_ended == 1
        assert not status.in_progress
        assert status.cells_done == status.cells_total == 2
        assert status.jobs_executed == 7 and status.jobs_cached == 0
        assert status.workers == 2
        assert status.utilization is not None
        assert 0.0 < status.utilization <= 1.0
        assert status.samples_per_s is not None and status.samples_per_s > 0

    def test_in_progress_panel_is_deterministic(self):
        events = [e for e in load_telemetry(TELEMETRY)
                  if e["event"] != "campaign_end"]
        status = aggregate_events(events)
        assert status.in_progress
        panel = format_status("store.jsonl", {"golden": 2}, status,
                              now=status.last_ts + 5.0)
        assert "IN PROGRESS (last event 5.0s ago)" in panel
        assert "ETA" in panel

    def test_empty_stream_panel(self):
        panel = format_status("store.jsonl", {}, aggregate_events([]),
                              telemetry_path="store.telemetry.jsonl")
        assert "none recorded" in panel
        assert "store.telemetry.jsonl" in panel


class TestZeroExecutedEdges:
    """ETA/throughput must degrade to None, never divide by zero."""

    def test_empty_stream_rates_are_none(self):
        status = aggregate_events([])
        assert status.eta_s is None
        assert status.samples_per_s is None
        assert status.utilization is None

    def test_begun_but_no_cell_finished(self):
        begin = [e for e in load_telemetry(TELEMETRY)
                 if e["event"] == "campaign_begin"]
        status = aggregate_events(begin)
        assert status.in_progress and status.cells_done == 0
        assert status.eta_s is None
        assert status.samples_per_s is None
        panel = format_status("store.jsonl", {}, status,
                              now=status.last_ts + 1.0)
        assert "n/a" in panel

    def test_completed_stream_has_no_eta(self):
        status = aggregate_events(load_telemetry(TELEMETRY))
        assert not status.in_progress
        assert status.eta_s is None

    def test_fully_cached_resume_renders(self, tmp_path, capsys):
        # Replay of the fixture store: 0 executed jobs, panel must
        # still render without an ETA or a crash.
        spec = tmp_path / "spec.toml"
        spec.write_text(
            'gpus = ["gtx480"]\nworkloads = ["vectoradd", "histogram"]\n'
            'scale = "small"\nsamples = 8\nseed = 0\n'
            'structures = ["register_file"]\n')
        store = tmp_path / "status_store.jsonl"
        store.write_text(STORE.read_text())
        assert main(["run", str(spec), "--quiet", "--telemetry",
                     "--resume", str(store)]) == 0
        capsys.readouterr()
        status = aggregate_events(
            load_telemetry(tmp_path / "status_store.telemetry.jsonl"))
        assert status.jobs_executed == 0
        assert status.eta_s is None
        assert main(["status", str(store)]) == 0
        assert "completed in" in capsys.readouterr().out


class TestFollowMode:
    def test_follow_once_renders_and_exits(self, capsys):
        assert main(["status", str(STORE), "--follow", "--once"]) == 0
        out = capsys.readouterr().out
        assert "completed in" in out

    def test_follow_exits_when_campaign_already_ended(self, capsys):
        # Stream ends with campaign_end → the follow loop must return
        # after the first poll instead of tailing forever.
        assert main(["status", str(STORE), "--follow"]) == 0
        assert "completed in" in capsys.readouterr().out

    def test_follow_tolerates_torn_final_line(self, tmp_path, capsys):
        store = tmp_path / "status_store.jsonl"
        store.write_text(STORE.read_text())
        telemetry = tmp_path / "status_store.telemetry.jsonl"
        telemetry.write_text(TELEMETRY.read_text() + '{"v": 1, "se')
        assert main(["status", str(store), "--follow", "--once"]) == 0
        assert "completed in" in capsys.readouterr().out


class TestProfileCommand:
    def test_missing_store_exits_2(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "nope.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "not found" in err

    def test_missing_telemetry_exits_2(self, tmp_path, capsys):
        store = tmp_path / "bare.jsonl"
        store.write_text(STORE.read_text())
        assert main(["profile", str(store)]) == 2
        err = capsys.readouterr().err
        assert "--profile" in err and "Traceback" not in err

    def test_stream_without_profile_events_hints(self, capsys):
        # The fixture stream predates profiling: report must point at
        # --profile rather than render an empty table.
        assert main(["profile", str(STORE)]) == 0
        out = capsys.readouterr().out
        assert "no profile events" in out
        assert "--profile" in out

    def test_profile_flag_conflict_exits_2(self, tmp_path, capsys):
        spec = tmp_path / "tiny.toml"
        spec.write_text('gpus = ["gtx480"]\nworkloads = ["vectoradd"]\n'
                        'scale = "tiny"\nsamples = 4\n')
        assert main(["run", str(spec), "--profile", "--no-profile"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_run_profile_then_report_end_to_end(self, tmp_path, capsys):
        spec = tmp_path / "tiny.toml"
        spec.write_text('gpus = ["gtx480"]\nworkloads = ["vectoradd"]\n'
                        'scale = "tiny"\nsamples = 4\n')
        store = tmp_path / "store.jsonl"
        assert main(["run", str(spec), "--quiet", "--profile",
                     "--resume", str(store)]) == 0
        capsys.readouterr()
        assert main(["profile", str(store)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "100.0%" in out
        assert "sass" in out


class TestConsolidatedCli:
    @pytest.mark.parametrize("legacy,current", [
        ("control_avf", "control"), ("model_compare", "models"),
    ])
    def test_legacy_experiment_names_warn_and_dispatch(self, legacy,
                                                       current, capsys):
        with pytest.warns(DeprecationWarning, match=legacy):
            code = main([legacy, "--samples", "4", "--scale", "tiny",
                         "--gpus", "gtx480", "--workloads", "vectoradd",
                         "--quiet"])
        assert code == 0
        assert f"== running {current} ==" in capsys.readouterr().err

    def test_current_names_do_not_warn(self, recwarn, capsys):
        assert main(["control", "--samples", "4", "--scale", "tiny",
                     "--gpus", "gtx480", "--workloads", "vectoradd",
                     "--quiet"]) == 0
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    def test_telemetry_flag_conflict_exits_2(self, tmp_path, capsys):
        spec = tmp_path / "tiny.toml"
        spec.write_text('gpus = ["gtx480"]\nworkloads = ["vectoradd"]\n'
                        'scale = "tiny"\nsamples = 4\n')
        assert main(["run", str(spec), "--telemetry",
                     "--no-telemetry"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_telemetry_without_store_exits_2(self, tmp_path, capsys):
        spec = tmp_path / "tiny.toml"
        spec.write_text('gpus = ["gtx480"]\nworkloads = ["vectoradd"]\n'
                        'scale = "tiny"\nsamples = 4\n')
        assert main(["run", str(spec), "--quiet", "--telemetry"]) == 2
        err = capsys.readouterr().err
        assert err.rstrip().endswith("path")
        assert "error:" in err and "Traceback" not in err

    def test_run_telemetry_writes_next_to_store(self, tmp_path, capsys):
        spec = tmp_path / "tiny.toml"
        spec.write_text('gpus = ["gtx480"]\nworkloads = ["vectoradd"]\n'
                        'scale = "tiny"\nsamples = 4\n')
        store = tmp_path / "store.jsonl"
        assert main(["run", str(spec), "--quiet", "--telemetry",
                     "--resume", str(store)]) == 0
        telemetry = tmp_path / "store.telemetry.jsonl"
        assert telemetry.exists()
        events = load_telemetry(telemetry)
        assert events[0]["event"] == "campaign_begin"
        assert events[-1]["event"] == "campaign_end"
        capsys.readouterr()
        assert main(["status", str(store)]) == 0
        assert "completed in" in capsys.readouterr().out

    def test_subcommand_help_exists_for_every_command(self):
        for command in ("fig1", "fig2", "fig3", "control", "models",
                        "all", "run", "sweep", "status", "profile"):
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--help"])
            assert excinfo.value.code == 0


class TestFastPathSurfacing:
    """backend / suffix-memo info in the status panel, tolerant of
    telemetry streams recorded before those fields existed."""

    def test_pre_fastpath_fixture_tolerated(self):
        # The checked-in fixture predates backend/suffix_memo: the
        # aggregator must leave them unknown and the panel must render
        # without a fast-path line (and without crashing).
        status = aggregate_events(load_telemetry(TELEMETRY))
        assert status.backend is None
        assert status.suffix_memo is None
        assert status.memo_hits == 0 and status.memo_misses == 0
        panel = format_status("store.jsonl", {}, status)
        assert "fast path" not in panel

    def _events_with_fastpath(self):
        events = load_telemetry(TELEMETRY)
        for event in events:
            if event["event"] == "campaign_begin":
                event["backend"] = "vector"
                event["suffix_memo"] = True
        return events

    def test_backend_and_memo_flag_rendered(self):
        status = aggregate_events(self._events_with_fastpath())
        assert status.backend == "vector"
        assert status.suffix_memo is True
        panel = format_status("store.jsonl", {}, status)
        assert "fast path: backend=vector, suffix memo on" in panel

    def test_memo_counters_from_cell_profiles(self):
        events = self._events_with_fastpath()
        ts = events[-1]["ts"]
        events.append({"event": "cell_profile", "ts": ts,
                       "profile": {"counters": {"memo_hits": 3,
                                                "memo_misses": 1}}})
        status = aggregate_events(events)
        assert status.memo_hits == 3 and status.memo_misses == 1
        panel = format_status("store.jsonl", {}, status)
        assert "3/4 memo hits (75%)" in panel

    def test_campaign_profile_totals_preferred(self):
        # The driver's campaign_profile summary already sums the
        # cells; counting both would double every hit.
        events = self._events_with_fastpath()
        ts = events[-1]["ts"]
        events.append({"event": "cell_profile", "ts": ts,
                       "profile": {"counters": {"memo_hits": 3,
                                                "memo_misses": 1}}})
        events.append({"event": "campaign_profile", "ts": ts,
                       "profile": {"counters": {"memo_hits": 3,
                                                "memo_misses": 1,
                                                "memo_collisions": 1}}})
        status = aggregate_events(events)
        assert status.memo_hits == 3 and status.memo_misses == 1
        assert status.memo_collisions == 1
        assert "1 digest collisions" in format_status(
            "store.jsonl", {}, status)

    def test_malformed_profile_events_tolerated(self):
        events = self._events_with_fastpath()
        ts = events[-1]["ts"]
        events.append({"event": "cell_profile", "ts": ts})
        events.append({"event": "cell_profile", "ts": ts,
                       "profile": "not-a-dict"})
        events.append({"event": "cell_profile", "ts": ts,
                       "profile": {"counters": {"memo_hits": "bogus"}}})
        status = aggregate_events(events)
        assert status.memo_hits == 0
