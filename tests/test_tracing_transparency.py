"""Tracing must observe, never perturb: traced and untraced runs agree.

Also checks sink fan-out and the event-stream sanity properties the
reliability analyses rely on (per-core chronological order, writes
before reads for registers).
"""

import numpy as np

from repro.kernels.registry import get_workload
from repro.kernels.workload import run_workload
from repro.reliability.liveness import AceAccumulator, OccupancyAccumulator
from repro.sim.gpu import Gpu
from repro.sim.tracing import (
    TRACE_SCHEMA_VERSION,
    CompositeSink,
    EventRecorder,
    JsonlTraceSink,
    TraceSink,
    read_trace_events,
)
from tests.conftest import MINI_AMD, MINI_NVIDIA


class TestTransparency:
    def _compare(self, config, workload_name):
        workload = get_workload(workload_name, "tiny")
        bare = run_workload(Gpu(config), workload)
        sink = CompositeSink(
            AceAccumulator(config), OccupancyAccumulator(config), EventRecorder()
        )
        traced = run_workload(Gpu(config, sink=sink), workload)
        assert bare.cycles == traced.cycles
        for name in bare.outputs:
            assert np.array_equal(bare.outputs[name], traced.outputs[name])

    def test_sass_traced_equals_untraced(self):
        self._compare(MINI_NVIDIA, "matrixMul")

    def test_si_traced_equals_untraced(self):
        self._compare(MINI_AMD, "scan")


class TestEventStream:
    def _recorded(self, config, workload_name):
        recorder = EventRecorder()
        workload = get_workload(workload_name, "tiny")
        run_workload(Gpu(config, sink=recorder), workload)
        return recorder

    def test_per_core_chronological_order(self):
        recorder = self._recorded(MINI_NVIDIA, "reduction")
        last = {}
        for cycle, core, _row, _mask, _w in recorder.reg_events:
            assert cycle >= last.get(core, 0)
            last[core] = cycle

    def test_registers_written_before_read(self):
        """No kernel reads an uninitialised register row."""
        recorder = self._recorded(MINI_NVIDIA, "vectoradd")
        written = set()
        for _cycle, core, row, mask, is_write in recorder.reg_events:
            if is_write:
                written.add((core, row))
            else:
                assert (core, row) in written

    def test_lmem_written_before_read(self):
        recorder = self._recorded(MINI_NVIDIA, "matrixMul")
        written = set()
        for _cycle, core, words, is_write in recorder.lmem_events:
            if is_write:
                written.update((core, w) for w in words)
            else:
                for word in words:
                    assert (core, word) in written

    def test_end_cycle_recorded(self):
        recorder = self._recorded(MINI_AMD, "vectoradd")
        assert recorder.end_cycle is not None and recorder.end_cycle > 0

    def test_alloc_free_balance(self):
        recorder = self._recorded(MINI_AMD, "histogram")
        balance = 0
        for *_rest, kind in recorder.block_events:
            balance += 1 if kind == "alloc" else -1
            assert balance >= 0
        assert balance == 0


class TestCompositeSink:
    def test_fan_out(self):
        a, b = EventRecorder(), EventRecorder()
        composite = CompositeSink(a, b, None)
        composite.on_reg_access(1, 0, 2, 0xF, True)
        composite.on_lmem_access(2, 0, np.array([1]), False)
        composite.on_block_alloc(0, 0, 64, 128)
        composite.on_block_free(9, 0, 64, 128)
        composite.on_run_end(10)
        for sink in (a, b):
            assert len(sink.reg_events) == 1
            assert len(sink.lmem_events) == 1
            assert len(sink.block_events) == 2
            assert sink.end_cycle == 10

    def test_base_sink_is_noop(self):
        sink = TraceSink()
        sink.on_reg_access(0, 0, 0, 0, False)
        sink.on_lmem_access(0, 0, np.array([0]), True)
        sink.on_block_alloc(0, 0, 0, 0)
        sink.on_block_free(0, 0, 0, 0)
        sink.on_run_end(0)


class TestJsonlTraceSink:
    def test_round_trips_a_real_run(self, tmp_path):
        """A traced run's JSONL file replays to the recorder's stream."""
        path = tmp_path / "trace.jsonl"
        recorder = EventRecorder()
        workload = get_workload("vectoradd", "tiny")
        run_workload(Gpu(MINI_NVIDIA,
                         sink=CompositeSink(recorder, JsonlTraceSink(path))),
                     workload)
        events = read_trace_events(path)
        assert events and all(e["v"] == TRACE_SCHEMA_VERSION for e in events)
        assert events[-1]["event"] == "run_end"
        assert events[-1]["cycle"] == recorder.end_cycle
        regs = [e for e in events if e["event"] == "reg_access"]
        assert [(e["cycle"], e["core"], e["row"], e["mask"], e["is_write"])
                for e in regs] == recorder.reg_events
        lmems = [e for e in events if e["event"] == "lmem_access"]
        assert [(e["cycle"], e["core"], tuple(e["words"]), e["is_write"])
                for e in lmems] == recorder.lmem_events

    def test_values_are_plain_json_scalars(self, tmp_path):
        # numpy inputs must land as native ints/bools on disk.
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.on_reg_access(np.int64(5), np.int32(0), 2, np.int64(0xF),
                               np.bool_(True))
            sink.on_lmem_access(6, 0, np.array([3, 4]), False)
        (reg, lmem) = read_trace_events(path)
        assert reg == {"v": TRACE_SCHEMA_VERSION, "event": "reg_access",
                       "cycle": 5, "core": 0, "row": 2, "mask": 15,
                       "is_write": True}
        assert lmem["words"] == [3, 4]

    def test_run_end_closes_the_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.on_run_end(42)
        assert sink._handle is None
        sink.on_reg_access(0, 0, 0, 0, True)  # after close: ignored
        assert read_trace_events(path) == [
            {"v": TRACE_SCHEMA_VERSION, "event": "run_end", "cycle": 42}]

    def test_traced_run_is_unperturbed(self, tmp_path):
        workload = get_workload("vectoradd", "tiny")
        bare = run_workload(Gpu(MINI_NVIDIA), workload)
        traced = run_workload(
            Gpu(MINI_NVIDIA, sink=JsonlTraceSink(tmp_path / "t.jsonl")),
            workload)
        assert bare.cycles == traced.cycles
        for name in bare.outputs:
            assert np.array_equal(bare.outputs[name], traced.outputs[name])
