"""Property-based cross-checks of the two ISAs against numpy models.

For randomly drawn operands, a SASS kernel and an SI kernel computing
the same expression must both match the reference — and therefore each
other. This is the property that makes the paper's cross-vendor
comparison meaningful (same benchmark, same numbers, different
microarchitecture).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import u32
from tests.conftest import run_sass, run_si

u32s = st.integers(min_value=0, max_value=0xFFFFFFFF)
f32s = st.floats(width=32, allow_nan=False, allow_infinity=False,
                 min_value=-1e6, max_value=1e6)

_SETTINGS = dict(max_examples=20, deadline=None)


def sass_binop(op: str, a: int, b: int) -> int:
    source = f"""
.kernel t
.regs 8
.smem 0
    MOV32I R1, {a}
    MOV32I R2, {b}
    {op} R0, R1, R2
    S2R R3, SR_TID_X
    SHL R3, R3, 2
    IADD R3, R3, c[0]
    STG [R3], R0
    EXIT
"""
    _, snap = run_sass(source, {"out": 128}, ["out"])
    return int(snap["out"][0])


def si_binop(op: str, a: int, b: int) -> int:
    source = f"""
.kernel t
.vregs 8
.sregs 10
.lds 0
    v_mov_b32 v1, {a}
    v_mov_b32 v2, {b}
    {op} v3, v1, v2
    v_lshlrev_b32 v4, 2, v0
    s_load_dword s6, param[0]
    v_add_i32 v4, v4, s6
    global_store_dword v4, v3
    s_endpgm
"""
    _, snap = run_si(source, {"out": 256}, ["out"])
    return int(snap["out"][0])


class TestIntegerAgreement:
    @settings(**_SETTINGS)
    @given(u32s, u32s)
    def test_add(self, a, b):
        expected = u32(a + b)
        assert sass_binop("IADD", a, b) == expected
        assert si_binop("v_add_i32", a, b) == expected

    @settings(**_SETTINGS)
    @given(u32s, u32s)
    def test_mul_low(self, a, b):
        expected = u32(a * b)
        assert sass_binop("IMUL", a, b) == expected
        assert si_binop("v_mul_lo_i32", a, b) == expected

    @settings(**_SETTINGS)
    @given(u32s, u32s)
    def test_and_or_xor(self, a, b):
        assert sass_binop("AND", a, b) == (a & b)
        assert si_binop("v_and_b32", a, b) == (a & b)
        assert sass_binop("XOR", a, b) == (a ^ b)
        assert si_binop("v_xor_b32", a, b) == (a ^ b)

    @settings(**_SETTINGS)
    @given(u32s, st.integers(min_value=0, max_value=63))
    def test_shifts_agree(self, a, amount):
        expected = u32(a << (amount & 31))
        assert sass_binop("SHL", a, amount) == expected
        # SI shift amount is the *first* source (reversed operands).
        assert si_binop("v_lshlrev_b32", amount, a) == expected


class TestFloatAgreement:
    @settings(**_SETTINGS)
    @given(f32s, f32s)
    def test_fadd(self, x, y):
        from repro.bits import bits_to_float, float_to_bits
        a, b = float_to_bits(x), float_to_bits(y)
        expected = np.float32(np.float32(x) + np.float32(y))
        got_sass = bits_to_float(sass_binop("FADD", a, b))
        got_si = bits_to_float(si_binop("v_add_f32", a, b))
        assert np.float32(got_sass) == expected or (
            np.isnan(expected) and np.isnan(got_sass)
        )
        assert got_sass == got_si

    @settings(**_SETTINGS)
    @given(f32s, f32s)
    def test_fmul_bitexact_cross_isa(self, x, y):
        from repro.bits import float_to_bits
        a, b = float_to_bits(x), float_to_bits(y)
        assert sass_binop("FMUL", a, b) == si_binop("v_mul_f32", a, b)

    @settings(**_SETTINGS)
    @given(f32s, f32s)
    def test_min_max_agree(self, x, y):
        from repro.bits import float_to_bits
        a, b = float_to_bits(x), float_to_bits(y)
        assert sass_binop("FMNMX.MIN", a, b) == si_binop("v_min_f32", a, b)
        assert sass_binop("FMNMX.MAX", a, b) == si_binop("v_max_f32", a, b)


class TestComparisonAgreement:
    @settings(**_SETTINGS)
    @given(u32s, u32s)
    def test_signed_lt(self, a, b):
        sass = f"""
.kernel t
.regs 8
.smem 0
    MOV32I R1, {a}
    MOV32I R2, {b}
    ISETP.LT P0, R1, R2
    SEL R0, 1, RZ, P0
    S2R R3, SR_TID_X
    SHL R3, R3, 2
    IADD R3, R3, c[0]
    STG [R3], R0
    EXIT
"""
        si = f"""
.kernel t
.vregs 8
.sregs 10
.lds 0
    v_mov_b32 v1, {a}
    v_mov_b32 v2, {b}
    v_cmp_lt_i32 vcc, v1, v2
    v_mov_b32 v3, 0
    v_mov_b32 v4, 1
    v_cndmask_b32 v5, v3, v4, vcc
    v_lshlrev_b32 v6, 2, v0
    s_load_dword s6, param[0]
    v_add_i32 v6, v6, s6
    global_store_dword v6, v5
    s_endpgm
"""
        _, sass_snap = run_sass(sass, {"out": 128}, ["out"])
        _, si_snap = run_si(si, {"out": 256}, ["out"])
        from repro.bits import to_signed
        expected = int(to_signed(a) < to_signed(b))
        assert int(sass_snap["out"][0]) == expected
        assert int(si_snap["out"][0]) == expected
