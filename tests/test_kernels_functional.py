"""Functional validation of all 10 benchmarks x 2 ISAs vs numpy references.

These are the integration tests guaranteeing the cross-vendor suite
computes the same thing everywhere — the paper's premise ("the same set
of 10 benchmarks" on all chips).
"""

import numpy as np
import pytest

from repro.arch.presets import list_gpus
from repro.arch.scaling import get_scaled_gpu, list_scaled_gpus
from repro.kernels.registry import KERNEL_NAMES, get_workload, list_workloads
from repro.kernels.workload import run_workload, verify_against_reference
from repro.sim.gpu import Gpu

#: One representative scaled chip per ISA keeps the matrix cheap.
SASS_GPU = "gtx480"
SI_GPU = "hd7970"


@pytest.mark.parametrize("name", KERNEL_NAMES)
@pytest.mark.parametrize("gpu_alias", [SASS_GPU, SI_GPU])
def test_kernel_matches_reference_tiny(name, gpu_alias):
    workload = get_workload(name, "tiny")
    gpu = Gpu(get_scaled_gpu(gpu_alias))
    result = run_workload(gpu, workload)
    problems = verify_against_reference(workload, result.outputs)
    assert problems == [], problems


@pytest.mark.parametrize("gpu_config", list_scaled_gpus(),
                         ids=lambda c: c.microarchitecture)
def test_matrixmul_all_chips_small(gpu_config):
    workload = get_workload("matrixMul", "small")
    result = run_workload(Gpu(gpu_config), workload)
    assert verify_against_reference(workload, result.outputs) == []


def test_full_size_chip_also_works():
    workload = get_workload("reduction", "tiny")
    config = list_gpus()[1]  # full Quadro FX 5600
    result = run_workload(Gpu(config), workload)
    assert verify_against_reference(workload, result.outputs) == []


class TestSuiteStructure:
    def test_ten_benchmarks(self):
        assert len(KERNEL_NAMES) == 10

    def test_paper_figure2_membership(self):
        # Fig. 2 includes exactly the local-memory users: 7 of 10,
        # excluding gaussian, kmeans and vectoradd.
        workloads = list_workloads("tiny")
        users = {w.name for w in workloads if w.uses_local_memory}
        assert users == {
            "backprop", "dwtHaar1D", "histogram", "matrixMul",
            "reduction", "scan", "transpose",
        }

    def test_both_isas_everywhere(self):
        for workload in list_workloads("tiny"):
            assert workload.program("sass").isa == "sass"
            assert workload.program("si").isa == "si"

    def test_declared_lmem_matches_flag(self):
        for workload in list_workloads("tiny"):
            for isa in ("sass", "si"):
                has = any(p.local_memory_bytes > 0
                          for p in workload.all_programs(isa))
                assert has == workload.uses_local_memory, workload.name

    def test_workloads_cached(self):
        assert get_workload("scan", "tiny") is get_workload("scan", "tiny")

    def test_unknown_name_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="unknown benchmark"):
            get_workload("mandelbrot")

    def test_unknown_scale_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="unknown scale"):
            get_workload("scan", "huge")


class TestCrossIsaAgreement:
    @pytest.mark.parametrize("name", ["reduction", "scan", "histogram", "kmeans"])
    def test_integer_kernels_agree_across_vendors(self, name):
        """Bit-exact integer outputs must agree between AMD and NVIDIA."""
        workload = get_workload(name, "tiny")
        sass = run_workload(Gpu(get_scaled_gpu(SASS_GPU)), workload)
        si = run_workload(Gpu(get_scaled_gpu(SI_GPU)), workload)
        for buffer in workload.output_buffers:
            assert np.array_equal(sass.outputs[buffer], si.outputs[buffer]), buffer

    @pytest.mark.parametrize("name", ["vectoradd", "matrixMul", "dwtHaar1D",
                                      "transpose", "backprop"])
    def test_float_kernels_agree_bitexact(self, name):
        """Same operation order in both ISAs -> bit-identical float outputs."""
        workload = get_workload(name, "tiny")
        sass = run_workload(Gpu(get_scaled_gpu(SASS_GPU)), workload)
        si = run_workload(Gpu(get_scaled_gpu(SI_GPU)), workload)
        for buffer in workload.output_buffers:
            assert np.array_equal(sass.outputs[buffer], si.outputs[buffer]), buffer
