"""Workload/buffer model and golden-run reuse tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels.registry import get_workload
from repro.kernels.workload import BufferSpec, run_workload
from repro.reliability.campaign import run_cell
from repro.reliability.fi import run_golden
from repro.sim.gpu import Gpu
from tests.conftest import MINI_NVIDIA


class TestBufferSpec:
    def test_data_buffer(self):
        spec = BufferSpec("a", data=np.zeros(4, dtype=np.float32))
        assert spec.size_bytes == 16

    def test_sized_buffer(self):
        spec = BufferSpec("a", nbytes=64)
        assert spec.size_bytes == 64

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError):
            BufferSpec("a")


class TestWorkloadExecution:
    def test_gaussian_multi_launch(self):
        workload = get_workload("gaussian", "tiny")
        result = run_workload(Gpu(MINI_NVIDIA), workload)
        # N=8 -> 7 iterations x (Fan1 + Fan2).
        assert result.num_launches == 14
        assert result.cycles == sum(result.launch_cycles) or result.cycles > 0

    def test_single_launch_kernels(self):
        workload = get_workload("transpose", "tiny")
        result = run_workload(Gpu(MINI_NVIDIA), workload)
        assert result.num_launches == 1

    def test_outputs_are_u32_words(self):
        workload = get_workload("vectoradd", "tiny")
        result = run_workload(Gpu(MINI_NVIDIA), workload)
        assert result.outputs["c"].dtype == np.uint32

    def test_missing_isa_rejected(self):
        workload = get_workload("vectoradd", "tiny")
        with pytest.raises(ConfigError):
            workload.program("ptx")

    def test_all_programs_list(self):
        gaussian = get_workload("gaussian", "tiny")
        assert len(gaussian.all_programs("sass")) == 2
        vadd = get_workload("vectoradd", "tiny")
        assert len(vadd.all_programs("si")) == 1


class TestGoldenReuse:
    def test_run_cell_accepts_precomputed_golden(self):
        workload = get_workload("histogram", "tiny")
        golden = run_golden(MINI_NVIDIA, workload)
        cell_a = run_cell(MINI_NVIDIA, "histogram", scale="tiny", samples=25,
                          seed=9, golden=golden)
        cell_b = run_cell(MINI_NVIDIA, "histogram", scale="tiny", samples=25,
                          seed=9)
        assert cell_a.cycles == cell_b.cycles
        for structure in cell_a.fi:
            assert cell_a.fi[structure].avf == cell_b.fi[structure].avf

    def test_golden_exposes_ace_and_occupancy(self):
        workload = get_workload("scan", "tiny")
        golden = run_golden(MINI_NVIDIA, workload)
        assert golden.cycles > 0
        assert golden.ace.total_cycles == golden.cycles
        assert golden.occupancy.total_cycles == golden.cycles
        assert 0 < golden.occupancy.occupancy("register_file") <= 1
