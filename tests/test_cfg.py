"""Control-flow analysis (immediate post-dominator) tests."""

from repro.isa.sass.parser import assemble_sass
from repro.isa.sass.cfg import build_cfg, immediate_postdominators
from repro.sim.simt_stack import NO_RECONV


def asm(body: str):
    return assemble_sass(f".kernel t\n.regs 8\n{body}\n")


class TestIpdom:
    def test_if_then_reconverges_at_join(self):
        program = asm(
            "ISETP.LT P0, R0, R1\n"   # 0
            "@P0 BRA skip\n"          # 1
            "IADD R0, R0, 1\n"        # 2
            "skip:\n"
            "IADD R0, R0, 2\n"        # 3
            "EXIT"                    # 4
        )
        table = immediate_postdominators(program)
        assert table[1] == 3

    def test_if_else_reconverges_after_both(self):
        program = asm(
            "@P0 BRA else_b\n"        # 0
            "IADD R0, R0, 1\n"        # 1
            "BRA join\n"              # 2
            "else_b:\n"
            "IADD R0, R0, 2\n"        # 3
            "join:\n"
            "EXIT"                    # 4
        )
        table = immediate_postdominators(program)
        assert table[0] == 4
        assert table[2] == 4  # unconditional branch trivially post-dominated

    def test_loop_backedge(self):
        program = asm(
            "loop:\n"
            "IADD R0, R0, 1\n"        # 0
            "ISETP.LT P0, R0, R1\n"   # 1
            "@P0 BRA loop\n"          # 2
            "EXIT"                    # 3
        )
        table = immediate_postdominators(program)
        assert table[2] == 3

    def test_branch_to_exit_no_reconv(self):
        program = asm(
            "@P0 BRA done\n"          # 0
            "EXIT\n"                  # 1
            "done:\n"
            "EXIT"                    # 2
        )
        table = immediate_postdominators(program)
        assert table[0] == NO_RECONV

    def test_guarded_exit_edges(self):
        program = asm(
            "@P0 EXIT\n"              # 0
            "IADD R0, R0, 1\n"        # 1
            "EXIT"                    # 2
        )
        graph = build_cfg(program)
        assert graph.has_edge(0, "exit")
        assert graph.has_edge(0, 1)

    def test_straightline_has_no_branches(self):
        program = asm("IADD R0, R0, 1\nEXIT")
        assert immediate_postdominators(program) == {}
