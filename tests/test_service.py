"""Campaign service: lease state machine, wire protocol, distributed parity.

The acceptance contract for the coordinator/worker subsystem:

* a distributed campaign's store is bit-identical (modulo wall-time
  fields and append order) to the process-pool store for the same spec;
* a store written before the service existed resumes under the
  coordinator with zero jobs executed;
* a worker killed mid-campaign is recovered via lease expiry — the
  campaign completes without losing or duplicating a single job.
"""

import http.client
import json
import threading
import time

import pytest

from repro.engine import clear_memory_cache, run_campaign
from repro.engine.scheduler import JobSpec
from repro.engine.service import (
    CampaignService,
    CampaignWorker,
    CoordinatorClient,
    CoordinatorServer,
    RemoteBackend,
)
from repro.engine.service import protocol
from repro.engine.store import ResultStore
from repro.errors import ConfigError
from repro.spec import CampaignSpec
from repro.arch.structures import DATAPATH_STRUCTURES as STRUCTURES
from repro.telemetry import MemoryTelemetrySink
from tests.conftest import MINI_AMD, MINI_NVIDIA

#: The resume-suite campaign: small, cross-ISA, with real FI shards.
SPEC = CampaignSpec(gpus=(MINI_NVIDIA, MINI_AMD), workloads=("histogram",),
                    scale="tiny", samples=20, seed=3, structures=STRUCTURES)
#: Single-cell variant for the slower fault-injection tests.
SMALL_SPEC = CampaignSpec(gpus=(MINI_NVIDIA,), workloads=("histogram",),
                          scale="tiny", samples=20, seed=3,
                          structures=STRUCTURES)


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    clear_memory_cache()
    yield
    clear_memory_cache()


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _plan_job(tag: str) -> JobSpec:
    fp = tag * (64 // len(tag)) if len(tag) < 64 else tag
    return JobSpec(job_id=fp, kind="plan", fingerprint=fp)


PLAN_PAYLOAD = {"plans": [], "pruned": 0, "wall_time_s": 0.0}


class TestLeaseStateMachine:
    def _backend(self, **kwargs) -> tuple[RemoteBackend, FakeClock]:
        clock = FakeClock()
        backend = RemoteBackend(lease_ttl_s=10.0, clock=clock, **kwargs)
        backend.register("w1")
        return backend, clock

    def test_expired_lease_requeues_at_front(self):
        backend, clock = self._backend()
        first, second = _plan_job("a"), _plan_job("b")
        backend.submit(first, ())
        backend.submit(second, ())
        granted = backend.lease("w1")
        assert granted["job"]["fingerprint"] == first.fingerprint
        clock.advance(11.0)
        backend.tick()
        assert backend.counters["leases_expired"] == 1
        # Recovery preempts fresh work: the expired job comes back
        # before the never-leased one.
        regrant = backend.lease("w1")
        assert regrant["job"]["fingerprint"] == first.fingerprint
        assert backend.lease("w1")["job"]["fingerprint"] == \
            second.fingerprint

    def test_heartbeat_renews_lease(self):
        backend, clock = self._backend()
        backend.submit(_plan_job("a"), ())
        lease_id = backend.lease("w1")["lease_id"]
        clock.advance(6.0)
        assert backend.heartbeat("w1", [lease_id])["renewed"] == 1
        clock.advance(6.0)  # past the original deadline, not the renewed
        backend.tick()
        assert backend.counters["leases_expired"] == 0
        clock.advance(6.0)
        backend.tick()
        assert backend.counters["leases_expired"] == 1

    def test_requeue_cap_fails_the_job_loudly(self):
        backend, clock = self._backend(max_requeues=2)
        job = _plan_job("a")
        future = backend.submit(job, ())
        for _ in range(3):  # attempts 1..3; 3 > max_requeues on expiry
            assert backend.lease("w1")["job"] is not None
            clock.advance(11.0)
            backend.tick()
        assert backend.counters["jobs_failed"] == 1
        assert isinstance(future.exception(), RuntimeError)
        assert backend.lease("w1")["job"] is None

    def test_late_push_beats_expiry_requeue(self):
        """A worker that finished after its lease expired still wins."""
        backend, clock = self._backend()
        job = _plan_job("a")
        future = backend.submit(job, ())
        lease_id = backend.lease("w1")["lease_id"]
        clock.advance(11.0)
        backend.tick()  # expired: job re-queued
        response = backend.push("w1", job.fingerprint, "plan",
                                dict(PLAN_PAYLOAD), lease_id=lease_id)
        assert response == {"ok": True, "duplicate": False}
        assert future.result(timeout=1.0)["plans"] == []
        # The re-queued copy is skipped, not handed out again.
        assert backend.lease("w2")["job"] is None

    def test_duplicate_push_is_idempotent(self):
        backend, _ = self._backend()
        job = _plan_job("a")
        backend.submit(job, ())
        lease = backend.lease("w1")
        first = backend.push("w1", job.fingerprint, "plan",
                             dict(PLAN_PAYLOAD),
                             lease_id=lease["lease_id"])
        again = backend.push("w2", job.fingerprint, "plan",
                             dict(PLAN_PAYLOAD))
        assert first == {"ok": True, "duplicate": False}
        assert again == {"ok": True, "duplicate": True}
        assert backend.counters["pushes_ok"] == 1
        assert backend.counters["pushes_duplicate"] == 1

    @pytest.mark.parametrize("fingerprint,kind,payload,reason", [
        ("f" * 64, "plan", PLAN_PAYLOAD, "stale fingerprint"),
        (None, "plan", PLAN_PAYLOAD, "missing fingerprint"),
        ("pending", "shard", PLAN_PAYLOAD, "does not match pending"),
        ("pending", "plan", {"wall_time_s": 0.0}, "missing keys"),
        ("pending", "plan", "not an object", "must be an object"),
    ])
    def test_bad_pushes_are_rejected(self, fingerprint, kind, payload,
                                     reason):
        backend, _ = self._backend()
        job = JobSpec(job_id="pending", kind="plan", fingerprint="pending")
        future = backend.submit(job, ())
        response = backend.push("w1", fingerprint, kind, payload)
        assert response["ok"] is False
        assert reason in response["error"]
        assert backend.counters["pushes_rejected"] == 1
        assert not future.done()  # the pending job is untouched

    def test_register_refuses_protocol_mismatch(self):
        backend, _ = self._backend()
        response = backend.register("w2", version=99)
        assert response["ok"] is False and "version" in response["error"]


class TestProtocolCodec:
    def test_gpu_round_trip_is_exact(self):
        decoded = protocol.decode_gpu(json.loads(json.dumps(
            protocol.encode_gpu(MINI_NVIDIA))))
        assert decoded == MINI_NVIDIA

    def test_shard_args_ship_a_golden_marker(self):
        args = ("cfg", "histogram", "tiny", "rr", 100, "goldfp",
                {"big": "blob"}, [1, 2], "transient", {"snap": 1},
                None, False, True)
        encoded = protocol.encode_args("shard", args)
        assert encoded[6] == {protocol.GOLDEN_OUTPUTS_KEY: "goldfp"}
        assert encoded[9] is None  # snapshots rebuilt worker-side
        fetched = []
        decoded = protocol.decode_args(
            "shard", json.loads(json.dumps(encoded)),
            lambda fp: fetched.append(fp) or {"big": "blob"})
        assert decoded[6] == {"big": "blob"} and fetched == ["goldfp"]

    def test_check_payload_contract(self):
        assert protocol.check_payload("plan", dict(PLAN_PAYLOAD)) is None
        assert "missing keys" in protocol.check_payload("plan", {})
        assert "unknown job kind" in protocol.check_payload("cell", {})
        assert "not JSON-serializable" in protocol.check_payload(
            "plan", {"plans": [], "wall_time_s": 0.0, "bad": object()})


class TestHttpLayer:
    @pytest.fixture
    def server(self):
        backend = RemoteBackend(lease_ttl_s=30.0)
        server = CoordinatorServer(backend, port=0)
        server.start()
        yield server
        server.stop()

    def _raw(self, server, method, path, body=None):
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=5.0)
        try:
            conn.request(method, path,
                         body=json.dumps(body) if body is not None
                         else None)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def test_status_codes(self, server):
        assert self._raw(server, "GET", "/nope")[0] == 404
        assert self._raw(server, "GET",
                         protocol.GOLDEN_PATH + "unknown")[0] == 404
        assert self._raw(server, "GET", protocol.STATUS_PATH)[0] == 200
        # A push the backend rejects is an HTTP 409, not a 200.
        status, body = self._raw(server, "POST", protocol.PUSH_PATH,
                                 {"worker_id": "w", "fingerprint": "x",
                                  "kind": "plan", "payload": {}})
        assert status == 409 and body["ok"] is False
        # Submissions are refused when no service queue is attached.
        assert self._raw(server, "POST", protocol.SUBMIT_PATH,
                         {"spec": {}})[0] == 403

    def test_malformed_body_is_a_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=5.0)
        try:
            conn.request("POST", protocol.LEASE_PATH, body="{not json")
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_client_rejects_non_http_urls(self):
        with pytest.raises(ConfigError, match="http://host:port"):
            CoordinatorClient("ftp://example:1")

    def test_segment_replay_is_at_least_once_not_more(self, server,
                                                      tmp_path):
        job = JobSpec(job_id="seg", kind="plan", fingerprint="seg")
        future = server.backend.submit(job, ())
        segment = ResultStore(tmp_path / "segment.jsonl")
        segment.put("seg", "plan", dict(PLAN_PAYLOAD))
        worker = CampaignWorker(server.url, worker_id="replayer",
                                segment_store=segment)
        worker.register()
        worker.replay_segment()
        assert worker.counters["replayed"] == 1
        assert future.result(timeout=1.0)["plans"] == []
        worker.replay_segment()  # a second replay appends nothing
        assert server.backend.counters["pushes_ok"] == 1
        assert server.backend.counters["pushes_duplicate"] == 1


def _strip_times(value):
    if isinstance(value, dict):
        return {k: _strip_times(v) for k, v in value.items()
                if not k.endswith("_time_s")}
    if isinstance(value, list):
        return [_strip_times(v) for v in value]
    return value


def _store_image(path):
    """fingerprint -> (kind, time-stripped payload) plus raw line count."""
    store = ResultStore(path)
    image = {fp: (store.kind_of(fp), _strip_times(store.get(fp)))
             for fp in store._records}
    lines = [line for line in path.read_bytes().split(b"\n")
             if line.strip()]
    return image, len(lines)


def _run_distributed(store, specs, worker_ids=("w1", "w2"), **kwargs):
    """One in-process fleet: the service plus worker threads."""
    service = CampaignService(store, specs, port=0, **kwargs)
    counters = {}

    def body(wid):
        worker = CampaignWorker(service.url, worker_id=wid,
                                poll_s=0.02, give_up_s=15.0)
        counters[wid] = worker.run()

    threads = [threading.Thread(target=body, args=(wid,), daemon=True)
               for wid in worker_ids]
    for thread in threads:
        thread.start()
    stats = service.run()
    for thread in threads:
        thread.join(timeout=15.0)
    return stats, counters


class TestDistributedCampaign:
    def test_distributed_store_matches_pool_store(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr(CampaignService, "SHUTDOWN_LINGER_S", 2.0)
        pool_path = tmp_path / "pool.jsonl"
        run_campaign(SPEC, store=pool_path)
        clear_memory_cache()

        dist_path = tmp_path / "dist.jsonl"
        stats, counters = _run_distributed(
            ResultStore(dist_path), [SPEC])
        pool_image, pool_lines = _store_image(pool_path)
        dist_image, dist_lines = _store_image(dist_path)
        assert dist_image == pool_image
        # No job lost, none appended twice.
        assert dist_lines == pool_lines == len(pool_image)
        assert stats.executed > 0
        executed = sum(c["executed"] for c in counters.values())
        assert executed == sum(c["pushed"] for c in counters.values())
        assert all(c["rejected"] == 0 for c in counters.values())

    def test_pre_service_store_resumes_with_zero_jobs(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setattr(CampaignService, "SHUTDOWN_LINGER_S", 2.0)
        store_path = tmp_path / "store.jsonl"
        first = run_campaign(SPEC, store=store_path)
        assert first.stats.executed > 0
        clear_memory_cache()

        stats, counters = _run_distributed(
            ResultStore(store_path), [SPEC], worker_ids=("w1",))
        assert stats.executed == 0
        assert stats.cached == stats.total
        assert all(c["executed"] == 0 for c in counters.values())

    def test_worker_death_mid_campaign_is_recovered(self, tmp_path,
                                                    monkeypatch):
        """A worker that leases a job and dies never stalls the run."""
        monkeypatch.setattr(CampaignService, "SHUTDOWN_LINGER_S", 2.0)
        pool_path = tmp_path / "pool.jsonl"
        run_campaign(SMALL_SPEC, store=pool_path)
        clear_memory_cache()

        dist_path = tmp_path / "dist.jsonl"
        service = CampaignService(ResultStore(dist_path), [SMALL_SPEC],
                                  port=0, lease_ttl_s=0.6)
        outcome = {}
        service_thread = threading.Thread(
            target=lambda: outcome.update(stats=service.run()),
            daemon=True)
        service_thread.start()

        # The doomed worker: registers, takes one lease, dies without
        # pushing or heartbeating. Its lease must expire and re-queue.
        client = CoordinatorClient(service.url)
        client.post(protocol.REGISTER_PATH,
                    {"worker_id": "doomed",
                     "version": protocol.PROTOCOL_VERSION})
        deadline = time.monotonic() + 15.0
        leased = None
        while leased is None and time.monotonic() < deadline:
            response = client.post(protocol.LEASE_PATH,
                                   {"worker_id": "doomed"})
            leased = response.get("job")
            if leased is None:
                time.sleep(0.02)
        assert leased is not None, "doomed worker never got a lease"

        survivor = CampaignWorker(service.url, worker_id="survivor",
                                  poll_s=0.02, give_up_s=15.0)
        counters = survivor.run()
        service_thread.join(timeout=60.0)
        assert not service_thread.is_alive()

        assert service.backend.counters["leases_expired"] >= 1
        assert outcome["stats"].executed > 0
        pool_image, pool_lines = _store_image(pool_path)
        dist_image, dist_lines = _store_image(dist_path)
        assert dist_image == pool_image
        assert dist_lines == pool_lines  # nothing lost, nothing doubled
        assert counters["rejected"] == 0

    def test_fleet_telemetry_reaches_the_hub(self, tmp_path, monkeypatch):
        monkeypatch.setattr(CampaignService, "SHUTDOWN_LINGER_S", 2.0)
        sink = MemoryTelemetrySink()
        stats, _ = _run_distributed(
            ResultStore(tmp_path / "dist.jsonl"), [SMALL_SPEC],
            worker_ids=("w1",), telemetry=sink)
        events = [e["event"] for e in sink.events]
        assert "worker_register" in events
        assert "lease_grant" in events
        assert "job_push" in events
        assert "campaign_end" in events
        grants = [e for e in sink.events if e["event"] == "lease_grant"]
        pushes = [e for e in sink.events
                  if e["event"] == "job_push" and e["ok"]]
        assert all(e["worker"] == "w1" for e in grants)
        assert len(grants) >= 2  # at least the golden and plan jobs
        assert len(grants) == len(pushes)  # default TTL: nothing expired
        assert stats.executed > 0

    def test_submit_endpoint_queues_specs(self, tmp_path, monkeypatch):
        monkeypatch.setattr(CampaignService, "SHUTDOWN_LINGER_S", 0.2)
        service = CampaignService(
            ResultStore(tmp_path / "s.jsonl"), [], port=0)
        service.server.start()
        try:
            assert service.enqueue_spec(
                {"samples": "not an int"})["ok"] is False
            response = service.enqueue_spec(
                {"gpus": ["gtx480"], "workloads": ["vectoradd"],
                 "scale": "tiny", "samples": 4})
            assert response["ok"] is True
            assert len(service.specs) == 1
        finally:
            service.server.stop()

    def test_serve_refuses_non_specs(self, tmp_path):
        with pytest.raises(ConfigError, match="CampaignSpec"):
            CampaignService(ResultStore(tmp_path / "s.jsonl"),
                            [{"gpus": ["gtx480"]}])
