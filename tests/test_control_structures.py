"""Control-structure fault sites: geometry, banks, apply semantics.

Covers the registry/geometry layer (:mod:`repro.arch.structures`), the
per-core control banks (:mod:`repro.sim.control`) that translate
(word, bit) coordinates into live warp state, the hardware warp-slot
allocation that backs them, and the registry-driven ``FaultPlan``
validation.
"""

import numpy as np
import pytest

from repro.arch.structures import (
    ALL_STRUCTURES,
    CONTROL_STRUCTURES,
    DATAPATH_STRUCTURES,
    NUM_SASS_PREDICATES,
    PREDICATE_FILE,
    SCHED_BARRIER_LO,
    SCHED_FLAGS,
    SCHED_READY_HI,
    SCHED_READY_LO,
    SCHED_WORDS_PER_WARP,
    SCHEDULER_STATE,
    SI_PRED_EXEC_HI,
    SI_PRED_EXEC_LO,
    SI_PRED_SCC,
    SI_PRED_VCC_LO,
    SI_PRED_WORDS_PER_WAVE,
    SIMT_STACK,
    SIMT_STACK_DEPTH,
    SIMT_STACK_ENTRY_WORDS,
    control_words_per_warp,
    exposed_structures,
    structure_exposed,
    structure_info,
    words_per_core,
)
from repro.errors import ConfigError
from repro.sim.faults import FaultPlan, fault_from_flat, sample_faults
from repro.sim.gpu import Gpu
from repro.sim.launch import LaunchConfig, pack_params
from repro.sim.occupancy import block_footprint, max_resident_blocks
from repro.sim.simt_stack import NO_RECONV
from repro.isa.sass.parser import assemble_sass
from repro.isa.si.parser import assemble_si
from tests.conftest import MINI_AMD, MINI_NVIDIA

SASS_BODY = """
.kernel body
.regs 8
.smem 0
    S2R R0, SR_TID_X
    SHL R1, R0, 2
    IADD R2, R1, c[0]
    STG [R2], R0
    EXIT
"""

SI_BODY = """
.kernel body
.vregs 8
.sregs 16
.lds 0
    v_lshlrev_b32 v1, 2, v0
    s_load_dword s6, param[0]
    v_add_i32 v1, v1, s6
    global_store_dword v1, v0
    s_endpgm
"""


def _resident_sass(config=MINI_NVIDIA, source=SASS_BODY, block=(32,)):
    """A core with one resident block (manual dispatch, not drained)."""
    program = assemble_sass(source)
    gpu = Gpu(config)
    base = gpu.mem.alloc("out", 4096).base
    launch = LaunchConfig(program=program, grid=(1,), block=block,
                          params=pack_params(base))
    footprint = block_footprint(config, program, launch)
    cap = max_resident_blocks(config, footprint)
    core = gpu.cores[0]
    core.configure_launch(program, launch, footprint, cap, 0)
    core.add_block(0, (0, 0))
    return gpu, core


def _resident_si(config=MINI_AMD, source=SI_BODY, block=(64,)):
    program = assemble_si(source)
    gpu = Gpu(config)
    base = gpu.mem.alloc("out", 4096).base
    launch = LaunchConfig(program=program, grid=(1,), block=block,
                          params=pack_params(base))
    footprint = block_footprint(config, program, launch)
    cap = max_resident_blocks(config, footprint)
    core = gpu.cores[0]
    core.configure_launch(program, launch, footprint, cap, 0)
    core.add_block(0, (0, 0))
    return gpu, core


class TestRegistryAndGeometry:
    def test_registry_contents(self):
        assert DATAPATH_STRUCTURES == ("register_file", "local_memory")
        assert CONTROL_STRUCTURES == (
            "simt_stack", "predicate_file", "scheduler_state")
        assert ALL_STRUCTURES == DATAPATH_STRUCTURES + CONTROL_STRUCTURES
        for name in ALL_STRUCTURES:
            info = structure_info(name)
            assert info.name == name
            assert info.description

    def test_unknown_structure_names_valid_choices(self):
        with pytest.raises(ConfigError, match="simt_stack"):
            structure_info("l2_cache")
        with pytest.raises(ConfigError, match="known:"):
            FaultPlan(structure="l2_cache", core=0, word=0, bit=0, cycle=0)

    def test_control_plans_validate(self):
        plan = FaultPlan(structure=SIMT_STACK, core=1, word=5, bit=3, cycle=9)
        assert plan.structure == SIMT_STACK

    def test_exposure_by_isa(self):
        assert structure_exposed(MINI_NVIDIA, SIMT_STACK)
        assert not structure_exposed(MINI_AMD, SIMT_STACK)
        for structure in (PREDICATE_FILE, SCHEDULER_STATE,
                          *DATAPATH_STRUCTURES):
            assert structure_exposed(MINI_NVIDIA, structure)
            assert structure_exposed(MINI_AMD, structure)
        assert exposed_structures(MINI_AMD, ALL_STRUCTURES) == (
            "register_file", "local_memory", "predicate_file",
            "scheduler_state")

    def test_words_per_core_geometry(self):
        warps = MINI_NVIDIA.max_warps_per_core
        assert words_per_core(MINI_NVIDIA, SIMT_STACK) == \
            warps * SIMT_STACK_DEPTH * SIMT_STACK_ENTRY_WORDS
        assert words_per_core(MINI_NVIDIA, PREDICATE_FILE) == \
            warps * NUM_SASS_PREDICATES
        assert words_per_core(MINI_NVIDIA, SCHEDULER_STATE) == \
            warps * SCHED_WORDS_PER_WARP
        waves = MINI_AMD.max_warps_per_core
        assert words_per_core(MINI_AMD, PREDICATE_FILE) == \
            waves * SI_PRED_WORDS_PER_WAVE
        assert control_words_per_warp(MINI_AMD, PREDICATE_FILE) == \
            SI_PRED_WORDS_PER_WAVE

    def test_unexposed_structure_raises(self):
        with pytest.raises(ConfigError, match="not exposed"):
            words_per_core(MINI_AMD, SIMT_STACK)
        with pytest.raises(ConfigError, match="not exposed"):
            MINI_AMD.structure_bits(SIMT_STACK)

    def test_structure_bits_consistent_with_geometry(self):
        for config in (MINI_NVIDIA, MINI_AMD):
            for structure in exposed_structures(config, ALL_STRUCTURES):
                assert config.structure_bits(structure) == \
                    words_per_core(config, structure) * 32 * config.num_cores

    def test_fault_from_flat_round_trip_control(self):
        per_core = words_per_core(MINI_NVIDIA, SCHEDULER_STATE)
        flat = (per_core + 7) * 32 + 5  # core 1, word 7, bit 5
        plan = fault_from_flat(MINI_NVIDIA, SCHEDULER_STATE, flat, cycle=11)
        assert (plan.core, plan.word, plan.bit) == (1, 7, 5)
        assert plan.global_word(MINI_NVIDIA) == per_core + 7

    def test_sampling_covers_control_population(self):
        rng = np.random.default_rng(0)
        plans = sample_faults(MINI_NVIDIA, SIMT_STACK, total_cycles=1000,
                              count=64, rng=rng)
        per_core = words_per_core(MINI_NVIDIA, SIMT_STACK)
        assert all(p.structure == SIMT_STACK for p in plans)
        assert all(0 <= p.word < per_core for p in plans)
        assert all(0 <= p.core < MINI_NVIDIA.num_cores for p in plans)


class TestWarpSlotAllocation:
    def test_slots_assigned_in_order_and_freed(self):
        gpu, core = _resident_sass()
        assert [w.hw_slot for w in core.warps] == [0]
        block = core.blocks[0]
        core._retire_block(block)
        assert 0 in core._free_warp_slots

    def test_slots_distinct_across_blocks(self):
        gpu, core = _resident_sass(block=(64,))
        core.add_block(1, (1, 0))
        slots = [w.hw_slot for w in core.warps]
        assert len(slots) == len(set(slots))


class TestSimtStackBank:
    def test_pc_flip_changes_live_stack(self):
        gpu, core = _resident_sass()
        bank = core.control[SIMT_STACK]
        warp = core.warps[0]
        assert warp.hw_slot == 0
        before = warp.stack.entries[0].pc
        bank.flip_bit(0, 2)  # slot 0, level 0, field pc, bit 2
        assert warp.stack.entries[0].pc == before ^ 4

    def test_mask_flip(self):
        gpu, core = _resident_sass()
        bank = core.control[SIMT_STACK]
        warp = core.warps[0]
        before = warp.stack.entries[0].mask
        bank.flip_bits(1, 0b11)  # field mask
        assert warp.stack.entries[0].mask == before ^ 0b11

    def test_reconv_all_ones_round_trips_no_reconv(self):
        gpu, core = _resident_sass()
        bank = core.control[SIMT_STACK]
        warp = core.warps[0]
        assert warp.stack.entries[0].reconv == NO_RECONV
        assert bank._read(2) == 0xFFFFFFFF
        bank.flip_bit(2, 0)  # clears bit 0 of the all-ones encoding
        assert warp.stack.entries[0].reconv == 0xFFFFFFFE
        bank.flip_bit(2, 0)
        assert warp.stack.entries[0].reconv == NO_RECONV

    def test_unoccupied_slot_and_dead_level_are_noops(self):
        gpu, core = _resident_sass()
        bank = core.control[SIMT_STACK]
        words_per_warp = SIMT_STACK_DEPTH * SIMT_STACK_ENTRY_WORDS
        bank.flip_bit(5 * words_per_warp, 0)      # slot 5: empty
        bank.flip_bit(SIMT_STACK_ENTRY_WORDS, 0)  # level 1: beyond depth
        assert core.warps[0].stack.entries[0].pc == 0

    def test_word_out_of_range(self):
        gpu, core = _resident_sass()
        with pytest.raises(ConfigError, match="out of range"):
            core.control[SIMT_STACK].flip_bit(10 ** 6, 0)


class TestSassPredicateBank:
    def test_flip_sets_lane_bits(self):
        gpu, core = _resident_sass()
        bank = core.control[PREDICATE_FILE]
        warp = core.warps[0]
        bank.flip_bits(2, 0b101)  # slot 0, P2, lanes 0 and 2
        assert warp.preds[2][0] and warp.preds[2][2]
        assert not warp.preds[2][1]
        assert bank._read(2) == 0b101

    def test_force_bit_sticks_across_overwrites(self):
        gpu, core = _resident_sass()
        bank = core.control[PREDICATE_FILE]
        warp = core.warps[0]
        bank.force_bit(0, 4, 1)  # P0 lane 4 stuck at 1
        assert warp.preds[0][4]
        warp.preds[0][:] = False  # program overwrites the predicate
        bank.reassert()
        assert warp.preds[0][4]


class TestSiPredicateBank:
    def test_exec_and_vcc_lo_hi_mapping(self):
        gpu, core = _resident_si()
        bank = core.control[PREDICATE_FILE]
        wave = core.warps[0]
        wave.exec_mask = (1 << 64) - 1
        bank.flip_bit(SI_PRED_EXEC_LO, 0)
        assert wave.exec_mask == (1 << 64) - 2
        bank.flip_bit(SI_PRED_EXEC_HI, 31)
        assert wave.exec_mask == (1 << 64) - 2 - (1 << 63)
        bank.flip_bit(SI_PRED_VCC_LO, 3)
        assert wave.vcc == 8

    def test_scc_bit0_toggles_others_dead(self):
        gpu, core = _resident_si()
        bank = core.control[PREDICATE_FILE]
        wave = core.warps[0]
        assert not wave.scc
        bank.flip_bit(SI_PRED_SCC, 0)
        assert wave.scc
        bank.flip_bit(SI_PRED_SCC, 7)  # unimplemented storage: no-op
        assert wave.scc


class TestSchedulerStateBank:
    @pytest.mark.parametrize("make", [_resident_sass, _resident_si],
                             ids=["sass", "si"])
    def test_ready_cycle_lo_hi(self, make):
        gpu, core = make()
        bank = core.control[SCHEDULER_STATE]
        warp = core.warps[0]
        warp.ready_cycle = 10
        bank.flip_bit(SCHED_READY_LO, 0)
        assert warp.ready_cycle == 11
        bank.flip_bit(SCHED_READY_HI, 0)
        assert warp.ready_cycle == 11 + (1 << 32)

    def test_barrier_flags(self):
        gpu, core = _resident_sass()
        bank = core.control[SCHEDULER_STATE]
        warp = core.warps[0]
        bank.flip_bit(SCHED_FLAGS, 0)
        assert warp.at_barrier
        bank.flip_bit(SCHED_FLAGS, 0)
        assert not warp.at_barrier
        bank.flip_bit(SCHED_BARRIER_LO, 5)
        assert warp.barrier_arrival == 32

    def test_stuck_ready_bit_reasserts_each_issue(self):
        gpu, core = _resident_sass()
        bank = core.control[SCHEDULER_STATE]
        warp = core.warps[0]
        bank.force_bit(SCHED_READY_LO, 3, 1)
        assert warp.ready_cycle & 8
        warp.ready_cycle = 0  # scheduler rewrites the counter
        core._reassert_control()
        assert warp.ready_cycle == 8


class TestControlSnapshotRestore:
    @pytest.mark.parametrize("make,structure,word", [
        (_resident_sass, SIMT_STACK, 1),
        (_resident_sass, PREDICATE_FILE, 3),
        (_resident_sass, SCHEDULER_STATE, SCHED_READY_LO),
        (_resident_si, PREDICATE_FILE, SI_PRED_EXEC_LO),
        (_resident_si, SCHEDULER_STATE, SCHED_BARRIER_LO),
    ], ids=["sass-stack", "sass-pred", "sass-sched", "si-pred", "si-sched"])
    def test_stuck_at_overlay_survives_restore(self, make, structure, word):
        gpu, core = make()
        core.control[structure].force_bit(word, 2, 1)
        state = core.snapshot_state()

        fresh_gpu, fresh_core = make()
        fresh_core.restore_state(
            state, program=core.program, launch=core.launch,
            footprint=core.footprint)
        bank = fresh_core.control[structure]
        assert bank._forced == {word: (0xFFFFFFFF, 1 << 2)}
        assert fresh_core._control_dirty
        # The overlay keeps asserting itself after the restore.
        bank._write(word, 0)
        fresh_core._reassert_control()
        assert bank._read(word) & (1 << 2)

    def test_warp_slots_round_trip(self):
        gpu, core = _resident_sass(block=(64,))
        state = core.snapshot_state()
        fresh_gpu, fresh_core = _resident_sass(block=(64,))
        fresh_core._retire_block(fresh_core.blocks[0])
        fresh_core.restore_state(
            state, program=core.program, launch=core.launch,
            footprint=core.footprint)
        assert [w.hw_slot for w in fresh_core.warps] == \
            [w.hw_slot for w in core.warps]
        assert fresh_core._free_warp_slots == core._free_warp_slots


class TestFetchHardening:
    def test_wild_pc_is_illegal_instruction_not_crash(self):
        from repro.errors import IllegalInstruction
        gpu, core = _resident_sass()
        core.control[SIMT_STACK]._write(0, 10 ** 6)  # pc far outside program
        with pytest.raises(IllegalInstruction, match="pc"):
            while core.has_work:
                core.run_until_retire()

    def test_wild_pc_si(self):
        from repro.errors import IllegalInstruction
        gpu, core = _resident_si()
        core.warps[0].pc = -3
        with pytest.raises(IllegalInstruction, match="pc"):
            while core.has_work:
                core.run_until_retire()
