"""Directed semantic invariants per benchmark (beyond reference equality).

Each benchmark has algebraic properties that must hold regardless of
scheduling or chip: histograms conserve mass, scans end in segment
sums, transposition is an involution, elimination produces triangular
multipliers. These catch subtle simulator bugs (e.g. lost atomics,
mis-ordered barriers) that a single reference comparison might mask.
"""

import numpy as np
import pytest

from repro.kernels.registry import get_workload
from repro.kernels.workload import run_workload
from repro.sim.gpu import Gpu
from tests.conftest import MINI_AMD, MINI_NVIDIA


def outputs_of(name, config, scale="tiny"):
    workload = get_workload(name, scale)
    return workload, run_workload(Gpu(config), workload).outputs


@pytest.mark.parametrize("config", [MINI_NVIDIA, MINI_AMD],
                         ids=["sass", "si"])
class TestInvariants:
    def test_histogram_conserves_mass(self, config):
        workload, outputs = outputs_of("histogram", config)
        n = next(s.data.size for s in workload.buffers if s.name == "data")
        assert int(outputs["bins"].sum()) == n

    def test_scan_last_equals_segment_sum(self, config):
        workload, outputs = outputs_of("scan", config)
        data = next(s.data for s in workload.buffers if s.name == "in")
        block = 128
        scanned = outputs["out"].view(np.int32).reshape(-1, block)
        segments = data.reshape(-1, block)
        assert np.array_equal(scanned[:, -1], segments.sum(axis=1, dtype=np.int32))

    def test_scan_is_monotone_in_prefix_count(self, config):
        workload, outputs = outputs_of("scan", config)
        data = next(s.data for s in workload.buffers if s.name == "in")
        scanned = outputs["out"].view(np.int32).reshape(-1, 128)
        # Differences of the inclusive scan recover the input.
        recovered = np.diff(scanned, axis=1, prepend=0)
        assert np.array_equal(recovered.reshape(-1), data)

    def test_reduction_partials_sum_to_total(self, config):
        workload, outputs = outputs_of("reduction", config)
        data = next(s.data for s in workload.buffers if s.name == "in")
        total = int(outputs["partial"].view(np.int32).astype(np.int64).sum())
        assert total == int(data.astype(np.int64).sum())

    def test_transpose_involution(self, config):
        workload, outputs = outputs_of("transpose", config)
        data = next(s.data for s in workload.buffers if s.name == "in")
        n = data.shape[0]
        out = outputs["out"].view(np.float32).reshape(n, n)
        assert np.array_equal(out.T, data)

    def test_gaussian_multipliers_strictly_lower_triangular(self, config):
        workload, outputs = outputs_of("gaussian", config)
        n = int(np.sqrt(outputs["m"].size))
        m = outputs["m"].view(np.float32).reshape(n, n)
        upper = np.triu_indices(n)
        assert (m[upper] == 0).all()

    def test_gaussian_eliminates_pivot_columns(self, config):
        workload, outputs = outputs_of("gaussian", config)
        m = outputs["m"].view(np.float32)
        n = int(np.sqrt(m.size))
        a = outputs["a"].view(np.float32).reshape(n, n + 1)
        # Below-diagonal entries should be (numerically) eliminated.
        below = np.tril_indices(n, k=-1)
        assert np.all(np.abs(a[below]) < 1e-3 * np.abs(a).max())

    def test_kmeans_assignments_in_range(self, config):
        workload, outputs = outputs_of("kmeans", config)
        k = 4  # tiny scale
        assign = outputs["assign"]
        assert (assign < k).all()

    def test_kmeans_assignment_is_argmin(self, config):
        workload, outputs = outputs_of("kmeans", config)
        points = next(s.data for s in workload.buffers if s.name == "points")
        centroids = next(s.data for s in workload.buffers if s.name == "centroids")
        assign = outputs["assign"][: points.shape[0]]
        # Any other centroid must be at least as far (allow fp ties).
        for i in range(0, points.shape[0], 37):
            dists = ((points[i] - centroids) ** 2).sum(axis=1)
            assert dists[assign[i]] <= dists.min() * (1 + 1e-5) + 1e-6

    def test_dwt_energy_preserved(self, config):
        """Haar transform is orthogonal: energy is conserved per pair."""
        workload, outputs = outputs_of("dwtHaar1D", config)
        signal = next(s.data for s in workload.buffers if s.name == "in")
        approx = outputs["approx"].view(np.float32)
        detail = outputs["detail"].view(np.float32)
        energy_in = (signal.astype(np.float64) ** 2).sum()
        energy_out = (approx.astype(np.float64) ** 2
                      + detail.astype(np.float64) ** 2).sum()
        assert energy_out == pytest.approx(energy_in, rel=1e-4)

    def test_backprop_partials_match_blockwise_dot(self, config):
        workload, outputs = outputs_of("backprop", config)
        inputs = next(s.data for s in workload.buffers if s.name == "input")
        weights = next(s.data for s in workload.buffers if s.name == "weights")
        partial = outputs["partial"].view(np.float32).reshape(-1, 16)
        chunks = inputs.size // 16
        for c in range(chunks):
            expected = (weights[c * 16:(c + 1) * 16]
                        * inputs[c * 16:(c + 1) * 16, None]).sum(axis=0)
            assert np.allclose(partial[c], expected, rtol=1e-4, atol=1e-5)

    def test_matrixmul_identity(self, config):
        """Whole-pipeline check with a crafted input: A @ I == A."""
        # Run the stock workload, then reuse its programs with identity B.
        from repro.sim.launch import LaunchConfig, pack_params
        workload = get_workload("matrixMul", "tiny")
        n = 16
        rng = np.random.default_rng(5)
        a = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        identity = np.eye(n, dtype=np.float32)
        gpu = Gpu(config)
        base_a = gpu.mem.alloc_from("a", a).base
        base_b = gpu.mem.alloc_from("b", identity).base
        buf_c = gpu.mem.alloc("c", n * n * 4)
        program = workload.program(config.isa)
        gpu.launch(LaunchConfig(
            program=program, grid=(1, 1), block=(16, 16),
            params=pack_params(n, base_a, base_b, buf_c.base),
        ))
        out = gpu.mem.read_host(buf_c, np.float32).reshape(n, n)
        assert np.array_equal(out, a)

    def test_instruction_counter_positive(self, config):
        gpu = Gpu(config)
        run_workload(gpu, get_workload("vectoradd", "tiny"))
        assert gpu.instructions_issued > 0
