"""Result store round-trips and job fingerprint invalidation."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.engine.fingerprint import (
    cell_params,
    fingerprint,
    golden_params,
    plan_params,
    shard_params,
)
from repro.engine.jobs import decode_outputs, encode_outputs
from repro.engine.store import ResultStore
from repro.reliability.liveness import AceMode
from tests.conftest import MINI_AMD, MINI_NVIDIA


class TestResultStore:
    def test_round_trip_across_reopen(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            store.put("fp1", "golden", {"cycles": 123})
            store.put("fp2", "shard", {"results": [[1, 2]]})
        reloaded = ResultStore(path)
        assert "fp1" in reloaded and "fp2" in reloaded
        assert reloaded.get("fp1") == {"cycles": 123}
        assert reloaded.get("fp2") == {"results": [[1, 2]]}
        assert reloaded.kind_of("fp1") == "golden"
        assert len(reloaded) == 2
        assert reloaded.counts_by_kind() == {"golden": 1, "shard": 1}

    def test_put_is_idempotent(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            store.put("fp", "cell", {"v": 1})
            store.put("fp", "cell", {"v": 2})  # ignored: already recorded
        assert ResultStore(path).get("fp") == {"v": 1}
        assert len(path.read_text().splitlines()) == 1

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            store.put("fp1", "golden", {"cycles": 1})
            store.put("fp2", "golden", {"cycles": 2})
        path.write_text(path.read_text()[:-20])  # kill mid-append
        reloaded = ResultStore(path)
        assert reloaded.dropped_lines == 1
        assert "fp1" in reloaded and "fp2" not in reloaded

    def test_tail_torn_inside_utf8_sequence_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        good = json.dumps({"fp": "fp1", "kind": "golden",
                           "payload": {"cycles": 1}})
        # A record torn mid-multi-byte sequence ('é' loses its second
        # byte): the tail is not even valid UTF-8, so a text-mode
        # reader would raise UnicodeDecodeError for the whole file
        # instead of dropping the one torn line.
        torn = '{"fp": "fp2", "kind": "cell", "payload": {"w": "café'
        path.write_bytes(good.encode("utf-8") + b"\n" +
                         torn.encode("utf-8")[:-1])
        reloaded = ResultStore(path)
        assert reloaded.dropped_lines == 1
        assert "fp1" in reloaded and "fp2" not in reloaded
        # The surviving store keeps appending normally.
        with reloaded:
            reloaded.put("fp3", "golden", {"cycles": 3})
        assert "fp3" in ResultStore(path)

    def test_non_record_line_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('{"fp": "x"}\n[1, 2]\n')
        reloaded = ResultStore(path)
        assert reloaded.dropped_lines == 2
        assert len(reloaded) == 0

    def test_memory_store_does_not_persist(self, tmp_path):
        store = ResultStore(None)
        store.put("fp", "golden", {"cycles": 9})
        assert store.get("fp") == {"cycles": 9}
        assert store.path is None

    def test_missing_fingerprint(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        assert store.get("nope") is None
        assert store.kind_of("nope") is None
        assert "nope" not in store


class TestOutputCodec:
    def test_outputs_round_trip_bit_exact(self):
        outputs = {
            "a": np.arange(17, dtype=np.uint32),
            "b": np.array([[1.5, -0.0], [np.inf, 3.25]], dtype=np.float32),
        }
        decoded = decode_outputs(json.loads(json.dumps(encode_outputs(outputs))))
        for name, want in outputs.items():
            assert decoded[name].dtype == want.dtype
            assert decoded[name].shape == want.shape
            assert np.array_equal(
                decoded[name].view(np.uint8), want.view(np.uint8))


class TestFingerprints:
    def test_same_params_same_fingerprint(self):
        a = fingerprint("golden", golden_params(
            MINI_NVIDIA, "histogram", "tiny", "rr", AceMode.CONSERVATIVE))
        b = fingerprint("golden", golden_params(
            MINI_NVIDIA, "histogram", "tiny", "rr", AceMode.CONSERVATIVE))
        assert a == b

    @pytest.mark.parametrize("mutate", [
        lambda p: golden_params(MINI_AMD, "histogram", "tiny", "rr",
                                AceMode.CONSERVATIVE),
        lambda p: golden_params(MINI_NVIDIA, "scan", "tiny", "rr",
                                AceMode.CONSERVATIVE),
        lambda p: golden_params(MINI_NVIDIA, "histogram", "small", "rr",
                                AceMode.CONSERVATIVE),
        lambda p: golden_params(MINI_NVIDIA, "histogram", "tiny", "gtlo",
                                AceMode.CONSERVATIVE),
        lambda p: golden_params(MINI_NVIDIA, "histogram", "tiny", "rr",
                                AceMode.LANE_MASKED),
    ])
    def test_any_golden_param_change_invalidates(self, mutate):
        base = fingerprint("golden", golden_params(
            MINI_NVIDIA, "histogram", "tiny", "rr", AceMode.CONSERVATIVE))
        assert fingerprint("golden", mutate(None)) != base

    def test_latency_change_invalidates(self):
        tweaked = replace(
            MINI_NVIDIA, latency=replace(MINI_NVIDIA.latency, alu=9))
        a = fingerprint("golden", golden_params(
            MINI_NVIDIA, "histogram", "tiny", "rr", AceMode.CONSERVATIVE))
        b = fingerprint("golden", golden_params(
            tweaked, "histogram", "tiny", "rr", AceMode.CONSERVATIVE))
        assert a != b

    def test_plan_fingerprint_tracks_samples_seed_structures(self):
        base = fingerprint("plan", plan_params("g", 100, 0, ("register_file",)))
        assert fingerprint("plan", plan_params("g", 101, 0,
                                               ("register_file",))) != base
        assert fingerprint("plan", plan_params("g", 100, 1,
                                               ("register_file",))) != base
        assert fingerprint("plan", plan_params(
            "g", 100, 0, ("register_file", "local_memory"))) != base
        assert fingerprint("plan", plan_params("x", 100, 0,
                                               ("register_file",))) != base

    def test_shard_and_cell_fingerprints(self):
        assert fingerprint("shard", shard_params("p", 0, 24)) != \
               fingerprint("shard", shard_params("p", 24, 48))
        assert fingerprint("cell", cell_params("p", 1e-3)) != \
               fingerprint("cell", cell_params("p", 2e-3))

    def test_kind_is_part_of_identity(self):
        params = {"x": 1}
        assert fingerprint("golden", params) != fingerprint("plan", params)
