"""Launch configuration and parameter packing tests."""

import numpy as np
import pytest

from repro.bits import float_to_bits
from repro.errors import LaunchError
from repro.isa.sass.parser import assemble_sass
from repro.sim.launch import LaunchConfig, pack_params


def program():
    return assemble_sass(".kernel t\n.regs 4\nEXIT\n")


class TestPackParams:
    def test_ints(self):
        assert pack_params(1, 2, 3) == [1, 2, 3]

    def test_negative_int_wraps(self):
        assert pack_params(-1) == [0xFFFFFFFF]

    def test_float_becomes_bits(self):
        assert pack_params(1.5) == [float_to_bits(1.5)]

    def test_numpy_scalars(self):
        assert pack_params(np.int32(7), np.float32(2.0)) == [7, float_to_bits(2.0)]

    def test_bool(self):
        assert pack_params(True, False) == [1, 0]

    def test_unpackable_rejected(self):
        with pytest.raises(LaunchError):
            pack_params("a string")


class TestLaunchConfig:
    def test_1d_promoted_to_2d(self):
        launch = LaunchConfig(program(), grid=(4,), block=(32,))
        assert launch.grid == (4, 1)
        assert launch.block == (32, 1)

    def test_counts(self):
        launch = LaunchConfig(program(), grid=(4, 2), block=(16, 8))
        assert launch.num_blocks == 8
        assert launch.threads_per_block == 128
        assert launch.total_threads == 1024

    def test_block_indices_row_major(self):
        launch = LaunchConfig(program(), grid=(2, 2), block=(32,))
        assert list(launch.block_indices()) == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_bad_geometry(self):
        with pytest.raises(LaunchError):
            LaunchConfig(program(), grid=(0,), block=(32,))
        with pytest.raises(LaunchError):
            LaunchConfig(program(), grid=(1,), block=(0,))

    def test_block_size_limit(self):
        with pytest.raises(LaunchError, match="1024"):
            LaunchConfig(program(), grid=(1,), block=(2048,))

    def test_param_word_bounds(self):
        launch = LaunchConfig(program(), grid=(1,), block=(32,),
                              params=pack_params(5))
        assert launch.param_word(0) == 5
        with pytest.raises(LaunchError, match="reads param 1"):
            launch.param_word(1)
