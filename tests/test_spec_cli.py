"""The spec-file CLI surface: `run SPEC --set ...` and `sweep SPEC --axis ...`.

Error-path contract (matching `--structures` from the figure
commands): unknown keys in a spec file and unknown `--set`/`--axis`
keys must exit 2 with a message naming the offending key and the
valid choices — never a traceback.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import main

TINY_SPEC = """\
name = "cli tiny"
gpus = ["gtx480"]
workloads = ["vectoradd"]
scale = "tiny"
samples = 4
structures = ["register_file"]
"""


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(TINY_SPEC)
    return path


class TestRunSubcommand:
    def test_happy_path_runs_and_writes_csv(self, spec_path, tmp_path,
                                            capsys):
        out = tmp_path / "cells.csv"
        assert main(["run", str(spec_path), "--quiet",
                     "--out", str(out)]) == 0
        assert out.exists()
        captured = capsys.readouterr()
        assert "cli tiny" in captured.err
        assert "register_file" in captured.out

    def test_set_override_applies(self, spec_path, tmp_path, capsys):
        store = tmp_path / "store.jsonl"
        assert main(["run", str(spec_path), "--quiet",
                     "--set", "samples=6",
                     "--resume", str(store)]) == 0
        err = capsys.readouterr().err
        assert "samples=6" in err

    def test_unknown_set_key_exits_2_naming_choices(self, spec_path,
                                                    capsys):
        assert main(["run", str(spec_path), "--set", "nosuch=3"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "nosuch" in err and "valid keys" in err
        assert "samples" in err
        assert "Traceback" not in err

    def test_bad_set_value_exits_2(self, spec_path, capsys):
        assert main(["run", str(spec_path), "--set", "samples=lots"]) == 2
        err = capsys.readouterr().err
        assert "samples" in err and "lots" in err

    def test_malformed_set_exits_2(self, spec_path, capsys):
        assert main(["run", str(spec_path), "--set", "samples"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_unknown_key_in_spec_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text('smaples = 4\n')
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "smaples" in err and "valid keys" in err
        assert "Traceback" not in err

    def test_bad_field_value_in_spec_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text('gpus = ["nosuchchip"]\n')
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "nosuchchip" in err and "Traceback" not in err

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.toml")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_unexposed_anchor_cells_omitted_not_zeroed(self, tmp_path,
                                                       capsys):
        # simt_stack exists on sass chips only; an SI chip's cells must
        # be omitted from the table, not rendered as a fake 0.000 AVF.
        path = tmp_path / "control.toml"
        path.write_text(
            'gpus = ["gtx480", "hd7970"]\n'
            'workloads = ["vectoradd"]\n'
            'scale = "tiny"\n'
            'samples = 4\n'
            'structures = ["simt_stack", "scheduler_state"]\n')
        assert main(["run", str(path), "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "HD Radeon 7970" not in captured.out
        assert "GeForce GTX 480" in captured.out
        assert "omitted" in captured.err and "simt_stack" in captured.err

    def test_checked_in_smoke_spec_loads(self):
        # The CI spec-smoke artifact must stay loadable.
        from pathlib import Path
        from repro.spec import CampaignSpec
        root = Path(__file__).resolve().parent.parent
        spec = CampaignSpec.from_file(
            root / "examples" / "specs" / "smoke_fig1.toml")
        assert spec.gpus == ("gtx480",)
        assert spec.structures == ("register_file",)
        for name in ("full_datapath.toml", "full_control.toml",
                     "sweep_models.toml"):
            CampaignSpec.from_file(root / "examples" / "specs" / name)


class TestSweepSubcommand:
    def test_two_axis_sweep_prints_summary(self, spec_path, tmp_path,
                                           capsys):
        store = tmp_path / "sweep.jsonl"
        assert main(["sweep", str(spec_path), "--quiet",
                     "--axis", "fault_model=transient,stuck_at",
                     "--axis", "seed=0..1",
                     "--resume", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Sweep summary" in out
        assert "fault_model=stuck_at, seed=1" in out
        assert out.count("seed=") >= 4
        assert store.exists()

    def test_axis_required(self, spec_path, capsys):
        assert main(["sweep", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert "--axis" in err and "valid keys" in err

    def test_unknown_axis_exits_2(self, spec_path, capsys):
        assert main(["sweep", str(spec_path),
                     "--axis", "nosuch=1,2"]) == 2
        err = capsys.readouterr().err
        assert "nosuch" in err and "valid keys" in err

    def test_duplicate_axis_exits_2(self, spec_path, capsys):
        assert main(["sweep", str(spec_path),
                     "--axis", "seed=0,1", "--axis", "seed=5"]) == 2
        assert "duplicate sweep axis" in capsys.readouterr().err

    def test_bad_range_exits_2(self, spec_path, capsys):
        assert main(["sweep", str(spec_path),
                     "--axis", "seed=5..2"]) == 2
        assert "empty range" in capsys.readouterr().err

    def test_structures_axis_plus_join(self, spec_path, capsys):
        assert main(["sweep", str(spec_path), "--quiet",
                     "--axis",
                     "structures=register_file+local_memory,register_file",
                     ]) == 0
        out = capsys.readouterr().out
        assert "structures=register_file+local_memory" in out
