"""Shared fixtures: small chips and helpers for running inline kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import GpuConfig, LatencyModel
from repro.isa.sass.parser import assemble_sass
from repro.isa.si.parser import assemble_si
from repro.sim.gpu import Gpu
from repro.sim.launch import LaunchConfig, pack_params

#: A small NVIDIA-style chip: fast to simulate, big enough for real blocks.
MINI_NVIDIA = GpuConfig(
    name="Mini NVIDIA",
    vendor="nvidia",
    isa="sass",
    microarchitecture="mini",
    num_cores=2,
    warp_size=32,
    registers_per_core=8192,
    local_memory_bytes=8 * 1024,
    max_threads_per_core=768,
    max_blocks_per_core=4,
    max_warps_per_core=24,
    shader_clock_hz=1e9,
    register_allocation_unit=32,
    local_allocation_unit=128,
    num_schedulers=1,
    latency=LatencyModel(),
)

#: A small AMD-style chip.
MINI_AMD = GpuConfig(
    name="Mini AMD",
    vendor="amd",
    isa="si",
    microarchitecture="mini",
    num_cores=2,
    warp_size=64,
    registers_per_core=4096,
    local_memory_bytes=8 * 1024,
    max_threads_per_core=512,
    max_blocks_per_core=4,
    max_warps_per_core=8,
    shader_clock_hz=1e9,
    register_allocation_unit=64,
    local_allocation_unit=128,
    num_schedulers=1,
    latency=LatencyModel(),
)


@pytest.fixture
def mini_nvidia() -> GpuConfig:
    return MINI_NVIDIA


@pytest.fixture
def mini_amd() -> GpuConfig:
    return MINI_AMD


def run_sass(source: str, buffers: dict, params: list, grid=(1,), block=(32,),
             config: GpuConfig = MINI_NVIDIA, scheduler: str = "rr",
             sink=None, faults=None, watchdog=None):
    """Assemble + run a SASS kernel; returns (gpu, {buffer: u32 array}).

    ``buffers`` maps name -> ndarray (initial data) or int (zeroed bytes).
    ``params`` entries may be buffer names (replaced by base addresses)
    or numbers.
    """
    return _run(assemble_sass(source), buffers, params, grid, block, config,
                scheduler, sink, faults, watchdog)


def run_si(source: str, buffers: dict, params: list, grid=(1,), block=(64,),
           config: GpuConfig = MINI_AMD, scheduler: str = "rr",
           sink=None, faults=None, watchdog=None):
    """Assemble + run an SI kernel; see :func:`run_sass`."""
    return _run(assemble_si(source), buffers, params, grid, block, config,
                scheduler, sink, faults, watchdog)


def _run(program, buffers, params, grid, block, config, scheduler, sink,
         faults, watchdog):
    gpu = Gpu(config, scheduler=scheduler, sink=sink)
    bases = {}
    for name, spec in buffers.items():
        if isinstance(spec, int):
            bases[name] = gpu.mem.alloc(name, spec).base
        else:
            bases[name] = gpu.mem.alloc_from(name, np.asarray(spec)).base
    resolved = [bases.get(p, p) if isinstance(p, str) else p for p in params]
    if faults:
        gpu.set_faults(faults)
    if watchdog:
        gpu.set_watchdog(watchdog)
    launch = LaunchConfig(
        program=program, grid=grid, block=block, params=pack_params(*resolved)
    )
    gpu.launch(launch)
    gpu.finish()
    return gpu, gpu.mem.snapshot()
