"""Serial-vs-engine equivalence for every fault model, checkpoints
on and off.

The transient path has had an end-to-end parity test since the engine
landed (:mod:`tests.test_parallel_campaign`); this extends the bar to
``stuck_at`` and ``mbu`` and crosses it with the checkpoint subsystem:
the engine matrix, the engine matrix with suffix-only checkpointed FI,
and the legacy serial cell loop must all produce identical cells.
"""

import pytest

from repro.engine import clear_memory_cache, run_campaign
from repro.reliability.campaign import run_cell
from repro.arch.structures import DATAPATH_STRUCTURES as STRUCTURES
from tests.conftest import MINI_AMD, MINI_NVIDIA

SAMPLES, SEED = 20, 5


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    clear_memory_cache()
    yield
    clear_memory_cache()


def _comparable(cell):
    row = cell.row()
    row.pop("golden_time_s")
    row.pop("fi_time_s")
    return row


class TestModelParityWithCheckpoints:
    @pytest.mark.parametrize("config", [MINI_NVIDIA, MINI_AMD],
                             ids=["sass", "si"])
    @pytest.mark.parametrize("model", ["stuck_at", "mbu"])
    def test_engine_matches_serial_checkpoints_on_and_off(
            self, config, model):
        kwargs = dict(gpus=[config], workloads=["histogram"], scale="tiny",
                      samples=SAMPLES, seed=SEED, structures=STRUCTURES,
                      fault_model=model)
        plain = run_campaign(**kwargs).cells
        clear_memory_cache()
        checkpointed = run_campaign(checkpoint_interval="auto",
                                    **kwargs).cells
        clear_memory_cache()
        serial = [run_cell(config, "histogram", scale="tiny",
                           samples=SAMPLES, seed=SEED, structures=STRUCTURES,
                           fault_model=model)]
        serial_ckpt = [run_cell(config, "histogram", scale="tiny",
                                samples=SAMPLES, seed=SEED,
                                structures=STRUCTURES, fault_model=model,
                                checkpoint_interval=250)]
        rows = [_comparable(c) for c in plain]
        assert rows == [_comparable(c) for c in checkpointed]
        assert rows == [_comparable(c) for c in serial]
        assert rows == [_comparable(c) for c in serial_ckpt]
        for left, right in zip(plain, checkpointed):
            for structure in STRUCTURES:
                a, b = left.fi[structure], right.fi[structure]
                assert (a.masked, a.sdc, a.due, a.pruned, a.resimulated) == \
                       (b.masked, b.sdc, b.due, b.pruned, b.resimulated)

    @pytest.mark.parametrize("model", ["transient", "stuck_at", "mbu"])
    def test_checkpointed_pool_matches_serial(self, model):
        """Workers + snapshot shipping must not change any cell."""
        kwargs = dict(gpus=[MINI_NVIDIA], workloads=["histogram"],
                      scale="tiny", samples=SAMPLES, seed=SEED,
                      structures=STRUCTURES, fault_model=model)
        serial = run_campaign(**kwargs).cells
        clear_memory_cache()
        pooled = run_campaign(checkpoint_interval=200, workers=3,
                              shard_size=4, **kwargs).cells
        assert [_comparable(c) for c in serial] == \
               [_comparable(c) for c in pooled]


class TestCheckpointStoreCompatibility:
    def test_checkpointed_resume_reuses_simulation_jobs(self, tmp_path):
        """Only the cell reduction re-runs when checkpointing toggles.

        Golden/plan/shard fingerprints exclude the checkpoint setting
        (their payloads are bit-identical either way), so a
        checkpointed campaign resumed from an un-checkpointed store
        reuses every simulation job.
        """
        store = tmp_path / "store.jsonl"
        kwargs = dict(gpus=[MINI_NVIDIA], workloads=["vectoradd"],
                      scale="tiny", samples=12, seed=2,
                      structures=STRUCTURES)
        first = run_campaign(store=store, **kwargs)
        assert first.stats.executed > 0
        clear_memory_cache()
        second = run_campaign(store=store, checkpoint_interval="auto",
                              **kwargs)
        executed_kinds = {
            kind: counts["executed"]
            for kind, counts in second.stats.by_kind.items()
            if counts["executed"]
        }
        assert executed_kinds == {"cell": 1}
        assert [_comparable(c) for c in first.cells] == \
               [_comparable(c) for c in second.cells]
