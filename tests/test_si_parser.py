"""Southern-Islands assembler tests."""

import pytest

from repro.bits import float_to_bits
from repro.errors import AssemblyError
from repro.isa.base import EXEC, Imm, Param, SCC, SReg, SRegPair, VCC, VReg
from repro.isa.si.parser import ABI_SGPRS, assemble_si


def asm(body: str, vregs: int = 16, sregs: int = 16, lds: int = 0):
    return assemble_si(
        f".kernel t\n.vregs {vregs}\n.sregs {sregs}\n.lds {lds}\n{body}\ns_endpgm\n"
    )


class TestDirectives:
    def test_metadata(self):
        program = asm("s_nop", vregs=8, sregs=12, lds=512)
        assert program.isa == "si"
        assert program.registers_per_thread == 8
        assert program.scalar_registers == 12
        assert program.local_memory_bytes == 512

    def test_sregs_floor_at_abi(self):
        program = asm("s_nop", sregs=2)
        assert program.scalar_registers >= ABI_SGPRS


class TestOperands:
    def test_regs(self):
        program = asm("v_add_i32 v2, v0, v1")
        assert program.at(0).operands == (VReg(2), VReg(0), VReg(1))

    def test_sregs(self):
        program = asm("s_add_i32 s7, s6, s5")
        assert program.at(0).operands == (SReg(7), SReg(6), SReg(5))

    def test_pair(self):
        program = asm("s_mov_b64 s[8:9], exec")
        assert program.at(0).operands == (SRegPair(8), EXEC)

    def test_misaligned_pair_rejected(self):
        with pytest.raises(AssemblyError, match="aligned consecutive"):
            asm("s_mov_b64 s[9:10], exec")

    def test_non_consecutive_pair_rejected(self):
        with pytest.raises(AssemblyError, match="aligned consecutive"):
            asm("s_mov_b64 s[8:10], exec")

    def test_specials(self):
        program = asm("s_cbranch_vccz out\nout:")
        assert program.at(0).opcode == "s_cbranch_vccz"
        program = asm("v_cmp_lt_i32 vcc, v0, v1")
        assert program.at(0).operands[0] == VCC

    def test_param(self):
        program = asm("s_load_dword s6, param[3]")
        assert program.at(0).operands == (SReg(6), Param(3))

    def test_float_imm(self):
        program = asm("v_mov_b32 v2, 0.5")
        assert program.at(0).operands[1] == Imm(float_to_bits(0.5))

    def test_int_imm_hex(self):
        program = asm("v_mov_b32 v2, 0x7f7fffff")
        assert program.at(0).operands[1] == Imm(0x7F7FFFFF)

    def test_case_insensitive_mnemonics(self):
        program = asm("V_ADD_I32 v2, v0, v1")
        assert program.at(0).opcode == "v_add_i32"


class TestBounds:
    def test_vreg_bound(self):
        with pytest.raises(AssemblyError, match="v9 used but"):
            asm("v_mov_b32 v9, v0", vregs=8)

    def test_sreg_bound(self):
        with pytest.raises(AssemblyError, match="s15 used but"):
            asm("s_mov_b32 s15, s0", sregs=12)

    def test_pair_bound(self):
        with pytest.raises(AssemblyError, match="exceeds"):
            asm("s_mov_b64 s[14:15], exec", sregs=15)

    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError, match="unknown opcode"):
            asm("v_frobnicate v0, v1")

    def test_labels(self):
        program = asm("loop:\ns_add_i32 s6, s6, 1\ns_branch loop")
        assert program.labels["loop"] == 0

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            asm("s_branch nowhere_xyz")
