"""Campaign orchestration, reporting and experiment-harness tests."""

import csv
import math

import pytest

from repro.reliability.campaign import (
    average_cell,
    default_samples,
    default_scale,
    run_cell,
)
from repro.reliability.report import (
    bar,
    format_ace_vs_fi,
    format_avf_figure,
    format_epf_figure,
    write_cells_csv,
)
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE
from tests.conftest import MINI_AMD, MINI_NVIDIA


@pytest.fixture(scope="module")
def cells():
    """Two small cells (one per vendor) shared across report tests."""
    return [
        run_cell(MINI_NVIDIA, "histogram", scale="tiny", samples=30, seed=2),
        run_cell(MINI_AMD, "histogram", scale="tiny", samples=30, seed=2),
    ]


class TestRunCell:
    def test_cell_contents(self, cells):
        cell = cells[0]
        assert cell.workload == "histogram"
        assert cell.cycles > 0
        assert set(cell.fi) == {REGISTER_FILE, LOCAL_MEMORY}
        assert set(cell.ace) == {REGISTER_FILE, LOCAL_MEMORY}
        assert 0 <= cell.occupancy[REGISTER_FILE] <= 1
        assert cell.epf is not None and cell.epf.epf > 0
        assert cell.uses_local_memory

    def test_row_schema(self, cells):
        row = cells[0].row()
        for key in ("gpu", "workload", "cycles", "avf_fi_regfile",
                    "avf_ace_regfile", "occ_regfile", "avf_fi_localmem",
                    "epf", "fit_gpu", "samples"):
            assert key in row

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_FI_SAMPLES", "77")
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert default_samples() == 77
        assert default_scale() == "tiny"

    def test_single_structure_cell(self):
        cell = run_cell(MINI_NVIDIA, "vectoradd", scale="tiny", samples=10,
                        seed=0, structures=(REGISTER_FILE,))
        assert REGISTER_FILE in cell.fi
        assert LOCAL_MEMORY not in cell.fi

    def test_average_cell(self, cells):
        avg = average_cell(cells[:1], cells[0].gpu)
        assert avg["gpu"] == cells[0].gpu
        assert avg["avf_fi_regfile"] == cells[0].avf_fi(REGISTER_FILE)

    def test_average_cell_unknown_gpu(self, cells):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            average_cell(cells, "nonexistent")


class TestReportFormatting:
    def test_bar_bounds(self):
        assert bar(0.0) == "." * 30
        assert bar(1.0) == "#" * 30
        assert bar(2.0) == "#" * 30  # clamped
        assert len(bar(0.5)) == 30

    def test_avf_figure_contains_rows(self, cells):
        text = format_avf_figure(cells, REGISTER_FILE, "Fig. 1 test")
        assert "Fig. 1 test" in text
        assert "histogram" in text
        assert "average" in text
        assert "error margin" in text

    def test_epf_figure(self, cells):
        text = format_epf_figure(cells)
        assert "EPF" in text
        assert "histogram" in text

    def test_ace_vs_fi_table(self, cells):
        text = format_ace_vs_fi(cells)
        assert "ACE/FI" in text
        assert "regfile" in text and "localmem" in text

    def test_csv_roundtrip(self, cells, tmp_path):
        path = write_cells_csv(cells, tmp_path / "cells.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(cells)
        assert rows[0]["workload"] == "histogram"
        assert float(rows[0]["avf_fi_regfile"]) >= 0


class TestExperimentHarnesses:
    def test_fig1_tiny(self):
        from repro.experiments import run_fig1
        cells, report = run_fig1(
            samples=10, scale="tiny", gpus=[MINI_NVIDIA],
            workloads=["vectoradd"], seed=0,
        )
        assert len(cells) == 1
        assert "Register File AVF" in report

    def test_fig2_filters_to_lmem_users(self):
        from repro.experiments.fig2_localmem_avf import local_memory_workloads
        subset = local_memory_workloads("tiny")
        assert "vectoradd" not in subset
        assert "matrixMul" in subset
        assert len(subset) == 7

    def test_fig3_tiny(self):
        from repro.experiments import run_fig3
        cells, report = run_fig3(
            samples=10, scale="tiny", gpus=[MINI_AMD],
            workloads=["histogram"], seed=0,
        )
        assert len(cells) == 1
        assert "Executions per Failure" in report
        assert math.isfinite(cells[0].epf.fit_gpu)

    def test_cli_parses_and_runs(self, capsys):
        from repro.experiments.runner import main
        code = main([
            "fig1", "--samples", "5", "--scale", "tiny",
            "--gpus", "gtx480", "--workloads", "vectoradd",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Register File AVF" in out

    def test_cli_rejects_bad_experiment(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["fig9"])
