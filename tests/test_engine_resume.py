"""Campaign engine: resume, incremental re-runs, golden-run sharing."""

import json
import subprocess
import sys

import pytest

from repro.engine import clear_memory_cache, run_campaign
from repro.engine.jobs import CELL, GOLDEN, PLAN, SHARD
from repro.engine.store import ResultStore
from repro.arch.structures import DATAPATH_STRUCTURES as STRUCTURES
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE
from tests.conftest import MINI_NVIDIA

GPUS = [MINI_NVIDIA]
WORKLOADS = ["histogram", "vectoradd"]
SAMPLES, SEED = 20, 3


def _run(store=None, **overrides):
    kwargs = dict(gpus=GPUS, workloads=WORKLOADS, scale="tiny",
                  samples=SAMPLES, seed=SEED, structures=STRUCTURES,
                  store=store)
    kwargs.update(overrides)
    return run_campaign(**kwargs)


def _comparable(cell):
    """Everything the acceptance criteria compare (no wall times)."""
    row = cell.row()
    row.pop("golden_time_s")
    row.pop("fi_time_s")
    return row


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    clear_memory_cache()
    yield
    clear_memory_cache()


class TestResume:
    def test_identical_rerun_executes_nothing(self, tmp_path):
        store_path = tmp_path / "store.jsonl"
        first = _run(store=store_path)
        assert first.stats.executed > 0 and first.stats.cached == 0
        clear_memory_cache()
        second = _run(store=store_path)
        assert second.stats.executed == 0
        assert second.stats.cached == second.stats.total
        # Finished cells short-circuit: one cached cell job each.
        assert second.stats.total == len(first.cells)
        assert [_comparable(c) for c in second.cells] == \
               [_comparable(c) for c in first.cells]

    def test_resume_after_partial_run_skips_finished_jobs(self, tmp_path):
        store_path = tmp_path / "store.jsonl"
        full = _run(store=store_path)
        # Emulate a campaign killed after the golden + plan jobs landed:
        # keep only those records, as an interrupted store would.
        partial_path = tmp_path / "partial.jsonl"
        with store_path.open() as src, partial_path.open("w") as dst:
            for line in src:
                if json.loads(line)["kind"] in (GOLDEN, PLAN):
                    dst.write(line)
        clear_memory_cache()
        resumed = _run(store=partial_path)
        assert resumed.stats.by_kind[GOLDEN]["executed"] == 0
        assert resumed.stats.by_kind[PLAN]["executed"] == 0
        assert resumed.stats.by_kind[SHARD]["executed"] > 0
        assert resumed.stats.by_kind[CELL]["executed"] == len(full.cells)
        assert [_comparable(c) for c in resumed.cells] == \
               [_comparable(c) for c in full.cells]
        # ...and the resumed store is now complete: nothing re-executes.
        clear_memory_cache()
        third = _run(store=partial_path)
        assert third.stats.executed == 0

    def test_resume_tolerates_record_truncated_by_kill(self, tmp_path):
        store_path = tmp_path / "store.jsonl"
        full = _run(store=store_path)
        store_path.write_text(store_path.read_text()[:-30])
        clear_memory_cache()
        resumed = _run(store=store_path)
        # Exactly the destroyed record's job re-ran; all results match.
        assert resumed.stats.executed >= 1
        assert [_comparable(c) for c in resumed.cells] == \
               [_comparable(c) for c in full.cells]

    def test_shard_size_change_reuses_cells(self, tmp_path):
        store_path = tmp_path / "store.jsonl"
        _run(store=store_path, shard_size=5)
        clear_memory_cache()
        rerun = _run(store=store_path, shard_size=9)
        # Cell fingerprints ignore shard geometry, so finished cells
        # short-circuit the whole chain: no golden/plan/shard jobs at all.
        assert rerun.stats.by_kind[CELL]["executed"] == 0
        assert SHARD not in rerun.stats.by_kind
        assert GOLDEN not in rerun.stats.by_kind

    def test_param_change_invalidates_only_downstream_jobs(self, tmp_path):
        store_path = tmp_path / "store.jsonl"
        _run(store=store_path)
        clear_memory_cache()
        reseeded = _run(store=store_path, seed=SEED + 1)
        # Golden runs are seed-independent and come back cached; the
        # sampling-dependent jobs all re-execute.
        assert reseeded.stats.by_kind[GOLDEN]["executed"] == 0
        assert reseeded.stats.by_kind[PLAN]["executed"] == len(WORKLOADS)
        assert reseeded.stats.by_kind[CELL]["executed"] == len(WORKLOADS)


class TestGoldenSharing:
    def test_structure_subsets_share_golden_runs(self, tmp_path):
        store_path = tmp_path / "store.jsonl"
        fig1 = _run(store=store_path, structures=(REGISTER_FILE,))
        clear_memory_cache()
        fig2 = _run(store=store_path, structures=(LOCAL_MEMORY,))
        assert fig1.stats.by_kind[GOLDEN]["executed"] == len(WORKLOADS)
        assert fig2.stats.by_kind[GOLDEN]["executed"] == 0
        assert fig2.stats.by_kind[GOLDEN]["cached"] == len(WORKLOADS)

    def test_sample_sweep_shares_golden_in_memory(self):
        sweep_a = _run(samples=10)
        sweep_b = _run(samples=15)
        assert sweep_a.stats.by_kind[GOLDEN]["executed"] == len(WORKLOADS)
        assert sweep_b.stats.by_kind[GOLDEN]["executed"] == 0
        assert sweep_b.stats.by_kind[GOLDEN]["cached"] == len(WORKLOADS)

    def test_workload_inputs_stable_across_processes(self):
        """Resume safety: a fresh process must rebuild identical inputs.

        Builtin ``hash()`` is PYTHONHASHSEED-randomized, so the
        workload RNG must not depend on it — otherwise goldens stored
        by one process misclassify every re-simulation in the next.
        """
        import os
        from pathlib import Path
        src = str(Path(__file__).resolve().parent.parent / "src")
        probe = (
            "from repro.kernels.common import rng_for;"
            "print(rng_for('backprop').integers(0, 2**31, 4).tolist())"
        )
        draws = set()
        for hashseed in ("1", "2"):
            env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED=hashseed)
            result = subprocess.run(
                [sys.executable, "-c", probe], capture_output=True,
                text=True, check=True, env=env,
            )
            draws.add(result.stdout.strip())
        assert len(draws) == 1, f"process-dependent workload inputs: {draws}"

    def test_memory_cache_backfills_new_store(self, tmp_path):
        _run()  # ephemeral campaign warms the in-process golden cache
        store_path = tmp_path / "store.jsonl"
        _run(store=store_path)
        # The cached goldens were written through, so the store alone
        # can resume the campaign in a fresh process.
        reloaded = ResultStore(store_path)
        assert reloaded.counts_by_kind()[GOLDEN] == len(WORKLOADS)
