"""Checkpoint/restore subsystem: capture transparency, bit-identical
suffix-only fault injection, early-exit soundness, trace-suffix
transparency of restored runs.

The correctness bar (ISSUE 3): checkpointed FI must be bit-identical —
same per-sample MASKED/SDC/DUE outcomes and cycle counts — to full
re-simulation for all three fault models on both ISAs.
"""

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointRecorder,
    ConvergedToGolden,
    MachineSnapshot,
    SnapshotPoint,
    SnapshotSet,
    capture_snapshots,
    restore_machine,
    resume_workload,
    run_faulty_from_checkpoints,
)
from repro.errors import ConfigError, SimFault
from repro.faultmodels.registry import get_fault_model
from repro.kernels.registry import get_workload
from repro.kernels.workload import run_workload
from repro.reliability.fi import run_fi_campaign, run_golden
from repro.reliability.outcomes import Outcome
from repro.arch.structures import DATAPATH_STRUCTURES as STRUCTURES
from repro.sim.gpu import Gpu, default_watchdog_for
from repro.sim.tracing import EventRecorder
from tests.conftest import MINI_AMD, MINI_NVIDIA

#: (config, workload) pairs covering both ISAs and multi-launch suites.
CASES = [
    (MINI_NVIDIA, "histogram"),
    (MINI_AMD, "matrixMul"),
]


def _golden_with_recorder(config, workload_name, interval="auto"):
    workload = get_workload(workload_name, "tiny")
    recorder = CheckpointRecorder(interval)
    result = run_workload(Gpu(config), workload, monitor=recorder)
    return workload, result, recorder.snapshots()


class TestCaptureTransparency:
    """Capturing snapshots must not perturb the simulation."""

    @pytest.mark.parametrize("config,workload_name", CASES,
                             ids=["sass", "si"])
    def test_monitored_run_identical_to_bare(self, config, workload_name):
        workload = get_workload(workload_name, "tiny")
        bare_events = EventRecorder()
        bare = run_workload(Gpu(config, sink=bare_events), workload)
        recorded_events = EventRecorder()
        recorder = CheckpointRecorder("auto")
        recorded = run_workload(Gpu(config, sink=recorded_events), workload,
                                monitor=recorder)
        assert bare.cycles == recorded.cycles
        assert bare.launch_cycles == recorded.launch_cycles
        for name in bare.outputs:
            assert np.array_equal(bare.outputs[name], recorded.outputs[name])
        assert bare_events.reg_events == recorded_events.reg_events
        assert bare_events.lmem_events == recorded_events.lmem_events
        assert bare_events.block_events == recorded_events.block_events
        assert recorder.snapshots().num_snapshots > 1

    def test_run_golden_results_independent_of_checkpointing(self):
        config, workload_name = CASES[0]
        workload = get_workload(workload_name, "tiny")
        plain = run_golden(config, workload)
        ckpt = run_golden(config, workload, checkpoint_interval="auto")
        assert plain.snapshots is None and ckpt.snapshots is not None
        assert plain.cycles == ckpt.cycles
        for structure in STRUCTURES:
            assert plain.ace.avf(structure) == ckpt.ace.avf(structure)
        for name in plain.outputs:
            assert np.array_equal(plain.outputs[name], ckpt.outputs[name])


class TestRestoreRoundTrip:
    """Restoring any snapshot and running on reproduces the golden run."""

    @pytest.mark.parametrize("config,workload_name", CASES,
                             ids=["sass", "si"])
    def test_every_point_resumes_to_golden(self, config, workload_name):
        workload, golden, snapshots = _golden_with_recorder(
            config, workload_name)
        mid_launch = 0
        for point in snapshots.points:
            if point.snapshot is None:
                continue
            mid_launch += point.snapshot.state["active"] is not None
            gpu, launches = restore_machine(config, workload, point)
            result = resume_workload(gpu, workload, launches, point.snapshot)
            assert result.cycles == golden.cycles, point.label
            assert result.launch_cycles == golden.launch_cycles, point.label
            for name in golden.outputs:
                assert np.array_equal(golden.outputs[name],
                                      result.outputs[name]), point.label
        assert mid_launch > 0, "no mid-launch snapshot exercised"

    def test_capture_snapshots_matches_recorder(self):
        """The shard-worker rebuild path produces the same point set."""
        config, workload_name = CASES[0]
        workload, _, from_recorder = _golden_with_recorder(
            config, workload_name, interval=200)
        rebuilt = capture_snapshots(config, workload, "rr", 200)
        assert [p.label for p in rebuilt.points] == \
               [p.label for p in from_recorder.points]
        assert [p.digest for p in rebuilt.points] == \
               [p.digest for p in from_recorder.points]


class TestTraceSuffixTransparency:
    """A sink on a restored run sees exactly the event-stream suffix."""

    @pytest.mark.parametrize("config,workload_name", CASES,
                             ids=["sass", "si"])
    def test_restored_sink_observes_suffix(self, config, workload_name):
        workload = get_workload(workload_name, "tiny")
        full = EventRecorder()
        recorder = CheckpointRecorder("auto")
        run_workload(Gpu(config, sink=full), workload, monitor=recorder)
        snapshots = recorder.snapshots()
        # A mid-run point (neither trivially-initial nor final).
        point = snapshots.points[len(snapshots.points) // 2]
        assert point.snapshot is not None
        suffix = EventRecorder()
        gpu, launches = restore_machine(config, workload, point, sink=suffix)
        resume_workload(gpu, workload, launches, point.snapshot)
        for stream in ("reg_events", "lmem_events", "block_events"):
            whole = getattr(full, stream)
            tail = getattr(suffix, stream)
            assert len(tail) <= len(whole)
            assert whole[len(whole) - len(tail):] == tail, stream
        assert suffix.end_cycle == full.end_cycle
        assert len(suffix.reg_events) < len(full.reg_events)


def _scratch_outcome(config, workload, plan, model, watchdog):
    gpu = Gpu(config)
    gpu.set_faults([plan], fault_model=model)
    gpu.set_watchdog(watchdog)
    try:
        result = run_workload(gpu, workload)
    except SimFault as fault:
        return ("due", type(fault).__name__)
    return ("done", result.cycles,
            {name: out.tobytes() for name, out in result.outputs.items()})


class TestSuffixFiBitIdentical:
    """Suffix-only faulty runs == from-scratch faulty runs, per sample."""

    @pytest.mark.parametrize("config,workload_name", CASES,
                             ids=["sass", "si"])
    @pytest.mark.parametrize("model_name", ["transient", "stuck_at", "mbu"])
    def test_plans_match_scratch(self, config, workload_name, model_name):
        workload, golden, snapshots = _golden_with_recorder(
            config, workload_name)
        model = get_fault_model(model_name)
        watchdog = default_watchdog_for(golden.cycles)
        rng = np.random.default_rng(11)
        suffix_used = 0
        for structure in STRUCTURES:
            for plan in model.sample(config, structure, golden.cycles,
                                     12, rng):
                reference = _scratch_outcome(config, workload, plan, model,
                                             watchdog)
                pos, point = snapshots.restore_point_for(plan.core, plan.cycle)
                suffix_used += point is not None
                try:
                    result = run_faulty_from_checkpoints(
                        config, workload, plan, "rr", watchdog, snapshots,
                        fault_model=model)
                    got = ("done", result.cycles,
                           {name: out.tobytes()
                            for name, out in result.outputs.items()})
                except ConvergedToGolden:
                    got = ("done", golden.cycles,
                           {name: out.tobytes()
                            for name, out in golden.outputs.items()})
                except SimFault as fault:
                    got = ("due", type(fault).__name__)
                assert got == reference, (model_name, plan)
        assert suffix_used > 0, "no plan exercised a snapshot restore"

    @pytest.mark.parametrize("model_name", ["transient", "stuck_at", "mbu"])
    def test_campaign_results_identical(self, model_name):
        """run_fi_campaign with/without snapshots: same per-sample rows."""
        config = MINI_NVIDIA
        workload = get_workload("histogram", "tiny")
        plain = run_golden(config, workload)
        ckpt = run_golden(config, workload, checkpoint_interval="auto")
        base = run_fi_campaign(config, workload, plain, samples=20, seed=9,
                               keep_results=True, fault_model=model_name)
        fast = run_fi_campaign(config, workload, ckpt, samples=20, seed=9,
                               keep_results=True, fault_model=model_name)
        for structure in base.estimates:
            a, b = base.estimates[structure], fast.estimates[structure]
            assert (a.masked, a.sdc, a.due, a.pruned, a.resimulated) == \
                   (b.masked, b.sdc, b.due, b.pruned, b.resimulated)
        assert len(base.results) == len(fast.results)
        for left, right in zip(base.results, fast.results):
            assert left.plan == right.plan
            assert left.outcome == right.outcome
            assert left.corrupted_words == right.corrupted_words
            assert left.cycles == right.cycles


class TestPooledSerialPath:
    def test_workers_with_snapshots_match_scratch(self):
        """Pooled workers re-derive snapshots per process; results are
        bit-identical to the un-checkpointed serial run."""
        config = MINI_NVIDIA
        workload = get_workload("histogram", "tiny")
        plain = run_golden(config, workload)
        ckpt = run_golden(config, workload, checkpoint_interval=300)
        base = run_fi_campaign(config, workload, plain, samples=30, seed=6,
                               keep_results=True, workers=1)
        pooled = run_fi_campaign(config, workload, ckpt, samples=30, seed=6,
                                 keep_results=True, workers=2)
        for left, right in zip(base.results, pooled.results):
            assert left.plan == right.plan
            assert left.outcome == right.outcome
            assert left.corrupted_words == right.corrupted_words
            assert left.cycles == right.cycles


class TestEarlyExit:
    def test_early_exit_fires_and_is_masked(self):
        config = MINI_NVIDIA
        workload = get_workload("kmeans", "tiny")
        golden = run_golden(config, workload, checkpoint_interval="auto")
        output = run_fi_campaign(config, workload, golden, samples=60,
                                 seed=3, keep_results=True)
        early = [r for r in output.results if r.early_exit]
        assert early, "expected convergence exits at this seed"
        assert all(r.outcome is Outcome.MASKED for r in early)
        assert all(r.cycles == golden.cycles for r in early)

    def test_persistent_model_never_early_exits(self):
        config = MINI_NVIDIA
        workload = get_workload("histogram", "tiny")
        golden = run_golden(config, workload, checkpoint_interval="auto")
        output = run_fi_campaign(config, workload, golden, samples=60,
                                 seed=4, keep_results=True,
                                 fault_model="stuck_at")
        assert not any(r.early_exit for r in output.results)


class TestSnapshotSet:
    def _point(self, label, core_times, with_snapshot=True):
        snapshot = MachineSnapshot(0, [], {}) if with_snapshot else None
        return SnapshotPoint(label=label, core_times=core_times,
                             digest="x", snapshot=snapshot)

    def test_restore_point_selection(self):
        snapshots = SnapshotSet(interval="auto", points=[
            self._point(("launch", 0), (0, 0)),
            self._point(("interval", 100), (120, 90)),
            self._point(("interval", 200), (210, 190), with_snapshot=False),
            self._point(("interval", 300), (310, 295)),
        ])
        # Latest point whose *target-core* clock precedes the fault.
        pos, point = snapshots.restore_point_for(0, 311)
        assert pos == 3 and point.label == ("interval", 300)
        pos, point = snapshots.restore_point_for(0, 300)
        # core 0 already at 310 at the last point; thinned point at 200
        # has no snapshot; falls back to the 100-cycle point.
        assert pos == 1 and point.label == ("interval", 100)
        pos, point = snapshots.restore_point_for(1, 295)
        assert pos == 1
        pos, point = snapshots.restore_point_for(0, 0)
        assert pos == -1 and point is None
        assert len(snapshots.points_after(-1)) == 4
        assert len(snapshots.points_after(1)) == 2
        assert snapshots.num_snapshots == 3

    def test_recorder_thinning_bounds_memory(self):
        config, workload_name = CASES[0]
        workload = get_workload(workload_name, "tiny")
        recorder = CheckpointRecorder(interval=1, max_snapshots=8)
        run_workload(Gpu(config), workload, monitor=recorder)
        snapshots = recorder.snapshots()
        assert 1 < len(snapshots.points) <= 8

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigError, match="checkpoint interval"):
            CheckpointRecorder(interval=0)


class TestEphemeralPayloadKeys:
    def test_store_strips_underscore_keys(self, tmp_path):
        from repro.engine.store import ResultStore
        path = tmp_path / "store.jsonl"
        with ResultStore(path) as store:
            store.put("fp1", "golden", {"cycles": 3, "_snapshots": object()})
            assert store.get("fp1") == {"cycles": 3}
        with ResultStore(path) as reloaded:
            assert reloaded.get("fp1") == {"cycles": 3}
