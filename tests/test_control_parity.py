"""Control-structure campaigns: bit-identity and pruning soundness.

The acceptance bar of the control-site taxonomy: per-sample outcome and
cycle-count identity for every (structure x fault model x ISA)
combination across the serial path, the job-graph engine, and
checkpointed (suffix-only) vs from-scratch re-simulation — plus proof
that every site the slot-occupancy pruning declares dead really is
masked with golden cycles.
"""

import pytest

from repro.arch.structures import CONTROL_STRUCTURES, exposed_structures
from repro.engine import clear_memory_cache, run_campaign
from repro.engine.jobs import plan_from_key, plan_key_from_row, encode_plan_row
from repro.errors import ConfigError
from repro.kernels.registry import get_workload
from repro.kernels.workload import run_workload
from repro.reliability.campaign import run_cell
from repro.reliability.fi import resimulate_plan, run_fi_campaign, run_golden
from repro.reliability.liveness import FaultSiteResolver
from repro.reliability.outcomes import Outcome
from repro.sim.faults import FaultPlan
from repro.sim.gpu import Gpu
from tests.conftest import MINI_AMD, MINI_NVIDIA

SAMPLES, SEED = 12, 7
WORKLOAD = "histogram"


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    clear_memory_cache()
    yield
    clear_memory_cache()


def _comparable(cell):
    row = cell.row()
    row.pop("golden_time_s")
    row.pop("fi_time_s")
    counts = {
        s: (e.masked, e.sdc, e.due, e.pruned, e.resimulated)
        for s, e in cell.fi.items()
    }
    return row, counts


class TestSerialEngineCheckpointParity:
    @pytest.mark.parametrize("config", [MINI_NVIDIA, MINI_AMD],
                             ids=["sass", "si"])
    @pytest.mark.parametrize("model", ["transient", "stuck_at", "mbu"])
    def test_cells_identical_across_paths(self, config, model):
        kwargs = dict(gpus=[config], workloads=[WORKLOAD], scale="tiny",
                      samples=SAMPLES, seed=SEED,
                      structures=CONTROL_STRUCTURES, fault_model=model)
        engine = run_campaign(**kwargs).cells
        clear_memory_cache()
        engine_ckpt = run_campaign(checkpoint_interval="auto", **kwargs).cells
        clear_memory_cache()
        structures = exposed_structures(config, CONTROL_STRUCTURES)
        serial = [run_cell(config, WORKLOAD, scale="tiny", samples=SAMPLES,
                           seed=SEED, structures=structures,
                           fault_model=model)]
        serial_ckpt = [run_cell(config, WORKLOAD, scale="tiny",
                                samples=SAMPLES, seed=SEED,
                                structures=structures, fault_model=model,
                                checkpoint_interval=250)]
        rows = [_comparable(c) for c in engine]
        assert rows == [_comparable(c) for c in engine_ckpt]
        assert rows == [_comparable(c) for c in serial]
        assert rows == [_comparable(c) for c in serial_ckpt]

    @pytest.mark.parametrize("config", [MINI_NVIDIA, MINI_AMD],
                             ids=["sass", "si"])
    @pytest.mark.parametrize("model", ["transient", "stuck_at", "mbu"])
    def test_per_sample_outcomes_and_cycles(self, config, model):
        """Checkpointed suffix runs match from-scratch per fault sample."""
        structures = exposed_structures(config, CONTROL_STRUCTURES)
        workload = get_workload(WORKLOAD, "tiny")
        plain_golden = run_golden(config, workload)
        ckpt_golden = run_golden(config, workload, checkpoint_interval=200)
        assert ckpt_golden.snapshots is not None
        plain = run_fi_campaign(config, workload, plain_golden,
                                samples=SAMPLES, seed=SEED,
                                structures=structures, keep_results=True,
                                fault_model=model)
        ckpt = run_fi_campaign(config, workload, ckpt_golden,
                               samples=SAMPLES, seed=SEED,
                               structures=structures, keep_results=True,
                               fault_model=model)
        assert len(plain.results) == len(ckpt.results) \
            == SAMPLES * len(structures)
        for left, right in zip(plain.results, ckpt.results):
            assert left.plan == right.plan
            assert left.outcome is right.outcome
            assert left.cycles == right.cycles

    def test_engine_pool_matches_inline(self):
        kwargs = dict(gpus=[MINI_NVIDIA], workloads=[WORKLOAD], scale="tiny",
                      samples=SAMPLES, seed=SEED,
                      structures=CONTROL_STRUCTURES, fault_model="stuck_at")
        inline = run_campaign(**kwargs).cells
        clear_memory_cache()
        pooled = run_campaign(workers=3, shard_size=3,
                              checkpoint_interval=200, **kwargs).cells
        assert [_comparable(c) for c in inline] == \
            [_comparable(c) for c in pooled]


class TestSlotOccupancyPruning:
    def _resolve(self, config, plans, fault_model=None):
        workload = get_workload(WORKLOAD, "tiny")
        resolver = FaultSiteResolver(config, plans, fault_model=fault_model)
        gpu = Gpu(config, scheduler="rr", sink=resolver)
        run_workload(gpu, workload)
        return resolver

    @pytest.mark.parametrize("structure", CONTROL_STRUCTURES)
    def test_never_occupied_slot_is_dead(self, structure):
        """A site in the top hardware slot of an underfilled core."""
        config = MINI_NVIDIA
        words = config.structure_words_per_core(structure)
        per_warp = words // config.max_warps_per_core
        top_slot_word = (config.max_warps_per_core - 1) * per_warp
        plan = FaultPlan(structure=structure, core=0, word=top_slot_word,
                         bit=0, cycle=0)
        resolver = self._resolve(config, [plan])
        assert not resolver.is_live(plan)

    @pytest.mark.parametrize("structure", CONTROL_STRUCTURES)
    @pytest.mark.parametrize("model", ["transient", "stuck_at"])
    def test_fault_after_last_retirement_is_dead(self, structure, model):
        config = MINI_NVIDIA
        golden = run_golden(config, get_workload(WORKLOAD, "tiny"))
        plan = FaultPlan(structure=structure, core=0, word=0, bit=0,
                         cycle=golden.cycles * 2)
        resolver = self._resolve(config, [plan], fault_model=model)
        assert not resolver.is_live(plan)

    @pytest.mark.parametrize("structure", CONTROL_STRUCTURES)
    def test_occupied_slot_is_live(self, structure):
        plan = FaultPlan(structure=structure, core=0, word=0, bit=0, cycle=0)
        resolver = self._resolve(MINI_NVIDIA, [plan])
        assert resolver.is_live(plan)

    @pytest.mark.parametrize("config", [MINI_NVIDIA, MINI_AMD],
                             ids=["sass", "si"])
    @pytest.mark.parametrize("model", ["transient", "stuck_at", "mbu"])
    def test_pruned_sites_really_are_masked(self, config, model):
        """Soundness: full re-simulation of every pruned site is MASKED
        with the golden cycle count."""
        from repro.faultmodels.registry import get_fault_model
        import numpy as np
        structures = exposed_structures(config, CONTROL_STRUCTURES)
        workload = get_workload(WORKLOAD, "tiny")
        golden = run_golden(config, workload)
        rng = np.random.default_rng(SEED)
        fm = get_fault_model(model)
        plans = [
            plan
            for structure in structures
            for plan in fm.sample(config, structure, golden.cycles,
                                  SAMPLES, rng)
        ]
        resolver = self._resolve(config, plans, fault_model=model)
        pruned = [p for p in set(plans) if not resolver.is_live(p)]
        for plan in pruned:
            result = resimulate_plan(config, workload, plan, golden.outputs,
                                     golden.cycles, golden.scheduler,
                                     fault_model=model)
            assert result.outcome is Outcome.MASKED, plan
            assert result.cycles == golden.cycles, plan


class TestEngineExposureFiltering:
    def test_unexposed_structure_skips_chip(self):
        cells = run_campaign(gpus=[MINI_NVIDIA, MINI_AMD],
                             workloads=[WORKLOAD], scale="tiny",
                             samples=4, seed=0,
                             structures=("simt_stack",)).cells
        assert [c.gpu for c in cells] == [MINI_NVIDIA.name]

    def test_no_exposing_chip_is_friendly_error(self):
        with pytest.raises(ConfigError, match="simt_stack"):
            run_campaign(gpus=[MINI_AMD], workloads=[WORKLOAD], scale="tiny",
                         samples=4, seed=0, structures=("simt_stack",))

    def test_unknown_structure_is_friendly_error(self):
        with pytest.raises(ConfigError, match="known:"):
            run_campaign(gpus=[MINI_NVIDIA], workloads=[WORKLOAD],
                         scale="tiny", samples=4, seed=0,
                         structures=("l2_cache",))


class TestControlPlanCodec:
    def test_plan_row_and_key_round_trip(self):
        plan = FaultPlan(structure="predicate_file", core=1, word=9, bit=4,
                         cycle=123, width=3)
        row = encode_plan_row(plan, True)
        key = plan_key_from_row(plan.structure, row)
        assert plan_from_key(key) == plan
        stuck = FaultPlan(structure="scheduler_state", core=0, word=2, bit=7,
                          cycle=55, stuck_value=1)
        key = plan_key_from_row(stuck.structure,
                                encode_plan_row(stuck, False))
        assert plan_from_key(key) == stuck
