"""SASS assembler tests."""

import pytest

from repro.bits import float_to_bits
from repro.errors import AssemblyError
from repro.isa.base import Imm, MemRef, Param, Pred, Reg, Special
from repro.isa.sass.parser import assemble_sass


def asm(body: str, regs: int = 16, smem: int = 0):
    return assemble_sass(f".kernel t\n.regs {regs}\n.smem {smem}\n{body}\nEXIT\n")


class TestDirectives:
    def test_metadata(self):
        program = asm("NOP", regs=8, smem=256)
        assert program.name == "t"
        assert program.isa == "sass"
        assert program.registers_per_thread == 8
        assert program.local_memory_bytes == 256

    def test_bad_directive(self):
        with pytest.raises(AssemblyError, match="bad directive"):
            assemble_sass(".bogus 3\nEXIT\n")

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError, match="no instructions"):
            assemble_sass(".kernel t\n.regs 4\n")


class TestOperands:
    def test_registers(self):
        program = asm("MOV R3, R5")
        inst = program.at(0)
        assert inst.operands == (Reg(3), Reg(5))

    def test_rz(self):
        program = asm("MOV R0, RZ")
        assert program.at(0).operands[1] == Reg(-1)

    def test_immediates(self):
        program = asm("MOV32I R0, 0x10\nMOV32I R1, 42\nMOV32I R2, -1")
        assert program.at(0).operands[1] == Imm(0x10)
        assert program.at(1).operands[1] == Imm(42)
        assert program.at(2).operands[1] == Imm(0xFFFFFFFF)

    def test_float_immediates(self):
        program = asm("MOV32I R0, 1.5\nMOV32I R1, -2.0\nMOV32I R2, 0.5f")
        assert program.at(0).operands[1] == Imm(float_to_bits(1.5))
        assert program.at(1).operands[1] == Imm(float_to_bits(-2.0))
        assert program.at(2).operands[1] == Imm(float_to_bits(0.5))

    def test_params(self):
        program = asm("MOV R0, c[0]\nMOV R1, c[0x2]")
        assert program.at(0).operands[1] == Param(0)
        assert program.at(1).operands[1] == Param(2)

    def test_specials(self):
        program = asm("S2R R0, SR_TID_X")
        assert program.at(0).operands[1] == Special("SR_TID_X")

    def test_memref(self):
        program = asm("LDG R0, [R4]\nLDG R1, [R4+0x10]\nLDG R2, [R4-4]\nLDG R3, [RZ]")
        assert program.at(0).operands[1] == MemRef(Reg(4), 0)
        assert program.at(1).operands[1] == MemRef(Reg(4), 16)
        assert program.at(2).operands[1] == MemRef(Reg(4), -4)
        assert program.at(3).operands[1] == MemRef(Reg(-1), 0)

    def test_predicates(self):
        program = asm("ISETP.LT P2, R0, R1\nSEL R0, R1, R2, !P2")
        assert program.at(0).operands[0] == Pred(2)
        assert program.at(1).operands[3] == Pred(2, negated=True)

    def test_unparseable_operand(self):
        with pytest.raises(AssemblyError, match="cannot parse"):
            asm("MOV R0, @@")


class TestGuards:
    def test_positive_guard(self):
        program = asm("@P0 MOV R0, R1")
        assert program.at(0).guard == Pred(0)

    def test_negated_guard(self):
        program = asm("@!P3 MOV R0, R1")
        assert program.at(0).guard == Pred(3, negated=True)

    def test_no_guard(self):
        assert asm("MOV R0, R1").at(0).guard is None


class TestLabelsAndMods:
    def test_labels_resolve(self):
        program = asm("loop:\nIADD R0, R0, 1\nBRA loop")
        assert program.labels["loop"] == 0
        assert program.resolve_label(program.at(1).operands[0]) == 0

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            asm("a:\nNOP\na:\nNOP")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            asm("BRA nowhere_defined_q")

    def test_modifiers(self):
        program = asm("ISETP.GE.U32 P0, R0, R1\nMUFU.RCP R2, R3")
        assert program.at(0).mods == ("GE", "U32")
        assert program.at(1).mods == ("RCP",)

    def test_invalid_modifier(self):
        with pytest.raises(AssemblyError, match="invalid modifier"):
            asm("MUFU.TAN R0, R1")

    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError, match="unknown opcode"):
            asm("FROB R0, R1")

    def test_comments_stripped(self):
        program = asm("MOV R0, R1  # comment\nMOV R1, R2 // c2\nMOV R2, R3 ; c3")
        assert len(program) == 4  # 3 MOVs + EXIT

    def test_register_bounds_checked(self):
        with pytest.raises(AssemblyError, match="R9 used but"):
            asm("MOV R9, R0", regs=8)

    def test_membase_bounds_checked(self):
        with pytest.raises(AssemblyError, match="R12 used but"):
            asm("LDG R0, [R12]", regs=8)

    def test_error_carries_line_number(self):
        try:
            assemble_sass(".kernel t\n.regs 4\nNOP\nFROB R0\n")
        except AssemblyError as error:
            assert error.line == 4
        else:
            pytest.fail("expected AssemblyError")

    def test_str_roundtrip_readable(self):
        program = asm("@!P1 FFMA R2, R3, R4, R2")
        text = str(program.at(0))
        assert "FFMA" in text and "@!P1" in text and "R2" in text
