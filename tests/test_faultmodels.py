"""The pluggable fault-model subsystem.

Covers the registry, per-model sampling/application/liveness semantics,
the storage layer's stuck-at re-apply hook (idempotence under
re-application), MBU cluster geometry (never crossing a word boundary),
and the engine integration: distinct fingerprints per model, resumable
stores, and serial == engine == pooled equivalence.
"""

import numpy as np
import pytest

from repro.engine import clear_memory_cache
from repro.engine.fingerprint import fingerprint, plan_params
from repro.errors import ConfigError
from repro.faultmodels import (
    FAULT_MODELS,
    MAX_WIDTH,
    MIN_WIDTH,
    MultiBitUpset,
    StuckAt,
    TransientBitFlip,
    get_fault_model,
    list_fault_models,
)
from repro.kernels.registry import get_workload
from repro.kernels.workload import run_workload
from repro.reliability.campaign import run_cell, run_matrix
from repro.reliability.fi import run_fi_campaign, run_golden
from repro.reliability.liveness import FaultSiteResolver
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE, FaultPlan
from repro.sim.gpu import Gpu
from repro.sim.regfile import RegisterFile
from repro.sim.sharedmem import LocalMemory
from tests.conftest import MINI_AMD, MINI_NVIDIA


class TestRegistry:
    def test_three_models_registered(self):
        assert list_fault_models() == ["transient", "stuck_at", "mbu"]

    def test_lookup_by_name(self):
        assert isinstance(get_fault_model("transient"), TransientBitFlip)
        assert isinstance(get_fault_model("stuck_at"), StuckAt)
        assert isinstance(get_fault_model("mbu"), MultiBitUpset)

    def test_none_is_transient(self):
        assert get_fault_model(None) is get_fault_model("transient")

    def test_instance_passthrough(self):
        model = FAULT_MODELS["mbu"]
        assert get_fault_model(model) is model

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault model"):
            get_fault_model("bathtub")

    def test_persistence_flags(self):
        assert not FAULT_MODELS["transient"].persistent
        assert FAULT_MODELS["stuck_at"].persistent
        assert not FAULT_MODELS["mbu"].persistent


class TestSampling:
    def test_transient_matches_legacy_sampler(self):
        """TransientBitFlip.sample is the pre-registry sampler, verbatim."""
        from repro.sim.faults import sample_faults
        legacy = sample_faults(MINI_NVIDIA, REGISTER_FILE, 1000, 50,
                               np.random.default_rng(42))
        model = get_fault_model("transient").sample(
            MINI_NVIDIA, REGISTER_FILE, 1000, 50, np.random.default_rng(42))
        assert legacy == model

    def test_stuck_at_polarities_both_drawn(self):
        plans = get_fault_model("stuck_at").sample(
            MINI_NVIDIA, REGISTER_FILE, 1000, 200, np.random.default_rng(0))
        values = {p.stuck_value for p in plans}
        assert values == {0, 1}
        assert all(p.width == 1 and p.is_persistent for p in plans)

    def test_mbu_clusters_inside_word(self):
        """Property: no sampled cluster ever crosses a word boundary."""
        for seed in range(5):
            plans = get_fault_model("mbu").sample(
                MINI_NVIDIA, LOCAL_MEMORY, 5000, 400,
                np.random.default_rng(seed))
            for plan in plans:
                assert MIN_WIDTH <= plan.width <= MAX_WIDTH
                assert plan.bit + plan.width <= 32
                assert plan.bit_mask <= 0xFFFFFFFF
                assert not plan.is_persistent

    def test_mbu_anchor_covers_high_bits(self):
        plans = get_fault_model("mbu").sample(
            MINI_NVIDIA, REGISTER_FILE, 1000, 500, np.random.default_rng(3))
        assert max(p.bit + p.width for p in plans) == 32

    def test_sampling_deterministic_per_seed(self):
        for name in list_fault_models():
            model = get_fault_model(name)
            first = model.sample(MINI_AMD, LOCAL_MEMORY, 777, 60,
                                 np.random.default_rng(9))
            second = model.sample(MINI_AMD, LOCAL_MEMORY, 777, 60,
                                  np.random.default_rng(9))
            assert first == second, name


class TestStuckAtStorage:
    """The storage layer's permanent-overlay re-apply hook."""

    def _regfile(self):
        return RegisterFile(0, 256, 32)

    def test_force_applies_immediately(self):
        rf = self._regfile()
        rf.force_bit(10, 3, 1)
        assert rf.data[10] == 1 << 3
        rf.force_bit(11, 0, 0)
        assert rf.data[11] == 0

    def test_reapplied_after_write(self):
        rf = self._regfile()
        rf.force_bit(5, 7, 1)
        values = np.zeros(32, dtype=np.uint32)
        rf.write_row(0, values, np.ones(32, dtype=bool), (1 << 32) - 1, 0)
        assert rf.data[5] == 1 << 7

    def test_stuck_at_zero_clamps_write(self):
        rf = self._regfile()
        rf.force_bit(4, 0, 0)
        values = np.full(32, 0xFFFFFFFF, dtype=np.uint32)
        rf.write_row(0, values, np.ones(32, dtype=bool), (1 << 32) - 1, 0)
        assert rf.data[4] == 0xFFFFFFFE
        assert rf.data[3] == 0xFFFFFFFF

    def test_idempotent_under_reapplication(self):
        """Property: re-applying the overlay never changes state again."""
        rf = self._regfile()
        rf.data[:] = np.arange(256, dtype=np.uint32)
        rf.force_bit(17, 2, 1)
        rf.force_bit(17, 5, 0)
        snapshot = rf.data.copy()
        for _ in range(3):
            rf._reapply_forced()
            assert np.array_equal(rf.data, snapshot)

    def test_survives_block_reallocation(self):
        """A stuck bit is a defect: clearing rows cannot heal it."""
        rf = self._regfile()
        rf.force_bit(8, 1, 1)
        rf.clear_rows(0, 8)
        assert rf.data[8] == 1 << 1

    def test_lmem_reapplied_after_store_and_atomic(self):
        lm = LocalMemory(0, 1024)
        lm.force_bit(2, 0, 1)
        addrs = np.array([8], dtype=np.int64)
        lm.store(addrs, np.array([0], dtype=np.uint32), 0)
        assert lm.data[2] & 1
        lm.atomic_add(addrs, np.array([4], dtype=np.uint32), 1)
        assert lm.data[2] & 1

    def test_lmem_survives_clear_range(self):
        lm = LocalMemory(0, 1024)
        lm.force_bit(3, 4, 1)
        lm.clear_range(0, 1024)
        assert lm.data[3] == 1 << 4

    def test_composed_overlays_on_one_word(self):
        lm = LocalMemory(0, 256)
        lm.force_bit(1, 0, 1)
        lm.force_bit(1, 1, 0)
        lm.store(np.array([4], dtype=np.int64),
                 np.array([0xFFFFFFFF], dtype=np.uint32), 0)
        assert lm.data[1] == 0xFFFFFFFD


class TestMbuApplication:
    def test_cluster_flip_is_one_shot_xor(self):
        rf = RegisterFile(0, 128, 32)
        rf.data[6] = 0b1010
        plan = FaultPlan(REGISTER_FILE, 0, 6, bit=1, cycle=0, width=3)
        get_fault_model("mbu").apply(rf, plan)
        assert rf.data[6] == 0b1010 ^ 0b1110
        get_fault_model("mbu").apply(rf, plan)
        assert rf.data[6] == 0b1010  # XOR is its own inverse


class TestModelAwareLiveness:
    def test_write_kills_transient_but_not_stuck_at(self):
        """A write-then-read site is dead transiently, live stuck-at."""
        config = MINI_NVIDIA
        workload = get_workload("vectoradd", "tiny")
        golden = run_golden(config, workload)
        rng = np.random.default_rng(11)
        plans = get_fault_model("transient").sample(
            config, REGISTER_FILE, golden.cycles, 80, rng)

        transient = FaultSiteResolver(config, plans, fault_model="transient")
        run_workload(Gpu(config, sink=transient), workload)
        stuck = FaultSiteResolver(config, plans, fault_model="stuck_at")
        run_workload(Gpu(config, sink=stuck), workload)

        # Persistent semantics can only widen the live set.
        for plan in plans:
            if transient.is_live(plan):
                assert stuck.is_live(plan)
        widened = [p for p in plans
                   if stuck.is_live(p) and not transient.is_live(p)]
        assert widened, "expected write-then-read sites to stay live"

    def test_stuck_at_pruned_sites_truly_masked(self):
        """Pruning exactness holds under persistent semantics too."""
        config = MINI_NVIDIA
        workload = get_workload("scan", "tiny")
        golden = run_golden(config, workload)
        model = get_fault_model("stuck_at")
        plans = model.sample(config, REGISTER_FILE, golden.cycles, 40,
                             np.random.default_rng(123))
        resolver = FaultSiteResolver(config, plans, fault_model=model)
        run_workload(Gpu(config, sink=resolver), workload)
        dead = [p for p in plans if not resolver.is_live(p)]
        assert dead, "expected some prunable stuck-at faults"
        from repro.reliability.outcomes import Outcome, classify_outputs
        for plan in dead[:10]:
            gpu = Gpu(config)
            gpu.set_faults([plan], fault_model=model)
            result = run_workload(gpu, workload)
            assert classify_outputs(golden.outputs, result.outputs) \
                is Outcome.MASKED


class TestCampaignIntegration:
    @pytest.mark.parametrize("model", ["stuck_at", "mbu"])
    def test_counts_consistent(self, model):
        config = MINI_NVIDIA
        workload = get_workload("matrixMul", "tiny")
        golden = run_golden(config, workload)
        output = run_fi_campaign(config, workload, golden, samples=40,
                                 seed=3, fault_model=model)
        for estimate in output.estimates.values():
            assert estimate.masked + estimate.sdc + estimate.due \
                == estimate.samples
            assert estimate.resimulated == estimate.samples - estimate.pruned

    @pytest.mark.parametrize("model", ["stuck_at", "mbu"])
    def test_workers_do_not_change_results(self, model):
        config = MINI_NVIDIA
        workload = get_workload("histogram", "tiny")
        golden = run_golden(config, workload)
        serial = run_fi_campaign(config, workload, golden, samples=30,
                                 seed=21, fault_model=model, workers=1)
        parallel = run_fi_campaign(config, workload, golden, samples=30,
                                   seed=21, fault_model=model, workers=3)
        for structure in serial.estimates:
            a, b = serial.estimates[structure], parallel.estimates[structure]
            assert (a.masked, a.sdc, a.due, a.pruned) == \
                   (b.masked, b.sdc, b.due, b.pruned)

    def test_transient_keyword_equals_default(self):
        """`--fault-model transient` is the pre-registry default path."""
        config = MINI_NVIDIA
        workload = get_workload("vectoradd", "tiny")
        golden = run_golden(config, workload)
        default = run_fi_campaign(config, workload, golden, samples=40,
                                  seed=11, keep_results=True)
        explicit = run_fi_campaign(config, workload, golden, samples=40,
                                   seed=11, keep_results=True,
                                   fault_model="transient")
        for left, right in zip(default.results, explicit.results):
            assert left.plan == right.plan
            assert left.outcome == right.outcome


class TestEngineIntegration:
    @staticmethod
    def _comparable(cell):
        row = cell.row()
        row.pop("golden_time_s")
        row.pop("fi_time_s")
        return row

    @pytest.mark.parametrize("model", ["stuck_at", "mbu"])
    def test_engine_matches_serial_cell(self, model):
        clear_memory_cache()
        cells = run_matrix(gpus=[MINI_NVIDIA], workloads=["histogram"],
                           scale="tiny", samples=24, seed=5,
                           fault_model=model)
        legacy = run_cell(MINI_NVIDIA, "histogram", scale="tiny",
                          samples=24, seed=5, fault_model=model)
        assert self._comparable(cells[0]) == self._comparable(legacy)
        assert cells[0].fault_model == model

    def test_models_have_distinct_plan_fingerprints(self):
        fps = {
            model: fingerprint(
                "plan", plan_params("g" * 64, 100, 0,
                                    (REGISTER_FILE,), model))
            for model in list_fault_models()
        }
        assert len(set(fps.values())) == len(fps)

    def test_transient_fingerprint_is_legacy_fingerprint(self):
        """The default model is omitted from plan params, so transient
        fingerprints are byte-identical to the single-model era and
        existing stores resume cleanly."""
        legacy = {
            "golden": "g" * 64,
            "samples": 100,
            "seed": 0,
            "structures": [REGISTER_FILE],
        }
        assert plan_params("g" * 64, 100, 0,
                           (REGISTER_FILE,), "transient") == legacy
        assert "fault_model" in plan_params("g" * 64, 100, 0,
                                            (REGISTER_FILE,), "stuck_at")

    def test_store_shared_across_models_resumes_each(self, tmp_path):
        from repro.engine import CampaignStats
        store = tmp_path / "store.jsonl"
        kwargs = dict(gpus=[MINI_NVIDIA], workloads=["vectoradd"],
                      scale="tiny", samples=12, seed=2)
        for model in list_fault_models():
            clear_memory_cache()
            run_matrix(store=str(store), fault_model=model, **kwargs)
        # Every model resumes fully cached from the shared store.
        for model in list_fault_models():
            clear_memory_cache()
            stats = CampaignStats()
            cells = run_matrix(store=str(store), fault_model=model,
                               stats=stats, **kwargs)
            assert stats.executed == 0, model
            assert cells[0].fault_model == model

    def test_models_do_not_collide_in_shared_store(self, tmp_path):
        """Same (gpu, workload, seed): three models, three distinct cells."""
        store = tmp_path / "store.jsonl"
        kwargs = dict(gpus=[MINI_NVIDIA], workloads=["histogram"],
                      scale="tiny", samples=20, seed=7)
        by_model = {}
        for model in list_fault_models():
            clear_memory_cache()
            cells = run_matrix(store=str(store), fault_model=model, **kwargs)
            by_model[model] = cells[0]
        assert len({c.fault_model for c in by_model.values()}) == 3
        # Stuck-at faults are never healed by write-back, so strictly
        # fewer sites are pruned than under the transient model.
        rf = REGISTER_FILE
        assert by_model["stuck_at"].fi[rf].pruned \
            <= by_model["transient"].fi[rf].pruned


class TestPlanRowCodec:
    def test_default_rows_are_legacy_five_element(self):
        from repro.engine.jobs import encode_plan_row
        plan = FaultPlan(REGISTER_FILE, 0, 7, 3, 100)
        assert encode_plan_row(plan, True) == [0, 7, 3, 100, True]

    def test_extended_rows_round_trip(self):
        from repro.engine.jobs import (
            encode_plan_row,
            plan_from_key,
            plan_key_from_row,
        )
        for plan in (
            FaultPlan(LOCAL_MEMORY, 1, 9, 4, 55, width=3),
            FaultPlan(REGISTER_FILE, 0, 2, 31, 8, stuck_value=1),
            FaultPlan(REGISTER_FILE, 2, 3, 0, 9, stuck_value=0),
        ):
            row = encode_plan_row(plan, False)
            assert len(row) == 7
            key = plan_key_from_row(plan.structure, row)
            assert plan_from_key(key) == plan
