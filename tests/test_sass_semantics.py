"""SASS execution semantics, tested by running one-warp kernels.

Each test assembles a small kernel whose lanes compute values into an
output buffer, runs it on the mini NVIDIA chip, and checks the stored
words — covering every opcode the benchmark suite relies on.
"""

import numpy as np
import pytest

from repro.bits import float_to_bits
from tests.conftest import run_sass


def run1(body: str, n_out: int = 32, regs: int = 24, smem: int = 0,
         extra_buffers: dict | None = None, params: list | None = None,
         block=(32,)):
    """Run a 1-warp kernel writing out[tid] and return out as u32."""
    source = f"""
.kernel t
.regs {regs}
.smem {smem}
    S2R R20, SR_TID_X
    SHL R21, R20, 2
    IADD R21, R21, c[0]
{body}
    STG [R21], R0
    EXIT
"""
    buffers = {"out": n_out * 4}
    if extra_buffers:
        buffers.update(extra_buffers)
    gpu, snap = run_sass(source, buffers, ["out"] + (params or []), block=block)
    return snap["out"]


def lanes(n=32):
    return np.arange(n, dtype=np.uint32)


class TestMovesAndSpecials:
    def test_mov_imm(self):
        assert (run1("MOV R0, 7") == 7).all()

    def test_mov32i_float(self):
        assert (run1("MOV32I R0, 1.5") == float_to_bits(1.5)).all()

    def test_mov_rz(self):
        assert (run1("MOV R0, RZ") == 0).all()

    def test_s2r_tid(self):
        assert np.array_equal(run1("S2R R0, SR_TID_X"), lanes())

    def test_s2r_laneid(self):
        assert np.array_equal(run1("S2R R0, SR_LANEID"), lanes())

    def test_s2r_ntid(self):
        assert (run1("S2R R0, SR_NTID_X") == 32).all()

    def test_s2r_2d(self):
        # Store tid_y at the flat index tid_y*8 + tid_x.
        source = """
.kernel t
.regs 8
.smem 0
    S2R R0, SR_TID_X
    S2R R1, SR_TID_Y
    S2R R2, SR_NTID_X
    IMAD R3, R1, R2, R0
    SHL R3, R3, 2
    IADD R3, R3, c[0]
    STG [R3], R1
    EXIT
"""
        gpu, snap = run_sass(source, {"out": 32 * 4}, ["out"], block=(8, 4))
        assert np.array_equal(snap["out"], lanes() // 8)

    def test_sel(self):
        out = run1(
            "S2R R1, SR_TID_X\nISETP.LT P0, R1, 16\n"
            "SEL R0, 111, 222, P0"
        )
        assert (out[:16] == 111).all() and (out[16:] == 222).all()


class TestIntegerAlu:
    def test_iadd_wraps(self):
        out = run1("MOV32I R1, 0xFFFFFFFF\nIADD R0, R1, 2")
        assert (out == 1).all()

    def test_isub(self):
        assert (run1("MOV R1, 5\nISUB R0, R1, 9") == 0xFFFFFFFC).all()

    def test_imul_low(self):
        out = run1("MOV32I R1, 0x10001\nIMUL R0, R1, 0x10001")
        assert (out == ((0x10001 * 0x10001) & 0xFFFFFFFF)).all()

    def test_imul_hi(self):
        out = run1("MOV32I R1, 0x80000000\nIMUL.HI R0, R1, 4")
        assert (out == 2).all()

    def test_imad(self):
        out = run1("S2R R1, SR_TID_X\nIMAD R0, R1, 3, 10")
        assert np.array_equal(out, lanes() * 3 + 10)

    def test_iscadd(self):
        out = run1("S2R R1, SR_TID_X\nISCADD R0, R1, 5, 2")
        assert np.array_equal(out, lanes() * 4 + 5)

    def test_imnmx_min_signed(self):
        out = run1("MOV32I R1, 0xFFFFFFFF\nIMNMX.MIN R0, R1, 3")
        assert (out == 0xFFFFFFFF).all()  # -1 < 3 signed

    def test_imnmx_max_unsigned(self):
        out = run1("MOV32I R1, 0xFFFFFFFF\nIMNMX.MAX.U32 R0, R1, 3")
        assert (out == 0xFFFFFFFF).all()

    def test_shl_masks_amount(self):
        out = run1("MOV R1, 1\nMOV R2, 33\nSHL R0, R1, R2")
        assert (out == 2).all()  # 33 & 31 == 1

    def test_shr_logical(self):
        out = run1("MOV32I R1, 0x80000000\nSHR.U32 R0, R1, 31")
        assert (out == 1).all()

    def test_shr_arithmetic(self):
        out = run1("MOV32I R1, 0x80000000\nSHR.S32 R0, R1, 31")
        assert (out == 0xFFFFFFFF).all()

    def test_logic_ops(self):
        assert (run1("MOV32I R1, 0xF0F0\nAND R0, R1, 0xFF") == 0xF0).all()
        assert (run1("MOV32I R1, 0xF0F0\nOR R0, R1, 0xF") == 0xF0FF).all()
        assert (run1("MOV32I R1, 0xFF\nXOR R0, R1, 0xF0") == 0x0F).all()
        assert (run1("MOV R1, RZ\nNOT R0, R1") == 0xFFFFFFFF).all()


class TestFloatAlu:
    def _f(self, out):
        return out.view(np.float32)

    def test_fadd(self):
        out = self._f(run1("MOV32I R1, 1.5\nFADD R0, R1, 2.25"))
        assert (out == np.float32(3.75)).all()

    def test_fmul(self):
        out = self._f(run1("MOV32I R1, 3.0\nFMUL R0, R1, -2.0"))
        assert (out == np.float32(-6.0)).all()

    def test_ffma(self):
        out = self._f(run1("MOV32I R1, 2.0\nMOV32I R2, 3.0\nMOV32I R3, 1.0\nFFMA R0, R1, R2, R3"))
        assert (out == np.float32(7.0)).all()

    def test_fmnmx(self):
        assert (self._f(run1("MOV32I R1, 2.0\nFMNMX.MIN R0, R1, 5.0")) == 2.0).all()
        assert (self._f(run1("MOV32I R1, 2.0\nFMNMX.MAX R0, R1, 5.0")) == 5.0).all()

    def test_mufu_rcp(self):
        out = self._f(run1("MOV32I R1, 4.0\nMUFU.RCP R0, R1"))
        assert (out == np.float32(0.25)).all()

    def test_mufu_sqrt(self):
        out = self._f(run1("MOV32I R1, 9.0\nMUFU.SQRT R0, R1"))
        assert (out == np.float32(3.0)).all()

    def test_mufu_rcp_zero_gives_inf(self):
        out = self._f(run1("MOV R1, RZ\nMUFU.RCP R0, R1"))
        assert np.isinf(out).all()

    def test_mufu_ex2_lg2(self):
        assert (self._f(run1("MOV32I R1, 3.0\nMUFU.EX2 R0, R1")) == 8.0).all()
        assert (self._f(run1("MOV32I R1, 8.0\nMUFU.LG2 R0, R1")) == 3.0).all()

    def test_f2i_trunc(self):
        out = run1("MOV32I R1, -2.7\nF2I R0, R1").view(np.int32)
        assert (out == -2).all()

    def test_f2i_floor(self):
        out = run1("MOV32I R1, -2.7\nF2I.FLOOR R0, R1").view(np.int32)
        assert (out == -3).all()

    def test_i2f(self):
        out = run1("MOV32I R1, -3\nI2F R0, R1").view(np.float32)
        assert (out == np.float32(-3.0)).all()

    def test_i2f_unsigned(self):
        out = run1("MOV32I R1, 0xFFFFFFFF\nI2F.U32 R0, R1").view(np.float32)
        assert (out == np.float32(2 ** 32 - 1)).all()


class TestPredicatesAndCompare:
    def test_isetp_signed(self):
        out = run1(
            "S2R R1, SR_TID_X\nISETP.LT P0, R1, 10\nSEL R0, 1, RZ, P0"
        )
        assert out.sum() == 10

    def test_isetp_unsigned_mod(self):
        # -1 unsigned is huge, so GE holds.
        out = run1("MOV32I R1, 0xFFFFFFFF\nISETP.GE.U32 P0, R1, 10\nSEL R0, 1, RZ, P0")
        assert (out == 1).all()

    def test_fsetp(self):
        out = run1("MOV32I R1, 0.5\nFSETP.GT P0, R1, 0.0\nSEL R0, 1, RZ, P0")
        assert (out == 1).all()

    def test_isetp_and_combine(self):
        out = run1(
            "S2R R1, SR_TID_X\nISETP.GE P1, R1, 8\n"
            "ISETP.LT.AND P0, R1, 16, P1\nSEL R0, 1, RZ, P0"
        )
        assert out.sum() == 8  # lanes 8..15

    def test_predicated_write_leaves_old_value(self):
        out = run1(
            "MOV R0, 5\nS2R R1, SR_TID_X\nISETP.LT P0, R1, 4\n@P0 MOV R0, 9"
        )
        assert (out[:4] == 9).all() and (out[4:] == 5).all()


class TestMemoryOps:
    def test_ldg_stg_roundtrip(self):
        data = np.arange(100, 132, dtype=np.uint32)
        out = run1(
            "SHL R2, R20, 2\nIADD R2, R2, c[1]\nLDG R0, [R2]",
            extra_buffers={"in": data}, params=["in"],
        )
        assert np.array_equal(out, data)

    def test_ldg_offset(self):
        data = np.arange(64, dtype=np.uint32)
        out = run1(
            "SHL R2, R20, 2\nIADD R2, R2, c[1]\nLDG R0, [R2+0x10]",
            extra_buffers={"in": data}, params=["in"],
        )
        assert np.array_equal(out, data[4:36])

    def test_shared_roundtrip(self):
        out = run1(
            "SHL R2, R20, 2\nMOV R3, R20\nIMUL R3, R3, 3\nSTS [R2], R3\nLDS R0, [R2]",
            smem=256,
        )
        assert np.array_equal(out, lanes() * 3)

    def test_shared_atomic_add(self):
        # All 32 lanes atomically add 1 to word 0, then read it back.
        out = run1(
            "MOV R1, 1\nATOMS.ADD RZ, [RZ], R1\nBAR.SYNC\nLDS R0, [RZ]",
            smem=128,
        )
        assert (out == 32).all()

    def test_global_atomic_add_returns_old(self):
        out = run1(
            "MOV R1, 1\nIADD R2, RZ, c[1]\nATOM.ADD R0, [R2], R1",
            extra_buffers={"acc": 4}, params=["acc"],
        )
        # Old values are a permutation of 0..31 (lane-serialised).
        assert sorted(out.tolist()) == list(range(32))


class TestControlFlow:
    def test_loop(self):
        out = run1(
            "MOV R0, RZ\nMOV R1, RZ\n"
            "loop:\nIADD R0, R0, 2\nIADD R1, R1, 1\n"
            "ISETP.LT P0, R1, 5\n@P0 BRA loop"
        )
        assert (out == 10).all()

    def test_divergent_if_else_reconverges(self):
        out = run1(
            "S2R R1, SR_TID_X\nISETP.LT P0, R1, 16\n"
            "MOV R0, RZ\n"
            "@!P0 BRA else_side\n"
            "IADD R0, R0, 100\n"
            "BRA join\n"
            "else_side:\n"
            "IADD R0, R0, 200\n"
            "join:\n"
            "IADD R0, R0, 7"
        )
        assert (out[:16] == 107).all() and (out[16:] == 207).all()

    def test_guarded_exit(self):
        # Lanes >= 8 exit early and never store; their slots stay 0xFF.
        source = """
.kernel t
.regs 8
.smem 0
    S2R R0, SR_TID_X
    ISETP.GE P0, R0, 8
@P0 EXIT
    SHL R1, R0, 2
    IADD R1, R1, c[0]
    MOV R2, 1
    STG [R1], R2
    EXIT
"""
        seed = np.full(32, 0xFF, dtype=np.uint32)
        gpu, snap = run_sass(source, {"out": seed}, ["out"])
        assert (snap["out"][:8] == 1).all()
        assert (snap["out"][8:] == 0xFF).all()

    def test_partial_warp(self):
        out = run1("S2R R0, SR_TID_X", block=(20,))
        assert np.array_equal(out[:20], lanes(20))
        assert (out[20:] == 0).all()  # lanes beyond block never store

    def test_nested_divergence(self):
        out = run1(
            "S2R R1, SR_TID_X\nMOV R0, RZ\n"
            "ISETP.LT P0, R1, 16\n"
            "@!P0 BRA outer_else\n"
            "ISETP.LT P1, R1, 8\n"
            "@!P1 BRA inner_else\n"
            "MOV R0, 1\nBRA inner_join\n"
            "inner_else:\nMOV R0, 2\n"
            "inner_join:\nBRA outer_join\n"
            "outer_else:\nMOV R0, 3\n"
            "outer_join:\nIADD R0, R0, 10"
        )
        assert (out[:8] == 11).all()
        assert (out[8:16] == 12).all()
        assert (out[16:] == 13).all()


class TestBarrierTiming:
    def test_multi_warp_barrier(self):
        # Warp 1 writes, barrier, warp 0 reads what warp 1 wrote.
        source = """
.kernel t
.regs 8
.smem 512
    S2R R0, SR_TID_X
    SHL R1, R0, 2
    MOV R2, R0
    IADD R2, R2, 1000
    STS [R1], R2
    BAR.SYNC
    MOV32I R3, 124
    IADD R3, R3, R1
    AND R3, R3, 0xFF
    LDS R4, [R1]
    SHL R5, R0, 2
    IADD R5, R5, c[0]
    STG [R5], R4
    EXIT
"""
        gpu, snap = run_sass(source, {"out": 64 * 4}, ["out"], block=(64,))
        assert np.array_equal(snap["out"], np.arange(64, dtype=np.uint32) + 1000)
