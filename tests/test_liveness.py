"""Unit tests for the trace consumers: ACE, fault-site resolver, occupancy.

These drive the sinks with hand-built event sequences so every lifetime
rule is pinned down independently of the simulator.
"""

import numpy as np
import pytest

from repro.reliability.liveness import (
    AceAccumulator,
    AceMode,
    FaultSiteResolver,
    OccupancyAccumulator,
)
from repro.sim.faults import LOCAL_MEMORY, REGISTER_FILE, FaultPlan
from tests.conftest import MINI_NVIDIA

FULL = 0xFFFFFFFF


def reg_fault(word, cycle, core=0):
    return FaultPlan(REGISTER_FILE, core, word, 0, cycle)


def lmem_fault(word, cycle, core=0):
    return FaultPlan(LOCAL_MEMORY, core, word, 0, cycle)


class TestAceConservative:
    def make(self):
        return AceAccumulator(MINI_NVIDIA, AceMode.CONSERVATIVE)

    def test_write_read_interval(self):
        ace = self.make()
        ace.on_reg_access(100, 0, 5, FULL, True)    # write row 5
        ace.on_reg_access(150, 0, 5, FULL, False)   # read
        ace.on_run_end(1000)
        # 50 row-cycles x 32 lanes x 32 bits over 1000 cycles x all bits.
        expected = 50 * 32 * 32 / (1000 * MINI_NVIDIA.register_file_bits)
        assert ace.avf(REGISTER_FILE) == pytest.approx(expected)

    def test_write_without_read_is_dead(self):
        ace = self.make()
        ace.on_reg_access(100, 0, 5, FULL, True)
        ace.on_run_end(1000)
        assert ace.avf(REGISTER_FILE) == 0.0

    def test_last_read_wins(self):
        ace = self.make()
        ace.on_reg_access(0, 0, 1, FULL, True)
        ace.on_reg_access(10, 0, 1, FULL, False)
        ace.on_reg_access(90, 0, 1, FULL, False)
        ace.on_run_end(100)
        bit_cycles = 90 * 32 * 32
        assert ace.avf(REGISTER_FILE) == pytest.approx(
            bit_cycles / (100 * MINI_NVIDIA.register_file_bits)
        )

    def test_rewrite_opens_new_segment(self):
        ace = self.make()
        ace.on_reg_access(0, 0, 1, FULL, True)
        ace.on_reg_access(10, 0, 1, FULL, False)
        ace.on_reg_access(50, 0, 1, FULL, True)    # dead gap 10..50
        ace.on_reg_access(60, 0, 1, FULL, False)
        ace.on_run_end(100)
        bit_cycles = (10 + 10) * 32 * 32
        assert ace.avf(REGISTER_FILE) == pytest.approx(
            bit_cycles / (100 * MINI_NVIDIA.register_file_bits)
        )

    def test_conservative_ignores_masks(self):
        """A single-lane access still counts the whole row (the
        conservatism that inflates register-file ACE vs FI)."""
        ace = self.make()
        ace.on_reg_access(0, 0, 1, 0x1, True)
        ace.on_reg_access(10, 0, 1, 0x1, False)
        ace.on_run_end(100)
        assert ace.avf(REGISTER_FILE) == pytest.approx(
            10 * 32 * 32 / (100 * MINI_NVIDIA.register_file_bits)
        )

    def test_lmem_word_granular(self):
        ace = self.make()
        ace.on_lmem_access(0, 0, np.array([3, 4]), True)
        ace.on_lmem_access(20, 0, np.array([3]), False)
        ace.on_run_end(100)
        # Only word 3 was read: 20 word-cycles x 32 bits.
        assert ace.avf(LOCAL_MEMORY) == pytest.approx(
            20 * 32 / (100 * MINI_NVIDIA.local_memory_bits)
        )

    def test_requires_run_end(self):
        ace = self.make()
        with pytest.raises(RuntimeError):
            ace.avf(REGISTER_FILE)


class TestAceLaneMasked:
    def test_lane_masks_respected(self):
        ace = AceAccumulator(MINI_NVIDIA, AceMode.LANE_MASKED)
        ace.on_reg_access(0, 0, 1, 0xF, True)     # 4 lanes written
        ace.on_reg_access(10, 0, 1, 0x3, False)   # 2 lanes read
        ace.on_run_end(100)
        assert ace.avf(REGISTER_FILE) == pytest.approx(
            10 * 2 * 32 / (100 * MINI_NVIDIA.register_file_bits)
        )

    def test_lane_masked_never_exceeds_conservative(self):
        events = [
            (0, 0, 1, 0xFF, True),
            (5, 0, 1, 0x0F, False),
            (9, 0, 2, FULL, True),
            (20, 0, 2, 0x1, False),
            (30, 0, 1, 0xFF, True),
            (44, 0, 1, 0x2, False),
        ]
        cons = AceAccumulator(MINI_NVIDIA, AceMode.CONSERVATIVE)
        lane = AceAccumulator(MINI_NVIDIA, AceMode.LANE_MASKED)
        for event in events:
            cons.on_reg_access(*event)
            lane.on_reg_access(*event)
        cons.on_run_end(100)
        lane.on_run_end(100)
        assert lane.avf(REGISTER_FILE) <= cons.avf(REGISTER_FILE)


class TestResolver:
    def test_fault_before_read_is_live(self):
        plan = reg_fault(word=32, cycle=5)   # row 1 lane 0
        resolver = FaultSiteResolver(MINI_NVIDIA, [plan])
        resolver.on_reg_access(10, 0, 1, FULL, False)
        resolver.on_run_end(100)
        assert resolver.is_live(plan)

    def test_fault_before_write_is_dead(self):
        plan = reg_fault(word=32, cycle=5)
        resolver = FaultSiteResolver(MINI_NVIDIA, [plan])
        resolver.on_reg_access(10, 0, 1, FULL, True)   # overwritten
        resolver.on_reg_access(20, 0, 1, FULL, False)
        resolver.on_run_end(100)
        assert not resolver.is_live(plan)

    def test_fault_after_last_access_is_dead(self):
        plan = reg_fault(word=32, cycle=50)
        resolver = FaultSiteResolver(MINI_NVIDIA, [plan])
        resolver.on_reg_access(10, 0, 1, FULL, False)
        resolver.on_run_end(100)
        assert not resolver.is_live(plan)

    def test_lane_mask_checked(self):
        # Fault in lane 5; reads only cover lanes 0..3 -> dead.
        plan = reg_fault(word=32 + 5, cycle=0)
        resolver = FaultSiteResolver(MINI_NVIDIA, [plan])
        resolver.on_reg_access(10, 0, 1, 0xF, False)
        resolver.on_run_end(100)
        assert not resolver.is_live(plan)

    def test_wrong_core_ignored(self):
        plan = reg_fault(word=32, cycle=0, core=1)
        resolver = FaultSiteResolver(MINI_NVIDIA, [plan])
        resolver.on_reg_access(10, 0, 1, FULL, False)
        resolver.on_run_end(100)
        assert not resolver.is_live(plan)

    def test_read_at_fault_cycle_counts(self):
        plan = reg_fault(word=32, cycle=10)
        resolver = FaultSiteResolver(MINI_NVIDIA, [plan])
        resolver.on_reg_access(10, 0, 1, FULL, False)
        resolver.on_run_end(100)
        assert resolver.is_live(plan)

    def test_write_at_fault_cycle_kills(self):
        plan = reg_fault(word=32, cycle=10)
        resolver = FaultSiteResolver(MINI_NVIDIA, [plan])
        resolver.on_reg_access(10, 0, 1, FULL, True)
        resolver.on_run_end(100)
        assert not resolver.is_live(plan)

    def test_lmem_faults(self):
        live = lmem_fault(word=7, cycle=5)
        dead = lmem_fault(word=7, cycle=30)
        resolver = FaultSiteResolver(MINI_NVIDIA, [live, dead])
        resolver.on_lmem_access(10, 0, np.array([6, 7]), False)
        resolver.on_lmem_access(20, 0, np.array([7]), True)
        resolver.on_run_end(100)
        assert resolver.is_live(live)
        assert not resolver.is_live(dead)

    def test_lmem_untouched_word_dead(self):
        plan = lmem_fault(word=100, cycle=0)
        resolver = FaultSiteResolver(MINI_NVIDIA, [plan])
        resolver.on_lmem_access(10, 0, np.array([5]), False)
        resolver.on_run_end(50)
        assert not resolver.is_live(plan)

    def test_duplicate_plans_share_status(self):
        a = reg_fault(word=32, cycle=5)
        b = reg_fault(word=32, cycle=5)
        resolver = FaultSiteResolver(MINI_NVIDIA, [a, b])
        resolver.on_reg_access(10, 0, 1, FULL, False)
        resolver.on_run_end(100)
        assert resolver.is_live(a) and resolver.is_live(b)


class TestOccupancy:
    def test_single_block_fraction(self):
        occ = OccupancyAccumulator(MINI_NVIDIA)
        occ.on_block_alloc(0, 0, reg_words=1024, lmem_bytes=2048)
        occ.on_block_free(100, 0, reg_words=1024, lmem_bytes=2048)
        occ.on_run_end(100)
        reg_expected = 1024 / (MINI_NVIDIA.registers_per_core * 2)
        lmem_expected = 2048 / (MINI_NVIDIA.local_memory_bytes * 2)
        assert occ.occupancy(REGISTER_FILE) == pytest.approx(reg_expected)
        assert occ.occupancy(LOCAL_MEMORY) == pytest.approx(lmem_expected)

    def test_time_weighting(self):
        occ = OccupancyAccumulator(MINI_NVIDIA)
        occ.on_block_alloc(0, 0, 1024, 0)
        occ.on_block_free(50, 0, 1024, 0)   # occupied half the run
        occ.on_run_end(100)
        expected = 1024 * 50 / (MINI_NVIDIA.registers_per_core * 2 * 100)
        assert occ.occupancy(REGISTER_FILE) == pytest.approx(expected)

    def test_two_cores_independent(self):
        occ = OccupancyAccumulator(MINI_NVIDIA)
        occ.on_block_alloc(0, 0, 1024, 0)
        occ.on_block_alloc(0, 1, 1024, 0)
        occ.on_block_free(100, 0, 1024, 0)
        occ.on_block_free(100, 1, 1024, 0)
        occ.on_run_end(100)
        expected = 2 * 1024 / (MINI_NVIDIA.registers_per_core * 2)
        assert occ.occupancy(REGISTER_FILE) == pytest.approx(expected)

    def test_empty_run(self):
        occ = OccupancyAccumulator(MINI_NVIDIA)
        occ.on_run_end(0)
        assert occ.occupancy(REGISTER_FILE) == 0.0

    def test_requires_run_end(self):
        occ = OccupancyAccumulator(MINI_NVIDIA)
        with pytest.raises(RuntimeError):
            occ.occupancy(REGISTER_FILE)
